# Empty dependencies file for hint_inspector.
# This may be replaced when dependencies are built.
