# Empty compiler generated dependencies file for whisper_eval.
# This may be replaced when dependencies are built.
