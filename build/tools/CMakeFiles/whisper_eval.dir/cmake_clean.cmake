file(REMOVE_RECURSE
  "CMakeFiles/whisper_eval.dir/whisper_eval.cc.o"
  "CMakeFiles/whisper_eval.dir/whisper_eval.cc.o.d"
  "whisper_eval"
  "whisper_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
