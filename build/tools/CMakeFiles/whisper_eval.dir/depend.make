# Empty dependencies file for whisper_eval.
# This may be replaced when dependencies are built.
