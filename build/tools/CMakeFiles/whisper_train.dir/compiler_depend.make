# Empty compiler generated dependencies file for whisper_train.
# This may be replaced when dependencies are built.
