file(REMOVE_RECURSE
  "CMakeFiles/whisper_train.dir/whisper_train.cc.o"
  "CMakeFiles/whisper_train.dir/whisper_train.cc.o.d"
  "whisper_train"
  "whisper_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
