# Empty dependencies file for whisper_trace_stats.
# This may be replaced when dependencies are built.
