file(REMOVE_RECURSE
  "CMakeFiles/whisper_trace_stats.dir/whisper_trace_stats.cc.o"
  "CMakeFiles/whisper_trace_stats.dir/whisper_trace_stats.cc.o.d"
  "whisper_trace_stats"
  "whisper_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
