file(REMOVE_RECURSE
  "CMakeFiles/whisper_trace_gen.dir/whisper_trace_gen.cc.o"
  "CMakeFiles/whisper_trace_gen.dir/whisper_trace_gen.cc.o.d"
  "whisper_trace_gen"
  "whisper_trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
