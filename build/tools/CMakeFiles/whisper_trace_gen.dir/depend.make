# Empty dependencies file for whisper_trace_gen.
# This may be replaced when dependencies are built.
