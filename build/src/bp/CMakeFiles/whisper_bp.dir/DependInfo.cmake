
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bp/perceptron.cc" "src/bp/CMakeFiles/whisper_bp.dir/perceptron.cc.o" "gcc" "src/bp/CMakeFiles/whisper_bp.dir/perceptron.cc.o.d"
  "/root/repo/src/bp/simple_predictors.cc" "src/bp/CMakeFiles/whisper_bp.dir/simple_predictors.cc.o" "gcc" "src/bp/CMakeFiles/whisper_bp.dir/simple_predictors.cc.o.d"
  "/root/repo/src/bp/tage_scl.cc" "src/bp/CMakeFiles/whisper_bp.dir/tage_scl.cc.o" "gcc" "src/bp/CMakeFiles/whisper_bp.dir/tage_scl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whisper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
