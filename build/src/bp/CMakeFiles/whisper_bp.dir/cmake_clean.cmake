file(REMOVE_RECURSE
  "CMakeFiles/whisper_bp.dir/perceptron.cc.o"
  "CMakeFiles/whisper_bp.dir/perceptron.cc.o.d"
  "CMakeFiles/whisper_bp.dir/simple_predictors.cc.o"
  "CMakeFiles/whisper_bp.dir/simple_predictors.cc.o.d"
  "CMakeFiles/whisper_bp.dir/tage_scl.cc.o"
  "CMakeFiles/whisper_bp.dir/tage_scl.cc.o.d"
  "libwhisper_bp.a"
  "libwhisper_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
