# Empty dependencies file for whisper_bp.
# This may be replaced when dependencies are built.
