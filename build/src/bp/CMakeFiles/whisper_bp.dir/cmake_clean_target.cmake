file(REMOVE_RECURSE
  "libwhisper_bp.a"
)
