
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/btb.cc" "src/uarch/CMakeFiles/whisper_uarch.dir/btb.cc.o" "gcc" "src/uarch/CMakeFiles/whisper_uarch.dir/btb.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/whisper_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/whisper_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/pipeline.cc" "src/uarch/CMakeFiles/whisper_uarch.dir/pipeline.cc.o" "gcc" "src/uarch/CMakeFiles/whisper_uarch.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bp/CMakeFiles/whisper_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whisper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
