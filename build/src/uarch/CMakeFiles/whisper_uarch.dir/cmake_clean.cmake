file(REMOVE_RECURSE
  "CMakeFiles/whisper_uarch.dir/btb.cc.o"
  "CMakeFiles/whisper_uarch.dir/btb.cc.o.d"
  "CMakeFiles/whisper_uarch.dir/cache.cc.o"
  "CMakeFiles/whisper_uarch.dir/cache.cc.o.d"
  "CMakeFiles/whisper_uarch.dir/pipeline.cc.o"
  "CMakeFiles/whisper_uarch.dir/pipeline.cc.o.d"
  "libwhisper_uarch.a"
  "libwhisper_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
