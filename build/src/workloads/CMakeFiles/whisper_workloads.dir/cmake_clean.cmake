file(REMOVE_RECURSE
  "CMakeFiles/whisper_workloads.dir/app_workload.cc.o"
  "CMakeFiles/whisper_workloads.dir/app_workload.cc.o.d"
  "CMakeFiles/whisper_workloads.dir/catalog.cc.o"
  "CMakeFiles/whisper_workloads.dir/catalog.cc.o.d"
  "libwhisper_workloads.a"
  "libwhisper_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
