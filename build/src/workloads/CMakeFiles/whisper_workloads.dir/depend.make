# Empty dependencies file for whisper_workloads.
# This may be replaced when dependencies are built.
