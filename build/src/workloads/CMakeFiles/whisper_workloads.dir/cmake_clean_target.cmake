file(REMOVE_RECURSE
  "libwhisper_workloads.a"
)
