file(REMOVE_RECURSE
  "libwhisper_rombf.a"
)
