# Empty compiler generated dependencies file for whisper_rombf.
# This may be replaced when dependencies are built.
