file(REMOVE_RECURSE
  "CMakeFiles/whisper_rombf.dir/rombf_formula.cc.o"
  "CMakeFiles/whisper_rombf.dir/rombf_formula.cc.o.d"
  "CMakeFiles/whisper_rombf.dir/rombf_predictor.cc.o"
  "CMakeFiles/whisper_rombf.dir/rombf_predictor.cc.o.d"
  "CMakeFiles/whisper_rombf.dir/rombf_trainer.cc.o"
  "CMakeFiles/whisper_rombf.dir/rombf_trainer.cc.o.d"
  "libwhisper_rombf.a"
  "libwhisper_rombf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_rombf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
