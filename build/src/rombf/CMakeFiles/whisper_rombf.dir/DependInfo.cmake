
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rombf/rombf_formula.cc" "src/rombf/CMakeFiles/whisper_rombf.dir/rombf_formula.cc.o" "gcc" "src/rombf/CMakeFiles/whisper_rombf.dir/rombf_formula.cc.o.d"
  "/root/repo/src/rombf/rombf_predictor.cc" "src/rombf/CMakeFiles/whisper_rombf.dir/rombf_predictor.cc.o" "gcc" "src/rombf/CMakeFiles/whisper_rombf.dir/rombf_predictor.cc.o.d"
  "/root/repo/src/rombf/rombf_trainer.cc" "src/rombf/CMakeFiles/whisper_rombf.dir/rombf_trainer.cc.o" "gcc" "src/rombf/CMakeFiles/whisper_rombf.dir/rombf_trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/whisper_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whisper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
