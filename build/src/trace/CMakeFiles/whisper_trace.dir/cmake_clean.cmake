file(REMOVE_RECURSE
  "CMakeFiles/whisper_trace.dir/branch_trace.cc.o"
  "CMakeFiles/whisper_trace.dir/branch_trace.cc.o.d"
  "CMakeFiles/whisper_trace.dir/global_history.cc.o"
  "CMakeFiles/whisper_trace.dir/global_history.cc.o.d"
  "libwhisper_trace.a"
  "libwhisper_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
