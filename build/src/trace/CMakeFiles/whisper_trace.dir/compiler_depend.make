# Empty compiler generated dependencies file for whisper_trace.
# This may be replaced when dependencies are built.
