file(REMOVE_RECURSE
  "libwhisper_branchnet.a"
)
