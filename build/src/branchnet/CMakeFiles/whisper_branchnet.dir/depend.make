# Empty dependencies file for whisper_branchnet.
# This may be replaced when dependencies are built.
