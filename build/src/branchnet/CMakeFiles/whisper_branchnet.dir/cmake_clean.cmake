file(REMOVE_RECURSE
  "CMakeFiles/whisper_branchnet.dir/branchnet_model.cc.o"
  "CMakeFiles/whisper_branchnet.dir/branchnet_model.cc.o.d"
  "CMakeFiles/whisper_branchnet.dir/branchnet_predictor.cc.o"
  "CMakeFiles/whisper_branchnet.dir/branchnet_predictor.cc.o.d"
  "CMakeFiles/whisper_branchnet.dir/branchnet_trainer.cc.o"
  "CMakeFiles/whisper_branchnet.dir/branchnet_trainer.cc.o.d"
  "libwhisper_branchnet.a"
  "libwhisper_branchnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_branchnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
