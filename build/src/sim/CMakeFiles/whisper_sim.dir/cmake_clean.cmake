file(REMOVE_RECURSE
  "CMakeFiles/whisper_sim.dir/analysis.cc.o"
  "CMakeFiles/whisper_sim.dir/analysis.cc.o.d"
  "CMakeFiles/whisper_sim.dir/classifier.cc.o"
  "CMakeFiles/whisper_sim.dir/classifier.cc.o.d"
  "CMakeFiles/whisper_sim.dir/experiment.cc.o"
  "CMakeFiles/whisper_sim.dir/experiment.cc.o.d"
  "CMakeFiles/whisper_sim.dir/profiler.cc.o"
  "CMakeFiles/whisper_sim.dir/profiler.cc.o.d"
  "CMakeFiles/whisper_sim.dir/runner.cc.o"
  "CMakeFiles/whisper_sim.dir/runner.cc.o.d"
  "libwhisper_sim.a"
  "libwhisper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
