# Empty compiler generated dependencies file for whisper_sim.
# This may be replaced when dependencies are built.
