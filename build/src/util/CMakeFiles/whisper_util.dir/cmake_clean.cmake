file(REMOVE_RECURSE
  "CMakeFiles/whisper_util.dir/histogram.cc.o"
  "CMakeFiles/whisper_util.dir/histogram.cc.o.d"
  "CMakeFiles/whisper_util.dir/rng.cc.o"
  "CMakeFiles/whisper_util.dir/rng.cc.o.d"
  "CMakeFiles/whisper_util.dir/stats.cc.o"
  "CMakeFiles/whisper_util.dir/stats.cc.o.d"
  "CMakeFiles/whisper_util.dir/table.cc.o"
  "CMakeFiles/whisper_util.dir/table.cc.o.d"
  "libwhisper_util.a"
  "libwhisper_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
