file(REMOVE_RECURSE
  "CMakeFiles/whisper_core.dir/brhint.cc.o"
  "CMakeFiles/whisper_core.dir/brhint.cc.o.d"
  "CMakeFiles/whisper_core.dir/formula.cc.o"
  "CMakeFiles/whisper_core.dir/formula.cc.o.d"
  "CMakeFiles/whisper_core.dir/formula_gates.cc.o"
  "CMakeFiles/whisper_core.dir/formula_gates.cc.o.d"
  "CMakeFiles/whisper_core.dir/formula_trainer.cc.o"
  "CMakeFiles/whisper_core.dir/formula_trainer.cc.o.d"
  "CMakeFiles/whisper_core.dir/hint_buffer.cc.o"
  "CMakeFiles/whisper_core.dir/hint_buffer.cc.o.d"
  "CMakeFiles/whisper_core.dir/hint_injection.cc.o"
  "CMakeFiles/whisper_core.dir/hint_injection.cc.o.d"
  "CMakeFiles/whisper_core.dir/history_hash.cc.o"
  "CMakeFiles/whisper_core.dir/history_hash.cc.o.d"
  "CMakeFiles/whisper_core.dir/profile.cc.o"
  "CMakeFiles/whisper_core.dir/profile.cc.o.d"
  "CMakeFiles/whisper_core.dir/static_profile.cc.o"
  "CMakeFiles/whisper_core.dir/static_profile.cc.o.d"
  "CMakeFiles/whisper_core.dir/whisper_io.cc.o"
  "CMakeFiles/whisper_core.dir/whisper_io.cc.o.d"
  "CMakeFiles/whisper_core.dir/whisper_predictor.cc.o"
  "CMakeFiles/whisper_core.dir/whisper_predictor.cc.o.d"
  "CMakeFiles/whisper_core.dir/whisper_trainer.cc.o"
  "CMakeFiles/whisper_core.dir/whisper_trainer.cc.o.d"
  "libwhisper_core.a"
  "libwhisper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
