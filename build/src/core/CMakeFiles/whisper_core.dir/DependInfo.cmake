
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brhint.cc" "src/core/CMakeFiles/whisper_core.dir/brhint.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/brhint.cc.o.d"
  "/root/repo/src/core/formula.cc" "src/core/CMakeFiles/whisper_core.dir/formula.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/formula.cc.o.d"
  "/root/repo/src/core/formula_gates.cc" "src/core/CMakeFiles/whisper_core.dir/formula_gates.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/formula_gates.cc.o.d"
  "/root/repo/src/core/formula_trainer.cc" "src/core/CMakeFiles/whisper_core.dir/formula_trainer.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/formula_trainer.cc.o.d"
  "/root/repo/src/core/hint_buffer.cc" "src/core/CMakeFiles/whisper_core.dir/hint_buffer.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/hint_buffer.cc.o.d"
  "/root/repo/src/core/hint_injection.cc" "src/core/CMakeFiles/whisper_core.dir/hint_injection.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/hint_injection.cc.o.d"
  "/root/repo/src/core/history_hash.cc" "src/core/CMakeFiles/whisper_core.dir/history_hash.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/history_hash.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/whisper_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/profile.cc.o.d"
  "/root/repo/src/core/static_profile.cc" "src/core/CMakeFiles/whisper_core.dir/static_profile.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/static_profile.cc.o.d"
  "/root/repo/src/core/whisper_io.cc" "src/core/CMakeFiles/whisper_core.dir/whisper_io.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/whisper_io.cc.o.d"
  "/root/repo/src/core/whisper_predictor.cc" "src/core/CMakeFiles/whisper_core.dir/whisper_predictor.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/whisper_predictor.cc.o.d"
  "/root/repo/src/core/whisper_trainer.cc" "src/core/CMakeFiles/whisper_core.dir/whisper_trainer.cc.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/whisper_trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bp/CMakeFiles/whisper_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whisper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
