# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bp[1]_include.cmake")
include("/root/repo/build/tests/test_branchnet[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_formula[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_rombf[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
add_test(tools_pipeline "/root/repo/tests/tools_pipeline.sh" "/root/repo/build/tools")
set_tests_properties(tools_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
