# Empty dependencies file for test_formula.
# This may be replaced when dependencies are built.
