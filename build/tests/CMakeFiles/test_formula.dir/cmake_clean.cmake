file(REMOVE_RECURSE
  "CMakeFiles/test_formula.dir/test_formula.cc.o"
  "CMakeFiles/test_formula.dir/test_formula.cc.o.d"
  "test_formula"
  "test_formula.pdb"
  "test_formula[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
