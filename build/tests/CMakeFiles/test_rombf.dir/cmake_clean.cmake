file(REMOVE_RECURSE
  "CMakeFiles/test_rombf.dir/test_rombf.cc.o"
  "CMakeFiles/test_rombf.dir/test_rombf.cc.o.d"
  "test_rombf"
  "test_rombf.pdb"
  "test_rombf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rombf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
