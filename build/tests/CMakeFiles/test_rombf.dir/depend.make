# Empty dependencies file for test_rombf.
# This may be replaced when dependencies are built.
