file(REMOVE_RECURSE
  "CMakeFiles/test_branchnet.dir/test_branchnet.cc.o"
  "CMakeFiles/test_branchnet.dir/test_branchnet.cc.o.d"
  "test_branchnet"
  "test_branchnet.pdb"
  "test_branchnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branchnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
