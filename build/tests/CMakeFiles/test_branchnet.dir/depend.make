# Empty dependencies file for test_branchnet.
# This may be replaced when dependencies are built.
