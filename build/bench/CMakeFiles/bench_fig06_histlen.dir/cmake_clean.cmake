file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_histlen.dir/bench_fig06_histlen.cc.o"
  "CMakeFiles/bench_fig06_histlen.dir/bench_fig06_histlen.cc.o.d"
  "bench_fig06_histlen"
  "bench_fig06_histlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_histlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
