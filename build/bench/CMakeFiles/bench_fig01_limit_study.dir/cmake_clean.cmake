file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_limit_study.dir/bench_fig01_limit_study.cc.o"
  "CMakeFiles/bench_fig01_limit_study.dir/bench_fig01_limit_study.cc.o.d"
  "bench_fig01_limit_study"
  "bench_fig01_limit_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_limit_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
