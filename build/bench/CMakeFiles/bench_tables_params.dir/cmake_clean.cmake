file(REMOVE_RECURSE
  "CMakeFiles/bench_tables_params.dir/bench_tables_params.cc.o"
  "CMakeFiles/bench_tables_params.dir/bench_tables_params.cc.o.d"
  "bench_tables_params"
  "bench_tables_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
