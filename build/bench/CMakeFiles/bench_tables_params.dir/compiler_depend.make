# Empty compiler generated dependencies file for bench_tables_params.
# This may be replaced when dependencies are built.
