file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_warmup.dir/bench_fig22_warmup.cc.o"
  "CMakeFiles/bench_fig22_warmup.dir/bench_fig22_warmup.cc.o.d"
  "bench_fig22_warmup"
  "bench_fig22_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
