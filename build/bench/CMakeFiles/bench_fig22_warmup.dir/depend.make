# Empty dependencies file for bench_fig22_warmup.
# This may be replaced when dependencies are built.
