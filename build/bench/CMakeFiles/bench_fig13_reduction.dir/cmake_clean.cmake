file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_reduction.dir/bench_fig13_reduction.cc.o"
  "CMakeFiles/bench_fig13_reduction.dir/bench_fig13_reduction.cc.o.d"
  "bench_fig13_reduction"
  "bench_fig13_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
