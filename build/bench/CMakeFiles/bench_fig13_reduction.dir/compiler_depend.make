# Empty compiler generated dependencies file for bench_fig13_reduction.
# This may be replaced when dependencies are built.
