# Empty dependencies file for bench_micro_predictors.
# This may be replaced when dependencies are built.
