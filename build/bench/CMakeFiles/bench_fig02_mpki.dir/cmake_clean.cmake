file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_mpki.dir/bench_fig02_mpki.cc.o"
  "CMakeFiles/bench_fig02_mpki.dir/bench_fig02_mpki.cc.o.d"
  "bench_fig02_mpki"
  "bench_fig02_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
