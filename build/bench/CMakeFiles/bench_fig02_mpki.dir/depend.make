# Empty dependencies file for bench_fig02_mpki.
# This may be replaced when dependencies are built.
