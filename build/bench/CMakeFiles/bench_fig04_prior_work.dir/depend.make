# Empty dependencies file for bench_fig04_prior_work.
# This may be replaced when dependencies are built.
