file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_inputs.dir/bench_fig17_inputs.cc.o"
  "CMakeFiles/bench_fig17_inputs.dir/bench_fig17_inputs.cc.o.d"
  "bench_fig17_inputs"
  "bench_fig17_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
