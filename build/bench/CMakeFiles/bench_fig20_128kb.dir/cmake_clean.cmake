file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_128kb.dir/bench_fig20_128kb.cc.o"
  "CMakeFiles/bench_fig20_128kb.dir/bench_fig20_128kb.cc.o.d"
  "bench_fig20_128kb"
  "bench_fig20_128kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_128kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
