# Empty dependencies file for bench_fig20_128kb.
# This may be replaced when dependencies are built.
