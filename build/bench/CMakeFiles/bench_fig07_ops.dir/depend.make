# Empty dependencies file for bench_fig07_ops.
# This may be replaced when dependencies are built.
