
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_speedup.cc" "bench/CMakeFiles/bench_fig12_speedup.dir/bench_fig12_speedup.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_speedup.dir/bench_fig12_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/whisper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/branchnet/CMakeFiles/whisper_branchnet.dir/DependInfo.cmake"
  "/root/repo/build/src/rombf/CMakeFiles/whisper_rombf.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/whisper_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/whisper_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/whisper_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/whisper_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whisper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
