# Empty dependencies file for bench_fig16_train_time.
# This may be replaced when dependencies are built.
