# Empty dependencies file for bench_fig23_length.
# This may be replaced when dependencies are built.
