file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_randomized.dir/bench_fig15_randomized.cc.o"
  "CMakeFiles/bench_fig15_randomized.dir/bench_fig15_randomized.cc.o.d"
  "bench_fig15_randomized"
  "bench_fig15_randomized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
