# Empty compiler generated dependencies file for bench_fig15_randomized.
# This may be replaced when dependencies are built.
