# Empty compiler generated dependencies file for bench_fig18_merged.
# This may be replaced when dependencies are built.
