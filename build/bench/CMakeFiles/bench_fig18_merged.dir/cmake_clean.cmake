file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_merged.dir/bench_fig18_merged.cc.o"
  "CMakeFiles/bench_fig18_merged.dir/bench_fig18_merged.cc.o.d"
  "bench_fig18_merged"
  "bench_fig18_merged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
