/**
 * @file
 * Fig. 18: merging profiles from multiple inputs. Average
 * misprediction reduction of 8b-ROMBF, unlimited-BranchNet and
 * Whisper when trained on profiles merged from 1-5 inputs and
 * tested on an unseen input.
 *
 * Paper result: all techniques improve with merged profiles and
 * Whisper stays ahead throughout.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 18: merged multi-input profiles",
           "Fig. 18 (reduction grows with merged inputs; Whisper "
           "leads)");

    // Profile collection dominates this bench; use a subset of apps
    // and a reduced trace scale.
    ExperimentConfig cfg = defaultConfig(0.6);
    const std::vector<AppConfig> apps = {
        appByName("mysql"),     appByName("cassandra"),
        appByName("mediawiki"), appByName("finagle-http"),
        appByName("python"),    appByName("tomcat")};
    const uint32_t testInput = 9;

    TableReporter table("Fig. 18: average misprediction reduction "
                        "(%) vs merged training inputs (6 apps, "
                        "test input #9)");
    table.setHeader({"inputs-merged", "8b-ROMBF",
                     "Unlimited-BranchNet", "Whisper"});

    for (unsigned numInputs = 1; numInputs <= 5; ++numInputs) {
        RunningStat rombfRed, bnRed, whisperRed;
        for (const auto &app : apps) {
            BranchNetSampleStore store;
            BranchProfile merged = profileApp(app, 1, cfg, &store);
            for (uint32_t input = 2; input <= numInputs; ++input) {
                BranchProfile extra = profileApp(app, input, cfg);
                merged.mergeFrom(extra);
            }
            // Hints are placed on the first training input's trace.
            WhisperBuild build = trainWhisper(app, 1, merged, cfg);

            auto baseline = makeTage(cfg.tageBudgetKB);
            auto s0 = evalApp(app, testInput, cfg, *baseline,
                              cfg.evalWarmup);

            auto rombf = makeRombfPredictor(8, merged, cfg);
            auto sR = evalApp(app, testInput, cfg, *rombf,
                              cfg.evalWarmup);
            rombfRed.add(reductionPercent(s0, sR));

            auto bn = makeBranchNetPredictor(0, merged, store, cfg);
            auto sB =
                evalApp(app, testInput, cfg, *bn, cfg.evalWarmup);
            bnRed.add(reductionPercent(s0, sB));

            auto wp = makeWhisperPredictor(cfg, build);
            auto sW =
                evalApp(app, testInput, cfg, *wp, cfg.evalWarmup);
            whisperRed.add(reductionPercent(s0, sW));
        }
        table.addRow(std::to_string(numInputs) + "-inputs",
                     {rombfRed.mean(), bnRed.mean(),
                      whisperRed.mean()});
    }
    table.print();
    return 0;
}
