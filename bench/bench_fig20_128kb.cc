/**
 * @file
 * Fig. 20: Whisper's misprediction reduction when the baseline is
 * a 128KB TAGE-SC-L (profiled and evaluated against that larger
 * predictor).
 *
 * Paper result: still 13.4% reduction on average (the 128KB
 * baseline's MPKI is 2.4 versus 3.0 at 64KB).
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 20: 128KB TAGE-SC-L baseline",
           "Fig. 20 (13.4% average reduction over 128KB baseline)");

    ExperimentConfig cfg = defaultConfig();
    cfg.tageBudgetKB = 128;

    TableReporter table("Fig. 20: misprediction reduction over "
                        "128KB TAGE-SC-L (%)");
    table.setHeader({"application", "reduction", "baseline-MPKI"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        BranchProfile profile = profileApp(app, 0, cfg);
        WhisperBuild build = trainWhisper(app, 0, profile, cfg);

        auto baseline = makeTage(cfg.tageBudgetKB);
        auto s0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);
        auto wp = makeWhisperPredictor(cfg, build);
        auto s1 = evalApp(app, 1, cfg, *wp, cfg.evalWarmup);

        rows.push_back({reductionPercent(s0, s1), s0.mpki()});
        table.addRow(app.name, rows.back());
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
