/**
 * @file
 * Fig. 15: randomized formula testing trade-off — misprediction
 * reduction and offline training time as a function of the
 * fraction of all 2^15 formulas explored.
 *
 * Paper result: at 0.1% of formulas Whisper keeps ~88.3% of the
 * exhaustive-search misprediction reduction while training an
 * order of magnitude faster.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 15: randomized formula testing sweep",
           "Fig. 15 (0.1% of formulas ~ 88.3% of exhaustive "
           "reduction, 10x+ faster)");

    // Exhaustive search over all hard branches is expensive; cap
    // the per-app hard set so the 100% point stays tractable.
    ExperimentConfig cfg = defaultConfig();
    cfg.profile.maxHardBranches = 256;
    const std::vector<AppConfig> apps = {
        appByName("mysql"), appByName("clang"),
        appByName("cassandra")};
    const double fractions[] = {0.001, 0.01, 0.1, 1.0};

    TableReporter table("Fig. 15: reduction and training time vs "
                        "% of formulas explored (top-256 hard "
                        "branches, 3 apps)");
    table.setHeader({"formulas-explored-%", "reduction-%",
                     "train-seconds", "formulas-scored"});

    for (double fraction : fractions) {
        RunningStat reduction, seconds, scored;
        for (const auto &app : apps) {
            BranchProfile profile = profileApp(app, 0, cfg);
            WhisperBuild build =
                trainWhisper(app, 0, profile, cfg, fraction);

            auto baseline = makeTage(cfg.tageBudgetKB);
            auto s0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);
            auto wp = makeWhisperPredictor(cfg, build);
            auto s1 = evalApp(app, 1, cfg, *wp, cfg.evalWarmup);

            reduction.add(reductionPercent(s0, s1));
            seconds.add(build.stats.trainSeconds);
            scored.add(static_cast<double>(build.stats.formulasScored));
        }
        table.addRow(TableReporter::formatDouble(100.0 * fraction, 1),
                     {reduction.mean(), seconds.mean(),
                      scored.mean()},
                     3);
    }
    table.print();
    return 0;
}
