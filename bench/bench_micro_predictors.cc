/**
 * @file
 * Google-benchmark microbenchmarks for the predictors: simulation
 * throughput of TAGE-SC-L at several budgets, the Whisper hybrid's
 * overhead on top of it, and hint-buffer operations.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bp/tage_scl.hh"
#include "core/hint_buffer.hh"
#include "trace/branch_trace.hh"
#include "core/whisper_predictor.hh"
#include "sim/experiment.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

/** Pre-generated trace shared by the throughput benches. */
const BranchTrace &
sharedTrace()
{
    static const BranchTrace trace = [] {
        BranchTrace t("bench", 0);
        AppWorkload wl(appByName("kafka"), 0, 200000);
        t.fill(wl, 200000);
        return t;
    }();
    return trace;
}

void
BM_TagePredictUpdate(benchmark::State &state)
{
    TageScl tage(
        TageSclConfig::forBudgetKB(static_cast<unsigned>(
            state.range(0))));
    const BranchTrace &trace = sharedTrace();
    size_t i = 0;
    for (auto _ : state) {
        const BranchRecord &rec = trace[i];
        if (rec.isConditional()) {
            bool pred = tage.predict(rec.pc, rec.taken);
            tage.update(rec.pc, rec.taken, pred);
            benchmark::DoNotOptimize(pred);
        }
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagePredictUpdate)->Arg(8)->Arg(64)->Arg(1024);

void
BM_WhisperHybridPredictUpdate(benchmark::State &state)
{
    ExperimentConfig cfg;
    cfg.trainRecords = 150000;
    const AppConfig &app = appByName("kafka");
    BranchProfile profile = profileApp(app, 0, cfg);
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);
    auto pred = makeWhisperPredictor(cfg, build);

    const BranchTrace &trace = sharedTrace();
    size_t i = 0;
    for (auto _ : state) {
        const BranchRecord &rec = trace[i];
        if (rec.isConditional()) {
            bool p = pred->predict(rec.pc, rec.taken);
            pred->update(rec.pc, rec.taken, p);
        }
        pred->onRecord(rec);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WhisperHybridPredictUpdate);

void
BM_HintBufferInsertLookup(benchmark::State &state)
{
    HintBuffer buf(32);
    BrHint hint;
    uint64_t pc = 0;
    for (auto _ : state) {
        buf.insert(0x1000 + (pc % 64) * 16, hint);
        benchmark::DoNotOptimize(
            buf.lookup(0x1000 + ((pc + 7) % 64) * 16));
        ++pc;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HintBufferInsertLookup);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    AppWorkload wl(appByName("mysql"), 0, ~0ULL);
    BranchRecord rec;
    for (auto _ : state) {
        wl.next(rec);
        benchmark::DoNotOptimize(rec.pc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
