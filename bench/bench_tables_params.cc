/**
 * @file
 * Reproduces the parameter tables: Table I (applications and
 * workloads), Table II (simulator parameters), and Table III
 * (Whisper design parameters) from the library's actual defaults.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Tables I-III: configuration",
           "Table I (apps), Table II (simulator), Table III "
           "(Whisper design parameters)");

    {
        TableReporter t("Table I: data center applications (models)");
        t.setHeader({"application", "regions", "request-types",
                     "static-branches", "type-skew"});
        for (const auto &app : dataCenterApps()) {
            AppWorkload wl(app, 0, 1);
            t.addRow({app.name, std::to_string(app.numRegions),
                      std::to_string(app.numRequestTypes),
                      std::to_string(wl.staticBranches()),
                      TableReporter::formatDouble(app.zipfTheta)});
        }
        t.print();
    }

    {
        ExperimentConfig cfg;
        const PipelineConfig &p = cfg.pipeline;
        TageScl tage(TageSclConfig::forBudgetKB(cfg.tageBudgetKB));
        TableReporter t("Table II: simulator parameters");
        t.setHeader({"parameter", "value"});
        t.addRow({"fetch width", std::to_string(p.fetchWidth)});
        t.addRow({"FTQ entries", std::to_string(p.ftqEntries)});
        t.addRow({"ROB entries", std::to_string(p.robEntries)});
        t.addRow({"mispredict penalty",
                  std::to_string(p.mispredictPenalty) + " cycles"});
        t.addRow({"BTB", std::to_string(p.btbEntries) + " x " +
                             std::to_string(p.btbWays) + "-way"});
        t.addRow({"branch predictor", tage.name()});
        t.addRow({"L1i", "32KB 8-way"});
        t.addRow({"L2", "1MB 16-way"});
        t.addRow({"L3", "10MB 20-way"});
        t.print();
    }

    {
        WhisperConfig w;
        TableReporter t("Table III: Whisper design parameters");
        t.setHeader({"parameter", "value"});
        t.addRow({"minimum history length (a)",
                  std::to_string(w.minHistoryLength)});
        t.addRow({"maximum history length (N)",
                  std::to_string(w.maxHistoryLength)});
        t.addRow({"different history lengths (m)",
                  std::to_string(w.numHistoryLengths)});
        t.addRow({"hashed history length",
                  std::to_string(w.hashWidth)});
        t.addRow({"logical operations used", "4"});
        t.addRow({"hint buffer size",
                  std::to_string(w.hintBufferEntries)});
        t.addRow({"formulas explored",
                  TableReporter::formatDouble(
                      100.0 * w.formulaFraction, 1) + "%"});
        t.print();

        auto lengths = geometricLengths(w);
        std::string series;
        for (unsigned l : lengths)
            series += std::to_string(l) + " ";
        std::printf("geometric length series: %s\n", series.c_str());
    }
    return 0;
}
