/**
 * @file
 * Fig. 4: misprediction reduction of the prior profile-guided
 * techniques (4b/8b-ROMBF, 8KB/32KB/unlimited BranchNet) over the
 * 64KB TAGE-SC-L baseline, trained on input #0 and tested on #1.
 *
 * Paper result: 3.4%-8.9% for the practical variants;
 * unlimited-BranchNet reaches only 11.9%.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 4: prior profile-guided techniques",
           "Fig. 4 (ROMBF 8.4-8.9%, BranchNet 3.4-6.6%, "
           "unlimited-BranchNet 11.9%)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table(
        "Fig. 4: misprediction reduction over 64KB TAGE-SC-L (%)");
    table.setHeader({"application", "4b-ROMBF", "8b-ROMBF",
                     "8KB-BranchNet", "32KB-BranchNet",
                     "Unlimited-BranchNet"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        BranchNetSampleStore store;
        BranchProfile profile = profileApp(app, 0, cfg, &store);

        auto baseline = makeTage(cfg.tageBudgetKB);
        auto s0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);

        auto evalOne = [&](std::unique_ptr<BranchPredictor> p) {
            auto s = evalApp(app, 1, cfg, *p, cfg.evalWarmup);
            return reductionPercent(s0, s);
        };

        std::vector<double> row;
        row.push_back(evalOne(makeRombfPredictor(4, profile, cfg)));
        row.push_back(evalOne(makeRombfPredictor(8, profile, cfg)));
        row.push_back(evalOne(
            makeBranchNetPredictor(8 * 1024, profile, store, cfg)));
        row.push_back(evalOne(
            makeBranchNetPredictor(32 * 1024, profile, store, cfg)));
        row.push_back(
            evalOne(makeBranchNetPredictor(0, profile, store, cfg)));
        rows.push_back(row);
        table.addRow(app.name, row);
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
