/**
 * @file
 * Fig. 21: Whisper's average misprediction reduction as the
 * baseline TAGE-SC-L budget sweeps from 8KB to 1MB (Whisper
 * re-profiles and re-trains against each size).
 *
 * Paper result: consistently above 10%; still 11.2% at 1MB.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 21: baseline predictor size sweep",
           "Fig. 21 (>10% reduction from 8KB through 1MB)");

    ExperimentConfig base = defaultConfig(0.6);
    const std::vector<AppConfig> apps = {
        appByName("mysql"),    appByName("cassandra"),
        appByName("clang"),    appByName("finagle-http"),
        appByName("python"),   appByName("tomcat")};

    TableReporter table("Fig. 21: average misprediction reduction "
                        "(%) vs baseline TAGE-SC-L size (6 apps)");
    table.setHeader({"size-KB", "reduction-%", "baseline-MPKI"});

    for (unsigned kb : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
        ExperimentConfig cfg = base;
        cfg.tageBudgetKB = kb;
        RunningStat reduction, mpki;
        for (const auto &app : apps) {
            BranchProfile profile = profileApp(app, 0, cfg);
            WhisperBuild build = trainWhisper(app, 0, profile, cfg);

            auto baseline = makeTage(kb);
            auto s0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);
            auto wp = makeWhisperPredictor(cfg, build);
            auto s1 = evalApp(app, 1, cfg, *wp, cfg.evalWarmup);
            reduction.add(reductionPercent(s0, s1));
            mpki.add(s0.mpki());
        }
        table.addRow(std::to_string(kb),
                     {reduction.mean(), mpki.mean()});
    }
    table.print();
    return 0;
}
