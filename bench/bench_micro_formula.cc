/**
 * @file
 * Google-benchmark microbenchmarks for the formula machinery: the
 * per-prediction costs Whisper adds (formula evaluation, hashed
 * history maintenance) and the offline costs (Algorithm 1 scoring,
 * candidate search).
 */

#include <benchmark/benchmark.h>

#include "core/formula.hh"
#include "core/formula_trainer.hh"
#include "core/history_hash.hh"
#include "rombf/rombf_formula.hh"
#include "trace/global_history.hh"
#include "util/rng.hh"

using namespace whisper;

namespace
{

void
BM_FormulaEvaluate(benchmark::State &state)
{
    BoolFormula f(0x2A51, 8);
    uint8_t in = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.evaluate(in));
        ++in;
    }
}
BENCHMARK(BM_FormulaEvaluate);

void
BM_TruthTableLookup(benchmark::State &state)
{
    static const TruthTableCache cache(8);
    uint16_t enc = 0x2A51;
    uint8_t in = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.evaluate(enc, in));
        ++in;
    }
}
BENCHMARK(BM_TruthTableLookup);

void
BM_FoldedHistoryPush(benchmark::State &state)
{
    // The 16 folded views Whisper maintains at run time.
    GlobalHistory h(2048);
    for (unsigned len : geometricLengths(WhisperConfig{}))
        h.addFoldedView(len, 8);
    bool bit = false;
    for (auto _ : state) {
        h.push(bit);
        bit = !bit;
    }
}
BENCHMARK(BM_FoldedHistoryPush);

void
BM_ScoreFormula(benchmark::State &state)
{
    static const TruthTableCache cache(8);
    HashedSampleTable table(8);
    Rng rng(1);
    for (unsigned k = 0; k < 256; ++k) {
        table.taken[k] = static_cast<uint32_t>(rng.nextBelow(50));
        table.notTaken[k] = static_cast<uint32_t>(rng.nextBelow(50));
    }
    uint16_t enc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            scoreFormula(cache.table(enc), table));
        enc = static_cast<uint16_t>((enc + 977) & 0x7FFF);
    }
}
BENCHMARK(BM_ScoreFormula);

void
BM_Algorithm1Randomized(benchmark::State &state)
{
    // One branch x one history length at the paper's 0.1% operating
    // point.
    static const TruthTableCache cache(8);
    FormulaCandidates candidates(8, 0.001, 42);
    HashedSampleTable table(8);
    Rng rng(2);
    for (unsigned k = 0; k < 256; ++k) {
        table.taken[k] = static_cast<uint32_t>(rng.nextBelow(50));
        table.notTaken[k] = static_cast<uint32_t>(rng.nextBelow(50));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            findBooleanFormula(table, candidates.encodings(), cache));
    }
}
BENCHMARK(BM_Algorithm1Randomized);

void
BM_RombfEnumerate(benchmark::State &state)
{
    // The prior work's exhaustive search-space construction; the
    // argument is the history length (grows exponentially).
    unsigned vars = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto e = enumerateRombf(vars, /*dedupe=*/false);
        benchmark::DoNotOptimize(e.tables.data());
    }
}
BENCHMARK(BM_RombfEnumerate)->Arg(4)->Arg(6)->Arg(8);

} // namespace

BENCHMARK_MAIN();
