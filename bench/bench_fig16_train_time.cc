/**
 * @file
 * Fig. 16: offline training time per technique.
 *
 * Paper result (log scale): BranchNet needs thousands of seconds
 * even on a V100 GPU; 8b-ROMBF's exhaustive enumeration grows
 * exponentially with history length; Whisper is the cheapest.
 * Our absolute numbers are host-CPU seconds at reproduction scale —
 * the ordering and the growth shape are the reproduced result.
 */

#include "common.hh"

#include "rombf/rombf_trainer.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 16: offline training time",
           "Fig. 16 (Whisper < 8b-ROMBF < BranchNet; 4b-ROMBF "
           "cheap)");

    ExperimentConfig cfg = defaultConfig();
    cfg.profile.maxHardBranches = 512;
    const std::vector<AppConfig> apps = {
        appByName("mysql"), appByName("cassandra"),
        appByName("finagle-http")};

    RunningStat t4, t8, bn8, bn32, bnU, tw;
    for (const auto &app : apps) {
        BranchNetSampleStore store;
        BranchProfile profile = profileApp(app, 0, cfg, &store);

        {
            // Full enumerations (no function dedup) — the genuine
            // cost of the prior work's exhaustive search.
            RombfTrainer trainer(4, /*dedupe=*/false);
            RombfTrainingStats s;
            trainer.train(profile, &s);
            t4.add(s.trainSeconds);
        }
        {
            RombfTrainer trainer(8, /*dedupe=*/false);
            RombfTrainingStats s;
            trainer.train(profile, &s);
            t8.add(s.trainSeconds);
        }
        for (auto [budget, stat] :
             {std::pair<uint64_t, RunningStat *>{8 * 1024, &bn8},
              {32 * 1024, &bn32},
              {0, &bnU}}) {
            BranchNetTrainingStats s;
            BranchNetTrainer trainer(budget);
            trainer.train(profile, store, &s);
            stat->add(s.trainSeconds);
        }
        {
            TrainingStats s;
            WhisperTrainer trainer(cfg.whisper, globalTruthTables());
            trainer.train(profile, &s);
            tw.add(s.trainSeconds);
        }
    }

    TableReporter table("Fig. 16: average training time in seconds "
                        "(3 apps, top-512 hard branches)");
    table.setHeader({"technique", "seconds"});
    table.addRow("4b-ROMBF", {t4.mean()}, 4);
    table.addRow("8b-ROMBF", {t8.mean()}, 4);
    table.addRow("8KB-BranchNet", {bn8.mean()}, 4);
    table.addRow("32KB-BranchNet", {bn32.mean()}, 4);
    table.addRow("Unlimited-BranchNet", {bnU.mean()}, 4);
    table.addRow("Whisper", {tw.mean()}, 4);
    table.print();

    std::printf("note: the paper's BranchNet trains multi-layer "
                "CNNs on GPUs (1000s of seconds); our reduced-scale "
                "CNN preserves the ordering, not the magnitude.\n");
    return 0;
}
