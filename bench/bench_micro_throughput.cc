/**
 * @file
 * Simulation-throughput microbench: branches/sec/core for every
 * predictor on the mysql trace, serial (three virtual calls per
 * record) versus batched (one predictMany call per 4096 records),
 * plus the hint-buffer hot path measured in isolation against the
 * pre-refactor pointer-chasing implementation.
 *
 * This bench measures the simulator, not the modeled hardware: it
 * exists so the data-layout work (flat SoA predictor tables, the
 * open-addressing hint buffer, the batched dispatch path) has a
 * pinned, machine-readable trajectory. Besides the human tables it
 * writes BENCH_micro_throughput.json; CI's perf-smoke job parses
 * that file and the repo commits a reference copy at the root.
 *
 * Every timed pair is also a correctness check: serial and batched
 * runs must report identical mispredict counts, and the legacy and
 * flat hint buffers must agree on every counter after replaying the
 * identical operation sequence.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common.hh"
#include "bp/perceptron.hh"
#include "core/hint_buffer.hh"
#include "core/legacy_hint_buffer.hh"
#include "trace/branch_trace.hh"
#include "util/logging.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

constexpr size_t kBatch = 4096;

struct Throughput
{
    double serialBps = 0;  //!< conditional branches/sec, serial
    double batchedBps = 0; //!< conditional branches/sec, batched
    uint64_t mispredicts = 0;
};

/** Time one predictor both ways; assert identical outcomes. */
Throughput
measurePredictor(const BranchTrace &trace,
                 const BranchPredictor &proto)
{
    Throughput out;

    // Serial: the pre-batching driver loop, three virtual calls per
    // record.
    {
        auto pred = proto.clone();
        uint64_t mispredicts = 0;
        auto start = Clock::now();
        for (const BranchRecord &rec : trace) {
            if (rec.isConditional()) {
                bool p = pred->predict(rec.pc, rec.taken);
                pred->update(rec.pc, rec.taken, p);
                mispredicts += p != rec.taken;
            }
            pred->onRecord(rec);
        }
        double secs = secondsSince(start);
        out.serialBps = trace.conditionals() / secs;
        out.mispredicts = mispredicts;
    }

    // Batched: one virtual call per kBatch records.
    {
        auto pred = proto.clone();
        std::vector<uint8_t> miss(kBatch);
        uint64_t mispredicts = 0;
        const BranchRecord *records = &trace[0];
        size_t count = trace.size();
        auto start = Clock::now();
        for (size_t i = 0; i < count; i += kBatch) {
            size_t n = std::min(kBatch, count - i);
            pred->predictMany(records + i, n, miss.data());
            for (size_t k = 0; k < n; ++k)
                mispredicts += miss[k];
        }
        double secs = secondsSince(start);
        out.batchedBps = trace.conditionals() / secs;
        whisper_assert(mispredicts == out.mispredicts,
                       "batched run diverged from serial run");
    }
    return out;
}

/**
 * The exact hint-buffer op sequence WhisperPredictor would issue
 * while replaying a trace: a lookup per conditional, inserts when a
 * record executes a predecessor block that carries brhints. Stored
 * run-structured — maximal runs of consecutive lookups separated by
 * insert bursts — which is also how the simulator sees the stream
 * (brhint triggers punctuate long stretches of plain conditionals).
 * The run structure is what lets the flat buffer amortize: each
 * lookup run becomes one lookupMany() call.
 */
struct BufScript
{
    struct Run
    {
        uint32_t lookups; //!< consumed from lookupPcs
        uint32_t inserts; //!< consumed from insertOps, after lookups
    };

    std::vector<Run> runs;
    std::vector<uint64_t> lookupPcs;
    std::vector<std::pair<uint64_t, BrHint>> insertOps;
    size_t maxRun = 0;
};

BufScript
hintBufferScript(const BranchTrace &trace, const WhisperBuild &build)
{
    std::unordered_map<uint64_t, BrHint> hints;
    for (const auto &h : build.hints)
        hints[h.pc] = h.hint;
    std::unordered_map<uint64_t, std::vector<uint64_t>> triggers;
    for (const auto &pl : build.placements)
        triggers[pl.predecessorPc].push_back(pl.branchPc);

    BufScript script;
    BufScript::Run cur{0, 0};
    for (const BranchRecord &rec : trace) {
        if (rec.isConditional()) {
            if (cur.inserts) { // insert burst ended: close the run
                script.runs.push_back(cur);
                cur = {0, 0};
            }
            script.lookupPcs.push_back(rec.pc);
            ++cur.lookups;
        }
        auto it = triggers.find(rec.pc);
        if (it == triggers.end())
            continue;
        for (uint64_t branchPc : it->second) {
            script.insertOps.emplace_back(branchPc,
                                          hints[branchPc]);
            ++cur.inserts;
        }
    }
    if (cur.lookups || cur.inserts)
        script.runs.push_back(cur);
    for (const auto &run : script.runs)
        script.maxRun = std::max<size_t>(script.maxRun, run.lookups);
    return script;
}

/** Replay the script per-op @p reps times; seconds elapsed. This is
 * the only way the pre-refactor buffer can be driven. */
template <typename Buffer>
double
replayScript(Buffer &buf, const BufScript &script, unsigned reps)
{
    auto start = Clock::now();
    for (unsigned r = 0; r < reps; ++r) {
        const uint64_t *pc = script.lookupPcs.data();
        const auto *ins = script.insertOps.data();
        for (const auto &run : script.runs) {
            for (uint32_t i = 0; i < run.lookups; ++i)
                buf.lookup(pc[i]);
            pc += run.lookups;
            for (uint32_t i = 0; i < run.inserts; ++i)
                buf.insert(ins[i].first, ins[i].second);
            ins += run.inserts;
        }
    }
    return secondsSince(start);
}

/** Replay the script with each lookup run batched through
 * lookupMany() — observably identical to replayScript() (the
 * differential assert below holds it to that). */
double
replayScriptBatched(HintBuffer &buf, const BufScript &script,
                    unsigned reps)
{
    std::vector<const BrHint *> out(script.maxRun);
    auto start = Clock::now();
    for (unsigned r = 0; r < reps; ++r) {
        const uint64_t *pc = script.lookupPcs.data();
        const auto *ins = script.insertOps.data();
        for (const auto &run : script.runs) {
            buf.lookupMany(pc, run.lookups, out.data());
            pc += run.lookups;
            for (uint32_t i = 0; i < run.inserts; ++i)
                buf.insert(ins[i].first, ins[i].second);
            ins += run.inserts;
        }
    }
    return secondsSince(start);
}

} // namespace

int
main()
{
    banner("micro_throughput: simulator branches/sec/core",
           "engineering trajectory (not a paper figure)");

    ExperimentConfig cfg = defaultConfig();
    const AppConfig &app = appByName("mysql");

    // Evaluation trace: the test input, as in the accuracy benches.
    AppWorkload workload(app, 1, cfg.testRecords);
    BranchTrace trace(app.name, 1);
    trace.fill(workload, cfg.testRecords);
    std::printf("trace: %s  records=%zu  conditionals=%llu\n\n",
                app.name.c_str(), trace.size(),
                static_cast<unsigned long long>(
                    trace.conditionals()));

    // Whisper needs trained hints for a realistic hint-buffer load.
    BranchProfile profile = profileApp(app, 0, cfg);
    WhisperBuild build = trainWhisper(app, 0, profile, cfg);

    struct Row
    {
        std::string name;
        Throughput t;
    };
    std::vector<Row> rows;

    auto runOne = [&](const std::string &label,
                      const BranchPredictor &proto) {
        rows.push_back({label, measurePredictor(trace, proto)});
    };

    runOne("tage64", *makeTage(cfg.tageBudgetKB));
    runOne("bimodal", BimodalPredictor());
    runOne("gshare", GsharePredictor());
    runOne("perceptron", PerceptronPredictor());
    runOne("whisper_tage64", *makeWhisperPredictor(cfg, build));

    TableReporter table("simulator throughput (mysql)");
    table.setHeader({"predictor", "serial Mbr/s", "batched Mbr/s",
                     "batch speedup"});
    for (const auto &r : rows)
        table.addRow(r.name,
                     {r.t.serialBps / 1e6, r.t.batchedBps / 1e6,
                      r.t.batchedBps / r.t.serialBps});
    table.print();

    // --- hint-buffer hot path, flat vs pre-refactor legacy ---
    BufScript script = hintBufferScript(trace, build);
    uint64_t lookups = script.lookupPcs.size();
    uint64_t inserts = script.insertOps.size();
    size_t totalOps = lookups + inserts;

    // Repeat the script so even heavily scaled-down CI runs time
    // tens of millions of ops.
    unsigned reps = 1;
    while (reps * totalOps < 8'000'000)
        ++reps;

    LegacyHintBuffer legacy(cfg.whisper.hintBufferEntries);
    HintBuffer flatSerial(cfg.whisper.hintBufferEntries);
    HintBuffer flat(cfg.whisper.hintBufferEntries);
    double legacySecs = replayScript(legacy, script, reps);
    double flatSerialSecs = replayScript(flatSerial, script, reps);
    double flatSecs = replayScriptBatched(flat, script, reps);

    // The timed replays double as a differential test: all three
    // must land in the identical observable state.
    auto sameState = [&](const auto &buf) {
        return buf.hits() == legacy.hits() &&
               buf.misses() == legacy.misses() &&
               buf.insertions() == legacy.insertions() &&
               buf.refreshes() == legacy.refreshes() &&
               buf.evictions() == legacy.evictions() &&
               buf.lruOrder() == legacy.lruOrder();
    };
    whisper_assert(sameState(flatSerial) && sameState(flat),
                   "flat and legacy hint buffers diverged");

    // branches/sec through the buffer: one lookup per conditional.
    double legacyBps = lookups * reps / legacySecs;
    double flatSerialBps = lookups * reps / flatSerialSecs;
    double flatBps = lookups * reps / flatSecs;

    TableReporter buftab("hint-buffer path (per core)");
    buftab.setHeader(
        {"impl", "Mbranches/s", "vs pre-refactor"});
    buftab.addRow("legacy", {legacyBps / 1e6, 1.0});
    buftab.addRow("flat per-op",
                  {flatSerialBps / 1e6, flatSerialBps / legacyBps});
    buftab.addRow("flat batched",
                  {flatBps / 1e6, flatBps / legacyBps});
    buftab.print();
    std::printf("script: %zu ops (%llu lookups + %llu inserts) in"
                " %zu runs x %u reps, %u entries\n",
                totalOps,
                static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(inserts),
                script.runs.size(), reps,
                cfg.whisper.hintBufferEntries);
    std::printf("buffer service: hits=%llu misses=%llu"
                " insertions=%llu refreshes=%llu evictions=%llu\n",
                static_cast<unsigned long long>(flat.hits()),
                static_cast<unsigned long long>(flat.misses()),
                static_cast<unsigned long long>(flat.insertions()),
                static_cast<unsigned long long>(flat.refreshes()),
                static_cast<unsigned long long>(flat.evictions()));

    const char *jsonPath = "BENCH_micro_throughput.json";
    if (FILE *f = std::fopen(jsonPath, "w")) {
        std::fprintf(f, "{\n  \"bench\": \"micro_throughput\",\n");
        std::fprintf(f, "  \"scale\": %.3f,\n", scaleFactor());
        std::fprintf(f, "  \"trace\": \"%s\",\n", app.name.c_str());
        std::fprintf(f, "  \"records\": %zu,\n", trace.size());
        std::fprintf(f, "  \"conditionals\": %llu,\n",
                     static_cast<unsigned long long>(
                         trace.conditionals()));
        std::fprintf(f, "  \"predictors\": {\n");
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(
                f,
                "    \"%s\": {\n"
                "      \"serial_branches_per_sec\": %.0f,\n"
                "      \"batched_branches_per_sec\": %.0f,\n"
                "      \"batch_speedup\": %.3f,\n"
                "      \"mispredicts\": %llu\n"
                "    }%s\n",
                r.name.c_str(), r.t.serialBps, r.t.batchedBps,
                r.t.batchedBps / r.t.serialBps,
                static_cast<unsigned long long>(r.t.mispredicts),
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  },\n");
        std::fprintf(
            f,
            "  \"hint_buffer\": {\n"
            "    \"entries\": %u,\n"
            "    \"script_ops\": %zu,\n"
            "    \"lookups\": %llu,\n"
            "    \"inserts\": %llu,\n"
            "    \"reps\": %u,\n"
            "    \"legacy_branches_per_sec\": %.0f,\n"
            "    \"flat_serial_branches_per_sec\": %.0f,\n"
            "    \"flat_branches_per_sec\": %.0f,\n"
            "    \"flat_serial_speedup\": %.3f,\n"
            "    \"speedup\": %.3f\n"
            "  }\n}\n",
            cfg.whisper.hintBufferEntries, totalOps,
            static_cast<unsigned long long>(lookups),
            static_cast<unsigned long long>(inserts), reps,
            legacyBps, flatSerialBps, flatBps,
            flatSerialBps / legacyBps, flatBps / legacyBps);
        std::fclose(f);
        std::printf("\nwrote %s\n", jsonPath);
    } else {
        std::fprintf(stderr, "warning: cannot write %s\n", jsonPath);
    }
    return 0;
}
