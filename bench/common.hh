/**
 * @file
 * Shared plumbing for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper
 * and prints it through TableReporter so the output can be diffed
 * against EXPERIMENTS.md. Trace lengths scale with the
 * WHISPER_BENCH_SCALE environment variable (default 1.0) so a quick
 * smoke run (e.g. 0.2) and a high-fidelity run (e.g. 4.0) use the
 * same binaries.
 */

#ifndef WHISPER_BENCH_COMMON_HH
#define WHISPER_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bp/simple_predictors.hh"
#include "sim/experiment.hh"
#include "sim/sharded_runner.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/app_workload.hh"

namespace whisper::bench
{

/** Trace-length scale factor from the environment. */
inline double
scaleFactor()
{
    const char *env = std::getenv("WHISPER_BENCH_SCALE");
    if (!env)
        return 1.0;
    double v = std::strtod(env, nullptr);
    return v > 0.0 ? v : 1.0;
}

/** Experiment defaults shared by the benches. */
inline ExperimentConfig
defaultConfig(double extraScale = 1.0)
{
    ExperimentConfig cfg;
    double s = scaleFactor() * extraScale;
    cfg.trainRecords =
        static_cast<uint64_t>(cfg.trainRecords * s);
    cfg.testRecords = static_cast<uint64_t>(cfg.testRecords * s);
    return cfg;
}

/** Worker threads for shard-parallel evaluation runs, from the
 * WHISPER_BENCH_JOBS environment variable (default: all cores). */
inline unsigned
benchJobs()
{
    const char *env = std::getenv("WHISPER_BENCH_JOBS");
    if (!env)
        return 0; // resolved to hardware_concurrency by the runner
    long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<unsigned>(v) : 0;
}

/** Sharded-run configuration for bench evaluation sweeps: exact
 * full-prefix warm-up, so tables are bit-identical to the serial
 * engine's, parallel when cores are available. */
inline ShardedRunConfig
benchShardConfig(uint64_t windowRecords)
{
    ShardedRunConfig cfg;
    cfg.jobs = benchJobs();
    cfg.windowRecords = windowRecords;
    cfg.warmupRecords = ShardedRunConfig::kFullPrefix;
    return cfg;
}

/** Announce a bench with its paper reference. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("### %s\n### reproduces: %s\n", what.c_str(),
                paperRef.c_str());
    std::printf("### trace scale: %.2fx\n\n", scaleFactor());
}

/** Append an arithmetic-mean row across the numeric columns. */
inline void
addAverageRow(TableReporter &table,
              const std::vector<std::vector<double>> &rows,
              int precision = 2)
{
    if (rows.empty())
        return;
    std::vector<double> avg(rows[0].size(), 0.0);
    for (const auto &r : rows)
        for (size_t c = 0; c < r.size(); ++c)
            avg[c] += r[c];
    for (auto &v : avg)
        v /= rows.size();
    table.addRow("Avg", avg, precision);
}

} // namespace whisper::bench

#endif // WHISPER_BENCH_COMMON_HH
