/**
 * @file
 * Sensitivity ablations for the Table III design parameters. The
 * paper reports that these values were fixed "empirically via
 * sensitivity studies" without showing the sweeps ("for brevity");
 * this bench regenerates them:
 *
 *   (a) hashed-history width (paper picks 8 bits),
 *   (b) hint-buffer capacity (paper picks 32 entries),
 *   (c) brhint placement look-behind window,
 *   (d) number of candidate history lengths m (paper picks 16).
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{

const std::vector<AppConfig> &
ablationApps()
{
    static const std::vector<AppConfig> apps = {
        appByName("mysql"), appByName("cassandra"),
        appByName("python")};
    return apps;
}

double
averageReduction(const ExperimentConfig &cfg)
{
    RunningStat reduction;
    for (const auto &app : ablationApps()) {
        BranchProfile profile = profileApp(app, 0, cfg);
        WhisperBuild build = trainWhisper(app, 0, profile, cfg);
        auto baseline = makeTage(cfg.tageBudgetKB);
        auto s0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);
        auto wp = makeWhisperPredictor(cfg, build);
        auto s1 = evalApp(app, 1, cfg, *wp, cfg.evalWarmup);
        reduction.add(reductionPercent(s0, s1));
    }
    return reduction.mean();
}

} // namespace

int
main()
{
    banner("Design-parameter ablations (Table III)",
           "Table III sensitivity studies (paper: 8-bit hash, "
           "32-entry buffer, m=16)");

    ExperimentConfig base = defaultConfig(0.6);

    {
        TableReporter t("(a) hashed-history width");
        t.setHeader({"hash-bits", "avg-reduction-%"});
        for (unsigned bits : {4u, 6u, 8u}) {
            ExperimentConfig cfg = base;
            cfg.whisper.hashWidth = bits;
            t.addRow(std::to_string(bits), {averageReduction(cfg)});
        }
        t.print();
    }
    {
        TableReporter t("(b) hint-buffer capacity");
        t.setHeader({"entries", "avg-reduction-%"});
        for (unsigned entries : {4u, 8u, 16u, 32u, 64u, 128u}) {
            ExperimentConfig cfg = base;
            cfg.whisper.hintBufferEntries = entries;
            t.addRow(std::to_string(entries),
                     {averageReduction(cfg)});
        }
        t.print();
    }
    {
        TableReporter t("(c) brhint placement window");
        t.setHeader({"window", "avg-reduction-%"});
        for (unsigned window : {4u, 8u, 16u, 32u}) {
            ExperimentConfig cfg = base;
            cfg.injector.window = window;
            t.addRow(std::to_string(window),
                     {averageReduction(cfg)});
        }
        t.print();
    }
    {
        TableReporter t("(d) candidate history lengths (m)");
        t.setHeader({"m", "avg-reduction-%"});
        for (unsigned m : {4u, 8u, 16u}) {
            ExperimentConfig cfg = base;
            cfg.whisper.numHistoryLengths = m;
            t.addRow(std::to_string(m), {averageReduction(cfg)});
        }
        t.print();
    }
    return 0;
}
