/**
 * @file
 * Fig. 19: static and dynamic instruction overhead of the injected
 * brhint instructions.
 *
 * Paper result: 11.4% static footprint increase (9.8-13%), 9.8%
 * extra dynamic instructions (5.3-14.7%).
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 19: brhint instruction overhead",
           "Fig. 19 (static 11.4% avg, dynamic 9.8% avg)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table("Fig. 19: instruction increase (%)");
    table.setHeader({"application", "static", "dynamic", "hints"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        BranchProfile profile = profileApp(app, 0, cfg);
        WhisperBuild build = trainWhisper(app, 0, profile, cfg);
        rows.push_back(
            {build.overhead.staticIncreasePct,
             build.overhead.dynamicIncreasePct,
             static_cast<double>(build.overhead.staticHints)});
        table.addRow(app.name, rows.back());
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
