/**
 * @file
 * Continuous-PGO replay: whisperd's train/validate/deploy loop
 * running alongside an adaptive fleet simulation while the workload
 * drifts from kafka input #0 to input #1 mid-stream.
 *
 * Extends the paper's input-sensitivity result (Fig. 17): a static
 * bundle trained on input #0 degrades after the drift, while the
 * service retrains on recent chunks and redeploys through the
 * versioned hint store, so the fleet predictor follows the workload.
 */

#include <memory>

#include "common.hh"
#include "service/chunk_profiler.hh"
#include "service/hint_store.hh"
#include "service/training_pool.hh"
#include "sim/runner.hh"
#include "sim/sharded_runner.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{

std::vector<BranchRecord>
driftStream(const AppConfig &app, uint64_t perInput)
{
    std::vector<BranchRecord> records;
    records.reserve(2 * perInput);
    for (uint32_t input : {0u, 1u}) {
        AppWorkload workload(app, input, perInput);
        BranchRecord rec;
        while (workload.next(rec))
            records.push_back(rec);
    }
    return records;
}

} // namespace

int
main()
{
    banner("whisperd adaptive replay under input drift",
           "SV-A / Fig. 17 (input drift) + continuous deployment");

    ExperimentConfig cfg = defaultConfig(0.4);
    const AppConfig &app = appByName("kafka");
    const uint64_t perInput = cfg.trainRecords;
    const uint64_t window = perInput / 4; // 8 epochs total
    const unsigned trainEveryEpochs = 2;

    std::vector<BranchRecord> stream = driftStream(app, perInput);

    // Static reference: one-shot bundle from the pre-drift input.
    BranchProfile staticProfile = profileApp(app, 0, cfg);
    WhisperBuild staticBuild =
        trainWhisper(app, 0, staticProfile, cfg);

    // Online: service components wired around the adaptive runner.
    // Each epoch boundary hands the finished window to the profiler;
    // every trainEveryEpochs windows a candidate is trained on the
    // accumulated profile, validated on the newest window, and
    // proposed to the store the fleet predictor consults.
    ChunkProfiler::Options profOpt;
    profOpt.maxHardBranches = cfg.profile.maxHardBranches;
    profOpt.statsWarmupRecords = window / 2; // per shard
    ShardedProfiler shards(
        cfg.whisper, 2, [&] { return makeTage(cfg.tageBudgetKB); },
        profOpt);
    TrainingPool pool(4);
    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    HintInjector injector(cfg.injector);
    HintStore store;
    HintStoreConsultant consultant(
        store, cfg.whisper, globalTruthTables(),
        [&] { return makeTage(cfg.tageBudgetKB); });

    auto evalWindow = [&](const std::vector<BranchRecord> &records,
                          const HintBundle *bundle) {
        ChunkSource src(records);
        std::unique_ptr<BranchPredictor> pred;
        if (bundle) {
            pred = std::make_unique<WhisperPredictor>(
                makeTage(cfg.tageBudgetKB), cfg.whisper,
                globalTruthTables(), bundle->hints,
                bundle->placements);
        } else {
            pred = makeTage(cfg.tageBudgetKB);
        }
        return runPredictor(src, *pred);
    };

    uint64_t absorbed = 0;
    auto onEpoch = [&](uint64_t nextEpoch) -> BranchPredictor * {
        size_t from = (nextEpoch - 1) * window;
        size_t to = std::min<size_t>(stream.size(), from + window);
        std::vector<BranchRecord> finished(stream.begin() + from,
                                           stream.begin() + to);

        if (nextEpoch % trainEveryEpochs == 0) {
            shards.drain();
            BranchProfile profile = shards.aggregate();
            if (profile.numBranches() > 0) {
                HintBundle candidate;
                candidate.hints = pool.train(trainer, profile);
                ChunkSource placeSrc(finished);
                candidate.placements =
                    injector.place(placeSrc, candidate.hints);

                HintStore::Snapshot incumbent = store.current();
                auto incStats = evalWindow(
                    finished,
                    incumbent ? &incumbent->bundle : nullptr);
                auto candStats = evalWindow(finished, &candidate);
                store.propose(std::move(candidate),
                              candStats.accuracy(),
                              incStats.accuracy());
            }
        }

        TraceChunk chunk;
        chunk.sequence = absorbed++;
        chunk.records = std::move(finished);
        shards.submit(std::move(chunk));
        return consultant.refresh(nextEpoch);
    };

    // Start the fleet on the consultant-managed predictor (no hints
    // deployed yet, so it behaves as plain TAGE); every later
    // deployment swaps hints in place with the tables kept warm.
    ChunkSource onlineSource(stream);
    AdaptiveRunStats online = runPredictorAdaptive(
        onlineSource, consultant.predictor(), window, onEpoch);

    // References over the same stream, cut at the same windows,
    // evaluated on the shard-parallel engine. Full-prefix warm-up
    // keeps the numbers bit-identical to the serial adaptive runner
    // (no predictor swaps happen in these runs) while the epochs
    // spread across WHISPER_BENCH_JOBS worker threads.
    ShardedRunConfig shardCfg = benchShardConfig(window);
    std::unique_ptr<BranchPredictor> tage =
        makeTage(cfg.tageBudgetKB);
    AdaptiveShardedRunStats tageSharded =
        runPredictorAdaptiveSharded(stream, *tage, window, nullptr,
                                    shardCfg);
    const AdaptiveRunStats &tageRun = tageSharded.stats;

    auto staticPred = makeWhisperPredictor(cfg, staticBuild);
    AdaptiveShardedRunStats staticSharded =
        runPredictorAdaptiveSharded(stream, *staticPred, window,
                                    nullptr, shardCfg);
    const AdaptiveRunStats &staticRun = staticSharded.stats;

    TableReporter table("per-epoch MPKI over the drift stream "
                        "(inputs #0 -> #1 at the midpoint)");
    table.setHeader({"epoch", "tage", "static-whisper",
                     "online-whisperd"});
    for (size_t e = 0; e < online.perEpoch.size(); ++e) {
        table.addRow("epoch " + std::to_string(e),
                     {tageRun.perEpoch[e].mpki(),
                      staticRun.perEpoch[e].mpki(),
                      online.perEpoch[e].mpki()},
                     3);
    }
    table.addRow("total", {tageRun.total.mpki(),
                           staticRun.total.mpki(),
                           online.total.mpki()},
                 3);
    table.print();

    std::printf("\ndeployments: accepted=%llu rejected=%llu "
                "swaps=%llu final-epoch=%llu\n",
                static_cast<unsigned long long>(store.accepted()),
                static_cast<unsigned long long>(store.rejected()),
                static_cast<unsigned long long>(
                    online.predictorSwaps),
                static_cast<unsigned long long>(store.epoch()));
    std::printf("accuracy: tage %.4f%%, static-whisper %.4f%%, "
                "online-whisperd %.4f%%\n",
                100.0 * tageRun.total.accuracy(),
                100.0 * staticRun.total.accuracy(),
                100.0 * online.total.accuracy());

    auto timingLine = [](const char *label,
                         const ShardedRunTiming &t) {
        double busy = 0.0;
        for (const auto &s : t.perShard)
            busy += s.warmSeconds + s.evalSeconds;
        std::printf("%s: jobs=%u shards=%zu wall-seconds=%.3f "
                    "cpu-seconds=%.3f\n",
                    label, t.jobs, t.perShard.size(),
                    t.wallSeconds, busy);
    };
    std::printf("\nreference-run shard timing (full-prefix warm):\n");
    timingLine("  tage", tageSharded.timing);
    timingLine("  static-whisper", staticSharded.timing);
    return 0;
}
