/**
 * @file
 * Continuous-PGO replay: whisperd's train/validate/deploy loop
 * running alongside an adaptive fleet simulation while the workload
 * drifts from kafka input #0 to input #1 mid-stream, followed by a
 * mixed-fleet scenario where every data center app of Table I
 * streams into one multi-tenant service at a different rate (kafka
 * as a 10x noisy neighbor) under fair-share scheduling.
 *
 * Extends the paper's input-sensitivity result (Fig. 17): a static
 * bundle trained on input #0 degrades after the drift, while the
 * service retrains on recent chunks and redeploys through the
 * versioned hint store, so the fleet predictor follows the workload.
 *
 * Besides the usual tables, the run emits BENCH_whisperd.json with
 * the headline numbers (service throughput in chunks/sec, epochs,
 * per-app mispredict rates) for machine consumption.
 */

#include <chrono>
#include <map>
#include <memory>

#include "common.hh"
#include "service/chunk_profiler.hh"
#include "service/hint_store.hh"
#include "service/tenant_router.hh"
#include "service/training_pool.hh"
#include "sim/runner.hh"
#include "sim/sharded_runner.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{

std::vector<BranchRecord>
driftStream(const AppConfig &app, uint64_t perInput)
{
    std::vector<BranchRecord> records;
    records.reserve(2 * perInput);
    for (uint32_t input : {0u, 1u}) {
        AppWorkload workload(app, input, perInput);
        BranchRecord rec;
        while (workload.next(rec))
            records.push_back(rec);
    }
    return records;
}

/** One tenant's outcome in the mixed-fleet scenario. */
struct FleetAppResult
{
    uint64_t chunks = 0;
    uint64_t epochs = 0;
    uint64_t accepted = 0;
    uint64_t deployedEpoch = 0;
    double mispredictRate = 0.0; //!< 1 - last validation accuracy
};

struct FleetRunResult
{
    uint64_t chunks = 0;
    uint64_t records = 0;
    uint64_t epochs = 0;
    double wallSeconds = 0.0;
    std::map<std::string, FleetAppResult> apps;
};

/**
 * Mixed fleet: every data center app streams into one TenantRouter
 * at its own rate — @p noisy gets 10x the chunks of everyone else —
 * and the deficit-round-robin scheduler shares the training pool.
 */
FleetRunResult
runMixedFleet(const ExperimentConfig &cfg, const std::string &noisy,
              uint64_t chunkRecords, unsigned quietChunks)
{
    TenantRouterConfig tcfg;
    tcfg.chunkRecords = chunkRecords;
    tcfg.epochChunks = 2;
    tcfg.trainWorkers = 2;
    tcfg.tageBudgetKB = cfg.tageBudgetKB;
    tcfg.profilePolicy.maxHardBranches = cfg.profile.maxHardBranches;
    tcfg.whisper = cfg.whisper;
    tcfg.injector = cfg.injector;
    tcfg.verbose = false;
    tcfg.defaultQuota.maxQueuedChunks = 64;
    tcfg.defaultQuota.maxPendingTrainJobs = 64;

    // Per-app chunk sequences, noisy neighbor at 10x.
    std::map<std::string, std::vector<TraceChunk>> streams;
    for (const AppConfig &app : dataCenterApps()) {
        unsigned n =
            app.name == noisy ? 10 * quietChunks : quietChunks;
        AppWorkload workload(app, 0, chunkRecords * n);
        std::vector<TraceChunk> chunks(n);
        BranchRecord rec;
        for (unsigned i = 0; i < n; ++i) {
            chunks[i].app = app.name;
            chunks[i].sequence = i;
            chunks[i].records.reserve(chunkRecords);
            while (chunks[i].records.size() < chunkRecords &&
                   workload.next(rec))
                chunks[i].records.push_back(rec);
        }
        streams[app.name] = std::move(chunks);
    }

    TenantRouter router(tcfg, globalTruthTables());
    for (const auto &[app, chunks] : streams)
        router.addTenant(app);

    auto start = std::chrono::steady_clock::now();
    router.start();
    size_t maxLen = 0;
    for (const auto &[app, chunks] : streams)
        maxLen = std::max(maxLen, chunks.size());
    for (size_t i = 0; i < maxLen; ++i) {
        for (auto &[app, chunks] : streams) {
            if (i < chunks.size())
                router.offer(std::move(chunks[i]));
        }
    }
    router.finish();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    FleetRunResult result;
    result.wallSeconds = wall;
    ServiceMetrics metrics = router.metrics();
    for (const auto &[app, tm] : metrics.tenants) {
        FleetAppResult r;
        r.chunks = tm.chunksRouted;
        r.epochs = tm.epochsRun;
        r.accepted = tm.bundlesAccepted;
        r.deployedEpoch = tm.deployedEpoch;
        r.mispredictRate = 1.0 - tm.lastValidationAccuracy;
        result.chunks += tm.chunksRouted;
        result.records += tm.recordsRouted;
        result.epochs += tm.epochsRun;
        result.apps[app] = r;
    }
    return result;
}

} // namespace

int
main()
{
    banner("whisperd adaptive replay under input drift",
           "SV-A / Fig. 17 (input drift) + continuous deployment");

    ExperimentConfig cfg = defaultConfig(0.4);
    const AppConfig &app = appByName("kafka");
    const uint64_t perInput = cfg.trainRecords;
    const uint64_t window = perInput / 4; // 8 epochs total
    const unsigned trainEveryEpochs = 2;

    std::vector<BranchRecord> stream = driftStream(app, perInput);

    // Static reference: one-shot bundle from the pre-drift input.
    BranchProfile staticProfile = profileApp(app, 0, cfg);
    WhisperBuild staticBuild =
        trainWhisper(app, 0, staticProfile, cfg);

    // Online: service components wired around the adaptive runner.
    // Each epoch boundary hands the finished window to the profiler;
    // every trainEveryEpochs windows a candidate is trained on the
    // accumulated profile, validated on the newest window, and
    // proposed to the store the fleet predictor consults.
    ChunkProfiler::Options profOpt;
    profOpt.maxHardBranches = cfg.profile.maxHardBranches;
    profOpt.statsWarmupRecords = window / 2; // per shard
    ShardedProfiler shards(
        cfg.whisper, 2, [&] { return makeTage(cfg.tageBudgetKB); },
        profOpt);
    TrainingPool pool(4);
    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    HintInjector injector(cfg.injector);
    HintStore store;
    HintStoreConsultant consultant(
        store, cfg.whisper, globalTruthTables(),
        [&] { return makeTage(cfg.tageBudgetKB); });

    auto evalWindow = [&](const std::vector<BranchRecord> &records,
                          const HintBundle *bundle) {
        ChunkSource src(records);
        std::unique_ptr<BranchPredictor> pred;
        if (bundle) {
            pred = std::make_unique<WhisperPredictor>(
                makeTage(cfg.tageBudgetKB), cfg.whisper,
                globalTruthTables(), bundle->hints,
                bundle->placements);
        } else {
            pred = makeTage(cfg.tageBudgetKB);
        }
        return runPredictor(src, *pred);
    };

    uint64_t absorbed = 0;
    auto onEpoch = [&](uint64_t nextEpoch) -> BranchPredictor * {
        size_t from = (nextEpoch - 1) * window;
        size_t to = std::min<size_t>(stream.size(), from + window);
        std::vector<BranchRecord> finished(stream.begin() + from,
                                           stream.begin() + to);

        if (nextEpoch % trainEveryEpochs == 0) {
            shards.drain();
            BranchProfile profile = shards.aggregate();
            if (profile.numBranches() > 0) {
                HintBundle candidate;
                candidate.hints = pool.train(trainer, profile);
                ChunkSource placeSrc(finished);
                candidate.placements =
                    injector.place(placeSrc, candidate.hints);

                HintStore::Snapshot incumbent = store.current();
                auto incStats = evalWindow(
                    finished,
                    incumbent ? &incumbent->bundle : nullptr);
                auto candStats = evalWindow(finished, &candidate);
                store.propose(std::move(candidate),
                              candStats.accuracy(),
                              incStats.accuracy());
            }
        }

        TraceChunk chunk;
        chunk.sequence = absorbed++;
        chunk.records = std::move(finished);
        shards.submit(std::move(chunk));
        return consultant.refresh(nextEpoch);
    };

    // Start the fleet on the consultant-managed predictor (no hints
    // deployed yet, so it behaves as plain TAGE); every later
    // deployment swaps hints in place with the tables kept warm.
    ChunkSource onlineSource(stream);
    AdaptiveRunStats online = runPredictorAdaptive(
        onlineSource, consultant.predictor(), window, onEpoch);

    // References over the same stream, cut at the same windows,
    // evaluated on the shard-parallel engine. Full-prefix warm-up
    // keeps the numbers bit-identical to the serial adaptive runner
    // (no predictor swaps happen in these runs) while the epochs
    // spread across WHISPER_BENCH_JOBS worker threads.
    ShardedRunConfig shardCfg = benchShardConfig(window);
    std::unique_ptr<BranchPredictor> tage =
        makeTage(cfg.tageBudgetKB);
    AdaptiveShardedRunStats tageSharded =
        runPredictorAdaptiveSharded(stream, *tage, window, nullptr,
                                    shardCfg);
    const AdaptiveRunStats &tageRun = tageSharded.stats;

    auto staticPred = makeWhisperPredictor(cfg, staticBuild);
    AdaptiveShardedRunStats staticSharded =
        runPredictorAdaptiveSharded(stream, *staticPred, window,
                                    nullptr, shardCfg);
    const AdaptiveRunStats &staticRun = staticSharded.stats;

    TableReporter table("per-epoch MPKI over the drift stream "
                        "(inputs #0 -> #1 at the midpoint)");
    table.setHeader({"epoch", "tage", "static-whisper",
                     "online-whisperd"});
    for (size_t e = 0; e < online.perEpoch.size(); ++e) {
        table.addRow("epoch " + std::to_string(e),
                     {tageRun.perEpoch[e].mpki(),
                      staticRun.perEpoch[e].mpki(),
                      online.perEpoch[e].mpki()},
                     3);
    }
    table.addRow("total", {tageRun.total.mpki(),
                           staticRun.total.mpki(),
                           online.total.mpki()},
                 3);
    table.print();

    std::printf("\ndeployments: accepted=%llu rejected=%llu "
                "swaps=%llu final-epoch=%llu\n",
                static_cast<unsigned long long>(store.accepted()),
                static_cast<unsigned long long>(store.rejected()),
                static_cast<unsigned long long>(
                    online.predictorSwaps),
                static_cast<unsigned long long>(store.epoch()));
    std::printf("accuracy: tage %.4f%%, static-whisper %.4f%%, "
                "online-whisperd %.4f%%\n",
                100.0 * tageRun.total.accuracy(),
                100.0 * staticRun.total.accuracy(),
                100.0 * online.total.accuracy());

    auto timingLine = [](const char *label,
                         const ShardedRunTiming &t) {
        double busy = 0.0;
        for (const auto &s : t.perShard)
            busy += s.warmSeconds + s.evalSeconds;
        std::printf("%s: jobs=%u shards=%zu wall-seconds=%.3f "
                    "cpu-seconds=%.3f\n",
                    label, t.jobs, t.perShard.size(),
                    t.wallSeconds, busy);
    };
    std::printf("\nreference-run shard timing (full-prefix warm):\n");
    timingLine("  tage", tageSharded.timing);
    timingLine("  static-whisper", staticSharded.timing);

    // ---- mixed-fleet scenario: 12 tenants, one 10x noisy ----
    const std::string noisy = "kafka";
    const uint64_t fleetChunk = std::max<uint64_t>(
        5'000, static_cast<uint64_t>(15'000 * scaleFactor()));
    FleetRunResult fleet =
        runMixedFleet(cfg, noisy, fleetChunk, 4);

    TableReporter fleetTable(
        "mixed fleet: 12 tenants, fair-share training (" + noisy +
        " at 10x rate)");
    fleetTable.setHeader({"app", "chunks", "epochs", "accepted",
                          "deploy-epoch", "val-mispredict%"});
    for (const auto &[app, r] : fleet.apps) {
        fleetTable.addRow(
            {app, std::to_string(r.chunks),
             std::to_string(r.epochs), std::to_string(r.accepted),
             std::to_string(r.deployedEpoch),
             TableReporter::formatDouble(100.0 * r.mispredictRate,
                                         3)});
    }
    fleetTable.print();

    double chunksPerSec =
        fleet.wallSeconds > 0.0 ? fleet.chunks / fleet.wallSeconds
                                : 0.0;
    std::printf("fleet: chunks=%llu records=%llu epochs=%llu "
                "wall-seconds=%.3f chunks/sec=%.1f\n",
                static_cast<unsigned long long>(fleet.chunks),
                static_cast<unsigned long long>(fleet.records),
                static_cast<unsigned long long>(fleet.epochs),
                fleet.wallSeconds, chunksPerSec);

    // ---- machine-readable summary ----
    const char *jsonPath = "BENCH_whisperd.json";
    if (std::FILE *f = std::fopen(jsonPath, "w")) {
        std::fprintf(f, "{\n  \"bench\": \"whisperd\",\n");
        std::fprintf(f, "  \"scale\": %.3f,\n", scaleFactor());
        std::fprintf(
            f,
            "  \"drift\": {\n"
            "    \"epochs\": %zu,\n"
            "    \"accepted\": %llu,\n"
            "    \"rejected\": %llu,\n"
            "    \"predictor_swaps\": %llu,\n"
            "    \"tage_mpki\": %.6f,\n"
            "    \"static_whisper_mpki\": %.6f,\n"
            "    \"online_whisperd_mpki\": %.6f\n"
            "  },\n",
            online.perEpoch.size(),
            static_cast<unsigned long long>(store.accepted()),
            static_cast<unsigned long long>(store.rejected()),
            static_cast<unsigned long long>(online.predictorSwaps),
            tageRun.total.mpki(), staticRun.total.mpki(),
            online.total.mpki());
        std::fprintf(f,
                     "  \"fleet\": {\n"
                     "    \"tenants\": %zu,\n"
                     "    \"noisy_tenant\": \"%s\",\n"
                     "    \"chunks\": %llu,\n"
                     "    \"records\": %llu,\n"
                     "    \"epochs\": %llu,\n"
                     "    \"wall_seconds\": %.3f,\n"
                     "    \"chunks_per_sec\": %.2f,\n"
                     "    \"apps\": {\n",
                     fleet.apps.size(), noisy.c_str(),
                     static_cast<unsigned long long>(fleet.chunks),
                     static_cast<unsigned long long>(fleet.records),
                     static_cast<unsigned long long>(fleet.epochs),
                     fleet.wallSeconds, chunksPerSec);
        size_t i = 0;
        for (const auto &[app, r] : fleet.apps) {
            std::fprintf(
                f,
                "      \"%s\": {\"chunks\": %llu, \"epochs\": "
                "%llu, \"accepted\": %llu, \"deployed_epoch\": "
                "%llu, \"mispredict_rate\": %.6f}%s\n",
                app.c_str(),
                static_cast<unsigned long long>(r.chunks),
                static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.accepted),
                static_cast<unsigned long long>(r.deployedEpoch),
                r.mispredictRate,
                ++i < fleet.apps.size() ? "," : "");
        }
        std::fprintf(f, "    }\n  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", jsonPath);
    } else {
        std::fprintf(stderr, "warning: cannot write %s\n", jsonPath);
    }
    return 0;
}
