/**
 * @file
 * Fig. 22: sensitivity to the baseline predictor's warm-up: the
 * fraction of instructions treated as warm-up (trained through,
 * excluded from statistics) sweeps from 0% to 90%.
 *
 * Paper result: 17.5% reduction without warm-up, 16.8% at 50%,
 * mildly decreasing as TAGE-SC-L itself warms.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 22: warm-up sensitivity",
           "Fig. 22 (17.5% at 0% warm-up, 16.8% at 50%)");

    ExperimentConfig cfg = defaultConfig(0.7);
    const std::vector<AppConfig> apps = {
        appByName("mysql"),    appByName("cassandra"),
        appByName("mediawiki"), appByName("finagle-http"),
        appByName("python"),   appByName("tomcat")};

    // Train one Whisper build per app, reuse it across the sweep.
    struct Prepared
    {
        const AppConfig *app;
        WhisperBuild build;
    };
    std::vector<Prepared> prepared;
    for (const auto &app : apps) {
        BranchProfile profile = profileApp(app, 0, cfg);
        prepared.push_back(
            {&app, trainWhisper(app, 0, profile, cfg)});
    }

    TableReporter table("Fig. 22: average misprediction reduction "
                        "(%) vs warm-up fraction (6 apps)");
    table.setHeader({"warmup-%", "reduction-%"});

    for (int warm = 0; warm <= 90; warm += 10) {
        double fraction = warm / 100.0;
        RunningStat reduction;
        for (const auto &p : prepared) {
            auto baseline = makeTage(cfg.tageBudgetKB);
            auto s0 = evalApp(*p.app, 1, cfg, *baseline, fraction);
            auto wp = makeWhisperPredictor(cfg, p.build);
            auto s1 = evalApp(*p.app, 1, cfg, *wp, fraction);
            reduction.add(reductionPercent(s0, s1));
        }
        table.addRow(std::to_string(warm), {reduction.mean()});
    }
    table.print();
    return 0;
}
