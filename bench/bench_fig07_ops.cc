/**
 * @file
 * Fig. 7: distribution of branch executions over the logical
 * operation family of the Boolean formula that best predicts each
 * branch (always/never-taken for strongly biased branches).
 *
 * Paper result: And 28.9%, always-taken 23.3%, converse
 * non-implication 9.2%, implication 8.8%, never-taken 5.9%,
 * Or 5.3% — together over 80% of executions.
 */

#include "common.hh"

#include "sim/analysis.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 7: formula-operation distribution",
           "Fig. 7 (And/bias/Impl/Cnimpl cover > 80% of "
           "executions)");

    ExperimentConfig cfg = defaultConfig();
    const OpClass order[] = {
        OpClass::And,    OpClass::AlwaysTaken, OpClass::Cnimpl,
        OpClass::Impl,   OpClass::NeverTaken,  OpClass::Or,
        OpClass::Others,
    };

    TableReporter table("Fig. 7: % of branch executions per "
                        "formula-operation family");
    std::vector<std::string> header = {"application"};
    for (OpClass c : order)
        header.push_back(opClassName(c));
    table.setHeader(header);
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        BranchProfile profile = profileApp(app, 0, cfg);
        WhisperBuild build = trainWhisper(app, 0, profile, cfg);
        auto dist = opClassDistribution(profile, build.hints);
        std::vector<double> row;
        for (OpClass c : order)
            row.push_back(100.0 * dist.fraction(c));
        rows.push_back(row);
        table.addRow(app.name, row, 1);
    }
    addAverageRow(table, rows, 1);
    table.print();
    return 0;
}
