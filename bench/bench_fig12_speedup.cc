/**
 * @file
 * Fig. 12: IPC speedup over the 64KB TAGE-SC-L baseline for every
 * technique: ROMBF variants, BranchNet variants, Whisper, the
 * MTAGE-SC "unlimited" reference, and the ideal direction
 * predictor.
 *
 * Paper result: Whisper 2.8% average (0.4-4.6%), ROMBF 1.7%,
 * BranchNet 0.8%, MTAGE-SC 6.3%, ideal 12.4%. Whisper reaches
 * 44.1% of the unlimited MTAGE-SC speedup.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 12: IPC speedup over 64KB TAGE-SC-L",
           "Fig. 12 (Whisper 2.8% avg, beats ROMBF 1.7% and "
           "BranchNet 0.8%; MTAGE-SC 6.3%, ideal 12.4%)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table("Fig. 12: speedup (%)");
    table.setHeader({"application", "4b-ROMBF", "8b-ROMBF",
                     "8KB-BranchNet", "32KB-BranchNet",
                     "Unl-BranchNet", "Whisper", "MTAGE-SC",
                     "Ideal"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        BranchNetSampleStore store;
        BranchProfile profile = profileApp(app, 0, cfg, &store);
        WhisperBuild build = trainWhisper(app, 0, profile, cfg);

        auto baseline = makeTage(cfg.tageBudgetKB);
        PipelineStats base = evalPipeline(app, 1, cfg, *baseline);

        auto speedupOf = [&](BranchPredictor &p) {
            PipelineStats s = evalPipeline(app, 1, cfg, p);
            return speedupPercent(base.cycles(), s.cycles());
        };
        auto speedupOwned =
            [&](std::unique_ptr<BranchPredictor> p) {
                return speedupOf(*p);
            };

        std::vector<double> row;
        row.push_back(
            speedupOwned(makeRombfPredictor(4, profile, cfg)));
        row.push_back(
            speedupOwned(makeRombfPredictor(8, profile, cfg)));
        row.push_back(speedupOwned(
            makeBranchNetPredictor(8 * 1024, profile, store, cfg)));
        row.push_back(speedupOwned(
            makeBranchNetPredictor(32 * 1024, profile, store, cfg)));
        row.push_back(speedupOwned(
            makeBranchNetPredictor(0, profile, store, cfg)));
        row.push_back(speedupOwned(makeWhisperPredictor(cfg, build)));
        row.push_back(speedupOwned(makeMtage(cfg)));
        IdealPredictor ideal;
        row.push_back(speedupOf(ideal));

        rows.push_back(row);
        table.addRow(app.name, row);
    }
    addAverageRow(table, rows);
    table.print();

    // Whisper's share of the unlimited-reference speedup.
    double w = 0, m = 0;
    for (const auto &r : rows) {
        w += r[5];
        m += r[6];
    }
    if (m > 0) {
        std::printf("Whisper achieves %.1f%% of the MTAGE-SC "
                    "speedup (paper: 44.1%%)\n",
                    100.0 * w / m);
    }
    return 0;
}
