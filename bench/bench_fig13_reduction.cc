/**
 * @file
 * Fig. 13: branch misprediction reduction over the 64KB TAGE-SC-L
 * baseline for Whisper and the prior techniques (cross-input:
 * trained on input #0, tested on input #1).
 *
 * Paper result: Whisper removes 16.8% of all mispredictions
 * (1.7-32.4%), 7.9% more than the best practical prior technique,
 * and 4.9% more than unlimited-BranchNet.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 13: misprediction reduction over 64KB TAGE-SC-L",
           "Fig. 13 (Whisper 16.8% avg, range 1.7-32.4%)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table("Fig. 13: misprediction reduction (%)");
    table.setHeader({"application", "4b-ROMBF", "8b-ROMBF",
                     "8KB-BranchNet", "32KB-BranchNet",
                     "Unl-BranchNet", "Whisper"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        BranchNetSampleStore store;
        BranchProfile profile = profileApp(app, 0, cfg, &store);
        WhisperBuild build = trainWhisper(app, 0, profile, cfg);

        auto baseline = makeTage(cfg.tageBudgetKB);
        auto s0 = evalApp(app, 1, cfg, *baseline, cfg.evalWarmup);

        auto reductionOf = [&](std::unique_ptr<BranchPredictor> p) {
            auto s = evalApp(app, 1, cfg, *p, cfg.evalWarmup);
            return reductionPercent(s0, s);
        };

        std::vector<double> row;
        row.push_back(
            reductionOf(makeRombfPredictor(4, profile, cfg)));
        row.push_back(
            reductionOf(makeRombfPredictor(8, profile, cfg)));
        row.push_back(reductionOf(
            makeBranchNetPredictor(8 * 1024, profile, store, cfg)));
        row.push_back(reductionOf(
            makeBranchNetPredictor(32 * 1024, profile, store, cfg)));
        row.push_back(reductionOf(
            makeBranchNetPredictor(0, profile, store, cfg)));
        row.push_back(
            reductionOf(makeWhisperPredictor(cfg, build)));

        rows.push_back(row);
        table.addRow(app.name, row);
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
