/**
 * @file
 * Fig. 5: CDF of mispredictions across static branches for (a)
 * SPEC2017-like benchmarks and (b) data center applications.
 *
 * Paper result: for SPEC, the top ~50 branches cover > 60% of all
 * mispredictions; for data center applications the distribution is
 * spread over thousands of branches (gcc behaves like the latter).
 */

#include "common.hh"

#include "sim/analysis.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{

void
cdfTable(const char *title, const std::vector<AppConfig> &apps,
         const ExperimentConfig &cfg)
{
    const std::vector<size_t> tops = {1, 4, 16, 64, 256, 1024, 4096};
    TableReporter table(title);
    std::vector<std::string> header = {"application"};
    for (size_t t : tops)
        header.push_back("top-" + std::to_string(t));
    header.push_back("branches");
    table.setHeader(header);

    for (const auto &app : apps) {
        AppWorkload trace(app, 1, cfg.testRecords);
        auto tage = makeTage(cfg.tageBudgetKB);
        auto hist = mispredictsPerBranch(trace, *tage);
        std::vector<std::string> row = {app.name};
        for (size_t t : tops) {
            row.push_back(TableReporter::formatDouble(
                100.0 * hist.topFraction(t), 1));
        }
        row.push_back(std::to_string(hist.numKeys()));
        table.addRow(row);
    }
    table.print();
}

} // namespace

int
main()
{
    banner("Fig. 5: misprediction CDF across branches",
           "Fig. 5 (SPEC concentrated in top-50; data center apps "
           "spread over thousands)");

    ExperimentConfig cfg = defaultConfig();
    cdfTable("Fig. 5a: SPEC2017-like benchmarks, cumulative % of "
             "mispredictions from the top-N branches",
             specApps(), cfg);
    cdfTable("Fig. 5b: data center applications, cumulative % of "
             "mispredictions from the top-N branches",
             dataCenterApps(), cfg);
    return 0;
}
