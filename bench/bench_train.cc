/**
 * @file
 * Training-cost study for the sparse-correlation screen and
 * warm-started retraining: on the Fig. 16 workloads, train the
 * second epoch's hints three ways — cold (the paper's exhaustive
 * length x formula scan), pruned (correlation-screened candidate
 * sets), and pruned+warm (screened, seeded with epoch 1's hints) —
 * and report train time against the coverage/accuracy each mode
 * achieves. Writes BENCH_train.json; CI's train-smoke job runs
 * `bench_train --quick`, which exits nonzero unless warm-started
 * retraining beats the cold scan on mean train time.
 */

#include "common.hh"

#include <cstring>

using namespace whisper;
using namespace whisper::bench;

namespace
{

struct ModeResult
{
    double seconds = 0.0;
    uint64_t scored = 0;
    size_t hints = 0;
    double coveragePct = 0.0;
    double evalAccuracyPct = 0.0;
    uint64_t warmHits = 0;
};

/**
 * Train the epoch-2 profile in one mode and (full runs only)
 * evaluate the resulting bundle on the held-out third input.
 */
ModeResult
runMode(const AppConfig &app, const ExperimentConfig &cfg,
        const BranchProfile &profile,
        const std::vector<TrainedHint> *seeds, bool prune,
        bool doEval)
{
    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    if (prune)
        trainer.setScreen(ScreenConfig{});
    TrainingStats stats;
    WhisperBuild build;
    build.hints = trainer.train(profile, seeds, &stats);

    ModeResult r;
    r.seconds = stats.trainSeconds;
    r.scored = stats.formulasScored;
    r.hints = build.hints.size();
    r.coveragePct = profile.totalMispredicts
        ? 100.0 * static_cast<double>(stats.coveredMispredicts) /
              static_cast<double>(profile.totalMispredicts)
        : 0.0;
    r.warmHits = stats.warmHits;

    if (doEval) {
        AppWorkload trace(app, 1, cfg.trainRecords);
        HintInjector injector(cfg.injector);
        build.placements = injector.place(trace, build.hints);
        auto predictor = makeWhisperPredictor(cfg, build);
        PredictorRunStats ev =
            evalApp(app, 2, cfg, *predictor, cfg.evalWarmup);
        r.evalAccuracyPct = 100.0 * ev.accuracy();
    }
    return r;
}

struct AppResult
{
    std::string name;
    ModeResult cold, pruned, warm;
};

std::string
fixed(double v, int precision)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
jsonMode(FILE *f, const char *key, const ModeResult &m,
         const char *trailer)
{
    std::fprintf(
        f,
        "      \"%s\": {\"seconds\": %.4f, \"formulas_scored\": "
        "%llu, \"hints\": %zu, \"coverage_pct\": %.2f, "
        "\"eval_accuracy_pct\": %.3f, \"warm_hits\": %llu}%s\n",
        key, m.seconds, static_cast<unsigned long long>(m.scored),
        m.hints, m.coveragePct, m.evalAccuracyPct,
        static_cast<unsigned long long>(m.warmHits), trailer);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    banner("Training cost: cold vs pruned vs pruned+warm",
           "SIV training cost (cf. Fig. 16 scale); screening + "
           "warm-start are this repo's extensions");

    ExperimentConfig cfg = defaultConfig(quick ? 0.25 : 1.0);
    cfg.profile.maxHardBranches = quick ? 128 : 512;
    const std::vector<AppConfig> apps = {
        appByName("mysql"), appByName("cassandra"),
        appByName("finagle-http")};

    std::vector<AppResult> results;
    RunningStat coldS, prunedS, warmS;
    for (const auto &app : apps) {
        // Epoch 1: profile input 0 and train the hints a deployed
        // service would be running — the warm seeds for epoch 2.
        BranchProfile epoch1 = profileApp(app, 0, cfg);
        WhisperTrainer seedTrainer(cfg.whisper, globalTruthTables());
        seedTrainer.setScreen(ScreenConfig{});
        std::vector<TrainedHint> seeds = seedTrainer.train(epoch1);

        // Epoch 2: retrain on input 1 in each mode.
        BranchProfile epoch2 = profileApp(app, 1, cfg);
        AppResult r;
        r.name = app.name;
        r.cold = runMode(app, cfg, epoch2, nullptr, false, !quick);
        r.pruned = runMode(app, cfg, epoch2, nullptr, true, !quick);
        r.warm = runMode(app, cfg, epoch2, &seeds, true, !quick);
        coldS.add(r.cold.seconds);
        prunedS.add(r.pruned.seconds);
        warmS.add(r.warm.seconds);
        results.push_back(std::move(r));
    }

    TableReporter table(
        "train time vs achieved coverage/accuracy (epoch-2 retrain, "
        "top hard branches)");
    table.setHeader({"app", "mode", "seconds", "formulas", "hints",
                     "coverage%", "eval-acc%"});
    for (const auto &r : results) {
        for (auto [mode, m] :
             {std::pair<const char *, const ModeResult *>{
                  "cold", &r.cold},
              {"pruned", &r.pruned},
              {"pruned+warm", &r.warm}}) {
            table.addRow({r.name, mode, fixed(m->seconds, 4),
                          std::to_string(m->scored),
                          std::to_string(m->hints),
                          fixed(m->coveragePct, 2),
                          fixed(m->evalAccuracyPct, 3)});
        }
    }
    table.print();

    double speedupPruned =
        prunedS.mean() > 0 ? coldS.mean() / prunedS.mean() : 0.0;
    double speedupWarm =
        warmS.mean() > 0 ? coldS.mean() / warmS.mean() : 0.0;
    std::printf("\nmean train seconds: cold %.4f, pruned %.4f "
                "(%.1fx), pruned+warm %.4f (%.1fx)\n",
                coldS.mean(), prunedS.mean(), speedupPruned,
                warmS.mean(), speedupWarm);

    const char *jsonPath = "BENCH_train.json";
    if (FILE *f = std::fopen(jsonPath, "w")) {
        std::fprintf(f, "{\n  \"bench\": \"train\",\n");
        std::fprintf(f, "  \"scale\": %.3f,\n", scaleFactor());
        std::fprintf(f, "  \"quick\": %s,\n",
                     quick ? "true" : "false");
        std::fprintf(f, "  \"max_hard_branches\": %u,\n",
                     cfg.profile.maxHardBranches);
        std::fprintf(f, "  \"apps\": {\n");
        for (size_t i = 0; i < results.size(); ++i) {
            const AppResult &r = results[i];
            std::fprintf(f, "    \"%s\": {\n", r.name.c_str());
            jsonMode(f, "cold", r.cold, ",");
            jsonMode(f, "pruned", r.pruned, ",");
            jsonMode(f, "pruned_warm", r.warm, "");
            std::fprintf(f, "    }%s\n",
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  },\n");
        std::fprintf(
            f,
            "  \"summary\": {\"cold_mean_s\": %.4f, "
            "\"pruned_mean_s\": %.4f, \"pruned_warm_mean_s\": %.4f, "
            "\"speedup_pruned\": %.2f, \"speedup_pruned_warm\": "
            "%.2f}\n}\n",
            coldS.mean(), prunedS.mean(), warmS.mean(),
            speedupPruned, speedupWarm);
        std::fclose(f);
        std::printf("wrote %s\n", jsonPath);
    } else {
        std::fprintf(stderr, "warning: cannot write %s\n", jsonPath);
    }

    if (quick && !(warmS.mean() < coldS.mean())) {
        std::fprintf(stderr,
                     "FAIL: warm-started retraining (%.4fs mean) "
                     "not faster than the cold scan (%.4fs mean)\n",
                     warmS.mean(), coldS.mean());
        return 1;
    }
    return 0;
}
