/**
 * @file
 * Fig. 6: distribution of mispredictions over the history length a
 * branch needs for accurate prediction (shortest candidate length
 * whose per-hash-value oracle explains the branch).
 *
 * Paper result: most mispredicting branches need 32-1024 bits of
 * history.
 */

#include "common.hh"

#include "sim/analysis.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 6: mispredictions by required history length",
           "Fig. 6 (correlations reach 32-1024 prior branches)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table(
        "Fig. 6: % of hard-branch mispredictions by history-length "
        "bucket");
    std::vector<std::string> header = {"application"};
    {
        BucketHistogram probe({8, 16, 32, 64, 128, 256, 512, 1024});
        for (size_t b = 0; b < probe.numBuckets(); ++b)
            header.push_back(probe.bucketLabel(b));
    }
    table.setHeader(header);
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        BranchProfile profile = profileApp(app, 0, cfg);
        auto hist = mispredictsByHistoryLength(profile);
        std::vector<double> row;
        for (size_t b = 0; b < hist.numBuckets(); ++b)
            row.push_back(100.0 * hist.bucketFraction(b));
        rows.push_back(row);
        table.addRow(app.name, row, 1);
    }
    addAverageRow(table, rows, 1);
    table.print();
    return 0;
}
