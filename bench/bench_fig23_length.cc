/**
 * @file
 * Fig. 23: sensitivity to the number of simulated instructions —
 * the test-trace length sweeps over an order of magnitude with a
 * fixed Whisper build.
 *
 * Paper result: the reduction stays near the headline (14.7% at
 * 1B instructions vs 16.8% at 100M).
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 23: simulated-instruction-count sensitivity",
           "Fig. 23 (reduction stable over a 10x longer trace)");

    ExperimentConfig cfg = defaultConfig();
    const std::vector<AppConfig> apps = {
        appByName("mysql"), appByName("cassandra"),
        appByName("python"), appByName("finagle-http")};

    struct Prepared
    {
        const AppConfig *app;
        WhisperBuild build;
    };
    std::vector<Prepared> prepared;
    for (const auto &app : apps) {
        BranchProfile profile = profileApp(app, 0, cfg);
        prepared.push_back(
            {&app, trainWhisper(app, 0, profile, cfg)});
    }

    TableReporter table("Fig. 23: average misprediction reduction "
                        "(%) vs test-trace length (4 apps)");
    table.setHeader({"records", "instructions-M", "reduction-%"});

    uint64_t baseLen = cfg.testRecords / 2;
    for (double mult : {1.0, 2.0, 4.0, 7.0, 10.0}) {
        ExperimentConfig run = cfg;
        run.testRecords = static_cast<uint64_t>(baseLen * mult);
        RunningStat reduction, instructions;
        for (const auto &p : prepared) {
            auto baseline = makeTage(run.tageBudgetKB);
            auto s0 =
                evalApp(*p.app, 1, run, *baseline, run.evalWarmup);
            auto wp = makeWhisperPredictor(run, p.build);
            auto s1 = evalApp(*p.app, 1, run, *wp, run.evalWarmup);
            reduction.add(reductionPercent(s0, s1));
            instructions.add(
                (s0.instructions + s0.warmupInstructions) / 1e6);
        }
        table.addRow(std::to_string(run.testRecords),
                     {instructions.mean(), reduction.mean()});
    }
    table.print();
    return 0;
}
