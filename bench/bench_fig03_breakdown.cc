/**
 * @file
 * Fig. 3: breakdown of all TAGE-SC-L mispredictions into
 * compulsory / capacity / conflict / conditional-on-data, by
 * analyzing consecutive accesses of branch substreams.
 *
 * Paper result: capacity dominates with 76.4% on average.
 */

#include "common.hh"

#include "sim/classifier.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 3: misprediction class breakdown",
           "Fig. 3 (capacity misses dominate: 76.4% average)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table(
        "Fig. 3: % of all 64KB TAGE-SC-L mispredictions");
    table.setHeader({"application", "Compulsory", "Capacity",
                     "Conflict", "Cond-on-data"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        AppWorkload trace(app, 1, cfg.testRecords);
        auto tage = makeTage(cfg.tageBudgetKB);
        auto b = classifyMispredictions(trace, *tage);
        rows.push_back(
            {100.0 * b.fraction(MispredictClass::Compulsory),
             100.0 * b.fraction(MispredictClass::Capacity),
             100.0 * b.fraction(MispredictClass::Conflict),
             100.0 * b.fraction(MispredictClass::ConditionalOnData)});
        table.addRow(app.name, rows.back());
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
