/**
 * @file
 * Fig. 14: ablation of Whisper's two accuracy contributions over
 * the 8b-ROMBF baseline: (1) hashed history correlation (variable
 * lengths + hashing, formulas restricted to the classic AND/OR
 * monotone set) and (2) the Implication / Converse Non-Implication
 * operator extension (the full formula space).
 *
 * Paper result: hashed history correlation contributes 6.4%
 * misprediction reduction over 8b-ROMBF; Impl/Cnimpl a further
 * 1.5%.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 14: Whisper ablation over 8b-ROMBF",
           "Fig. 14 (hashed-history +6.4%, Impl/Cnimpl +1.5%)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table(
        "Fig. 14: misprediction reduction over 8b-ROMBF (%)");
    table.setHeader({"application", "Hashed-history-correlation",
                     "Implication-converse-nonimplication"});
    std::vector<std::vector<double>> rows;

    // Monotone candidate list shared across apps.
    auto monotone = WhisperTrainer::monotoneCandidates();

    for (const auto &app : dataCenterApps()) {
        BranchProfile profile = profileApp(app, 0, cfg);

        // Reference: the prior-work 8b-ROMBF hybrid.
        auto rombf = makeRombfPredictor(8, profile, cfg);
        auto sR = evalApp(app, 1, cfg, *rombf, cfg.evalWarmup);

        // Variant 1: hashed history correlation only (monotone
        // formulas over the hashed variable-length histories).
        WhisperTrainer monoTrainer(cfg.whisper, globalTruthTables());
        monoTrainer.setCandidateList(monotone);
        WhisperBuild monoBuild =
            trainWhisperWith(app, 0, profile, cfg, monoTrainer);
        auto monoPred = makeWhisperPredictor(cfg, monoBuild);
        auto sM = evalApp(app, 1, cfg, *monoPred, cfg.evalWarmup);

        // Variant 2: full Whisper (adds Impl/Cnimpl + inversion).
        WhisperBuild fullBuild = trainWhisper(app, 0, profile, cfg);
        auto fullPred = makeWhisperPredictor(cfg, fullBuild);
        auto sF = evalApp(app, 1, cfg, *fullPred, cfg.evalWarmup);

        double hashedGain = reductionPercent(sR, sM);
        double opGain = reductionPercent(sR, sF) - hashedGain;
        rows.push_back({hashedGain, opGain});
        table.addRow(app.name, rows.back());
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
