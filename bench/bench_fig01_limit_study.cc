/**
 * @file
 * Fig. 1: limit study. IPC speedup of an ideal direction predictor
 * over the 64KB TAGE-SC-L baseline, split into the part from
 * eliminating misprediction (squash) stalls and the part from the
 * frontend stalls FDIP can then hide.
 *
 * Paper result: 12.4% mean speedup (1.3%-26.4%), of which 7.9%
 * from misprediction stalls and 4.5% from frontend stalls.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 1: ideal-direction-predictor limit study",
           "Fig. 1 (12.4% mean IPC speedup: 7.9% mispredict-stall "
           "+ 4.5% frontend-stall)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table("Fig. 1: speedup of ideal direction "
                        "predictor over 64KB TAGE-SC-L (%)");
    table.setHeader({"application", "total", "mispredict-stalls",
                     "frontend-stalls"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        auto tage = makeTage(cfg.tageBudgetKB);
        PipelineStats base = evalPipeline(app, 1, cfg, *tage);
        IdealPredictor ideal;
        PipelineStats best = evalPipeline(app, 1, cfg, ideal);

        double total = speedupPercent(base.cycles(), best.cycles());
        // Removing only the squash cycles isolates the
        // misprediction-stall component; the remainder is frontend.
        double mispredPart = speedupPercent(
            base.cycles(), base.cycles() - base.squashCycles);
        double frontendPart = total - mispredPart;

        rows.push_back({total, mispredPart, frontendPart});
        table.addRow(app.name, rows.back());
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
