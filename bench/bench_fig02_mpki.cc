/**
 * @file
 * Fig. 2: conditional-branch MPKI of the 64KB TAGE-SC-L baseline
 * across the 12 data center applications.
 *
 * Paper result: 3.0 average (0.5-7.2), CBP-5 accounting
 * (conditional branches only).
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 2: branch-MPKI of 64KB TAGE-SC-L",
           "Fig. 2 (average 3.0, range 0.5-7.2)");

    ExperimentConfig cfg = defaultConfig();
    TableReporter table("Fig. 2: Br-MPKI, 64KB TAGE-SC-L");
    table.setHeader({"application", "MPKI", "accuracy-%"});
    std::vector<std::vector<double>> rows;

    for (const auto &app : dataCenterApps()) {
        auto tage = makeTage(cfg.tageBudgetKB);
        auto stats = evalApp(app, 1, cfg, *tage, cfg.evalWarmup);
        rows.push_back({stats.mpki(), 100.0 * stats.accuracy()});
        table.addRow(app.name, rows.back());
    }
    addAverageRow(table, rows);
    table.print();
    return 0;
}
