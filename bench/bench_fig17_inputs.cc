/**
 * @file
 * Fig. 17: input sensitivity — misprediction reduction on test
 * inputs #1-#3 when Whisper trains on the training input #0 versus
 * on each test input's own profile.
 *
 * Paper result: input-specific profiles remove 6.6% more
 * mispredictions on average.
 */

#include "common.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    banner("Fig. 17: cross-input vs input-specific profiles",
           "Fig. 17 (input-specific profiles +6.6% reduction)");

    ExperimentConfig cfg = defaultConfig(0.7);
    TableReporter table("Fig. 17: misprediction reduction (%), "
                        "profile-from-#0 / profile-from-same-input");
    table.setHeader({"application", "#1-cross", "#1-self",
                     "#2-cross", "#2-self", "#3-cross", "#3-self"});
    RunningStat crossAll, selfAll;

    for (const auto &app : dataCenterApps()) {
        BranchProfile trainProfile = profileApp(app, 0, cfg);
        WhisperBuild crossBuild =
            trainWhisper(app, 0, trainProfile, cfg);

        std::vector<double> row;
        for (uint32_t input : {1u, 2u, 3u}) {
            auto baseline = makeTage(cfg.tageBudgetKB);
            auto s0 =
                evalApp(app, input, cfg, *baseline, cfg.evalWarmup);

            auto crossPred = makeWhisperPredictor(cfg, crossBuild);
            auto sC =
                evalApp(app, input, cfg, *crossPred, cfg.evalWarmup);

            BranchProfile selfProfile = profileApp(app, input, cfg);
            WhisperBuild selfBuild =
                trainWhisper(app, input, selfProfile, cfg);
            auto selfPred = makeWhisperPredictor(cfg, selfBuild);
            auto sS =
                evalApp(app, input, cfg, *selfPred, cfg.evalWarmup);

            double cross = reductionPercent(s0, sC);
            double self = reductionPercent(s0, sS);
            row.push_back(cross);
            row.push_back(self);
            crossAll.add(cross);
            selfAll.add(self);
        }
        table.addRow(app.name, row, 1);
    }
    table.print();
    std::printf("average: cross-input %.1f%%, input-specific %.1f%% "
                "(paper gap: 6.6%%)\n",
                crossAll.mean(), selfAll.mean());
    return 0;
}
