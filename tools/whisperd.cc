/**
 * @file
 * whisperd — continuous profile-guided optimization service CLI.
 *
 * Streams every .whrt file of a chunk directory (sorted by name, so
 * naming encodes the drift order) through the whisperd loop:
 * bounded-chunk ingest, sharded streaming profiling, parallel
 * formula training, validated hint-bundle deployment. Writes the
 * final deployed generation as an epoch-stamped bundle and can
 * evaluate it (and a static reference bundle) on a held-out trace.
 *
 * Usage:
 *   whisperd --chunks DIR --out FILE [--chunk-records N]
 *            [--epoch-chunks N] [--workers N] [--shards N]
 *            [--tage-kb N] [--max-hard N] [--margin F]
 *            [--journal FILE] [--fault-spec SPEC]
 *            [--deadline-ms N] [--max-attempts N]
 *            [--eval-trace FILE] [--compare-hints FILE] [--quiet]
 *
 * With --journal the deployed-generation history is written through
 * a crash-safe write-ahead journal; a restarted daemon replays it
 * and resumes from the last durable epoch. --fault-spec installs the
 * deterministic fault-injection harness (see fault_injection.hh).
 *
 * With --listen [ADDR:]PORT whisperd becomes an actual server:
 * chunks arrive over the CRC-framed wire protocol (see src/net/)
 * instead of from --chunks, and clients pull deployed bundles with
 * epoch-based caching. SIGINT/SIGTERM triggers a graceful drain:
 * stop the listener, drain every tenant queue and in-flight
 * training job, flush the journals, then write --out-dir bundles.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/whisper_io.hh"
#include "net/wire_server.hh"
#include "service/fault_injection.hh"
#include "service/tenant_router.hh"
#include "service/whisperd.hh"
#include "sim/experiment.hh"
#include "trace/branch_trace.hh"
#include "util/table.hh"

using namespace whisper;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: whisperd --chunks DIR --out FILE [options]\n"
        "  --chunks DIR         directory of .whrt trace chunks\n"
        "  --out FILE           final versioned bundle to write\n"
        "  --chunk-records N    ingest chunk size (default 50000)\n"
        "  --epoch-chunks N     training chunks per epoch "
        "(default 4)\n"
        "  --workers N          training pool width (default 4)\n"
        "  --shards N           profile shards (default 2)\n"
        "  --tage-kb N          baseline budget (default 64)\n"
        "  --max-hard N         hard-branch cap per shard "
        "(default 512)\n"
        "  --fraction F         randomized-testing fraction\n"
        "  --margin F           acceptance accuracy margin "
        "(default 0)\n"
        "  --journal FILE       crash-safe deployment journal "
        "(resume on restart)\n"
        "  --tenants LIST       multi-tenant mode: comma-separated "
        "app names, or 'auto'\n"
        "                       to register apps on first chunk\n"
        "  --journal-dir DIR    per-tenant journals "
        "(DIR/<app>.journal)\n"
        "  --out-dir DIR        per-tenant deployed bundles "
        "(DIR/<app>.vhints)\n"
        "  --quota-chunks [APP=]N  per-tenant queued-chunk quota "
        "(default 16)\n"
        "  --quota-jobs [APP=]N per-tenant pending-train-job quota "
        "(default 4)\n"
        "  --tenant-weight APP=W  fair-share weight (default 1; "
        "repeatable)\n"
        "  --dispatchers N      training dispatcher threads "
        "(default 1)\n"
        "  --train-prune=on|off sparse-correlation screening of "
        "the formula search (default on)\n"
        "  --warm-start=on|off  seed each epoch from the deployed "
        "bundle (default on)\n"
        "  --fault-spec SPEC    deterministic fault injection "
        "(e.g. flip-chunks=0.01,stall-worker)\n"
        "  --deadline-ms N      training task deadline before "
        "requeue (default 30000)\n"
        "  --max-attempts N     training attempts before a branch "
        "is degraded (default 3)\n"
        "  --listen [ADDR:]PORT serve the wire protocol instead of "
        "streaming --chunks\n"
        "                       (PORT 0 = ephemeral; requires "
        "--tenants)\n"
        "  --port-file FILE     write the bound port after listen\n"
        "  --retry-after-ms N   backpressure hint sent to clients "
        "(default 25)\n"
        "  --idle-timeout-ms N  reap connections stalled mid-frame "
        "(default 10000)\n"
        "  --eval-trace FILE    evaluate the deployed bundle on a "
        "trace\n"
        "  --compare-hints FILE also evaluate a static bundle on it\n"
        "  --quiet              no per-epoch log\n");
    std::exit(2);
}

/** Set by the SIGINT/SIGTERM handler; the server loop watches it. */
std::atomic<bool> gShutdownRequested{false};

extern "C" void
handleShutdownSignal(int)
{
    gShutdownRequested.store(true);
}

double
evalBundleAccuracy(const BranchTrace &trace, unsigned tageKb,
                   const WhisperConfig &cfg, const HintBundle *bundle,
                   double *mpki)
{
    std::unique_ptr<BranchPredictor> pred;
    if (bundle) {
        pred = std::make_unique<WhisperPredictor>(
            makeTage(tageKb), cfg, globalTruthTables(),
            bundle->hints, bundle->placements);
    } else {
        pred = makeTage(tageKb);
    }
    TraceSource src(trace);
    PredictorRunStats stats = runPredictor(src, *pred, 0.5);
    if (mpki)
        *mpki = stats.mpki();
    return stats.accuracy();
}

} // namespace

/** Parse an "on"/"off" value (for --train-prune / --warm-start,
 * accepted both as "--flag on" and "--flag=on"). */
bool
parseOnOff(const std::string &value, bool *out)
{
    if (value == "on" || value == "1" || value == "true") {
        *out = true;
        return true;
    }
    if (value == "off" || value == "0" || value == "false") {
        *out = false;
        return true;
    }
    return false;
}

/** Parse "[APP=]N": a bare number applies to every tenant, an
 * APP=N pair to one. @return false on a malformed value. */
bool
parsePerApp(const std::string &value, uint64_t *global,
            std::map<std::string, uint64_t> &perApp)
{
    size_t eq = value.find('=');
    char *end = nullptr;
    if (eq == std::string::npos) {
        uint64_t v = std::strtoull(value.c_str(), &end, 10);
        if (!end || *end != '\0')
            return false;
        *global = v;
        return true;
    }
    std::string app = value.substr(0, eq);
    uint64_t v = std::strtoull(value.c_str() + eq + 1, &end, 10);
    if (app.empty() || !end || *end != '\0')
        return false;
    perApp[app] = v;
    return true;
}

/** Everything the multi-tenant modes (streaming and server) share. */
struct TenantArgs
{
    std::string tenantsArg;
    std::string journalDir;
    std::string outDir;
    unsigned dispatchers = 1;
    TenantQuota defaultQuota;
    std::map<std::string, uint64_t> quotaChunks, quotaJobs, weights;
};

TenantRouterConfig
buildRouterConfig(const WhisperdConfig &cfg, const TenantArgs &args)
{
    TenantRouterConfig tcfg;
    tcfg.chunkRecords = cfg.chunkRecords;
    tcfg.epochChunks = cfg.epochChunks;
    tcfg.trainWorkers = cfg.trainWorkers;
    tcfg.trainDispatchers = args.dispatchers;
    tcfg.queueCapacity = cfg.queueCapacity;
    tcfg.tageBudgetKB = cfg.tageBudgetKB;
    tcfg.acceptMargin = cfg.acceptMargin;
    tcfg.profilePolicy = cfg.profilePolicy;
    tcfg.whisper = cfg.whisper;
    tcfg.injector = cfg.injector;
    tcfg.verbose = cfg.verbose;
    tcfg.journalDir = args.journalDir;
    tcfg.trainTaskDeadlineMs = cfg.trainTaskDeadlineMs;
    tcfg.trainMaxAttempts = cfg.trainMaxAttempts;
    tcfg.trainPrune = cfg.trainPrune;
    tcfg.screen = cfg.screen;
    tcfg.warmStart = cfg.warmStart;
    tcfg.warmFallbackMargin = cfg.warmFallbackMargin;
    tcfg.defaultQuota = args.defaultQuota;
    tcfg.autoRegister = args.tenantsArg == "auto";
    return tcfg;
}

/** Register the --tenants list (no-op under auto-register).
 * @return false when the list named no apps. */
bool
registerTenants(TenantRouter &router, const TenantArgs &args)
{
    if (args.tenantsArg == "auto")
        return true;
    auto quotaFor = [&](const std::string &app) {
        TenantQuota q = args.defaultQuota;
        if (auto it = args.quotaChunks.find(app);
            it != args.quotaChunks.end())
            q.maxQueuedChunks = static_cast<size_t>(it->second);
        if (auto it = args.quotaJobs.find(app);
            it != args.quotaJobs.end())
            q.maxPendingTrainJobs = static_cast<size_t>(it->second);
        if (auto it = args.weights.find(app);
            it != args.weights.end())
            q.weight = static_cast<unsigned>(it->second);
        return q;
    };
    std::string rest = args.tenantsArg;
    while (!rest.empty()) {
        size_t comma = rest.find(',');
        std::string app = rest.substr(0, comma);
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
        if (app.empty())
            continue;
        router.addTenant(app, quotaFor(app));
    }
    return router.registry().size() > 0;
}

/** Per-tenant summary lines + deployed-bundle save (--out-dir). */
int
reportTenants(TenantRouter &router, const std::string &outDir)
{
    ServiceMetrics metrics = router.metrics();
    for (const auto &[app, tm] : metrics.tenants) {
        std::printf(
            "whisperd[%s]: epochs=%llu accepted=%llu rejected=%llu "
            "deployed-epoch=%llu resumed-epoch=%llu "
            "dropped-chunks=%llu dropped-jobs=%llu "
            "train-s-mean=%.3f warm-hits=%llu cold-searches=%llu "
            "warm-fallbacks=%llu branch-train-ms=%.3f\n",
            app.c_str(),
            static_cast<unsigned long long>(tm.epochsRun),
            static_cast<unsigned long long>(tm.bundlesAccepted),
            static_cast<unsigned long long>(tm.bundlesRejected),
            static_cast<unsigned long long>(tm.deployedEpoch),
            static_cast<unsigned long long>(tm.journalResumedEpoch),
            static_cast<unsigned long long>(tm.chunksDropped),
            static_cast<unsigned long long>(tm.trainJobsDropped),
            tm.trainLatencyMean,
            static_cast<unsigned long long>(tm.warmHits),
            static_cast<unsigned long long>(tm.coldSearches),
            static_cast<unsigned long long>(tm.warmFallbackEpochs),
            tm.branchTrainMsMean);
    }
    metrics.dump(std::cout);

    int status = 0;
    if (!outDir.empty()) {
        for (const Tenant *tenant : router.registry().all()) {
            HintStore::Snapshot deployed = tenant->store.current();
            if (!deployed) {
                std::fprintf(stderr,
                             "whisperd[%s]: no bundle deployed\n",
                             tenant->name.c_str());
                continue;
            }
            std::string path =
                outDir + "/" + tenant->name + ".vhints";
            if (!saveVersionedBundle(*deployed, path)) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             path.c_str());
                status = 1;
                continue;
            }
            std::printf("whisperd[%s]: deployed bundle (epoch %llu, "
                        "%zu hints) -> %s\n",
                        tenant->name.c_str(),
                        static_cast<unsigned long long>(
                            deployed->epoch),
                        deployed->bundle.hints.size(), path.c_str());
        }
    }
    return status;
}

int
runMultiTenant(const WhisperdConfig &cfg, const std::string &chunkDir,
               const TenantArgs &args)
{
    TenantRouterConfig tcfg = buildRouterConfig(cfg, args);
    TenantRouter router(tcfg, globalTruthTables());
    if (!registerTenants(router, args)) {
        std::fprintf(stderr, "error: --tenants named no apps\n");
        return 2;
    }

    std::printf("whisperd: multi-tenant streaming %s (%zu tenants%s, "
                "chunk=%zu records, epoch=%u chunks, %u train "
                "workers, %u dispatchers)\n",
                chunkDir.c_str(), router.registry().size(),
                tcfg.autoRegister ? " + auto-register" : "",
                tcfg.chunkRecords, tcfg.epochChunks,
                tcfg.trainWorkers,
                std::max(1u, tcfg.trainDispatchers));

    router.run(chunkDir);
    return reportTenants(router, args.outDir);
}

int
runServer(const WhisperdConfig &cfg, const TenantArgs &args,
          const std::string &listenArg, const std::string &portFile,
          uint32_t retryAfterMs, uint32_t idleTimeoutMs)
{
    TenantRouterConfig tcfg = buildRouterConfig(cfg, args);
    TenantRouter router(tcfg, globalTruthTables());
    if (!registerTenants(router, args)) {
        std::fprintf(stderr, "error: --tenants named no apps\n");
        return 2;
    }
    router.start();

    WireServerConfig scfg;
    size_t colon = listenArg.rfind(':');
    std::string portStr = listenArg;
    if (colon != std::string::npos) {
        scfg.bindAddress = listenArg.substr(0, colon);
        portStr = listenArg.substr(colon + 1);
    }
    scfg.port =
        static_cast<uint16_t>(std::strtoul(portStr.c_str(), nullptr,
                                           10));
    scfg.retryAfterMs = retryAfterMs;
    scfg.idleTimeoutMs = idleTimeoutMs;
    scfg.verbose = cfg.verbose;

    WireServer server(
        scfg,
        [&router](TraceChunk chunk) {
            switch (router.tryOffer(std::move(chunk))) {
            case TenantRouter::OfferOutcome::Accepted:
                return ChunkSinkResult::Accepted;
            case TenantRouter::OfferOutcome::UnknownApp:
                return ChunkSinkResult::UnknownApp;
            case TenantRouter::OfferOutcome::Backpressure:
            default:
                return ChunkSinkResult::Backpressure;
            }
        },
        [&router](const std::string &app)
            -> std::optional<HintStore::Snapshot> {
            Tenant *tenant = router.registry().find(app);
            if (!tenant)
                return std::nullopt;
            return tenant->store.current();
        });

    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "error: cannot listen on %s: %s\n",
                     listenArg.c_str(), error.c_str());
        router.finish();
        return 1;
    }
    std::printf("whisperd: listening on %s:%u (%zu tenants%s, "
                "%u dispatchers)\n",
                scfg.bindAddress.c_str(), server.boundPort(),
                router.registry().size(),
                tcfg.autoRegister ? " + auto-register" : "",
                std::max(1u, tcfg.trainDispatchers));
    std::fflush(stdout);
    if (!portFile.empty()) {
        // Written only after a successful bind, so a waiting script
        // can poll for this file and then connect immediately.
        FILE *f = std::fopen(portFile.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         portFile.c_str());
            server.stop();
            router.finish();
            return 1;
        }
        std::fprintf(f, "%u\n", server.boundPort());
        std::fclose(f);
    }

    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGTERM, handleShutdownSignal);
    while (!gShutdownRequested.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(25));

    // Graceful drain: stop accepting bytes first, then let every
    // queued chunk and in-flight training job complete (journal
    // appends happen on the deployment path, so joining the
    // dispatchers flushes them too).
    std::printf("whisperd: shutdown signal, draining\n");
    server.stop();
    router.finish();

    WireServerStats ws = server.stats();
    std::printf(
        "whisperd-server: conns=%llu/%llu frames=%llu chunks=%llu "
        "dup=%llu retry-after=%llu bad-crc=%llu torn-streams=%llu "
        "slow-loris=%llu bundles=%llu unchanged=%llu "
        "listener-restarts=%llu\n",
        static_cast<unsigned long long>(ws.connectionsAccepted),
        static_cast<unsigned long long>(ws.connectionsClosed),
        static_cast<unsigned long long>(ws.framesReceived),
        static_cast<unsigned long long>(ws.chunksAccepted),
        static_cast<unsigned long long>(ws.duplicateChunks),
        static_cast<unsigned long long>(ws.retryAfterSent),
        static_cast<unsigned long long>(ws.badCrcFrames),
        static_cast<unsigned long long>(ws.badStreamCloses),
        static_cast<unsigned long long>(ws.slowLorisCloses),
        static_cast<unsigned long long>(ws.bundlesSent),
        static_cast<unsigned long long>(ws.bundlesUnchanged),
        static_cast<unsigned long long>(ws.listenerRestarts));
    return reportTenants(router, args.outDir);
}

int
main(int argc, char **argv)
{
    // Wire sends use MSG_NOSIGNAL, but library code (journals,
    // stdout) can still hit a closed pipe; EPIPE as an error return
    // beats sudden death.
    std::signal(SIGPIPE, SIG_IGN);

    std::string chunkDir, outPath, evalPath, comparePath;
    std::string faultSpec;
    std::string listenArg, portFile;
    uint32_t retryAfterMs = 25, idleTimeoutMs = 10'000;
    TenantArgs tenants;
    WhisperdConfig cfg;
    double fraction = -1.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--chunks")
            chunkDir = next();
        else if (arg == "--out")
            outPath = next();
        else if (arg == "--chunk-records")
            cfg.chunkRecords =
                static_cast<size_t>(std::strtoull(next(), nullptr, 10));
        else if (arg == "--epoch-chunks")
            cfg.epochChunks = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--workers")
            cfg.trainWorkers = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--shards")
            cfg.profileShards =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--tage-kb")
            cfg.tageBudgetKB = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--max-hard")
            cfg.profilePolicy.maxHardBranches =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--fraction")
            fraction = std::atof(next());
        else if (arg == "--margin")
            cfg.acceptMargin = std::atof(next());
        else if (arg == "--journal")
            cfg.journalPath = next();
        else if (arg == "--tenants")
            tenants.tenantsArg = next();
        else if (arg == "--journal-dir")
            tenants.journalDir = next();
        else if (arg == "--out-dir")
            tenants.outDir = next();
        else if (arg == "--dispatchers")
            tenants.dispatchers =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--quota-chunks") {
            uint64_t v = tenants.defaultQuota.maxQueuedChunks;
            if (!parsePerApp(next(), &v, tenants.quotaChunks))
                usage();
            tenants.defaultQuota.maxQueuedChunks =
                static_cast<size_t>(v);
        } else if (arg == "--quota-jobs") {
            uint64_t v = tenants.defaultQuota.maxPendingTrainJobs;
            if (!parsePerApp(next(), &v, tenants.quotaJobs))
                usage();
            tenants.defaultQuota.maxPendingTrainJobs =
                static_cast<size_t>(v);
        } else if (arg == "--tenant-weight") {
            uint64_t unused = 0;
            std::string value = next();
            if (value.find('=') == std::string::npos ||
                !parsePerApp(value, &unused, tenants.weights))
                usage();
        } else if (arg == "--listen")
            listenArg = next();
        else if (arg == "--port-file")
            portFile = next();
        else if (arg == "--retry-after-ms")
            retryAfterMs = static_cast<uint32_t>(std::atoi(next()));
        else if (arg == "--idle-timeout-ms")
            idleTimeoutMs = static_cast<uint32_t>(std::atoi(next()));
        else if (arg == "--train-prune" ||
                 arg.rfind("--train-prune=", 0) == 0) {
            std::string v = arg == "--train-prune"
                ? std::string(next())
                : arg.substr(sizeof("--train-prune=") - 1);
            if (!parseOnOff(v, &cfg.trainPrune))
                usage();
        } else if (arg == "--warm-start" ||
                   arg.rfind("--warm-start=", 0) == 0) {
            std::string v = arg == "--warm-start"
                ? std::string(next())
                : arg.substr(sizeof("--warm-start=") - 1);
            if (!parseOnOff(v, &cfg.warmStart))
                usage();
        } else if (arg == "--fault-spec")
            faultSpec = next();
        else if (arg == "--deadline-ms")
            cfg.trainTaskDeadlineMs =
                static_cast<uint64_t>(std::strtoull(next(), nullptr, 10));
        else if (arg == "--max-attempts")
            cfg.trainMaxAttempts =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--eval-trace")
            evalPath = next();
        else if (arg == "--compare-hints")
            comparePath = next();
        else if (arg == "--quiet")
            cfg.verbose = false;
        else
            usage();
    }
    bool multiTenant = !tenants.tenantsArg.empty();
    bool serverMode = !listenArg.empty();
    if (serverMode && !multiTenant) {
        std::fprintf(stderr, "error: --listen requires --tenants\n");
        return 2;
    }
    if (cfg.chunkRecords == 0 ||
        (!serverMode &&
         (chunkDir.empty() || (outPath.empty() && !multiTenant))))
        usage();
    if (fraction > 0)
        cfg.whisper.formulaFraction = fraction;
    if (!faultSpec.empty()) {
        std::string error;
        if (!FaultInjector::instance().configure(faultSpec, &error)) {
            std::fprintf(stderr, "error: bad --fault-spec: %s\n",
                         error.c_str());
            return 2;
        }
        std::printf("whisperd: fault injection armed: %s\n",
                    faultSpec.c_str());
    }
    if (serverMode)
        return runServer(cfg, tenants, listenArg, portFile,
                         retryAfterMs, idleTimeoutMs);
    if (ChunkIngestor::listTraceFiles(chunkDir).empty()) {
        std::fprintf(stderr, "error: no .whrt files in %s\n",
                     chunkDir.c_str());
        return 1;
    }

    if (multiTenant)
        return runMultiTenant(cfg, chunkDir, tenants);

    std::printf("whisperd: streaming %s (chunk=%zu records, "
                "epoch=%u chunks, %u train workers, %u shards)\n",
                chunkDir.c_str(), cfg.chunkRecords, cfg.epochChunks,
                cfg.trainWorkers, cfg.profileShards);

    Whisperd daemon(cfg, globalTruthTables());
    if (!cfg.journalPath.empty()) {
        std::printf(
            "whisperd: resumed from journal at epoch %llu "
            "(%llu generations)\n",
            static_cast<unsigned long long>(daemon.resumedEpoch()),
            static_cast<unsigned long long>(
                daemon.recoveredGenerations()));
    }
    daemon.run(chunkDir);

    const HintStore &store = daemon.store();
    std::printf("whisperd: epochs=%llu accepted=%llu rejected=%llu "
                "deployed-epoch=%llu\n",
                static_cast<unsigned long long>(daemon.epochsRun()),
                static_cast<unsigned long long>(store.accepted()),
                static_cast<unsigned long long>(store.rejected()),
                static_cast<unsigned long long>(store.epoch()));
    const ServiceMetrics &sm = daemon.metrics();
    std::printf(
        "whisperd: training warm-hits=%llu cold-searches=%llu "
        "warm-fallbacks=%llu branch-train-ms=%.3f\n",
        static_cast<unsigned long long>(sm.warmHits),
        static_cast<unsigned long long>(sm.coldSearches),
        static_cast<unsigned long long>(sm.warmFallbackEpochs),
        sm.branchTrainMs.mean());
    std::printf(
        "whisperd: faults skipped-chunks=%llu skipped-records=%llu "
        "retries=%llu requeued-tasks=%llu degraded-branches=%llu "
        "torn-writes=%llu workers-died=%llu\n",
        static_cast<unsigned long long>(sm.chunksSkipped),
        static_cast<unsigned long long>(sm.recordsSkipped),
        static_cast<unsigned long long>(sm.readRetries),
        static_cast<unsigned long long>(sm.tasksRequeued),
        static_cast<unsigned long long>(sm.branchesDegraded),
        static_cast<unsigned long long>(sm.journalAppendFailures),
        static_cast<unsigned long long>(sm.workersDied));
    daemon.metrics().report(std::cout);

    HintStore::Snapshot deployed = store.current();
    if (!deployed) {
        std::fprintf(stderr,
                     "whisperd: no bundle was ever deployed\n");
        return 1;
    }
    if (!saveVersionedBundle(*deployed, outPath)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    std::printf("whisperd: deployed bundle (epoch %llu, %zu hints) "
                "-> %s\n",
                static_cast<unsigned long long>(deployed->epoch),
                deployed->bundle.hints.size(), outPath.c_str());

    if (evalPath.empty())
        return 0;

    BranchTrace evalTrace;
    if (IoStatus st = evalTrace.load(evalPath); !st) {
        std::fprintf(stderr, "error: %s\n", st.message.c_str());
        return 1;
    }

    double baseMpki = 0.0, onlineMpki = 0.0;
    double baseAcc = evalBundleAccuracy(evalTrace, cfg.tageBudgetKB,
                                        cfg.whisper, nullptr,
                                        &baseMpki);
    double onlineAcc = evalBundleAccuracy(
        evalTrace, cfg.tageBudgetKB, cfg.whisper, &deployed->bundle,
        &onlineMpki);
    std::printf("eval %s: tage accuracy=%.4f%% mpki=%.3f\n",
                evalPath.c_str(), 100.0 * baseAcc, baseMpki);
    std::printf("eval %s: online-whisper accuracy=%.4f%% mpki=%.3f\n",
                evalPath.c_str(), 100.0 * onlineAcc, onlineMpki);

    if (!comparePath.empty()) {
        HintBundle staticBundle;
        if (IoStatus st = loadHintBundle(staticBundle, comparePath);
            !st) {
            std::fprintf(stderr, "error: %s\n", st.message.c_str());
            return 1;
        }
        double staticMpki = 0.0;
        double staticAcc = evalBundleAccuracy(
            evalTrace, cfg.tageBudgetKB, cfg.whisper, &staticBundle,
            &staticMpki);
        std::printf(
            "eval %s: static-whisper accuracy=%.4f%% mpki=%.3f\n",
            evalPath.c_str(), 100.0 * staticAcc, staticMpki);
        std::printf("online-vs-static: %+.4fpp (%s)\n",
                    100.0 * (onlineAcc - staticAcc),
                    onlineAcc >= staticAcc ? "online wins or ties"
                                           : "online loses");
    }
    return 0;
}
