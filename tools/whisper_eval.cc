/**
 * @file
 * whisper_eval — evaluate predictors on a trace: the deployed
 * TAGE-SC-L baseline, optionally Whisper with a trained hint bundle,
 * and reference predictors. Reports MPKI/accuracy and (with
 * --pipeline) IPC on the frontend model.
 *
 * Usage:
 *   whisper_eval --trace mysql_i1.whrt [--hints mysql.hints]
 *                [--tage-kb 64] [--warmup 0.5] [--pipeline]
 *                [--predictors tage,whisper,mtage,ideal,gshare,...]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bp/perceptron.hh"
#include "bp/simple_predictors.hh"
#include "core/static_profile.hh"
#include "core/whisper_io.hh"
#include "trace/branch_trace.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace whisper;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: whisper_eval --trace FILE [options]\n"
        "  --trace FILE      evaluation trace (.whrt)\n"
        "  --hints FILE      hint bundle (enables 'whisper')\n"
        "  --profile FILE    saved profile (enables 'profile-static')\n"
        "  --tage-kb N       baseline budget (default 64)\n"
        "  --warmup F        stats warm-up fraction (default 0.5)\n"
        "  --pipeline        also run the timing model\n"
        "  --predictors LIST comma list of: tage, whisper, mtage,\n"
        "                    ideal, gshare, bimodal, perceptron\n");
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string tracePath, hintsPath, profilePath;
    unsigned tageKb = 64;
    double warmup = 0.5;
    bool pipeline = false;
    std::vector<std::string> predictors = {"tage"};

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--trace")
            tracePath = next();
        else if (arg == "--hints")
            hintsPath = next();
        else if (arg == "--profile")
            profilePath = next();
        else if (arg == "--tage-kb")
            tageKb = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--warmup")
            warmup = std::atof(next());
        else if (arg == "--pipeline")
            pipeline = true;
        else if (arg == "--predictors")
            predictors = splitList(next());
        else
            usage();
    }
    if (tracePath.empty())
        usage();

    BranchTrace trace;
    if (IoStatus st = trace.load(tracePath); !st) {
        std::fprintf(stderr, "error: %s\n", st.message.c_str());
        return 1;
    }

    HintBundle bundle;
    bool haveHints = false;
    if (!hintsPath.empty()) {
        if (IoStatus st = loadHintBundle(bundle, hintsPath);
            !st) {
            std::fprintf(stderr, "error: %s\n", st.message.c_str());
            return 1;
        }
        haveHints = true;
        if (predictors == std::vector<std::string>{"tage"})
            predictors = {"tage", "whisper"};
    }

    ExperimentConfig cfg;
    cfg.tageBudgetKB = tageKb;

    auto makeByName =
        [&](const std::string &name)
        -> std::unique_ptr<BranchPredictor> {
        if (name == "tage")
            return makeTage(tageKb);
        if (name == "mtage")
            return makeMtage(cfg);
        if (name == "ideal")
            return std::make_unique<IdealPredictor>();
        if (name == "gshare")
            return std::make_unique<GsharePredictor>();
        if (name == "bimodal")
            return std::make_unique<BimodalPredictor>();
        if (name == "perceptron")
            return std::make_unique<PerceptronPredictor>();
        if (name == "profile-static") {
            if (profilePath.empty()) {
                std::fprintf(stderr,
                             "error: 'profile-static' needs "
                             "--profile\n");
                std::exit(2);
            }
            BranchProfile profile;
            if (IoStatus st = loadProfile(profile, profilePath);
                !st) {
                std::fprintf(stderr, "error: %s\n",
                             st.message.c_str());
                std::exit(1);
            }
            return std::make_unique<StaticProfilePredictor>(profile);
        }
        if (name == "whisper") {
            if (!haveHints) {
                std::fprintf(stderr,
                             "error: 'whisper' needs --hints\n");
                std::exit(2);
            }
            WhisperBuild build;
            build.hints = bundle.hints;
            build.placements = bundle.placements;
            return makeWhisperPredictor(cfg, build);
        }
        std::fprintf(stderr, "error: unknown predictor '%s'\n",
                     name.c_str());
        std::exit(2);
    };

    TableReporter table("evaluation: " + trace.app() + " input #" +
                        std::to_string(trace.inputId()));
    std::vector<std::string> header = {"predictor", "MPKI",
                                       "accuracy-%", "mispredicts"};
    if (pipeline)
        header.push_back("IPC");
    table.setHeader(header);

    for (const auto &name : predictors) {
        auto pred = makeByName(name);
        TraceSource src(trace);
        auto stats = runPredictor(src, *pred, warmup);
        std::vector<std::string> row = {
            pred->name(), TableReporter::formatDouble(stats.mpki()),
            TableReporter::formatDouble(100.0 * stats.accuracy()),
            std::to_string(stats.mispredicts)};
        if (pipeline) {
            auto fresh = makeByName(name);
            TraceSource src2(trace);
            PipelineModel model(cfg.pipeline);
            auto p = model.run(src2, *fresh);
            row.push_back(TableReporter::formatDouble(p.ipc()));
        }
        table.addRow(row);
    }
    table.print();
    return 0;
}
