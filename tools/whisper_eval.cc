/**
 * @file
 * whisper_eval — evaluate predictors on a trace: the deployed
 * TAGE-SC-L baseline, optionally Whisper with a trained hint bundle,
 * and reference predictors. Reports MPKI/accuracy and (with
 * --pipeline) IPC on the frontend model.
 *
 * Usage:
 *   whisper_eval --trace mysql_i1.whrt [--hints mysql.hints]
 *                [--tage-kb 64] [--warmup 0.5] [--pipeline]
 *                [--predictors tage,whisper,mtage,ideal,gshare,...]
 *                [--jobs N] [--window N] [--shard-warmup N|full]
 *
 * With --jobs the accuracy runs go through the shard-parallel
 * engine (sim/sharded_runner): the trace is cut into --window-record
 * shards evaluated on N worker threads, each shard's predictor clone
 * warmed on the --shard-warmup records before it ("full" replays the
 * whole prefix: bit-identical to the serial engine, but with no
 * wall-clock win). A per-shard timing block follows the table.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bp/perceptron.hh"
#include "bp/simple_predictors.hh"
#include "core/static_profile.hh"
#include "core/whisper_io.hh"
#include "trace/branch_trace.hh"
#include "util/stdio_guard.hh"
#include "trace/cbp_reader.hh"
#include "sim/experiment.hh"
#include "sim/sharded_runner.hh"
#include "util/table.hh"

using namespace whisper;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: whisper_eval --trace FILE [options]\n"
        "  --trace FILE      evaluation trace (.whrt, or a\n"
        "                    CBP-style text trace ending in .cbp)\n"
        "  --hints FILE      hint bundle (enables 'whisper')\n"
        "  --profile FILE    saved profile (enables 'profile-static')\n"
        "  --tage-kb N       baseline budget (default 64)\n"
        "  --warmup F        stats warm-up fraction (default 0.5)\n"
        "  --pipeline        also run the timing model\n"
        "  --predictors LIST comma list of: tage, whisper, mtage,\n"
        "                    ideal, gshare, bimodal, perceptron\n"
        "  --jobs N          shard-parallel accuracy runs on N\n"
        "                    worker threads (0 = all cores)\n"
        "  --window N        records per shard (default 262144)\n"
        "  --shard-warmup N  warm-prefix records per shard, or\n"
        "                    'full' for the exact serial-equivalent\n"
        "                    mode (default: half a window)\n"
        "  --per-epoch       dump per-epoch accuracy lines (one\n"
        "                    key=value line per epoch window) from\n"
        "                    an epoch-adaptive run of each predictor\n"
        "  --epoch-records N records per epoch window for\n"
        "                    --per-epoch (default 262144)\n");
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    guardStdio();
    std::string tracePath, hintsPath, profilePath;
    unsigned tageKb = 64;
    double warmup = 0.5;
    bool pipeline = false;
    bool sharded = false;
    bool perEpoch = false;
    uint64_t epochRecords = 262'144;
    ShardedRunConfig shardCfg;
    shardCfg.windowRecords = 262'144;
    bool shardWarmupSet = false;
    std::vector<std::string> predictors = {"tage"};

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--trace")
            tracePath = next();
        else if (arg == "--hints")
            hintsPath = next();
        else if (arg == "--profile")
            profilePath = next();
        else if (arg == "--tage-kb")
            tageKb = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--warmup")
            warmup = std::atof(next());
        else if (arg == "--pipeline")
            pipeline = true;
        else if (arg == "--predictors")
            predictors = splitList(next());
        else if (arg == "--jobs") {
            sharded = true;
            shardCfg.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--window")
            shardCfg.windowRecords =
                static_cast<uint64_t>(std::atoll(next()));
        else if (arg == "--shard-warmup") {
            std::string v = next();
            shardCfg.warmupRecords = v == "full"
                ? ShardedRunConfig::kFullPrefix
                : static_cast<uint64_t>(std::atoll(v.c_str()));
            shardWarmupSet = true;
        } else if (arg == "--per-epoch")
            perEpoch = true;
        else if (arg == "--epoch-records")
            epochRecords = static_cast<uint64_t>(std::atoll(next()));
        else
            usage();
    }
    if (tracePath.empty())
        usage();
    if (epochRecords == 0) {
        std::fprintf(stderr,
                     "error: --epoch-records must be positive\n");
        return 2;
    }
    if (shardCfg.windowRecords == 0) {
        std::fprintf(stderr, "error: --window must be positive\n");
        return 2;
    }
    if (!shardWarmupSet)
        shardCfg.warmupRecords = shardCfg.windowRecords / 2;
    shardCfg.statsWarmupFraction = warmup;

    BranchTrace trace;
    bool isCbp = tracePath.size() >= 4 &&
                 tracePath.compare(tracePath.size() - 4, 4, ".cbp") ==
                     0;
    if (IoStatus st = isCbp ? loadCbpTrace(tracePath, &trace)
                            : trace.load(tracePath);
        !st) {
        std::fprintf(stderr, "error: %s\n", st.message.c_str());
        return 1;
    }

    HintBundle bundle;
    bool haveHints = false;
    if (!hintsPath.empty()) {
        if (IoStatus st = loadHintBundle(bundle, hintsPath);
            !st) {
            std::fprintf(stderr, "error: %s\n", st.message.c_str());
            return 1;
        }
        haveHints = true;
        if (predictors == std::vector<std::string>{"tage"})
            predictors = {"tage", "whisper"};
    }

    ExperimentConfig cfg;
    cfg.tageBudgetKB = tageKb;

    auto makeByName =
        [&](const std::string &name)
        -> std::unique_ptr<BranchPredictor> {
        if (name == "tage")
            return makeTage(tageKb);
        if (name == "mtage")
            return makeMtage(cfg);
        if (name == "ideal")
            return std::make_unique<IdealPredictor>();
        if (name == "gshare")
            return std::make_unique<GsharePredictor>();
        if (name == "bimodal")
            return std::make_unique<BimodalPredictor>();
        if (name == "perceptron")
            return std::make_unique<PerceptronPredictor>();
        if (name == "profile-static") {
            if (profilePath.empty()) {
                std::fprintf(stderr,
                             "error: 'profile-static' needs "
                             "--profile\n");
                std::exit(2);
            }
            BranchProfile profile;
            if (IoStatus st = loadProfile(profile, profilePath);
                !st) {
                std::fprintf(stderr, "error: %s\n",
                             st.message.c_str());
                std::exit(1);
            }
            return std::make_unique<StaticProfilePredictor>(profile);
        }
        if (name == "whisper") {
            if (!haveHints) {
                std::fprintf(stderr,
                             "error: 'whisper' needs --hints\n");
                std::exit(2);
            }
            WhisperBuild build;
            build.hints = bundle.hints;
            build.placements = bundle.placements;
            return makeWhisperPredictor(cfg, build);
        }
        std::fprintf(stderr, "error: unknown predictor '%s'\n",
                     name.c_str());
        std::exit(2);
    };

    TableReporter table("evaluation: " + trace.app() + " input #" +
                        std::to_string(trace.inputId()));
    std::vector<std::string> header = {"predictor", "MPKI",
                                       "accuracy-%", "mispredicts"};
    if (pipeline)
        header.push_back("IPC");
    table.setHeader(header);

    struct TimedRun
    {
        std::string predictor;
        ShardedRunTiming timing;
    };
    std::vector<TimedRun> timedRuns;

    for (const auto &name : predictors) {
        auto pred = makeByName(name);
        PredictorRunStats stats;
        if (sharded) {
            auto run = runPredictorSharded(trace, *pred, shardCfg);
            stats = run.total;
            timedRuns.push_back({pred->name(),
                                 std::move(run.timing)});
        } else {
            TraceSource src(trace);
            stats = runPredictor(src, *pred, warmup);
        }
        std::vector<std::string> row = {
            pred->name(), TableReporter::formatDouble(stats.mpki()),
            TableReporter::formatDouble(100.0 * stats.accuracy()),
            std::to_string(stats.mispredicts)};
        if (pipeline) {
            auto fresh = makeByName(name);
            TraceSource src2(trace);
            PipelineModel model(cfg.pipeline);
            auto p = model.run(src2, *fresh);
            row.push_back(TableReporter::formatDouble(p.ipc()));
        }
        table.addRow(row);
    }
    table.print();

    if (perEpoch) {
        // Machine-readable accuracy-over-time: one line per epoch
        // window from an epoch-adaptive run (static predictor — the
        // refresh hook stays empty, so this shows how a fixed bundle
        // ages across a drifting stream).
        std::vector<BranchRecord> records(trace.begin(),
                                          trace.end());
        for (const auto &name : predictors) {
            auto pred = makeByName(name);
            AdaptiveRunStats stats;
            if (sharded) {
                auto run = runPredictorAdaptiveSharded(
                    records, *pred, epochRecords, nullptr, shardCfg);
                stats = std::move(run.stats);
            } else {
                TraceSource src(trace);
                stats = runPredictorAdaptive(src, *pred,
                                             epochRecords, nullptr);
            }
            for (size_t e = 0; e < stats.perEpoch.size(); ++e) {
                const auto &ep = stats.perEpoch[e];
                std::printf(
                    "per-epoch predictor=%s epoch=%zu "
                    "instructions=%llu conditionals=%llu "
                    "mispredicts=%llu accuracy=%.6f mpki=%.4f\n",
                    pred->name().c_str(), e,
                    static_cast<unsigned long long>(
                        ep.instructions),
                    static_cast<unsigned long long>(
                        ep.conditionals),
                    static_cast<unsigned long long>(ep.mispredicts),
                    ep.accuracy(), ep.mpki());
            }
            std::printf("per-epoch-summary predictor=%s epochs=%zu "
                        "epoch-records=%llu accuracy=%.6f "
                        "mpki=%.4f\n",
                        pred->name().c_str(),
                        stats.perEpoch.size(),
                        static_cast<unsigned long long>(
                            epochRecords),
                        stats.total.accuracy(), stats.total.mpki());
        }
    }

    if (sharded) {
        // Per-shard timing block: the measurable side of the
        // sharding; stats above never depend on these clocks.
        for (const auto &run : timedRuns) {
            std::printf("\nshard timing: %s  jobs=%u shards=%zu "
                        "wall-seconds=%.3f\n",
                        run.predictor.c_str(), run.timing.jobs,
                        run.timing.perShard.size(),
                        run.timing.wallSeconds);
            for (const auto &s : run.timing.perShard)
                std::printf("  shard %3llu: records=%llu "
                            "warm=%llu worker=%u "
                            "warm-s=%.3f eval-s=%.3f\n",
                            static_cast<unsigned long long>(s.window),
                            static_cast<unsigned long long>(
                                s.records),
                            static_cast<unsigned long long>(
                                s.warmRecords),
                            s.worker, s.warmSeconds, s.evalSeconds);
        }
    }
    return 0;
}
