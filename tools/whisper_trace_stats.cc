/**
 * @file
 * whisper_trace_stats — inspect a .whrt trace file: record mix,
 * instruction counts, taken rates, hottest branches; or list the
 * built-in application models.
 *
 * Usage:
 *   whisper_trace_stats TRACE.{whrt,cbp} [--top N]
 *   whisper_trace_stats --convert-cbp IN.cbp OUT.whrt
 *   whisper_trace_stats --export-cbp IN.whrt OUT.cbp
 *   whisper_trace_stats --list
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "trace/branch_trace.hh"
#include "trace/cbp_reader.hh"
#include "util/stdio_guard.hh"
#include "util/table.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Load either native .whrt or CBP-style text (by extension). */
IoStatus
loadAnyTrace(const std::string &path, BranchTrace *out)
{
    if (hasSuffix(path, ".cbp"))
        return loadCbpTrace(path, out);
    return out->load(path);
}

} // namespace

int
main(int argc, char **argv)
{
    guardStdio(); // `| head` must end the report, not the process
    if (argc >= 2 && (std::string(argv[1]) == "--convert-cbp" ||
                      std::string(argv[1]) == "--export-cbp")) {
        bool toWhrt = std::string(argv[1]) == "--convert-cbp";
        if (argc != 4) {
            std::fprintf(stderr,
                         "usage: whisper_trace_stats %s IN OUT\n",
                         argv[1]);
            return 2;
        }
        BranchTrace trace;
        IoStatus st = toWhrt ? loadCbpTrace(argv[2], &trace)
                             : trace.load(argv[2]);
        if (!st) {
            std::fprintf(stderr, "error: %s\n", st.message.c_str());
            return 1;
        }
        bool saved = toWhrt ? trace.save(argv[3])
                            : saveCbpTrace(trace, argv[3]);
        if (!saved) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         argv[3]);
            return 1;
        }
        std::printf("%s: %zu records (app=%s input=%u) -> %s\n",
                    argv[2], trace.size(), trace.app().c_str(),
                    trace.inputId(), argv[3]);
        return 0;
    }
    if (argc >= 2 && std::string(argv[1]) == "--list") {
        TableReporter t("application models");
        t.setHeader({"name", "family", "regions", "request-types"});
        for (const auto &a : dataCenterApps())
            t.addRow({a.name, "datacenter",
                      std::to_string(a.numRegions),
                      std::to_string(a.numRequestTypes)});
        for (const auto &a : specApps())
            t.addRow({a.name, "spec-like",
                      std::to_string(a.numRegions),
                      std::to_string(a.numRequestTypes)});
        t.print();
        return 0;
    }
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: whisper_trace_stats TRACE.{whrt,cbp} "
                     "[--top N] | --convert-cbp IN OUT | "
                     "--export-cbp IN OUT | --list\n");
        return 2;
    }

    size_t topN = 10;
    if (argc >= 4 && std::string(argv[2]) == "--top")
        topN = std::strtoull(argv[3], nullptr, 10);

    BranchTrace trace;
    if (IoStatus st = loadAnyTrace(argv[1], &trace); !st) {
        std::fprintf(stderr, "error: %s\n", st.message.c_str());
        return 1;
    }

    uint64_t kinds[5] = {};
    uint64_t takenConds = 0;
    std::map<uint64_t, uint64_t> perPc;
    for (const auto &rec : trace) {
        ++kinds[static_cast<size_t>(rec.kind)];
        if (rec.isConditional()) {
            ++perPc[rec.pc];
            if (rec.taken)
                ++takenConds;
        }
    }

    std::printf("trace: app=%s input=%u records=%zu "
                "instructions=%llu\n",
                trace.app().c_str(), trace.inputId(), trace.size(),
                static_cast<unsigned long long>(
                    trace.instructions()));
    TableReporter mix("record mix");
    mix.setHeader({"kind", "count", "share-%"});
    const char *names[] = {"conditional", "unconditional", "call",
                           "return", "indirect"};
    for (int k = 0; k < 5; ++k) {
        mix.addRow({names[k], std::to_string(kinds[k]),
                    TableReporter::formatDouble(
                        100.0 * kinds[k] / trace.size())});
    }
    mix.print();

    std::printf("static conditional branches: %zu; taken rate "
                "%.1f%%\n\n",
                perPc.size(),
                100.0 * takenConds /
                    std::max<uint64_t>(1, trace.conditionals()));

    std::vector<std::pair<uint64_t, uint64_t>> hot(perPc.begin(),
                                                   perPc.end());
    std::sort(hot.begin(), hot.end(), [](auto &a, auto &b) {
        return a.second > b.second;
    });
    if (hot.size() > topN)
        hot.resize(topN);
    TableReporter top("hottest conditional branches");
    top.setHeader({"pc", "executions", "share-%"});
    for (const auto &[pc, n] : hot) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(pc));
        top.addRow({buf, std::to_string(n),
                    TableReporter::formatDouble(
                        100.0 * n / trace.conditionals())});
    }
    top.print();
    // A truncated pipe (`| head`) is a normal way to consume this
    // report, not a failure of the tool.
    return 0;
}
