/**
 * @file
 * whisper_loadgen — chaos load harness for whisperd's wire server.
 *
 * Simulates a fleet of concurrent agents, each owning one
 * application stream, ingesting trace chunks over the wire protocol
 * through WhisperClient (reconnect + retransmit + backoff). Under an
 * active --fault-spec the transport misbehaves on purpose (corrupt
 * CRCs, torn frames, mid-frame kills, slow-loris stalls, a listener
 * restart); the harness's job is to prove the reliability contract:
 * every chunk ends acknowledged exactly once, no matter what.
 *
 * Two traffic modes:
 *  - synthetic (default): agent i plays app "<prefix><i>", a
 *    deterministic AppWorkload variant salted by i. --dump-dir
 *    writes every chunk as its own .whrt file, so the identical
 *    input can be replayed through in-process `whisperd --chunks`
 *    and the deployed bundles compared byte-for-byte.
 *  - replay (--chunks DIR): one agent per application found in the
 *    directory, chunked with TraceStreamReader exactly as whisperd's
 *    own ChunkIngestor would (same --chunk-records ⇒ same chunks).
 *
 * Reports sustained chunks/sec and p50/p99 per-chunk ingest latency
 * (wall time from first transmission to acknowledgment, retries
 * included) plus retry/reconnect/duplicate counters, optionally as
 * machine-readable JSON (--json, the BENCH_server.json producer).
 * Exit status is nonzero if any chunk finished unacknowledged.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/whisper_client.hh"
#include "service/fault_injection.hh"
#include "service/trace_stream.hh"
#include "trace/branch_trace.hh"
#include "util/stdio_guard.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: whisper_loadgen --port N [options]\n"
        "  --port N             whisperd wire port (required)\n"
        "  --host ADDR          server address (default 127.0.0.1)\n"
        "  --agents N           concurrent agents (default 8)\n"
        "  --base-app NAME      catalog model behind synthetic "
        "streams (default finagle-http)\n"
        "  --app-prefix S       agent i plays app S<i> (default "
        "load)\n"
        "  --chunk-records N    records per chunk (default 2000)\n"
        "  --chunks-per-agent N chunks each agent sends (default "
        "4)\n"
        "  --chunks DIR         replay a .whrt directory instead "
        "(one agent per app)\n"
        "  --dump-dir DIR       also write every synthetic chunk as "
        "DIR/<app>_c<seq>.whrt\n"
        "  --pull-every N       pull the app's bundle after every N "
        "acked chunks (default 0)\n"
        "  --timeout-ms N       per-operation receive deadline "
        "(default 2000)\n"
        "  --max-attempts N     per-chunk attempts before giving up "
        "(default 50)\n"
        "  --fault-spec SPEC    arm client-side wire faults (see "
        "whisperd --fault-spec)\n"
        "  --json FILE          machine-readable results\n");
    std::exit(2);
}

struct AgentPlan
{
    std::string app;
    /** Chunks in send order: (inputId, records). */
    std::vector<std::pair<uint32_t, std::vector<BranchRecord>>>
        chunks;
};

struct AgentResult
{
    uint64_t sent = 0;
    uint64_t acked = 0;
    uint64_t records = 0;
    std::vector<double> latencyMs;
    WhisperClientStats client;
    std::string error;
};

/** Synthetic plan: a deterministic per-agent variant of the base
 * model, so every agent streams distinct but reproducible traffic. */
AgentPlan
makeSyntheticPlan(const AppConfig &base, const std::string &prefix,
                  unsigned agent, size_t chunkRecords,
                  unsigned chunksPerAgent)
{
    AgentPlan plan;
    AppConfig cfg = base;
    cfg.name = prefix + std::to_string(agent);
    cfg.seed = base.seed + 7919ULL * (agent + 1);
    plan.app = cfg.name;
    uint32_t inputId = agent % 4;
    AppWorkload source(cfg, inputId,
                       static_cast<uint64_t>(chunkRecords) *
                           chunksPerAgent);
    for (unsigned c = 0; c < chunksPerAgent; ++c) {
        std::vector<BranchRecord> records;
        records.reserve(chunkRecords);
        BranchRecord rec;
        while (records.size() < chunkRecords && source.next(rec))
            records.push_back(rec);
        if (records.empty())
            break;
        plan.chunks.emplace_back(inputId, std::move(records));
    }
    return plan;
}

/** Replay plan: group the directory's files by app and chunk each
 * file with TraceStreamReader — the exact partitioning whisperd's
 * in-process ChunkIngestor produces for the same --chunk-records. */
std::vector<AgentPlan>
makeReplayPlans(const std::string &dir, size_t chunkRecords)
{
    std::map<std::string, AgentPlan> byApp;
    for (const std::string &file :
         ChunkIngestor::listTraceFiles(dir)) {
        TraceStreamReader reader(file);
        if (!reader.valid()) {
            std::fprintf(stderr, "warn: skipping %s: %s\n",
                         file.c_str(),
                         reader.status().message.c_str());
            continue;
        }
        std::vector<BranchRecord> records;
        while (reader.readChunk(records, chunkRecords) > 0) {
            AgentPlan &plan = byApp[reader.app()];
            plan.app = reader.app();
            plan.chunks.emplace_back(reader.inputId(),
                                     std::move(records));
            records = {};
        }
    }
    std::vector<AgentPlan> plans;
    plans.reserve(byApp.size());
    for (auto &[app, plan] : byApp)
        plans.push_back(std::move(plan));
    return plans;
}

/** Write one chunk as a standalone .whrt file whose name sorts in
 * per-app send order, for byte-identity replay through --chunks. */
bool
dumpChunk(const std::string &dir, const AgentPlan &plan,
          size_t index, uint32_t inputId,
          const std::vector<BranchRecord> &records)
{
    BranchTrace trace(plan.app, inputId);
    for (const BranchRecord &rec : records)
        trace.append(rec);
    char name[64];
    std::snprintf(name, sizeof(name), "%s_c%05zu.whrt",
                  plan.app.c_str(), index);
    return trace.save(dir + "/" + name);
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
    return sorted[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    guardStdio();

    std::string host = "127.0.0.1";
    uint16_t port = 0;
    unsigned agents = 8;
    std::string baseApp = "finagle-http", appPrefix = "load";
    size_t chunkRecords = 2'000;
    unsigned chunksPerAgent = 4;
    std::string chunkDir, dumpDir, faultSpec, jsonPath;
    unsigned pullEvery = 0;
    uint32_t timeoutMs = 2'000;
    unsigned maxAttempts = 50;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--port")
            port = static_cast<uint16_t>(std::atoi(next()));
        else if (arg == "--host")
            host = next();
        else if (arg == "--agents")
            agents = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--base-app")
            baseApp = next();
        else if (arg == "--app-prefix")
            appPrefix = next();
        else if (arg == "--chunk-records")
            chunkRecords = static_cast<size_t>(
                std::strtoull(next(), nullptr, 10));
        else if (arg == "--chunks-per-agent")
            chunksPerAgent =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--chunks")
            chunkDir = next();
        else if (arg == "--dump-dir")
            dumpDir = next();
        else if (arg == "--pull-every")
            pullEvery = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--timeout-ms")
            timeoutMs = static_cast<uint32_t>(std::atoi(next()));
        else if (arg == "--max-attempts")
            maxAttempts = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--fault-spec")
            faultSpec = next();
        else if (arg == "--json")
            jsonPath = next();
        else
            usage();
    }
    if (port == 0 || agents == 0 || chunkRecords == 0)
        usage();

    if (!faultSpec.empty()) {
        std::string error;
        if (!FaultInjector::instance().configure(faultSpec,
                                                 &error)) {
            std::fprintf(stderr, "error: bad --fault-spec: %s\n",
                         error.c_str());
            return 2;
        }
        std::printf("loadgen: wire faults armed: %s\n",
                    faultSpec.c_str());
    }

    // ---- build the traffic plans --------------------------------
    std::vector<AgentPlan> plans;
    if (!chunkDir.empty()) {
        plans = makeReplayPlans(chunkDir, chunkRecords);
        if (plans.empty()) {
            std::fprintf(stderr, "error: no usable traces in %s\n",
                         chunkDir.c_str());
            return 1;
        }
    } else {
        const AppConfig *base = findAppByName(baseApp);
        if (!base) {
            std::fprintf(stderr, "error: unknown --base-app %s\n",
                         baseApp.c_str());
            return 2;
        }
        plans.reserve(agents);
        for (unsigned a = 0; a < agents; ++a)
            plans.push_back(makeSyntheticPlan(*base, appPrefix, a,
                                              chunkRecords,
                                              chunksPerAgent));
        if (!dumpDir.empty()) {
            for (const AgentPlan &plan : plans) {
                for (size_t c = 0; c < plan.chunks.size(); ++c) {
                    if (!dumpChunk(dumpDir, plan, c,
                                   plan.chunks[c].first,
                                   plan.chunks[c].second)) {
                        std::fprintf(stderr,
                                     "error: cannot dump chunk to "
                                     "%s\n",
                                     dumpDir.c_str());
                        return 1;
                    }
                }
            }
        }
    }

    size_t totalChunks = 0, totalRecords = 0;
    for (const AgentPlan &plan : plans) {
        totalChunks += plan.chunks.size();
        for (const auto &[input, records] : plan.chunks)
            totalRecords += records.size();
    }
    std::printf("loadgen: %zu agents -> %s:%u, %zu chunks (%zu "
                "records), chunk=%zu records%s\n",
                plans.size(), host.c_str(), port, totalChunks,
                totalRecords, chunkRecords,
                pullEvery ? ", pulling bundles" : "");
    std::fflush(stdout);

    // ---- run the fleet ------------------------------------------
    std::vector<AgentResult> results(plans.size());
    std::vector<std::thread> fleet;
    fleet.reserve(plans.size());
    auto wallStart = std::chrono::steady_clock::now();

    for (size_t a = 0; a < plans.size(); ++a) {
        fleet.emplace_back([&, a] {
            const AgentPlan &plan = plans[a];
            AgentResult &res = results[a];
            WhisperClientConfig ccfg;
            ccfg.host = host;
            ccfg.port = port;
            ccfg.stream = "agent" + std::to_string(a);
            ccfg.recvTimeoutMs = timeoutMs;
            ccfg.maxAttempts = maxAttempts;
            ccfg.jitterSeed = 0x10ad + a;
            WhisperClient client(ccfg);
            unsigned sinceLastPull = 0;
            for (const auto &[inputId, records] : plan.chunks) {
                ++res.sent;
                auto t0 = std::chrono::steady_clock::now();
                bool ok =
                    client.ingestChunk(plan.app, inputId, records);
                auto t1 = std::chrono::steady_clock::now();
                if (!ok) {
                    res.error = client.lastError();
                    break; // later seqs would be out of order
                }
                ++res.acked;
                res.records += records.size();
                res.latencyMs.push_back(
                    std::chrono::duration<double, std::milli>(t1 -
                                                              t0)
                        .count());
                if (pullEvery && ++sinceLastPull >= pullEvery) {
                    sinceLastPull = 0;
                    client.pullBundle(plan.app);
                }
            }
            res.client = client.stats();
        });
    }
    for (std::thread &t : fleet)
        t.join();
    double wallSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() -
                         wallStart)
                         .count();

    // ---- aggregate ----------------------------------------------
    uint64_t sent = 0, acked = 0, records = 0;
    WhisperClientStats agg;
    std::vector<double> latencies;
    unsigned failedAgents = 0;
    for (const AgentResult &res : results) {
        sent += res.sent;
        acked += res.acked;
        records += res.records;
        agg.chunksAcked += res.client.chunksAcked;
        agg.duplicateAcks += res.client.duplicateAcks;
        agg.retries += res.client.retries;
        agg.reconnects += res.client.reconnects;
        agg.retryAfters += res.client.retryAfters;
        agg.crcRejects += res.client.crcRejects;
        agg.timeouts += res.client.timeouts;
        agg.bundlePulls += res.client.bundlePulls;
        agg.bundleHits += res.client.bundleHits;
        latencies.insert(latencies.end(), res.latencyMs.begin(),
                         res.latencyMs.end());
        if (!res.error.empty()) {
            ++failedAgents;
            std::fprintf(stderr, "loadgen: agent failed: %s\n",
                         res.error.c_str());
        }
    }
    std::sort(latencies.begin(), latencies.end());
    double p50 = percentile(latencies, 0.50);
    double p99 = percentile(latencies, 0.99);
    uint64_t unacked = sent - acked;
    double chunksPerSec = wallSec > 0 ? acked / wallSec : 0.0;

    const FaultInjector &fi = FaultInjector::instance();
    std::printf(
        "loadgen: %llu/%llu chunks acked (%llu records) in %.2fs = "
        "%.1f chunks/s\n"
        "loadgen: latency p50=%.2fms p99=%.2fms; retries=%llu "
        "reconnects=%llu dup-acks=%llu retry-after=%llu "
        "crc-rejects=%llu timeouts=%llu pulls=%llu (hits=%llu)\n"
        "loadgen: injected corrupt=%llu torn=%llu kills=%llu "
        "stalls=%llu\n",
        static_cast<unsigned long long>(acked),
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(records), wallSec,
        chunksPerSec, p50, p99,
        static_cast<unsigned long long>(agg.retries),
        static_cast<unsigned long long>(agg.reconnects),
        static_cast<unsigned long long>(agg.duplicateAcks),
        static_cast<unsigned long long>(agg.retryAfters),
        static_cast<unsigned long long>(agg.crcRejects),
        static_cast<unsigned long long>(agg.timeouts),
        static_cast<unsigned long long>(agg.bundlePulls),
        static_cast<unsigned long long>(agg.bundleHits),
        static_cast<unsigned long long>(fi.wireFramesCorrupted()),
        static_cast<unsigned long long>(fi.wireFramesTorn()),
        static_cast<unsigned long long>(fi.wireConnKills()),
        static_cast<unsigned long long>(fi.wireStalls()));

    if (!jsonPath.empty()) {
        FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"agents\": %zu,\n"
            "  \"chunk_records\": %zu,\n"
            "  \"chunks_sent\": %llu,\n"
            "  \"chunks_acked\": %llu,\n"
            "  \"chunks_unacked\": %llu,\n"
            "  \"records_acked\": %llu,\n"
            "  \"wall_seconds\": %.3f,\n"
            "  \"chunks_per_sec\": %.1f,\n"
            "  \"ingest_latency_p50_ms\": %.3f,\n"
            "  \"ingest_latency_p99_ms\": %.3f,\n"
            "  \"retries\": %llu,\n"
            "  \"reconnects\": %llu,\n"
            "  \"duplicate_acks\": %llu,\n"
            "  \"retry_afters\": %llu,\n"
            "  \"crc_rejects\": %llu,\n"
            "  \"timeouts\": %llu,\n"
            "  \"bundle_pulls\": %llu,\n"
            "  \"bundle_cache_hits\": %llu,\n"
            "  \"injected_corrupt\": %llu,\n"
            "  \"injected_torn\": %llu,\n"
            "  \"injected_kills\": %llu,\n"
            "  \"injected_stalls\": %llu,\n"
            "  \"fault_spec\": \"%s\",\n"
            "  \"failed_agents\": %u\n"
            "}\n",
            plans.size(), chunkRecords,
            static_cast<unsigned long long>(sent),
            static_cast<unsigned long long>(acked),
            static_cast<unsigned long long>(unacked),
            static_cast<unsigned long long>(records), wallSec,
            chunksPerSec, p50, p99,
            static_cast<unsigned long long>(agg.retries),
            static_cast<unsigned long long>(agg.reconnects),
            static_cast<unsigned long long>(agg.duplicateAcks),
            static_cast<unsigned long long>(agg.retryAfters),
            static_cast<unsigned long long>(agg.crcRejects),
            static_cast<unsigned long long>(agg.timeouts),
            static_cast<unsigned long long>(agg.bundlePulls),
            static_cast<unsigned long long>(agg.bundleHits),
            static_cast<unsigned long long>(
                fi.wireFramesCorrupted()),
            static_cast<unsigned long long>(fi.wireFramesTorn()),
            static_cast<unsigned long long>(fi.wireConnKills()),
            static_cast<unsigned long long>(fi.wireStalls()),
            faultSpec.c_str(), failedAgents);
        std::fclose(f);
        std::printf("loadgen: wrote %s\n", jsonPath.c_str());
    }

    if (unacked > 0 || failedAgents > 0) {
        std::fprintf(stderr,
                     "loadgen: FAILED: %llu chunks unacknowledged, "
                     "%u agents failed\n",
                     static_cast<unsigned long long>(unacked),
                     failedAgents);
        return 1;
    }
    std::printf("loadgen: all chunks acknowledged\n");
    return 0;
}
