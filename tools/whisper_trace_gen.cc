/**
 * @file
 * whisper_trace_gen — materialize a synthetic application trace to
 * a .whrt file (the library's branch-trace format). The file then
 * feeds whisper_trace_stats / whisper_train / whisper_eval, mirroring
 * the paper's collect-once-analyze-offline flow.
 *
 * Usage:
 *   whisper_trace_gen --app mysql --input 0 --records 2000000 \
 *                     --out mysql_i0.whrt
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/branch_trace.hh"
#include "util/stdio_guard.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: whisper_trace_gen --app NAME [--input N] "
        "[--records N] [--drift SPEC] --out FILE\n"
        "  --app      application model (see whisper_trace_stats "
        "--list)\n"
        "  --input    workload input id (default 0)\n"
        "  --records  branch records to emit (default 2000000)\n"
        "  --drift    mid-stream drift schedule, "
        "KIND[:key=value,...]\n"
        "             kinds: none|phase|gradual|adversarial; keys: "
        "period,\n"
        "             phases, intensity, frac, seed (e.g. "
        "phase:period=50000,phases=4)\n"
        "  --out      output trace file\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    guardStdio();
    std::string appName, outPath, driftArg;
    uint32_t input = 0;
    uint64_t records = 2'000'000;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--app")
            appName = next();
        else if (arg == "--input")
            input = static_cast<uint32_t>(std::atoi(next()));
        else if (arg == "--records")
            records = std::strtoull(next(), nullptr, 10);
        else if (arg == "--drift")
            driftArg = next();
        else if (arg == "--out")
            outPath = next();
        else
            usage();
    }
    if (appName.empty() || outPath.empty())
        usage();

    DriftSpec drift;
    if (!driftArg.empty()) {
        std::string error;
        if (!parseDriftSpec(driftArg, &drift, &error)) {
            std::fprintf(stderr, "error: --drift %s: %s\n",
                         driftArg.c_str(), error.c_str());
            return 2;
        }
    }

    const AppConfig *appPtr = findAppByName(appName);
    if (!appPtr) {
        std::fprintf(stderr,
                     "error: unknown application '%s'\n"
                     "valid --app names:\n",
                     appName.c_str());
        for (const std::string &name : allAppNames())
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 2;
    }
    const AppConfig &app = *appPtr;
    AppWorkload workload(app, input, records, drift);
    BranchTrace trace(app.name, input);
    trace.fill(workload, records);

    if (!trace.save(outPath)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    if (drift.active())
        std::printf("drift: %s\n",
                    describeDriftSpec(drift).c_str());
    std::printf("%s: %zu records, %llu instructions, %llu "
                "conditionals -> %s\n",
                app.name.c_str(), trace.size(),
                static_cast<unsigned long long>(trace.instructions()),
                static_cast<unsigned long long>(trace.conditionals()),
                outPath.c_str());
    return 0;
}
