/**
 * @file
 * whisper_train — the offline half of the paper's usage model
 * (Fig. 10, steps 1-2): profile a training trace under the deployed
 * predictor, run Whisper's branch analysis, and emit a deployable
 * hint bundle (and optionally the raw profile).
 *
 * Usage:
 *   whisper_train --trace mysql_i0.whrt --out mysql.hints \
 *                 [--tage-kb 64] [--fraction 0.01] \
 *                 [--profile-out mysql.profile] [--verbose]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/whisper_io.hh"
#include "trace/branch_trace.hh"
#include "util/stdio_guard.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace whisper;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: whisper_train --trace FILE --out FILE [options]\n"
        "  --trace FILE        training trace (.whrt)\n"
        "  --out FILE          hint bundle to write\n"
        "  --tage-kb N         profiled predictor budget "
        "(default 64)\n"
        "  --fraction F        randomized-testing fraction "
        "(default 0.01)\n"
        "  --max-hard N        hard-branch cap (default 2048)\n"
        "  --train-prune on|off sparse-correlation screening of the "
        "search space (default off:\n"
        "                      the offline tool reproduces the "
        "paper's exhaustive scan)\n"
        "  --warm-hints FILE   warm-start the search from a "
        "previously trained bundle\n"
        "  --profile-out FILE  also save the collected profile\n"
        "  --verbose           per-hint report\n");
    std::exit(2);
}

bool
parseOnOff(const std::string &value, bool *out)
{
    if (value == "on" || value == "1" || value == "true") {
        *out = true;
        return true;
    }
    if (value == "off" || value == "0" || value == "false") {
        *out = false;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    guardStdio();
    std::string tracePath, outPath, profileOut, warmPath;
    unsigned tageKb = 64;
    double fraction = -1.0;
    unsigned maxHard = 2048;
    bool verbose = false;
    bool trainPrune = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--trace")
            tracePath = next();
        else if (arg == "--out")
            outPath = next();
        else if (arg == "--tage-kb")
            tageKb = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--fraction")
            fraction = std::atof(next());
        else if (arg == "--max-hard")
            maxHard = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--train-prune" ||
                 arg.rfind("--train-prune=", 0) == 0) {
            std::string v = arg == "--train-prune"
                ? std::string(next())
                : arg.substr(sizeof("--train-prune=") - 1);
            if (!parseOnOff(v, &trainPrune))
                usage();
        } else if (arg == "--warm-hints")
            warmPath = next();
        else if (arg == "--profile-out")
            profileOut = next();
        else if (arg == "--verbose")
            verbose = true;
        else
            usage();
    }
    if (tracePath.empty() || outPath.empty())
        usage();

    BranchTrace trace;
    if (IoStatus st = trace.load(tracePath); !st) {
        std::fprintf(stderr, "error: %s\n", st.message.c_str());
        return 1;
    }
    std::printf("profiling %zu records under a %uKB TAGE-SC-L...\n",
                trace.size(), tageKb);

    ExperimentConfig cfg;
    cfg.tageBudgetKB = tageKb;
    cfg.profile.maxHardBranches = maxHard;
    if (fraction > 0)
        cfg.whisper.formulaFraction = fraction;

    TraceSource source(trace);
    auto baseline = makeTage(tageKb);
    BranchProfile profile = collectProfile(source, *baseline,
                                           cfg.whisper, cfg.profile);
    std::printf("  %zu static branches, %zu hard, baseline "
                "MPKI %.2f\n",
                profile.numBranches(), profile.numHardBranches(),
                1000.0 * profile.totalMispredicts /
                    std::max<uint64_t>(1, profile.totalInstructions));
    if (!profileOut.empty()) {
        if (!saveProfile(profile, profileOut)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         profileOut.c_str());
            return 1;
        }
        std::printf("  profile saved to %s\n", profileOut.c_str());
    }

    HintBundle warmBundle;
    bool haveWarm = false;
    if (!warmPath.empty()) {
        if (IoStatus st = loadHintBundle(warmBundle, warmPath); !st) {
            std::fprintf(stderr, "error: %s\n", st.message.c_str());
            return 1;
        }
        haveWarm = true;
    }

    std::printf("training (randomized formula testing, %.2f%% of "
                "formulas%s%s)...\n",
                100.0 * cfg.whisper.formulaFraction,
                trainPrune ? ", sparse-correlation pruned" : "",
                haveWarm ? ", warm-started" : "");
    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    if (trainPrune)
        trainer.setScreen(ScreenConfig{});
    TrainingStats stats;
    HintBundle bundle;
    bundle.hints = trainer.train(
        profile, haveWarm ? &warmBundle.hints : nullptr, &stats);

    HintInjector injector(cfg.injector);
    bundle.placements = injector.place(source, bundle.hints);
    InjectionOverhead overhead = HintInjector::overhead(
        bundle.placements, trace.size(), trace.instructions());

    if (!saveHintBundle(bundle, outPath)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    std::printf("  %zu hints (%.2fs, %llu formulas scored, "
                "%llu warm hits / %llu cold searches) -> %s\n",
                bundle.hints.size(), stats.trainSeconds,
                static_cast<unsigned long long>(stats.formulasScored),
                static_cast<unsigned long long>(stats.warmHits),
                static_cast<unsigned long long>(stats.coldSearches),
                outPath.c_str());
    std::printf("  expected on-profile reduction: %.1f%% of covered "
                "mispredictions; dynamic hint overhead %.2f%%\n",
                stats.coveredMispredicts
                    ? 100.0 *
                          (stats.coveredMispredicts -
                           stats.expectedRemaining) /
                          stats.coveredMispredicts
                    : 0.0,
                overhead.dynamicIncreasePct);

    if (verbose) {
        TableReporter t("hints");
        t.setHeader({"pc", "mode", "hist-len", "profiled-miss",
                     "expected-miss"});
        for (const auto &h : bundle.hints) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(h.pc));
            const char *mode =
                h.hint.bias == HintBias::Formula
                    ? "formula"
                    : (h.hint.bias == HintBias::AlwaysTaken
                           ? "always"
                           : "never");
            t.addRow({buf, mode, std::to_string(h.historyLength),
                      std::to_string(h.profiledMispredicts),
                      std::to_string(h.expectedMispredicts)});
        }
        t.print();
    }
    return 0;
}
