#include "uarch/btb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

Btb::Btb(unsigned entries, unsigned ways) : ways_(ways)
{
    whisper_assert(entries >= ways && ways >= 1);
    numSets_ = entries / ways;
    whisper_assert(isPowerOfTwo(numSets_));
    sets_.assign(static_cast<size_t>(numSets_) * ways_, Entry{});
}

bool
Btb::lookup(uint64_t pc, uint64_t &target)
{
    ++clock_;
    size_t set = (pcIndexBits(pc) & (numSets_ - 1)) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = sets_[set + w];
        if (e.valid && e.pc == pc) {
            e.lastUse = clock_;
            target = e.target;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    ++clock_;
    size_t set = (pcIndexBits(pc) & (numSets_ - 1)) * ways_;
    Entry *victim = &sets_[set];
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = sets_[set + w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lastUse = clock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->pc = pc;
    victim->target = target;
    victim->valid = true;
    victim->lastUse = clock_;
}

void
Btb::reset()
{
    std::fill(sets_.begin(), sets_.end(), Entry{});
    clock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace whisper
