/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Used for the L1i/L2/L3 instruction path of the frontend model
 * (Table II: 32KB 8-way L1i, 1MB 16-way L2, 10MB 20-way L3).
 */

#ifndef WHISPER_UARCH_CACHE_HH
#define WHISPER_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

namespace whisper
{

/** A single cache level. */
class Cache
{
  public:
    /**
     * @param sizeBytes total capacity
     * @param ways associativity
     * @param lineBytes line size (power of two)
     */
    Cache(uint64_t sizeBytes, unsigned ways,
          unsigned lineBytes = 64);

    /**
     * Access the line containing @p addr; fills on miss.
     * @return true on hit
     */
    bool access(uint64_t addr);

    /** Probe without fill or LRU update. */
    bool contains(uint64_t addr) const;

    /** Install the line (prefetch path). @return true if new. */
    bool fill(uint64_t addr);

    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }
    unsigned lineBytes() const { return lineBytes_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    uint64_t lineFor(uint64_t addr) const;
    Way *findWay(uint64_t line);
    const Way *findWay(uint64_t line) const;

    unsigned ways_;
    unsigned lineBytes_;
    unsigned numSets_;
    std::vector<Way> sets_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Three-level instruction-side hierarchy with fixed latencies. */
class InstructionHierarchy
{
  public:
    struct Config
    {
        uint64_t l1Bytes = 32 * 1024;
        unsigned l1Ways = 8;
        uint64_t l2Bytes = 1024 * 1024;
        unsigned l2Ways = 16;
        uint64_t l3Bytes = 10 * 1024 * 1024;
        unsigned l3Ways = 20;
        unsigned l2Latency = 12;   //!< cycles on L1 miss, L2 hit
        unsigned l3Latency = 40;
        unsigned memLatency = 200;
    };

    InstructionHierarchy();
    explicit InstructionHierarchy(const Config &cfg);

    /**
     * Demand-fetch the line of @p addr through the hierarchy.
     * @return added latency in cycles (0 = L1 hit)
     */
    unsigned fetch(uint64_t addr);

    /** Prefetch the line into L1 (FDIP path); no latency charged. */
    void prefetch(uint64_t addr);

    void reset();

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

  private:
    Config cfg_;
    Cache l1_;
    Cache l2_;
    Cache l3_;
};

} // namespace whisper

#endif // WHISPER_UARCH_CACHE_HH
