/**
 * @file
 * Return Address Stack and Indirect-target BTB (Table II: 32-entry
 * RAS, 4096-entry IBTB).
 */

#ifndef WHISPER_UARCH_RAS_HH
#define WHISPER_UARCH_RAS_HH

#include <cstdint>
#include <vector>

#include "trace/global_history.hh"
#include "util/bits.hh"

namespace whisper
{

/**
 * Circular return-address stack. Overflow wraps (oldest entries are
 * silently overwritten), underflow predicts 0 — both behaviours of
 * real bounded RAS hardware.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries = 32)
        : stack_(entries, 0)
    {
    }

    /** Push the return address of a call. */
    void
    push(uint64_t returnAddr)
    {
        top_ = (top_ + 1) % stack_.size();
        stack_[top_] = returnAddr;
        if (depth_ < stack_.size())
            ++depth_;
    }

    /** Predict (and pop) the target of a return. */
    uint64_t
    pop()
    {
        if (depth_ == 0)
            return 0;
        uint64_t addr = stack_[top_];
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --depth_;
        return addr;
    }

    size_t capacity() const { return stack_.size(); }
    size_t depth() const { return depth_; }

    void
    reset()
    {
        std::fill(stack_.begin(), stack_.end(), 0);
        top_ = 0;
        depth_ = 0;
    }

  private:
    std::vector<uint64_t> stack_;
    size_t top_ = 0;
    size_t depth_ = 0;
};

/**
 * Indirect-target predictor: a direct-mapped target cache indexed by
 * PC xor folded path history (ITTAGE-flavoured single table, the
 * IBTB of Table II).
 */
class IndirectBtb
{
  public:
    explicit IndirectBtb(unsigned entries = 4096,
                         unsigned historyLen = 16)
        : logEntries_(ceilLog2(entries)),
          entries_(1ULL << logEntries_), history_(64)
    {
        view_ = history_.addFoldedView(historyLen, logEntries_);
    }

    /** Predicted target for the indirect branch at @p pc (0 if
     * never seen in this context). */
    uint64_t
    predict(uint64_t pc) const
    {
        return entries_[indexFor(pc)].target;
    }

    /** Train with the resolved target and advance path history. */
    void
    update(uint64_t pc, uint64_t target)
    {
        Entry &e = entries_[indexFor(pc)];
        e.target = target;
        // Fold target bits into the path history (direction-less
        // branches still shape indirect contexts).
        history_.push((target >> 4) & 1);
    }

    void
    reset()
    {
        std::fill(entries_.begin(), entries_.end(), Entry{});
        history_.reset();
    }

  private:
    struct Entry
    {
        uint64_t target = 0;
    };

    size_t
    indexFor(uint64_t pc) const
    {
        return (pcIndexBits(pc) ^ history_.foldedValue(view_)) &
               maskBits(logEntries_);
    }

    unsigned logEntries_;
    std::vector<Entry> entries_;
    GlobalHistory history_;
    size_t view_ = 0;
};

} // namespace whisper

#endif // WHISPER_UARCH_RAS_HH
