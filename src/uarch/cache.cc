#include "uarch/cache.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

Cache::Cache(uint64_t sizeBytes, unsigned ways, unsigned lineBytes)
    : ways_(ways), lineBytes_(lineBytes)
{
    whisper_assert(isPowerOfTwo(lineBytes));
    whisper_assert(ways >= 1);
    uint64_t lines = sizeBytes / lineBytes;
    whisper_assert(lines >= ways, "cache smaller than one set");
    numSets_ = static_cast<unsigned>(lines / ways);
    whisper_assert(numSets_ >= 1);
    sets_.assign(static_cast<size_t>(numSets_) * ways_, Way{});
}

uint64_t
Cache::lineFor(uint64_t addr) const
{
    return addr / lineBytes_;
}

Cache::Way *
Cache::findWay(uint64_t line)
{
    size_t set = (line % numSets_) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = sets_[set + w];
        if (way.valid && way.tag == line)
            return &way;
    }
    return nullptr;
}

const Cache::Way *
Cache::findWay(uint64_t line) const
{
    size_t set = (line % numSets_) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        const Way &way = sets_[set + w];
        if (way.valid && way.tag == line)
            return &way;
    }
    return nullptr;
}

bool
Cache::access(uint64_t addr)
{
    ++clock_;
    uint64_t line = lineFor(addr);
    if (Way *way = findWay(line)) {
        way->lastUse = clock_;
        ++hits_;
        return true;
    }
    ++misses_;
    fill(addr);
    return false;
}

bool
Cache::contains(uint64_t addr) const
{
    return findWay(lineFor(addr)) != nullptr;
}

bool
Cache::fill(uint64_t addr)
{
    ++clock_;
    uint64_t line = lineFor(addr);
    if (Way *way = findWay(line)) {
        way->lastUse = clock_;
        return false;
    }
    size_t set = (line % numSets_) * ways_;
    Way *victim = &sets_[set];
    for (unsigned w = 1; w < ways_; ++w) {
        Way &way = sets_[set + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    victim->tag = line;
    victim->valid = true;
    victim->lastUse = clock_;
    return true;
}

void
Cache::reset()
{
    std::fill(sets_.begin(), sets_.end(), Way{});
    clock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

InstructionHierarchy::InstructionHierarchy()
    : InstructionHierarchy(Config{})
{
}

InstructionHierarchy::InstructionHierarchy(const Config &cfg)
    : cfg_(cfg), l1_(cfg.l1Bytes, cfg.l1Ways),
      l2_(cfg.l2Bytes, cfg.l2Ways), l3_(cfg.l3Bytes, cfg.l3Ways)
{
}

unsigned
InstructionHierarchy::fetch(uint64_t addr)
{
    if (l1_.access(addr))
        return 0;
    if (l2_.access(addr))
        return cfg_.l2Latency;
    if (l3_.access(addr))
        return cfg_.l3Latency;
    return cfg_.memLatency;
}

void
InstructionHierarchy::prefetch(uint64_t addr)
{
    // FDIP fills through the hierarchy ahead of fetch; by the time
    // the fetch unit arrives the line is resident in L1.
    if (!l1_.contains(addr)) {
        l2_.access(addr);
        l3_.access(addr);
        l1_.fill(addr);
    }
}

void
InstructionHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    l3_.reset();
}

} // namespace whisper
