/**
 * @file
 * Trace-driven, cycle-approximate core model with a decoupled
 * frontend (FTQ + FDIP), mirroring the paper's Scarab configuration
 * (Table II): 6-wide OOO, 24-entry FTQ, 8192-entry 4-way BTB, and a
 * 32KB/1MB/10MB instruction-side cache hierarchy.
 *
 * The model charges three stall sources on top of the width-limited
 * base cost:
 *  - squash cycles on branch mispredictions (pipeline refill),
 *  - frontend stall cycles on I-cache misses that FDIP could not
 *    cover (FDIP coverage degrades as mispredictions keep resetting
 *    the run-ahead distance — the paper's SII-B coupling between
 *    prediction accuracy and frontend stalls),
 *  - BTB-miss re-steer bubbles for taken branches.
 */

#ifndef WHISPER_UARCH_PIPELINE_HH
#define WHISPER_UARCH_PIPELINE_HH

#include <cstdint>

#include "bp/branch_predictor.hh"
#include "trace/branch_source.hh"
#include "uarch/btb.hh"
#include "uarch/cache.hh"

namespace whisper
{

/** Core parameters (Table II defaults). */
struct PipelineConfig
{
    unsigned fetchWidth = 6;       //!< also the retire width
    unsigned ftqEntries = 24;      //!< frontend run-ahead cap
    unsigned robEntries = 224;     //!< documented; width-limited model
    unsigned mispredictPenalty = 15; //!< squash + refill cycles
    unsigned btbMissPenalty = 6;   //!< decode re-steer bubble
    unsigned btbEntries = 8192;
    unsigned btbWays = 4;
    unsigned rasEntries = 32;      //!< return address stack
    unsigned ibtbEntries = 4096;   //!< indirect-target predictor
    /**
     * Run-ahead (in FTQ-resident branches) needed for FDIP to fully
     * hide a demand miss; below it, hiding is proportional.
     */
    unsigned fdipCoverageDepth = 6;
    unsigned bytesPerInstruction = 16; //!< synthetic code layout
    /**
     * Backend cycles per instruction from everything this frontend
     * model does not simulate (data-cache misses, dependence
     * stalls, structural hazards). Calibrated so data center
     * workloads land near their reported CPI of ~0.7-1.2 and the
     * ideal-predictor limit study (Fig. 1) matches the paper's
     * magnitude.
     */
    double backendCpi = 0.45;
    InstructionHierarchy::Config icache;
};

/** Outcome of one pipeline run. */
struct PipelineStats
{
    uint64_t instructions = 0;
    uint64_t branches = 0;          //!< all control transfers
    uint64_t conditionals = 0;
    uint64_t mispredicts = 0;
    uint64_t btbMisses = 0;
    uint64_t rasMisses = 0;
    uint64_t indirectMisses = 0;
    uint64_t l1iMisses = 0;

    double baseCycles = 0.0;        //!< width-limited issue cycles
    double squashCycles = 0.0;      //!< misprediction stalls
    double frontendStallCycles = 0.0; //!< uncovered I-cache misses
    double btbStallCycles = 0.0;    //!< BTB/RAS re-steer bubbles
    double indirectStallCycles = 0.0; //!< indirect-target flushes

    double
    cycles() const
    {
        return baseCycles + squashCycles + frontendStallCycles +
               btbStallCycles + indirectStallCycles;
    }

    double ipc() const;
    /** Conditional-branch MPKI (CBP-5 accounting). */
    double mpki() const;
};

/** The core model. */
class PipelineModel
{
  public:
    explicit PipelineModel(const PipelineConfig &cfg
                           = PipelineConfig{});

    /**
     * Run @p source to exhaustion with @p predictor supplying
     * conditional directions. The predictor's onRecord() hook is
     * invoked for every record (Whisper's brhint modeling).
     */
    PipelineStats run(BranchSource &source,
                      BranchPredictor &predictor);

    const PipelineConfig &config() const { return cfg_; }

  private:
    PipelineConfig cfg_;
};

} // namespace whisper

#endif // WHISPER_UARCH_PIPELINE_HH
