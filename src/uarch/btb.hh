/**
 * @file
 * Branch Target Buffer model (Table II: 8192-entry, 4-way).
 */

#ifndef WHISPER_UARCH_BTB_HH
#define WHISPER_UARCH_BTB_HH

#include <cstdint>
#include <vector>

namespace whisper
{

/** Set-associative BTB with true-LRU replacement. */
class Btb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param ways associativity
     */
    explicit Btb(unsigned entries = 8192, unsigned ways = 4);

    /**
     * Look up the target for the branch at @p pc.
     * @param target receives the stored target on hit
     * @return true on hit
     */
    bool lookup(uint64_t pc, uint64_t &target);

    /** Install/refresh the mapping after resolution. */
    void update(uint64_t pc, uint64_t target);

    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned ways_;
    unsigned numSets_;
    std::vector<Entry> sets_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace whisper

#endif // WHISPER_UARCH_BTB_HH
