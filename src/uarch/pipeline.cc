#include "uarch/pipeline.hh"

#include <algorithm>

#include "uarch/ras.hh"
#include "util/logging.hh"

namespace whisper
{

double
PipelineStats::ipc() const
{
    double c = cycles();
    return c > 0.0 ? instructions / c : 0.0;
}

double
PipelineStats::mpki() const
{
    return instructions > 0
        ? 1000.0 * static_cast<double>(mispredicts) / instructions
        : 0.0;
}

PipelineModel::PipelineModel(const PipelineConfig &cfg) : cfg_(cfg)
{
    whisper_assert(cfg.fetchWidth >= 1);
    whisper_assert(cfg.fdipCoverageDepth >= 1);
}

PipelineStats
PipelineModel::run(BranchSource &source, BranchPredictor &predictor)
{
    PipelineStats stats;
    InstructionHierarchy icache(cfg_.icache);
    Btb btb(cfg_.btbEntries, cfg_.btbWays);
    ReturnAddressStack ras(cfg_.rasEntries);
    IndirectBtb ibtb(cfg_.ibtbEntries);

    source.rewind();
    BranchRecord rec;
    uint64_t fetchAddr = 0;
    unsigned runAhead = cfg_.ftqEntries;
    const unsigned lineBytes = 64;

    while (source.next(rec)) {
        uint64_t instrs = static_cast<uint64_t>(rec.instGap) + 1;
        stats.instructions += instrs;
        stats.baseCycles += static_cast<double>(instrs) *
                            (1.0 / cfg_.fetchWidth + cfg_.backendCpi);
        ++stats.branches;

        // Fetch the basic block feeding this branch. FDIP hides a
        // fraction of the miss latency proportional to how far ahead
        // the frontend is running.
        if (fetchAddr == 0)
            fetchAddr = rec.pc; // first record: start at the branch
        uint64_t blockBytes = instrs * cfg_.bytesPerInstruction;
        uint64_t firstLine = fetchAddr / lineBytes;
        uint64_t lastLine = (fetchAddr + blockBytes) / lineBytes;
        double hide = std::min(
            1.0, static_cast<double>(runAhead) /
                     cfg_.fdipCoverageDepth);
        for (uint64_t line = firstLine; line <= lastLine; ++line) {
            unsigned latency = icache.fetch(line * lineBytes);
            if (latency > 0) {
                ++stats.l1iMisses;
                stats.frontendStallCycles += latency * (1.0 - hide);
            }
        }

        if (rec.isConditional()) {
            ++stats.conditionals;
            bool pred = predictor.predict(rec.pc, rec.taken);
            predictor.update(rec.pc, rec.taken, pred);
            if (pred != rec.taken) {
                ++stats.mispredicts;
                stats.squashCycles += cfg_.mispredictPenalty;
                runAhead = 0;
            } else if (runAhead < cfg_.ftqEntries) {
                ++runAhead;
            }
        } else if (runAhead < cfg_.ftqEntries) {
            ++runAhead;
        }

        // Taken control transfers need a predicted target for the
        // frontend to redirect without a bubble. Returns resolve via
        // the RAS, indirect jumps via the IBTB, everything else via
        // the BTB.
        if (rec.taken && rec.target != 0) {
            switch (rec.kind) {
              case BranchKind::Return: {
                uint64_t predicted = ras.pop();
                if (predicted != rec.target) {
                    ++stats.rasMisses;
                    stats.btbStallCycles += cfg_.btbMissPenalty;
                    runAhead = runAhead / 2;
                }
                break;
              }
              case BranchKind::Indirect: {
                uint64_t predicted = ibtb.predict(rec.pc);
                if (predicted != rec.target) {
                    // Wrong indirect target: full squash, the
                    // frontend followed the wrong path.
                    ++stats.indirectMisses;
                    stats.indirectStallCycles +=
                        cfg_.mispredictPenalty;
                    runAhead = 0;
                }
                ibtb.update(rec.pc, rec.target);
                break;
              }
              default: {
                uint64_t target = 0;
                if (!btb.lookup(rec.pc, target) ||
                    target != rec.target) {
                    ++stats.btbMisses;
                    stats.btbStallCycles += cfg_.btbMissPenalty;
                    runAhead = runAhead / 2;
                }
                btb.update(rec.pc, rec.target);
                break;
              }
            }
            // Calls (direct or through an indirect dispatch site)
            // push their return address.
            if (rec.kind == BranchKind::Call ||
                rec.kind == BranchKind::Indirect) {
                ras.push(rec.pc + cfg_.bytesPerInstruction);
            }
        }

        predictor.onRecord(rec);

        fetchAddr = rec.taken && rec.target != 0
            ? rec.target
            : rec.pc + cfg_.bytesPerInstruction;
    }
    return stats;
}

} // namespace whisper
