/**
 * @file
 * Monotonic (bump-pointer) arena and a matching STL allocator.
 *
 * The sharded trace runner burns its time in tiny, identically-sized
 * scratch allocations made once per evaluation window per worker.
 * A monotonic arena turns each of those into a pointer bump: blocks
 * are grabbed from the heap in coarse chunks, handed out linearly,
 * and recycled wholesale by reset() — no per-allocation free, no
 * allocator lock contention between workers (each worker owns its
 * own arena).
 */

#ifndef WHISPER_UTIL_ARENA_HH
#define WHISPER_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/logging.hh"

namespace whisper
{

/**
 * Bump-pointer arena with block recycling.
 *
 * allocate() never frees; reset() rewinds to the first block and
 * reuses every block already acquired, so a steady-state caller
 * (reset per window, same allocation pattern each window) stops
 * touching the heap entirely after the first window.
 */
class MonotonicArena
{
  public:
    /** @param blockBytes granularity of heap requests; allocations
     *  larger than this get a dedicated block of their exact size. */
    explicit MonotonicArena(size_t blockBytes = 64 * 1024)
        : blockBytes_(blockBytes)
    {
        whisper_assert(blockBytes_ > 0);
    }

    MonotonicArena(const MonotonicArena &) = delete;
    MonotonicArena &operator=(const MonotonicArena &) = delete;
    MonotonicArena(MonotonicArena &&) = default;
    MonotonicArena &operator=(MonotonicArena &&) = default;

    /** Aligned bump allocation. @p align must be a power of two. */
    void *
    allocate(size_t bytes, size_t align = alignof(std::max_align_t))
    {
        whisper_assert(align > 0 && (align & (align - 1)) == 0);
        if (bytes == 0)
            bytes = 1;
        for (;;) {
            if (cur_ < blocks_.size()) {
                Block &b = blocks_[cur_];
                size_t at = (offset_ + align - 1) & ~(align - 1);
                if (at + bytes <= b.size) {
                    offset_ = at + bytes;
                    used_ += bytes;
                    return b.data.get() + at;
                }
                // Block exhausted: move on (the remainder is waste,
                // bounded by one allocation per block).
                ++cur_;
                offset_ = 0;
                continue;
            }
            // Out of recycled blocks — grow. Oversized requests get
            // an exact-fit block so blockBytes_ stays a granularity
            // hint, not a limit.
            size_t sz = bytes + align > blockBytes_ ? bytes + align
                                                    : blockBytes_;
            blocks_.push_back(Block{
                std::unique_ptr<unsigned char[]>(
                    new unsigned char[sz]),
                sz});
        }
    }

    /** Typed convenience: space for @p n objects of T (no ctor). */
    template <typename T>
    T *
    allocateArray(size_t n)
    {
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Rewind to the start, keeping every block for reuse. */
    void
    reset()
    {
        cur_ = 0;
        offset_ = 0;
        used_ = 0;
    }

    /** Release all blocks back to the heap. */
    void
    release()
    {
        blocks_.clear();
        reset();
    }

    // --- introspection (tests, reports) ---
    size_t blockCount() const { return blocks_.size(); }
    size_t usedBytes() const { return used_; }
    size_t
    reservedBytes() const
    {
        size_t total = 0;
        for (const auto &b : blocks_)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        size_t size;
    };

    size_t blockBytes_;
    std::vector<Block> blocks_;
    size_t cur_ = 0;    //!< block currently being bumped
    size_t offset_ = 0; //!< bump offset within blocks_[cur_]
    size_t used_ = 0;   //!< bytes handed out since reset()
};

/**
 * STL-compatible allocator over a MonotonicArena. deallocate() is a
 * no-op — memory comes back only via arena.reset() — so containers
 * using it must not outlive a reset. Intended for per-window scratch
 * containers in worker loops.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(MonotonicArena &arena) : arena_(&arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other)
        : arena_(other.arena())
    {
    }

    T *
    allocate(size_t n)
    {
        return static_cast<T *>(
            arena_->allocate(n * sizeof(T), alignof(T)));
    }

    void deallocate(T *, size_t) {}

    MonotonicArena *arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const
    {
        return arena_ == other.arena();
    }
    template <typename U>
    bool
    operator!=(const ArenaAllocator<U> &other) const
    {
        return !(*this == other);
    }

  private:
    MonotonicArena *arena_;
};

} // namespace whisper

#endif // WHISPER_UTIL_ARENA_HH
