#include "util/histogram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace whisper
{

BucketHistogram::BucketHistogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    whisper_assert(!bounds_.empty());
    for (size_t i = 1; i < bounds_.size(); ++i)
        whisper_assert(bounds_[i] > bounds_[i - 1],
                       "bounds must be strictly increasing");
}

void
BucketHistogram::add(uint64_t value, uint64_t weight)
{
    size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
               bounds_.begin();
    counts_[i] += weight;
    total_ += weight;
}

double
BucketHistogram::bucketFraction(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(total_);
}

std::string
BucketHistogram::bucketLabel(size_t i) const
{
    whisper_assert(i < counts_.size());
    if (i == bounds_.size())
        return std::to_string(bounds_.back()) + "+";
    uint64_t lo = i == 0 ? 0 : bounds_[i - 1] + 1;
    uint64_t hi = bounds_[i];
    if (lo == hi)
        return std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(hi);
}

void
CountHistogram::add(uint64_t key, uint64_t weight)
{
    counts_[key] += weight;
    total_ += weight;
}

double
CountHistogram::topFraction(size_t n) const
{
    if (total_ == 0 || n == 0)
        return 0.0;
    auto weights = sortedWeights();
    uint64_t sum = 0;
    for (size_t i = 0; i < std::min(n, weights.size()); ++i)
        sum += weights[i];
    return static_cast<double>(sum) / static_cast<double>(total_);
}

std::vector<uint64_t>
CountHistogram::sortedWeights() const
{
    std::vector<uint64_t> weights;
    weights.reserve(counts_.size());
    for (const auto &[key, weight] : counts_)
        weights.push_back(weight);
    std::sort(weights.begin(), weights.end(), std::greater<>());
    return weights;
}

} // namespace whisper
