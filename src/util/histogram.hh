/**
 * @file
 * Simple histogram containers used by the analysis passes.
 */

#ifndef WHISPER_UTIL_HISTOGRAM_HH
#define WHISPER_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace whisper
{

/**
 * A histogram over user-defined bucket upper bounds.
 *
 * Bucket i counts samples with value <= bound[i] (and greater than
 * bound[i-1]); a final overflow bucket counts everything beyond the
 * last bound.
 */
class BucketHistogram
{
  public:
    /** @param bounds strictly increasing inclusive upper bounds. */
    explicit BucketHistogram(std::vector<uint64_t> bounds);

    /** Record @p value with the given weight. */
    void add(uint64_t value, uint64_t weight = 1);

    /** Number of buckets including the overflow bucket. */
    size_t numBuckets() const { return counts_.size(); }

    uint64_t bucketCount(size_t i) const { return counts_.at(i); }
    uint64_t total() const { return total_; }

    /** Fraction of all weight falling in bucket @p i (0 if empty). */
    double bucketFraction(size_t i) const;

    /** Human-readable label for bucket @p i, e.g. "9-16" or "1024+". */
    std::string bucketLabel(size_t i) const;

    const std::vector<uint64_t> &bounds() const { return bounds_; }

  private:
    std::vector<uint64_t> bounds_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * An exact counting histogram over arbitrary integer keys, with
 * helpers for CDF-style summaries (used for Fig. 5's misprediction
 * concentration curves).
 */
class CountHistogram
{
  public:
    void add(uint64_t key, uint64_t weight = 1);

    uint64_t total() const { return total_; }
    size_t numKeys() const { return counts_.size(); }

    /**
     * Cumulative fraction of all weight captured by the @p n
     * heaviest keys.
     */
    double topFraction(size_t n) const;

    /** Weights sorted descending. */
    std::vector<uint64_t> sortedWeights() const;

    const std::map<uint64_t, uint64_t> &counts() const { return counts_; }

  private:
    std::map<uint64_t, uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace whisper

#endif // WHISPER_UTIL_HISTOGRAM_HH
