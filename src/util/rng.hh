/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (synthetic workloads,
 * randomized formula testing, CNN weight initialization) flows through
 * Rng so that every experiment is reproducible from a single seed.
 */

#ifndef WHISPER_UTIL_RNG_HH
#define WHISPER_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace whisper
{

/**
 * xoshiro256** pseudo-random generator.
 *
 * Small, fast, and high quality; seeded via splitmix64 so that any
 * 64-bit seed yields a well-mixed initial state.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed0001ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Gaussian sample (Box-Muller), mean 0 and the given std dev. */
    double nextGaussian(double stddev = 1.0);

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p = 0.5);

    /**
     * In-place Fisher-Yates shuffle.
     *
     * This is the algorithm Whisper's randomized formula testing uses
     * to derive its single global permutation of formula encodings.
     */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A random permutation of [0, n). */
    std::vector<uint32_t> permutation(uint32_t n);

  private:
    uint64_t s_[4];
};

} // namespace whisper

#endif // WHISPER_UTIL_RNG_HH
