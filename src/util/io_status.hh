/**
 * @file
 * Expected-style status for load paths.
 *
 * The original loaders returned bare bool, which collapsed "the file
 * is not there" (operator error, or a fresh deployment) and "the file
 * is there but damaged" (torn write, bit rot, version skew) into one
 * indistinguishable failure. Tools need to tell those apart: a
 * missing profile is retried or regenerated, a corrupt one is an
 * incident. IoStatus carries the distinction plus a human-readable
 * message naming what was wrong.
 */

#ifndef WHISPER_UTIL_IO_STATUS_HH
#define WHISPER_UTIL_IO_STATUS_HH

#include <string>
#include <utility>

namespace whisper
{

/** Outcome of a load/save operation. */
enum class IoCode
{
    Ok,      //!< operation succeeded
    Missing, //!< file absent or unreadable (ENOENT and friends)
    Corrupt, //!< file present but failed validation (magic, CRC,
             //!< bounds, truncation)
};

/** Load/save result: a code plus a diagnostic message. Contextually
 * convertible to bool (true = success) so `if (!load(...))` keeps
 * working at every call site. */
struct IoStatus
{
    IoCode code = IoCode::Ok;
    std::string message;

    explicit operator bool() const { return code == IoCode::Ok; }
    bool ok() const { return code == IoCode::Ok; }
    bool missing() const { return code == IoCode::Missing; }
    bool corrupt() const { return code == IoCode::Corrupt; }

    static IoStatus
    okStatus()
    {
        return {};
    }

    static IoStatus
    missingFile(const std::string &path)
    {
        return {IoCode::Missing, path + ": no such file or unreadable"};
    }

    static IoStatus
    corruptFile(const std::string &path, std::string why)
    {
        return {IoCode::Corrupt, path + ": " + std::move(why)};
    }
};

} // namespace whisper

#endif // WHISPER_UTIL_IO_STATUS_HH
