#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace whisper
{

TableReporter::TableReporter(std::string title) : title_(std::move(title))
{
}

void
TableReporter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TableReporter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TableReporter::addRow(const std::string &label,
                      const std::vector<double> &vals, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(vals.size() + 1);
    cells.push_back(label);
    for (double v : vals)
        cells.push_back(formatDouble(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
TableReporter::formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
TableReporter::print(std::ostream &os) const
{
    size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    auto grow = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i == 0) {
                os << row[i]
                   << std::string(width[i] - row[i].size(), ' ');
            } else {
                os << "  "
                   << std::string(width[i] - row[i].size(), ' ')
                   << row[i];
            }
        }
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    os << '\n';
}

void
TableReporter::print() const
{
    print(std::cout);
}

void
TableReporter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << row[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace whisper
