#include "util/rng.hh"

#include <cmath>
#include <numbers>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    // splitmix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (auto &s : s_) {
        x += 0x9e3779b97f4a7c15ULL;
        s = mix64(x);
    }
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    whisper_assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    whisper_assert(lo <= hi);
    return lo + static_cast<int64_t>(
        nextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian(double stddev)
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return stddev * std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::vector<uint32_t>
Rng::permutation(uint32_t n)
{
    std::vector<uint32_t> v(n);
    for (uint32_t i = 0; i < n; ++i)
        v[i] = i;
    shuffle(v);
    return v;
}

} // namespace whisper
