/**
 * @file
 * Saturating counter primitives used throughout the predictors.
 */

#ifndef WHISPER_UTIL_SAT_COUNTER_HH
#define WHISPER_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace whisper
{

/**
 * An unsigned saturating counter of a configurable bit width.
 *
 * The counter saturates at [0, 2^bits - 1]. Branch-prediction
 * convention: the upper half of the range means "predict taken".
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /** @param bits counter width; @param initial starting value. */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : _max((1u << bits) - 1), _value(initial)
    {
        whisper_assert(bits >= 1 && bits <= 16, "bits=", bits);
        whisper_assert(initial <= _max);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (_value < _max)
            ++_value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (_value > 0)
            --_value;
    }

    /** Move towards taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Predicted direction: true when in the upper half of the range. */
    bool predictTaken() const { return _value > _max / 2; }

    /** True when saturated at either end's outermost value. */
    bool isSaturated() const { return _value == 0 || _value == _max; }

    /** True for the two middle (weak) states. */
    bool
    isWeak() const
    {
        return _value == _max / 2 || _value == _max / 2 + 1;
    }

    unsigned value() const { return _value; }
    unsigned maxValue() const { return _max; }

    void
    set(unsigned v)
    {
        whisper_assert(v <= _max);
        _value = v;
    }

    /** Reset to the weakly-not-taken middle state. */
    void reset() { _value = _max / 2; }

  private:
    unsigned _max = 3;
    unsigned _value = 0;
};

/**
 * A signed saturating counter in [-2^(bits-1), 2^(bits-1) - 1],
 * as used by TAGE tagged entries and the statistical corrector.
 */
class SignedSatCounter
{
  public:
    SignedSatCounter() = default;

    explicit SignedSatCounter(unsigned bits, int initial = 0)
        : _min(-(1 << (bits - 1))), _max((1 << (bits - 1)) - 1),
          _value(initial)
    {
        whisper_assert(bits >= 2 && bits <= 16, "bits=", bits);
        whisper_assert(initial >= _min && initial <= _max);
    }

    void
    update(bool taken)
    {
        if (taken) {
            if (_value < _max)
                ++_value;
        } else {
            if (_value > _min)
                --_value;
        }
    }

    bool predictTaken() const { return _value >= 0; }

    /** Magnitude-based confidence: distance from the decision border. */
    int confidence() const { return _value >= 0 ? _value : -_value - 1; }

    bool isSaturated() const { return _value == _min || _value == _max; }

    /** Weak states are the two adjacent to the decision boundary. */
    bool isWeak() const { return _value == 0 || _value == -1; }

    int value() const { return _value; }
    int minValue() const { return _min; }
    int maxValue() const { return _max; }

    void
    set(int v)
    {
        whisper_assert(v >= _min && v <= _max);
        _value = v;
    }

  private:
    int _min = -2;
    int _max = 1;
    int _value = 0;
};

} // namespace whisper

#endif // WHISPER_UTIL_SAT_COUNTER_HH
