/**
 * @file
 * Small bit-manipulation helpers shared across predictor and hashing code.
 */

#ifndef WHISPER_UTIL_BITS_HH
#define WHISPER_UTIL_BITS_HH

#include <cstdint>
#include <cstddef>

namespace whisper
{

/** Return a mask with the low @p n bits set (n may be 0..64). */
inline uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Extract bits [lo, lo+len) of @p value. */
inline uint64_t
bitsOf(uint64_t value, unsigned lo, unsigned len)
{
    return (value >> lo) & maskBits(len);
}

/**
 * XOR-fold @p value down to @p width bits.
 *
 * This mirrors the index-hashing performed by real branch predictors
 * (and by Whisper's history hashing): the value is sliced into
 * width-bit chunks which are XORed together.
 */
inline uint64_t
foldXor(uint64_t value, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value;
    uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & maskBits(width);
        value >>= width;
    }
    return folded;
}

/**
 * Mix a 64-bit value into a well-distributed 64-bit hash
 * (splitmix64 finalizer). Used for table indexing and synthetic
 * workload decisions; cheap and deterministic.
 */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two hashes (boost::hash_combine flavoured, 64-bit). */
inline uint64_t
hashCombine(uint64_t seed, uint64_t v)
{
    return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                   (seed >> 2));
}

/**
 * Fold a branch PC into well-mixed low index bits.
 *
 * Predictor tables index with the PC's low bits; xoring two shifts
 * keeps the mapping dense for both byte-dense real code and the
 * 16-byte-aligned addresses the synthetic workloads emit.
 */
inline uint64_t
pcIndexBits(uint64_t pc)
{
    return (pc >> 1) ^ (pc >> 4);
}

/** True if @p v is a power of two (v != 0). */
inline bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** ceil(log2(v)) for v >= 1. */
inline unsigned
ceilLog2(uint64_t v)
{
    unsigned n = 0;
    uint64_t p = 1;
    while (p < v) {
        p <<= 1;
        ++n;
    }
    return n;
}

/** floor(log2(v)) for v >= 1. */
inline unsigned
floorLog2(uint64_t v)
{
    unsigned n = 0;
    while (v >>= 1)
        ++n;
    return n;
}

} // namespace whisper

#endif // WHISPER_UTIL_BITS_HH
