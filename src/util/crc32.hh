/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte buffers.
 *
 * Used to frame on-disk records (trace chunks, hint-store journal
 * entries) so that torn writes and bit flips are detected at read
 * time instead of silently corrupting profiles or deployed hints.
 */

#ifndef WHISPER_UTIL_CRC32_HH
#define WHISPER_UTIL_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace whisper
{

namespace detail
{

inline const std::array<uint32_t, 256> &
crc32Table()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** CRC-32 of @p len bytes at @p data, continuing from @p seed
 * (pass the previous return value to checksum in pieces). */
inline uint32_t
crc32(const void *data, size_t len, uint32_t seed = 0)
{
    const auto &table = detail::crc32Table();
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

} // namespace whisper

#endif // WHISPER_UTIL_CRC32_HH
