/**
 * @file
 * Fixed-width text table reporter.
 *
 * Every bench binary prints its figure/table through this class so
 * the output format stays uniform and diff-able against
 * EXPERIMENTS.md.
 */

#ifndef WHISPER_UTIL_TABLE_HH
#define WHISPER_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace whisper
{

/** A simple left-header, right-aligned-numbers table printer. */
class TableReporter
{
  public:
    /** @param title printed above the table. */
    explicit TableReporter(std::string title);

    /** Set column headers (first column is the row label). */
    void setHeader(std::vector<std::string> header);

    /** Append a row of pre-formatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Append a row with a label and numeric cells (fixed precision). */
    void addRow(const std::string &label, const std::vector<double> &vals,
                int precision = 2);

    /** Render to the stream (default std::cout). */
    void print(std::ostream &os) const;
    void print() const;

    /** Render as CSV (for plotting scripts). */
    void printCsv(std::ostream &os) const;

    static std::string formatDouble(double v, int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace whisper

#endif // WHISPER_UTIL_TABLE_HH
