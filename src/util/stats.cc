#include "util/stats.hh"

#include <cmath>

namespace whisper
{

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    sumSq_ += x * x;
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
RunningStat::variance() const
{
    if (n_ == 0)
        return 0.0;
    double m = mean();
    double v = sumSq_ / n_ - m * m;
    return v > 0.0 ? v : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentChange(double baseline, double value)
{
    if (baseline == 0.0)
        return 0.0;
    return 100.0 * (value - baseline) / baseline;
}

double
speedupPercent(double cyclesBase, double cyclesNew)
{
    if (cyclesNew == 0.0)
        return 0.0;
    return 100.0 * (cyclesBase / cyclesNew - 1.0);
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / values.size());
}

} // namespace whisper
