/**
 * @file
 * Scalar statistics accumulators used by simulators and benches.
 */

#ifndef WHISPER_UTIL_STATS_HH
#define WHISPER_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace whisper
{

/**
 * Accumulates a stream of doubles; reports count/mean/min/max/stddev.
 */
class RunningStat
{
  public:
    void add(double x);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Population variance / standard deviation. */
    double variance() const;
    double stddev() const;

  private:
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Ratio counter: hits out of total, e.g. prediction accuracy or
 * cache hit rate. Guards against division by zero.
 */
class RatioStat
{
  public:
    void
    record(bool hit)
    {
        ++total_;
        if (hit)
            ++hits_;
    }

    void
    add(uint64_t hits, uint64_t total)
    {
        hits_ += hits;
        total_ += total;
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return total_ - hits_; }
    uint64_t total() const { return total_; }

    double
    ratio() const
    {
        return total_ ? static_cast<double>(hits_) / total_ : 0.0;
    }

  private:
    uint64_t hits_ = 0;
    uint64_t total_ = 0;
};

/** Percent change of @p value over @p baseline, in percent units. */
double percentChange(double baseline, double value);

/** Speedup (%) implied by going from @p cyclesBase to @p cyclesNew. */
double speedupPercent(double cyclesBase, double cyclesNew);

/** Geometric mean of a vector of positive values (1.0 if empty). */
double geoMean(const std::vector<double> &values);

} // namespace whisper

#endif // WHISPER_UTIL_STATS_HH
