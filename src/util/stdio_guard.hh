/**
 * @file
 * EPIPE-safe stdout for CLI tools.
 *
 * `whisper_trace_stats trace.whrt | head` closes the pipe after ten
 * lines; without protection the next printf delivers SIGPIPE and the
 * tool dies mid-report with a 141. guardStdio() turns that into the
 * POSIX error path: writes to the dead pipe fail with EPIPE, the
 * stream's error flag latches, and the tool can finish (or cut its
 * output short via stdoutClosed()) and exit normally.
 */

#ifndef WHISPER_UTIL_STDIO_GUARD_HH
#define WHISPER_UTIL_STDIO_GUARD_HH

#include <csignal>
#include <cstdio>

namespace whisper
{

/** Call first thing in main(): SIGPIPE becomes EPIPE. */
inline void
guardStdio()
{
    std::signal(SIGPIPE, SIG_IGN);
}

/** True once a write to stdout has failed (reader went away).
 * Callers producing large reports should stop early — everything
 * further would be dropped anyway. */
inline bool
stdoutClosed()
{
    return std::ferror(stdout) != 0;
}

} // namespace whisper

#endif // WHISPER_UTIL_STDIO_GUARD_HH
