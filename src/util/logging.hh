/**
 * @file
 * Error and status reporting helpers in the gem5 tradition.
 *
 * panic()  -- internal invariant violated; aborts (library bug).
 * fatal()  -- the caller supplied an impossible configuration; exits.
 * warn()   -- something questionable happened, execution continues.
 * inform() -- plain status output.
 */

#ifndef WHISPER_UTIL_LOGGING_HH
#define WHISPER_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace whisper
{

namespace detail
{

/** Build a message string from any streamable argument pack. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] inline void
reportAndAbort(const char *kind, const char *file, int line,
               const std::string &msg)
{
    std::fprintf(stderr, "%s: %s:%d: %s\n", kind, file, line, msg.c_str());
    std::abort();
}

[[noreturn]] inline void
reportAndExit(const char *kind, const char *file, int line,
              const std::string &msg)
{
    std::fprintf(stderr, "%s: %s:%d: %s\n", kind, file, line, msg.c_str());
    std::exit(1);
}

} // namespace detail

} // namespace whisper

/** Internal invariant violated: abort with a message. */
#define whisper_panic(...)                                                  \
    ::whisper::detail::reportAndAbort(                                      \
        "panic", __FILE__, __LINE__,                                        \
        ::whisper::detail::formatMessage(__VA_ARGS__))

/** User/configuration error: exit(1) with a message. */
#define whisper_fatal(...)                                                  \
    ::whisper::detail::reportAndExit(                                       \
        "fatal", __FILE__, __LINE__,                                        \
        ::whisper::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning on stderr. */
#define whisper_warn(...)                                                   \
    std::fprintf(stderr, "warn: %s\n",                                      \
                 ::whisper::detail::formatMessage(__VA_ARGS__).c_str())

/** Status message on stdout. */
#define whisper_inform(...)                                                 \
    std::fprintf(stdout, "info: %s\n",                                      \
                 ::whisper::detail::formatMessage(__VA_ARGS__).c_str())

/** panic() unless the condition holds. */
#define whisper_assert(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::whisper::detail::reportAndAbort(                              \
                "assert", __FILE__, __LINE__,                               \
                ::whisper::detail::formatMessage(                           \
                    "failed condition '" #cond "' " __VA_ARGS__));          \
        }                                                                   \
    } while (0)

#endif // WHISPER_UTIL_LOGGING_HH
