/**
 * @file
 * Shard-parallel variant of the predictor-only trace driver.
 *
 * The branch stream is cut into fixed-record windows that a pool of
 * worker threads evaluates independently: each worker clones the
 * prototype predictor, warms the clone by replaying a prefix of the
 * stream (predict/update/onRecord, nothing counted), then evaluates
 * its window and writes the window's PredictorRunStats into a
 * pre-sized slot. Windows are claimed from a shared atomic cursor
 * (work stealing, as in service/TrainingPool) and merged in window
 * order, so the merged statistics depend only on the stream and the
 * configuration — never on thread timing or the job count.
 *
 * Two warm-up regimes:
 *
 *  - kFullPrefix (default): every window replays the entire stream
 *    prefix before it. The clone's state at window start is then
 *    *exactly* the serial runner's state at the same record, so the
 *    merged stats are bit-identical to runPredictor for any window
 *    size and any job count. Total work grows to ~W/2 times the
 *    serial run, so wall-clock only breaks even; use this mode when
 *    exactness matters more than speed (differential testing,
 *    regression goldens).
 *
 *  - bounded (warmupRecords = K): each window replays only the K
 *    records before it. Total work is W*(K + window) regardless of
 *    job count, so N jobs give a ~N-fold wall-clock speedup. The
 *    cross-window predictor state is approximated, but the
 *    approximation is the same every run: results remain
 *    bit-reproducible and independent of the job count.
 */

#ifndef WHISPER_SIM_SHARDED_RUNNER_HH
#define WHISPER_SIM_SHARDED_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "bp/branch_predictor.hh"
#include "sim/runner.hh"
#include "trace/branch_trace.hh"

namespace whisper
{

/** Knobs of a sharded run. */
struct ShardedRunConfig
{
    /** warmupRecords value selecting exact full-prefix warm-up. */
    static constexpr uint64_t kFullPrefix = ~0ULL;

    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 1;
    /** Records per evaluation window (shard granularity). */
    uint64_t windowRecords = 1'000'000;
    /** Records replayed to warm each window's clone; kFullPrefix
     * replays everything before the window (exact mode). */
    uint64_t warmupRecords = kFullPrefix;
    /** Fraction of the stream's instructions excluded from the
     * statistics, exactly as runPredictor's warmupFraction. */
    double statsWarmupFraction = 0.0;
};

/** Wall-clock timing of one evaluated window. Timing is reporting
 * only: it never feeds the statistics merge, so repeated runs give
 * bit-identical stats regardless of clocks or scheduling. */
struct ShardTiming
{
    uint64_t window = 0;       //!< window index
    uint64_t firstRecord = 0;  //!< stream offset of the window
    uint64_t records = 0;      //!< records evaluated
    uint64_t warmRecords = 0;  //!< records replayed for warm-up
    unsigned worker = 0;       //!< pool thread that ran it
    double warmSeconds = 0.0;
    double evalSeconds = 0.0;
};

/** Timing block of a whole sharded run. */
struct ShardedRunTiming
{
    double wallSeconds = 0.0;  //!< submit-to-merge wall clock
    unsigned jobs = 0;         //!< workers actually used
    std::vector<ShardTiming> perShard; //!< in window order
};

/** Result of runPredictorSharded. */
struct ShardedRunStats
{
    PredictorRunStats total;   //!< merged in window order
    std::vector<PredictorRunStats> perWindow;
    ShardedRunTiming timing;
};

/**
 * Shard-parallel equivalent of runPredictor over a materialized
 * record array. @p prototype is cloned once per window and must not
 * be mutated while the run is in flight; it is left untouched.
 */
ShardedRunStats runPredictorSharded(const BranchRecord *records,
                                    size_t count,
                                    const BranchPredictor &prototype,
                                    const ShardedRunConfig &cfg
                                    = ShardedRunConfig{});

/** Convenience overload over a BranchTrace. */
ShardedRunStats runPredictorSharded(const BranchTrace &trace,
                                    const BranchPredictor &prototype,
                                    const ShardedRunConfig &cfg
                                    = ShardedRunConfig{});

/** Convenience overload over a record vector. */
ShardedRunStats runPredictorSharded(
    const std::vector<BranchRecord> &records,
    const BranchPredictor &prototype,
    const ShardedRunConfig &cfg = ShardedRunConfig{});

/** Result of runPredictorAdaptiveSharded. */
struct AdaptiveShardedRunStats
{
    AdaptiveRunStats stats;    //!< same shape as the serial runner
    ShardedRunTiming timing;
};

/**
 * Shard-parallel equivalent of runPredictorAdaptive: the epochs are
 * the windows. The @p refresh hook is consulted serially, in epoch
 * order and with the same arguments as the serial runner (so the
 * whisperd training pipeline plugs in unchanged); the predictor
 * assigned to each epoch is cloned at that point and the epoch
 * evaluations then run on the pool, each clone warmed per @p cfg
 * (cfg.windowRecords is ignored — @p recordsPerEpoch cuts the
 * stream; cfg.statsWarmupFraction is ignored — the adaptive runner
 * counts every record, like runPredictorAdaptive).
 *
 * With full-prefix warm-up and a refresh that never swaps, the
 * result is bit-identical to runPredictorAdaptive. With swaps, each
 * epoch's clone is warmed on the prefix *as that predictor*, which
 * approximates the serial carry-over state deterministically.
 */
AdaptiveShardedRunStats runPredictorAdaptiveSharded(
    const BranchRecord *records, size_t count,
    BranchPredictor &initial, uint64_t recordsPerEpoch,
    const std::function<BranchPredictor *(uint64_t nextEpoch)>
        &refresh,
    const ShardedRunConfig &cfg = ShardedRunConfig{});

/** Convenience overload over a record vector. */
AdaptiveShardedRunStats runPredictorAdaptiveSharded(
    const std::vector<BranchRecord> &records,
    BranchPredictor &initial, uint64_t recordsPerEpoch,
    const std::function<BranchPredictor *(uint64_t nextEpoch)>
        &refresh,
    const ShardedRunConfig &cfg = ShardedRunConfig{});

} // namespace whisper

#endif // WHISPER_SIM_SHARDED_RUNNER_HH
