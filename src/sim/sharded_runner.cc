#include "sim/sharded_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/arena.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Records per predictMany() call. Large enough to amortize the
 * virtual dispatch, small enough that the per-worker scratch stays
 * cache-resident. */
constexpr size_t kBatchRecords = 4096;

/** Sum of (instGap + 1) over [first, last). */
uint64_t
instructionSpan(const BranchRecord *records, size_t first,
                size_t last)
{
    uint64_t sum = 0;
    for (size_t i = first; i < last; ++i)
        sum += static_cast<uint64_t>(records[i].instGap) + 1;
    return sum;
}

unsigned
resolveJobs(unsigned requested, size_t windows)
{
    unsigned jobs = requested;
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    if (windows > 0 && jobs > windows)
        jobs = static_cast<unsigned>(windows);
    return jobs;
}

/** A window's slice of the stream plus its warm-up prefix. */
struct WindowPlan
{
    size_t first = 0;          //!< first evaluated record
    size_t last = 0;           //!< one past the last evaluated record
    size_t warmFirst = 0;      //!< first warm-up record
    uint64_t instrBefore = 0;  //!< instructions in [0, first)
    const BranchPredictor *prototype = nullptr;
};

std::vector<WindowPlan>
planWindows(const BranchRecord *records, size_t count,
            uint64_t windowRecords, uint64_t warmupRecords)
{
    whisper_assert(windowRecords > 0);
    std::vector<WindowPlan> plans;
    uint64_t instr = 0;
    for (size_t first = 0; first < count;
         first += windowRecords) {
        WindowPlan plan;
        plan.first = first;
        plan.last = std::min<size_t>(count, first + windowRecords);
        plan.warmFirst = warmupRecords == ShardedRunConfig::kFullPrefix
            ? 0
            : first - std::min<size_t>(first, warmupRecords);
        plan.instrBefore = instr;
        instr += instructionSpan(records, plan.first, plan.last);
        plans.push_back(plan);
    }
    return plans;
}

/** Warm a clone then evaluate its window, mirroring runPredictor's
 * per-record accounting bit for bit. Both phases drive the clone
 * through predictMany() — one virtual call per kBatchRecords instead
 * of three per record — and take their scratch from the calling
 * worker's arena (reset between windows, so after the first window
 * the worker never touches the heap for scratch). */
PredictorRunStats
evaluateWindow(const BranchRecord *records, const WindowPlan &plan,
               uint64_t warmupLimit, MonotonicArena &arena,
               ShardTiming &timing)
{
    auto pred = plan.prototype->clone();
    whisper_assert(pred != nullptr,
                   "predictor returned a null clone");

    uint8_t *miss = arena.allocateArray<uint8_t>(kBatchRecords);

    auto warmStart = Clock::now();
    // Warm-up is the same per-record work minus statistics, so the
    // misprediction bytes are simply ignored.
    for (size_t i = plan.warmFirst; i < plan.first;
         i += kBatchRecords) {
        size_t n = std::min(kBatchRecords, plan.first - i);
        pred->predictMany(records + i, n, miss);
    }
    timing.warmSeconds = secondsSince(warmStart);
    timing.warmRecords = plan.first - plan.warmFirst;

    auto evalStart = Clock::now();
    PredictorRunStats stats;
    uint64_t seenInstructions = plan.instrBefore;
    for (size_t i = plan.first; i < plan.last; i += kBatchRecords) {
        size_t n = std::min(kBatchRecords, plan.last - i);
        pred->predictMany(records + i, n, miss);
        for (size_t k = 0; k < n; ++k) {
            const BranchRecord &rec = records[i + k];
            seenInstructions +=
                static_cast<uint64_t>(rec.instGap) + 1;
            bool counting = seenInstructions > warmupLimit;

            if (counting) {
                if (rec.isConditional()) {
                    ++stats.conditionals;
                    stats.mispredicts += miss[k];
                }
                stats.instructions +=
                    static_cast<uint64_t>(rec.instGap) + 1;
            } else {
                stats.warmupInstructions +=
                    static_cast<uint64_t>(rec.instGap) + 1;
            }
        }
    }
    timing.evalSeconds = secondsSince(evalStart);
    timing.firstRecord = plan.first;
    timing.records = plan.last - plan.first;
    return stats;
}

/** Run the window plans on a work-stealing pool and merge the
 * per-window results in window order. */
std::pair<std::vector<PredictorRunStats>, ShardedRunTiming>
runPlans(const BranchRecord *records,
         const std::vector<WindowPlan> &plans, uint64_t warmupLimit,
         unsigned jobs)
{
    std::vector<PredictorRunStats> perWindow(plans.size());
    ShardedRunTiming timing;
    timing.perShard.resize(plans.size());
    timing.jobs = resolveJobs(jobs, plans.size());

    auto wallStart = Clock::now();
    std::atomic<size_t> cursor{0};
    auto workerLoop = [&](unsigned workerId) {
        // Worker-owned scratch arena, recycled across this worker's
        // windows; never shared, so no synchronization.
        MonotonicArena arena;
        for (;;) {
            size_t w = cursor.fetch_add(1);
            if (w >= plans.size())
                return;
            arena.reset();
            ShardTiming &t = timing.perShard[w];
            t.window = w;
            t.worker = workerId;
            perWindow[w] = evaluateWindow(records, plans[w],
                                          warmupLimit, arena, t);
        }
    };

    if (timing.jobs <= 1) {
        workerLoop(0);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(timing.jobs);
        for (unsigned i = 0; i < timing.jobs; ++i)
            workers.emplace_back(workerLoop, i);
        for (auto &t : workers)
            t.join();
    }
    timing.wallSeconds = secondsSince(wallStart);
    return {std::move(perWindow), std::move(timing)};
}

PredictorRunStats
mergeWindowStats(const std::vector<PredictorRunStats> &perWindow)
{
    PredictorRunStats total;
    for (const auto &w : perWindow) {
        total.instructions += w.instructions;
        total.conditionals += w.conditionals;
        total.mispredicts += w.mispredicts;
        total.warmupInstructions += w.warmupInstructions;
    }
    return total;
}

} // namespace

ShardedRunStats
runPredictorSharded(const BranchRecord *records, size_t count,
                    const BranchPredictor &prototype,
                    const ShardedRunConfig &cfg)
{
    whisper_assert(cfg.statsWarmupFraction >= 0.0 &&
                   cfg.statsWarmupFraction < 1.0);

    ShardedRunStats out;
    if (count == 0)
        return out;

    auto plans = planWindows(records, count, cfg.windowRecords,
                             cfg.warmupRecords);
    for (auto &plan : plans)
        plan.prototype = &prototype;

    // Same warm-up threshold the serial runner derives from its
    // counting pre-pass: a fraction of the whole stream's
    // instructions.
    uint64_t totalInstructions =
        plans.back().instrBefore +
        instructionSpan(records, plans.back().first,
                        plans.back().last);
    uint64_t warmupLimit = static_cast<uint64_t>(
        cfg.statsWarmupFraction * totalInstructions);

    auto [perWindow, timing] =
        runPlans(records, plans, warmupLimit, cfg.jobs);
    out.perWindow = std::move(perWindow);
    out.timing = std::move(timing);
    out.total = mergeWindowStats(out.perWindow);
    return out;
}

ShardedRunStats
runPredictorSharded(const BranchTrace &trace,
                    const BranchPredictor &prototype,
                    const ShardedRunConfig &cfg)
{
    if (trace.empty())
        return ShardedRunStats{};
    return runPredictorSharded(&trace[0], trace.size(), prototype,
                               cfg);
}

ShardedRunStats
runPredictorSharded(const std::vector<BranchRecord> &records,
                    const BranchPredictor &prototype,
                    const ShardedRunConfig &cfg)
{
    return runPredictorSharded(records.data(), records.size(),
                               prototype, cfg);
}

AdaptiveShardedRunStats
runPredictorAdaptiveSharded(
    const BranchRecord *records, size_t count,
    BranchPredictor &initial, uint64_t recordsPerEpoch,
    const std::function<BranchPredictor *(uint64_t nextEpoch)>
        &refresh,
    const ShardedRunConfig &cfg)
{
    whisper_assert(recordsPerEpoch > 0);

    AdaptiveShardedRunStats out;
    if (count == 0)
        return out;

    auto plans = planWindows(records, count, recordsPerEpoch,
                             cfg.warmupRecords);

    // Serial assignment pass: consult refresh at every completed
    // epoch boundary with exactly the serial runner's arguments and
    // snapshot (clone) the predictor each epoch evaluates with. The
    // pool below reconstructs the snapshot's warm state by prefix
    // replay instead of inheriting it from the previous epoch.
    std::vector<std::unique_ptr<BranchPredictor>> protos;
    protos.reserve(plans.size());
    BranchPredictor *current = &initial;
    for (size_t e = 0; e < plans.size(); ++e) {
        protos.push_back(current->clone());
        plans[e].prototype = protos.back().get();
        bool complete =
            plans[e].last - plans[e].first == recordsPerEpoch;
        if (complete && refresh) {
            BranchPredictor *next =
                refresh(static_cast<uint64_t>(e) + 1);
            if (next && next != current) {
                current = next;
                ++out.stats.predictorSwaps;
            }
        }
    }

    // The adaptive runner counts every record (no stats warm-up).
    auto [perWindow, timing] = runPlans(records, plans, 0, cfg.jobs);
    out.timing = std::move(timing);
    out.stats.perEpoch = std::move(perWindow);
    out.stats.total = mergeWindowStats(out.stats.perEpoch);
    return out;
}

AdaptiveShardedRunStats
runPredictorAdaptiveSharded(
    const std::vector<BranchRecord> &records,
    BranchPredictor &initial, uint64_t recordsPerEpoch,
    const std::function<BranchPredictor *(uint64_t nextEpoch)>
        &refresh,
    const ShardedRunConfig &cfg)
{
    return runPredictorAdaptiveSharded(records.data(),
                                       records.size(), initial,
                                       recordsPerEpoch, refresh,
                                       cfg);
}

} // namespace whisper
