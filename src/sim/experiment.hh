/**
 * @file
 * Experiment orchestration shared by tests, examples, and every
 * bench binary: profile an application on its training input, train
 * a technique, and evaluate it on a test input — the paper's
 * cross-input methodology (SV-A).
 */

#ifndef WHISPER_SIM_EXPERIMENT_HH
#define WHISPER_SIM_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bp/branch_predictor.hh"
#include "bp/tage_scl.hh"
#include "branchnet/branchnet_predictor.hh"
#include "core/hint_injection.hh"
#include "core/whisper_predictor.hh"
#include "core/whisper_trainer.hh"
#include "rombf/rombf_predictor.hh"
#include "sim/profiler.hh"
#include "sim/runner.hh"
#include "uarch/pipeline.hh"
#include "workloads/app_workload.hh"

namespace whisper
{

/** Shared experiment knobs. */
struct ExperimentConfig
{
    uint64_t trainRecords = 2'000'000; //!< profile-trace length
    uint64_t testRecords = 1'500'000;  //!< evaluation-trace length
    /** Default stats warm-up for evaluation runs (cf. Fig. 22: the
     * paper's headline numbers treat half the trace as warm-up). */
    double evalWarmup = 0.5;
    unsigned tageBudgetKB = 64;       //!< baseline predictor size
    unsigned mtageBudgetKB = 4096;    //!< "unlimited" reference
    WhisperConfig whisper;
    ProfileOptions profile;
    HintInjector::Config injector;
    PipelineConfig pipeline;
};

/** Process-wide cache of all 2^15 formula truth tables. */
const TruthTableCache &globalTruthTables();

/** Fresh TAGE-SC-L at the given budget. */
std::unique_ptr<BranchPredictor> makeTage(unsigned budgetKB);

/** Fresh MTAGE-SC stand-in (very large TAGE-SC-L). */
std::unique_ptr<BranchPredictor> makeMtage(const ExperimentConfig &cfg);

/**
 * Profile @p app's training input under a fresh baseline TAGE of
 * the configured size. @p store optionally collects BranchNet
 * samples.
 */
BranchProfile profileApp(const AppConfig &app, uint32_t input,
                         const ExperimentConfig &cfg,
                         BranchNetSampleStore *store = nullptr);

/** Everything Whisper's offline pass produces for one application. */
struct WhisperBuild
{
    std::vector<TrainedHint> hints;
    std::vector<HintPlacement> placements;
    TrainingStats stats;
    InjectionOverhead overhead;
};

/**
 * Run Whisper's offline analysis: train hints on @p profile and
 * place brhints on the training trace.
 *
 * @param fractionOverride when >= 0, overrides the config's
 *        randomized-testing fraction (Fig. 15 sweep)
 */
WhisperBuild trainWhisper(const AppConfig &app, uint32_t trainInput,
                          const BranchProfile &profile,
                          const ExperimentConfig &cfg,
                          double fractionOverride = -1.0);

/** Same, with a caller-configured trainer (ablation studies). */
WhisperBuild trainWhisperWith(const AppConfig &app,
                              uint32_t trainInput,
                              const BranchProfile &profile,
                              const ExperimentConfig &cfg,
                              const WhisperTrainer &trainer);

/** Whisper hybrid over a fresh baseline TAGE. */
std::unique_ptr<BranchPredictor>
makeWhisperPredictor(const ExperimentConfig &cfg,
                     const WhisperBuild &build);

/** ROMBF hybrid (4- or 8-bit variant) over a fresh baseline TAGE. */
std::unique_ptr<BranchPredictor>
makeRombfPredictor(unsigned bits, const BranchProfile &profile,
                   const ExperimentConfig &cfg,
                   RombfTrainingStats *stats = nullptr);

/**
 * BranchNet hybrid over a fresh baseline TAGE.
 * @param budgetBytes metadata budget; 0 = unlimited variant
 */
std::unique_ptr<BranchPredictor>
makeBranchNetPredictor(uint64_t budgetBytes,
                       const BranchProfile &profile,
                       const BranchNetSampleStore &store,
                       const ExperimentConfig &cfg,
                       BranchNetTrainingStats *stats = nullptr);

/** Accuracy run of @p predictor on @p app's test input. */
PredictorRunStats evalApp(const AppConfig &app, uint32_t input,
                          const ExperimentConfig &cfg,
                          BranchPredictor &predictor,
                          double warmupFraction = 0.0);

/** Timing run on the pipeline model. */
PipelineStats evalPipeline(const AppConfig &app, uint32_t input,
                           const ExperimentConfig &cfg,
                           BranchPredictor &predictor);

/** Misprediction reduction (%) of @p treated vs @p baseline. */
double reductionPercent(const PredictorRunStats &baseline,
                        const PredictorRunStats &treated);

} // namespace whisper

#endif // WHISPER_SIM_EXPERIMENT_HH
