#include "sim/experiment.hh"

#include "util/logging.hh"

namespace whisper
{

const TruthTableCache &
globalTruthTables()
{
    static const TruthTableCache cache(8);
    return cache;
}

std::unique_ptr<BranchPredictor>
makeTage(unsigned budgetKB)
{
    return std::make_unique<TageScl>(
        TageSclConfig::forBudgetKB(budgetKB));
}

std::unique_ptr<BranchPredictor>
makeMtage(const ExperimentConfig &cfg)
{
    return makeTage(cfg.mtageBudgetKB);
}

BranchProfile
profileApp(const AppConfig &app, uint32_t input,
           const ExperimentConfig &cfg, BranchNetSampleStore *store)
{
    AppWorkload trace(app, input, cfg.trainRecords);
    auto baseline = makeTage(cfg.tageBudgetKB);
    ProfileOptions opt = cfg.profile;
    opt.branchNetStore = store;
    return collectProfile(trace, *baseline, cfg.whisper, opt);
}

WhisperBuild
trainWhisperWith(const AppConfig &app, uint32_t trainInput,
                 const BranchProfile &profile,
                 const ExperimentConfig &cfg,
                 const WhisperTrainer &trainer)
{
    WhisperBuild build;
    build.hints = trainer.train(profile, &build.stats);

    AppWorkload trace(app, trainInput, cfg.trainRecords);
    HintInjector injector(cfg.injector);
    build.placements = injector.place(trace, build.hints);
    build.overhead = HintInjector::overhead(
        build.placements, trace.staticInstructions(),
        profile.totalInstructions);
    return build;
}

WhisperBuild
trainWhisper(const AppConfig &app, uint32_t trainInput,
             const BranchProfile &profile,
             const ExperimentConfig &cfg, double fractionOverride)
{
    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    if (fractionOverride >= 0.0)
        trainer.setCandidateFraction(fractionOverride);
    return trainWhisperWith(app, trainInput, profile, cfg, trainer);
}

std::unique_ptr<BranchPredictor>
makeWhisperPredictor(const ExperimentConfig &cfg,
                     const WhisperBuild &build)
{
    return std::make_unique<WhisperPredictor>(
        makeTage(cfg.tageBudgetKB), cfg.whisper, globalTruthTables(),
        build.hints, build.placements);
}

std::unique_ptr<BranchPredictor>
makeRombfPredictor(unsigned bits, const BranchProfile &profile,
                   const ExperimentConfig &cfg,
                   RombfTrainingStats *stats)
{
    // The trainer owns the enumeration the predictor references, so
    // keep one per variant alive for the process.
    static RombfTrainer trainer4(4);
    static RombfTrainer trainer8(8);
    whisper_assert(bits == 4 || bits == 8);
    const RombfTrainer &trainer = bits == 4 ? trainer4 : trainer8;
    auto hints = trainer.train(profile, stats);
    return std::make_unique<RombfPredictor>(
        makeTage(cfg.tageBudgetKB), trainer, hints);
}

std::unique_ptr<BranchPredictor>
makeBranchNetPredictor(uint64_t budgetBytes,
                       const BranchProfile &profile,
                       const BranchNetSampleStore &store,
                       const ExperimentConfig &cfg,
                       BranchNetTrainingStats *stats)
{
    BranchNetTrainer trainer(budgetBytes);
    auto models = trainer.train(profile, store, stats);
    std::string label = budgetBytes == 0
        ? "unlimited-branchnet"
        : std::to_string(budgetBytes / 1024) + "kb-branchnet";
    return std::make_unique<BranchNetPredictor>(
        makeTage(cfg.tageBudgetKB), std::move(models), label);
}

PredictorRunStats
evalApp(const AppConfig &app, uint32_t input,
        const ExperimentConfig &cfg, BranchPredictor &predictor,
        double warmupFraction)
{
    AppWorkload trace(app, input, cfg.testRecords);
    return runPredictor(trace, predictor, warmupFraction);
}

PipelineStats
evalPipeline(const AppConfig &app, uint32_t input,
             const ExperimentConfig &cfg,
             BranchPredictor &predictor)
{
    AppWorkload trace(app, input, cfg.testRecords);
    PipelineModel model(cfg.pipeline);
    return model.run(trace, predictor);
}

double
reductionPercent(const PredictorRunStats &baseline,
                 const PredictorRunStats &treated)
{
    if (baseline.mispredicts == 0)
        return 0.0;
    return 100.0 *
           (1.0 - static_cast<double>(treated.mispredicts) /
                      static_cast<double>(baseline.mispredicts));
}

} // namespace whisper
