#include "sim/classifier.hh"

#include <unordered_map>
#include <unordered_set>

#include "trace/global_history.hh"
#include "util/bits.hh"

namespace whisper
{

const char *
mispredictClassName(MispredictClass c)
{
    switch (c) {
      case MispredictClass::Compulsory:
        return "Compulsory";
      case MispredictClass::Capacity:
        return "Capacity";
      case MispredictClass::Conflict:
        return "Conflict";
      case MispredictClass::ConditionalOnData:
        return "Conditional-on-data";
    }
    return "?";
}

MispredictBreakdown
classifyMispredictions(BranchSource &source,
                       BranchPredictor &predictor,
                       const ClassifierConfig &cfg)
{
    struct SubstreamInfo
    {
        uint64_t lastAccess = 0;
        uint64_t takenCount = 0;
        uint64_t notTakenCount = 0;
    };

    std::unordered_map<uint64_t, SubstreamInfo> substreams;
    std::unordered_set<uint64_t> knownPcs;
    GlobalHistory history(2 * cfg.substreamHistLen);
    size_t view = history.addFoldedView(cfg.substreamHistLen,
                                        cfg.substreamHashBits);

    MispredictBreakdown result;
    uint64_t accessCounter = 0;

    source.rewind();
    BranchRecord rec;
    while (source.next(rec)) {
        if (!rec.isConditional()) {
            predictor.onRecord(rec);
            continue;
        }
        bool pred = predictor.predict(rec.pc, rec.taken);
        predictor.update(rec.pc, rec.taken, pred);
        predictor.onRecord(rec);

        uint64_t key = hashCombine(
            mix64(rec.pc),
            static_cast<uint64_t>(history.foldedValue(view)));
        ++accessCounter;

        bool newPc = knownPcs.insert(rec.pc).second;
        auto [it, newSubstream] = substreams.try_emplace(key);
        SubstreamInfo &info = it->second;

        if (pred != rec.taken) {
            ++result.total;
            MispredictClass cls;
            if (newPc) {
                // First reference of the static branch itself.
                cls = MispredictClass::Compulsory;
            } else if (newSubstream) {
                // Known branch, never-seen history context: a
                // predictor with enough capacity would have retained
                // the branch's other contexts and generalized; a
                // capacity-bound one starts over (the working set of
                // substreams exceeds the tables — paper SII-C).
                cls = MispredictClass::Capacity;
            } else {
                uint64_t occurrences =
                    info.takenCount + info.notTakenCount;
                double minority = occurrences
                    ? static_cast<double>(
                          std::min(info.takenCount,
                                   info.notTakenCount)) /
                          occurrences
                    : 0.0;
                if (occurrences >= cfg.minOccurrences &&
                    minority >= cfg.dataThreshold) {
                    cls = MispredictClass::ConditionalOnData;
                } else if (accessCounter - info.lastAccess >
                           cfg.capacityDistance) {
                    cls = MispredictClass::Capacity;
                } else {
                    cls = MispredictClass::Conflict;
                }
            }
            ++result.counts[static_cast<size_t>(cls)];
        }

        info.lastAccess = accessCounter;
        if (rec.taken)
            ++info.takenCount;
        else
            ++info.notTakenCount;
        history.push(rec.taken);
    }
    return result;
}

} // namespace whisper
