#include "sim/runner.hh"

#include "util/logging.hh"

namespace whisper
{

PredictorRunStats
runPredictor(BranchSource &source, BranchPredictor &predictor,
             double warmupFraction, uint64_t totalInstructionsHint)
{
    whisper_assert(warmupFraction >= 0.0 && warmupFraction < 1.0);

    uint64_t total = totalInstructionsHint;
    if (warmupFraction > 0.0 && total == 0) {
        // Pre-pass to learn the stream's instruction count.
        source.rewind();
        BranchRecord rec;
        while (source.next(rec))
            total += static_cast<uint64_t>(rec.instGap) + 1;
    }
    uint64_t warmupLimit =
        static_cast<uint64_t>(warmupFraction * total);

    PredictorRunStats stats;
    source.rewind();
    BranchRecord rec;
    uint64_t seenInstructions = 0;
    while (source.next(rec)) {
        seenInstructions += static_cast<uint64_t>(rec.instGap) + 1;
        bool counting = seenInstructions > warmupLimit;

        if (rec.isConditional()) {
            bool pred = predictor.predict(rec.pc, rec.taken);
            predictor.update(rec.pc, rec.taken, pred);
            if (counting) {
                ++stats.conditionals;
                if (pred != rec.taken)
                    ++stats.mispredicts;
            }
        }
        predictor.onRecord(rec);

        if (counting)
            stats.instructions +=
                static_cast<uint64_t>(rec.instGap) + 1;
        else
            stats.warmupInstructions +=
                static_cast<uint64_t>(rec.instGap) + 1;
    }
    return stats;
}

AdaptiveRunStats
runPredictorAdaptive(
    BranchSource &source, BranchPredictor &initial,
    uint64_t recordsPerEpoch,
    const std::function<BranchPredictor *(uint64_t nextEpoch)>
        &refresh)
{
    whisper_assert(recordsPerEpoch > 0);

    AdaptiveRunStats out;
    BranchPredictor *current = &initial;
    PredictorRunStats epoch;
    uint64_t inEpoch = 0;

    auto closeEpoch = [&]() {
        out.total.instructions += epoch.instructions;
        out.total.conditionals += epoch.conditionals;
        out.total.mispredicts += epoch.mispredicts;
        out.perEpoch.push_back(epoch);
        epoch = PredictorRunStats{};
        inEpoch = 0;
    };

    source.rewind();
    BranchRecord rec;
    while (source.next(rec)) {
        if (rec.isConditional()) {
            bool pred = current->predict(rec.pc, rec.taken);
            current->update(rec.pc, rec.taken, pred);
            ++epoch.conditionals;
            if (pred != rec.taken)
                ++epoch.mispredicts;
        }
        current->onRecord(rec);
        epoch.instructions += static_cast<uint64_t>(rec.instGap) + 1;

        if (++inEpoch >= recordsPerEpoch) {
            closeEpoch();
            if (refresh) {
                BranchPredictor *next =
                    refresh(out.perEpoch.size());
                if (next && next != current) {
                    current = next;
                    ++out.predictorSwaps;
                }
            }
        }
    }
    if (inEpoch > 0)
        closeEpoch();
    return out;
}

} // namespace whisper
