/**
 * @file
 * In-production profile collection (paper SIV, step 1).
 *
 * Two passes over the training trace stand in for Intel LBR + PT:
 * pass 1 runs the baseline predictor and records per-branch
 * execution/misprediction counts (LBR's prediction-accuracy bit);
 * pass 2 selects the hard branches and fills their hashed-history
 * and raw-history sample tables (decoded PT trace), optionally also
 * gathering BranchNet training samples.
 */

#ifndef WHISPER_SIM_PROFILER_HH
#define WHISPER_SIM_PROFILER_HH

#include <cstdint>

#include "bp/branch_predictor.hh"
#include "branchnet/branchnet_trainer.hh"
#include "core/profile.hh"
#include "trace/branch_source.hh"

namespace whisper
{

/** Hard-branch selection knobs. */
struct ProfileOptions
{
    /** Cap on branches with detailed tables (memory bound). */
    unsigned maxHardBranches = 2048;
    /** A branch must mispredict at least this often... */
    uint64_t minMispredicts = 16;
    /** ...and be below this baseline accuracy to count as hard. */
    double maxAccuracy = 0.9975;
    /**
     * Leading fraction of the trace excluded from all profile
     * statistics (the predictor still trains through it). Without
     * this, cold-start mispredictions make the baseline look worse
     * than its steady state and the trainer emits overconfident
     * hints.
     */
    double statsWarmupFraction = 0.3;
    /** Optional BranchNet sample collection during pass 2. */
    BranchNetSampleStore *branchNetStore = nullptr;
};

/**
 * Collect a full profile of @p trace under @p baseline.
 * The predictor is NOT reset first (pass a fresh instance).
 */
BranchProfile collectProfile(BranchSource &trace,
                             BranchPredictor &baseline,
                             const WhisperConfig &cfg,
                             const ProfileOptions &opt
                             = ProfileOptions{});

} // namespace whisper

#endif // WHISPER_SIM_PROFILER_HH
