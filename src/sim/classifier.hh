/**
 * @file
 * Misprediction classification (paper SII-C, Fig. 3).
 *
 * Each misprediction is attributed to one of four classes by
 * analyzing consecutive accesses of the branch's substream (PC
 * combined with folded history):
 *
 *  - Compulsory: first access of the substream;
 *  - Conditional-on-data: the substream's outcome does not correlate
 *    with history (the same substream keeps flipping direction);
 *  - Capacity: the substream recurred, but so far apart that any
 *    capacity-bounded table would have evicted it (approximated by
 *    the access distance since the previous occurrence);
 *  - Conflict: the substream recurred recently with a stable outcome
 *    yet was still mispredicted.
 */

#ifndef WHISPER_SIM_CLASSIFIER_HH
#define WHISPER_SIM_CLASSIFIER_HH

#include <array>
#include <cstdint>

#include "bp/branch_predictor.hh"
#include "trace/branch_source.hh"

namespace whisper
{

/** The four classes of Fig. 3. */
enum class MispredictClass : uint8_t
{
    Compulsory = 0,
    Capacity = 1,
    Conflict = 2,
    ConditionalOnData = 3,
};

const char *mispredictClassName(MispredictClass c);

/** Classifier knobs. */
struct ClassifierConfig
{
    /** History length folded into the substream identity. */
    unsigned substreamHistLen = 24;
    /** Folded width of that history. */
    unsigned substreamHashBits = 12;
    /**
     * Substream-access distance beyond which a recurring substream
     * counts as capacity-evicted (matched to the predictor's entry
     * count).
     */
    uint64_t capacityDistance = 1ULL << 15;
    /**
     * Minority-outcome fraction above which a substream is deemed
     * conditional-on-data.
     */
    double dataThreshold = 0.20;
    /** Minimum substream occurrences before the entropy test. */
    uint64_t minOccurrences = 4;
};

/** Result: misprediction counts per class. */
struct MispredictBreakdown
{
    std::array<uint64_t, 4> counts{};
    uint64_t total = 0;

    double
    fraction(MispredictClass c) const
    {
        return total
            ? static_cast<double>(
                  counts[static_cast<size_t>(c)]) / total
            : 0.0;
    }
};

/** Run @p predictor over @p source, classifying every mispredict. */
MispredictBreakdown
classifyMispredictions(BranchSource &source,
                       BranchPredictor &predictor,
                       const ClassifierConfig &cfg
                       = ClassifierConfig{});

} // namespace whisper

#endif // WHISPER_SIM_CLASSIFIER_HH
