#include "sim/analysis.hh"

#include <unordered_map>

#include "util/logging.hh"

namespace whisper
{

CountHistogram
mispredictsPerBranch(BranchSource &source,
                     BranchPredictor &predictor)
{
    CountHistogram hist;
    source.rewind();
    BranchRecord rec;
    while (source.next(rec)) {
        if (!rec.isConditional()) {
            predictor.onRecord(rec);
            continue;
        }
        bool pred = predictor.predict(rec.pc, rec.taken);
        predictor.update(rec.pc, rec.taken, pred);
        predictor.onRecord(rec);
        if (pred != rec.taken)
            hist.add(rec.pc);
    }
    return hist;
}

BucketHistogram
mispredictsByHistoryLength(const BranchProfile &profile,
                           double explainThreshold)
{
    BucketHistogram hist({8, 16, 32, 64, 128, 256, 512, 1024});
    const auto &lengths = profile.lengths();

    for (const BranchProfileEntry *e : profile.hardBranches()) {
        if (e->baselineMispredicts == 0 || e->executions == 0)
            continue;

        // Oracle accuracy at each candidate length; pick the
        // shortest length whose oracle removes explainThreshold of
        // the bias-prediction mispredictions.
        uint64_t biasMiss = e->biasMispredicts();
        unsigned attributed = 2048; // beyond the last bucket
        if (biasMiss == 0) {
            attributed = 1;
        } else {
            for (size_t l = 0; l < lengths.size(); ++l) {
                uint64_t oracleMiss =
                    e->byLength[l].oracleMispredicts();
                double removed = 1.0 -
                    static_cast<double>(oracleMiss) / biasMiss;
                if (removed >= explainThreshold) {
                    attributed = lengths[l];
                    break;
                }
            }
        }
        hist.add(attributed, e->baselineMispredicts);
    }
    return hist;
}

OpClassDistribution
opClassDistribution(const BranchProfile &profile,
                    const std::vector<TrainedHint> &hints,
                    double biasCutoff)
{
    std::unordered_map<uint64_t, const TrainedHint *> byPc;
    for (const auto &h : hints)
        byPc[h.pc] = &h;

    OpClassDistribution dist;
    for (const auto &[pc, e] : profile.entries()) {
        if (e.executions == 0)
            continue;
        OpClass cls = OpClass::Others;
        auto it = byPc.find(pc);
        if (it != byPc.end()) {
            const TrainedHint *h = it->second;
            switch (h->hint.bias) {
              case HintBias::AlwaysTaken:
                cls = OpClass::AlwaysTaken;
                break;
              case HintBias::NeverTaken:
                cls = OpClass::NeverTaken;
                break;
              case HintBias::Formula:
                cls = BoolFormula(h->hint.formula, 8).classify();
                break;
            }
        } else {
            double takenRate = static_cast<double>(e.takenCount) /
                               e.executions;
            if (takenRate >= biasCutoff)
                cls = OpClass::AlwaysTaken;
            else if (takenRate <= 1.0 - biasCutoff)
                cls = OpClass::NeverTaken;
        }
        dist.weight[static_cast<size_t>(cls)] += e.executions;
        dist.total += e.executions;
    }
    return dist;
}

} // namespace whisper
