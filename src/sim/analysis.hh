/**
 * @file
 * Characterization analyses feeding Figs. 5, 6 and 7.
 */

#ifndef WHISPER_SIM_ANALYSIS_HH
#define WHISPER_SIM_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "bp/branch_predictor.hh"
#include "core/profile.hh"
#include "core/whisper_trainer.hh"
#include "trace/branch_source.hh"
#include "util/histogram.hh"

namespace whisper
{

/**
 * Fig. 5: per-static-branch misprediction counts, from which the
 * caller derives the CDF over the top-N branches.
 */
CountHistogram mispredictsPerBranch(BranchSource &source,
                                    BranchPredictor &predictor);

/**
 * Fig. 6: attribute each hard branch's mispredictions to the
 * shortest history length whose oracle (best per-hash-key constant)
 * accuracy explains the branch, and histogram misprediction weight
 * over the paper's length buckets (1-8, 9-16, ..., 1024+).
 *
 * Branches whose behaviour no length explains better than bias are
 * attributed to the 1-8 bucket (they need no history); branches
 * nothing explains keep their weight at 1024+.
 */
BucketHistogram mispredictsByHistoryLength(
    const BranchProfile &profile, double explainThreshold = 0.75);

/**
 * Fig. 7: distribution of branch executions over the operation
 * family of the formula that best predicts each branch. Hinted
 * branches use their trained formula's class; unhinted strongly
 * biased branches count as always/never-taken; everything else is
 * "Others".
 */
struct OpClassDistribution
{
    /** Execution weight per OpClass (indexed by the enum). */
    std::array<uint64_t, 7> weight{};
    uint64_t total = 0;

    double
    fraction(OpClass c) const
    {
        return total
            ? static_cast<double>(
                  weight[static_cast<size_t>(c)]) / total
            : 0.0;
    }
};

OpClassDistribution
opClassDistribution(const BranchProfile &profile,
                    const std::vector<TrainedHint> &hints,
                    double biasCutoff = 0.98);

} // namespace whisper

#endif // WHISPER_SIM_ANALYSIS_HH
