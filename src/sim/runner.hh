/**
 * @file
 * Predictor-only trace driver (no timing): feeds a branch stream to
 * a predictor and accumulates accuracy statistics, following the
 * CBP-5 methodology of counting only conditional-branch
 * mispredictions.
 */

#ifndef WHISPER_SIM_RUNNER_HH
#define WHISPER_SIM_RUNNER_HH

#include <cstdint>

#include "bp/branch_predictor.hh"
#include "trace/branch_source.hh"

namespace whisper
{

/** Accuracy statistics of one run. */
struct PredictorRunStats
{
    uint64_t instructions = 0;   //!< counted after warm-up
    uint64_t conditionals = 0;
    uint64_t mispredicts = 0;
    uint64_t warmupInstructions = 0;

    double
    mpki() const
    {
        return instructions
            ? 1000.0 * static_cast<double>(mispredicts) /
                  instructions
            : 0.0;
    }

    double
    accuracy() const
    {
        return conditionals
            ? 1.0 - static_cast<double>(mispredicts) / conditionals
            : 1.0;
    }
};

/**
 * Run @p source to exhaustion through @p predictor.
 *
 * @param warmupFraction fraction of the stream's instructions whose
 *        outcomes train the predictor but are excluded from the
 *        statistics (Fig. 22's warm-up sweep)
 */
PredictorRunStats runPredictor(BranchSource &source,
                               BranchPredictor &predictor,
                               double warmupFraction = 0.0,
                               uint64_t totalInstructionsHint = 0);

} // namespace whisper

#endif // WHISPER_SIM_RUNNER_HH
