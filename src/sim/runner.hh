/**
 * @file
 * Predictor-only trace driver (no timing): feeds a branch stream to
 * a predictor and accumulates accuracy statistics, following the
 * CBP-5 methodology of counting only conditional-branch
 * mispredictions.
 */

#ifndef WHISPER_SIM_RUNNER_HH
#define WHISPER_SIM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "bp/branch_predictor.hh"
#include "trace/branch_source.hh"

namespace whisper
{

/** Accuracy statistics of one run. */
struct PredictorRunStats
{
    uint64_t instructions = 0;   //!< counted after warm-up
    uint64_t conditionals = 0;
    uint64_t mispredicts = 0;
    uint64_t warmupInstructions = 0;

    double
    mpki() const
    {
        return instructions
            ? 1000.0 * static_cast<double>(mispredicts) /
                  instructions
            : 0.0;
    }

    double
    accuracy() const
    {
        return conditionals
            ? 1.0 - static_cast<double>(mispredicts) / conditionals
            : 1.0;
    }
};

/**
 * Run @p source to exhaustion through @p predictor.
 *
 * @param warmupFraction fraction of the stream's instructions whose
 *        outcomes train the predictor but are excluded from the
 *        statistics (Fig. 22's warm-up sweep)
 */
PredictorRunStats runPredictor(BranchSource &source,
                               BranchPredictor &predictor,
                               double warmupFraction = 0.0,
                               uint64_t totalInstructionsHint = 0);

/** Statistics of an epoch-adaptive run. */
struct AdaptiveRunStats
{
    PredictorRunStats total;                //!< whole-stream stats
    std::vector<PredictorRunStats> perEpoch; //!< one per epoch window
    uint64_t predictorSwaps = 0;            //!< refresh() switches
};

/**
 * Epoch-adaptive variant of runPredictor: the stream is cut into
 * windows of @p recordsPerEpoch records, and after each window
 * @p refresh is consulted for a replacement predictor — the hook a
 * continuously retraining service (whisperd's hint store) plugs into
 * so benches can measure online adaptation under input drift.
 *
 * @param refresh called with the index of the epoch about to start;
 *        returns a predictor to switch to, or nullptr to keep the
 *        current one. Returned predictors are NOT owned by the
 *        runner and must outlive the run.
 */
AdaptiveRunStats runPredictorAdaptive(
    BranchSource &source, BranchPredictor &initial,
    uint64_t recordsPerEpoch,
    const std::function<BranchPredictor *(uint64_t nextEpoch)>
        &refresh);

} // namespace whisper

#endif // WHISPER_SIM_RUNNER_HH
