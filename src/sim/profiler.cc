#include "sim/profiler.hh"

#include <algorithm>

#include "branchnet/branchnet_predictor.hh"
#include "trace/global_history.hh"
#include "util/logging.hh"

namespace whisper
{

BranchProfile
collectProfile(BranchSource &trace, BranchPredictor &baseline,
               const WhisperConfig &cfg, const ProfileOptions &opt)
{
    BranchProfile profile(cfg);

    // The warm-up window is defined in records; count the stream
    // first so both passes agree on it.
    trace.rewind();
    BranchRecord rec;
    uint64_t totalRecords = 0;
    while (trace.next(rec))
        ++totalRecords;
    uint64_t warmupRecords = static_cast<uint64_t>(
        opt.statsWarmupFraction * totalRecords);

    // ---- Pass 1: baseline accuracy per branch (LBR stand-in) ----
    trace.rewind();
    uint64_t seen = 0;
    while (trace.next(rec)) {
        bool counting = ++seen > warmupRecords;
        if (counting) {
            profile.totalInstructions +=
                static_cast<uint64_t>(rec.instGap) + 1;
        }
        if (!rec.isConditional()) {
            baseline.onRecord(rec);
            continue;
        }
        bool pred = baseline.predict(rec.pc, rec.taken);
        baseline.update(rec.pc, rec.taken, pred);
        baseline.onRecord(rec);
        if (!counting)
            continue;

        ++profile.totalConditionals;
        BranchProfileEntry &e = profile.entry(rec.pc);
        ++e.executions;
        if (rec.taken)
            ++e.takenCount;
        if (pred != rec.taken) {
            ++e.baselineMispredicts;
            ++profile.totalMispredicts;
        }
    }

    // ---- Hard-branch selection ----
    std::vector<BranchProfileEntry *> candidates;
    for (auto &[pc, e] : profile.entries()) {
        if (e.baselineMispredicts >= opt.minMispredicts &&
            e.baselineAccuracy() <= opt.maxAccuracy) {
            candidates.push_back(&e);
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const BranchProfileEntry *a,
                 const BranchProfileEntry *b) {
                  if (a->baselineMispredicts !=
                      b->baselineMispredicts)
                      return a->baselineMispredicts >
                             b->baselineMispredicts;
                  return a->pc < b->pc;
              });
    if (candidates.size() > opt.maxHardBranches)
        candidates.resize(opt.maxHardBranches);
    std::vector<uint64_t> hardPcs;
    for (auto *e : candidates) {
        profile.markHard(e->pc);
        hardPcs.push_back(e->pc);
    }
    if (opt.branchNetStore)
        opt.branchNetStore->setTracked(hardPcs);

    // ---- Pass 2: sample tables for hard branches (PT stand-in) ----
    GlobalHistory history(2 * cfg.maxHistoryLength);
    for (unsigned len : profile.lengths())
        history.addFoldedView(len, cfg.hashWidth);
    TokenHistory tokens;

    trace.rewind();
    seen = 0;
    while (trace.next(rec)) {
        bool counting = ++seen > warmupRecords;
        if (!rec.isConditional())
            continue;
        BranchProfileEntry &e = profile.entry(rec.pc);
        if (e.hard && counting) {
            for (size_t l = 0; l < profile.lengths().size(); ++l) {
                e.byLength[l].record(
                    history.foldedValue(l), rec.taken);
            }
            e.raw4.record(
                static_cast<unsigned>(history.lastBits(4)),
                rec.taken);
            e.raw8.record(
                static_cast<unsigned>(history.lastBits(8)),
                rec.taken);
            if (opt.branchNetStore) {
                BranchNetSample sample;
                sample.tokens = tokens.snapshot();
                sample.taken = rec.taken;
                opt.branchNetStore->record(rec.pc, sample);
            }
        }
        history.push(rec.taken);
        tokens.push(rec.pc, rec.taken);
    }

    return profile;
}

} // namespace whisper
