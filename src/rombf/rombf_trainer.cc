#include "rombf/rombf_trainer.hh"

#include <chrono>
#include <cmath>

#include "core/formula_trainer.hh"
#include "util/logging.hh"

namespace whisper
{

RombfTrainer::RombfTrainer(unsigned historyLength, bool dedupe,
                           double minImprovement,
                           uint64_t minMispredictions)
    : histLen_(historyLength), minImprovement_(minImprovement),
      minMispredictions_(minMispredictions),
      enum_(enumerateRombf(historyLength, dedupe))
{
    whisper_assert(historyLength == 4 || historyLength == 8,
                   "paper variants are 4b and 8b");
}

std::vector<RombfHint>
RombfTrainer::train(const BranchProfile &profile,
                    RombfTrainingStats *stats) const
{
    auto start = std::chrono::steady_clock::now();
    RombfTrainingStats local;

    std::vector<RombfHint> hints;
    for (const BranchProfileEntry *entry : profile.hardBranches()) {
        if (entry->baselineMispredicts < minMispredictions_)
            continue;
        ++local.branchesConsidered;

        const HashedSampleTable &samples =
            histLen_ == 4 ? entry->raw4 : entry->raw8;

        RombfHint hint;
        hint.pc = entry->pc;
        hint.profiledMispredicts = entry->baselineMispredicts;

        // Tautology/contradiction first.
        uint64_t best = entry->biasMispredicts();
        hint.tableIdx = -1;
        hint.biasTaken = entry->takenCount >= entry->notTakenCount();

        if (samples.totalSamples() > 0) {
            for (size_t i = 0; i < enum_.tables.size(); ++i) {
                uint64_t t =
                    scoreFormula(enum_.tables[i], samples, best);
                ++local.formulasScored;
                if (t < best) {
                    best = t;
                    hint.tableIdx = static_cast<int>(i);
                }
            }
        }
        hint.expectedMispredicts = best;

        // Same two-part bar as Whisper's trainer so the baseline
        // comparison is apples-to-apples: relative improvement plus
        // a minimum absolute gain per execution.
        double baseline =
            static_cast<double>(entry->baselineMispredicts);
        double gainPerExec =
            (baseline - static_cast<double>(best)) /
            static_cast<double>(
                std::max<uint64_t>(entry->executions, 1));
        if (static_cast<double>(best) <
                baseline * (1.0 - minImprovement_) &&
            gainPerExec >= 0.005) {
            hints.push_back(hint);
        }
    }

    local.hintsEmitted = hints.size();
    local.trainSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (stats)
        *stats = local;
    return hints;
}

} // namespace whisper
