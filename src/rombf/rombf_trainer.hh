/**
 * @file
 * Profile-guided ROMBF training (prior-work baseline).
 *
 * For every hard branch the trainer exhaustively scores all ROMBFs
 * of the configured history length against the branch's raw-history
 * sample tables, also considers always/never-taken, and annotates
 * the branch when the winner beats the profiled predictor.
 */

#ifndef WHISPER_ROMBF_ROMBF_TRAINER_HH
#define WHISPER_ROMBF_ROMBF_TRAINER_HH

#include <cstdint>
#include <vector>

#include "core/profile.hh"
#include "rombf/rombf_formula.hh"

namespace whisper
{

/** One trained ROMBF annotation. */
struct RombfHint
{
    uint64_t pc = 0;
    /** Index into the enumeration's truth tables; bias when < 0. */
    int tableIdx = -1;
    bool biasTaken = false;     //!< used when tableIdx < 0
    uint64_t expectedMispredicts = 0;
    uint64_t profiledMispredicts = 0;
};

/** Training statistics (Fig. 16 input). */
struct RombfTrainingStats
{
    uint64_t branchesConsidered = 0;
    uint64_t hintsEmitted = 0;
    uint64_t formulasScored = 0;
    double trainSeconds = 0.0;
};

/** Exhaustive ROMBF trainer for 4- or 8-bit variants. */
class RombfTrainer
{
  public:
    /**
     * @param historyLength 4 or 8 (the paper's two variants)
     * @param dedupe collapse function-equivalent formulas (quality
     *        is unchanged; pass false to measure the genuine
     *        enumeration cost for Fig. 16)
     * @param minImprovement fraction of profiled mispredictions a
     *        hint must remove
     */
    explicit RombfTrainer(unsigned historyLength, bool dedupe = true,
                          double minImprovement = 0.15,
                          uint64_t minMispredictions = 8);

    std::vector<RombfHint> train(const BranchProfile &profile,
                                 RombfTrainingStats *stats
                                 = nullptr) const;

    const RombfEnumeration &enumeration() const { return enum_; }
    unsigned historyLength() const { return histLen_; }

  private:
    unsigned histLen_;
    double minImprovement_;
    uint64_t minMispredictions_;
    RombfEnumeration enum_;
};

} // namespace whisper

#endif // WHISPER_ROMBF_ROMBF_TRAINER_HH
