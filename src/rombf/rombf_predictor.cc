#include "rombf/rombf_predictor.hh"

#include "util/logging.hh"

namespace whisper
{

RombfPredictor::RombfPredictor(std::unique_ptr<BranchPredictor> base,
                               const RombfTrainer &trainer,
                               const std::vector<RombfHint> &hints)
    : base_(std::move(base)), enum_(trainer.enumeration()),
      histLen_(trainer.historyLength()), history_(64)
{
    whisper_assert(base_ != nullptr);
    for (const auto &h : hints)
        hints_[h.pc] = Annotation{h.tableIdx, h.biasTaken};
}

RombfPredictor::RombfPredictor(const RombfPredictor &other)
    : base_(other.base_->clone()), enum_(other.enum_),
      histLen_(other.histLen_), hints_(other.hints_),
      history_(other.history_), usedHint_(other.usedHint_),
      basePred_(other.basePred_),
      hintPredictions_(other.hintPredictions_),
      hintCorrect_(other.hintCorrect_)
{
}

std::string
RombfPredictor::name() const
{
    return std::to_string(histLen_) + "b-rombf+" + base_->name();
}

uint64_t
RombfPredictor::storageBits() const
{
    return base_->storageBits();
}

bool
RombfPredictor::predict(uint64_t pc, bool oracleTaken)
{
    basePred_ = base_->predict(pc, oracleTaken);
    usedHint_ = false;

    auto it = hints_.find(pc);
    if (it == hints_.end())
        return basePred_;

    usedHint_ = true;
    ++hintPredictions_;
    const Annotation &a = it->second;
    if (a.tableIdx < 0)
        return a.biasTaken;
    unsigned bits =
        static_cast<unsigned>(history_.lastBits(histLen_));
    const TruthTable &tt = enum_.tables[a.tableIdx];
    return (tt[bits / 64] >> (bits % 64)) & 1;
}

void
RombfPredictor::update(uint64_t pc, bool taken, bool predicted,
                       bool allocate)
{
    if (usedHint_ && predicted == taken)
        ++hintCorrect_;
    base_->update(pc, taken, basePred_, allocate && !usedHint_);
    history_.push(taken);
}

void
RombfPredictor::reset()
{
    base_->reset();
    history_.reset();
    usedHint_ = false;
    basePred_ = false;
    hintPredictions_ = 0;
    hintCorrect_ = 0;
}

} // namespace whisper
