/**
 * @file
 * Read-Once Monotone Boolean Formula enumeration (prior work [36],
 * Jimenez, Hanson & Lin, PACT 2001).
 *
 * A ROMBF over the last N branch outcomes uses each history bit
 * exactly once, combined by AND/OR nodes in an arbitrary binary tree
 * over the variables in order. Unlike Whisper's extended formulas
 * there is no hashing (the history is raw), no implication
 * operators, and no inversion; tautology and contradiction
 * (always/never-taken) are considered separately.
 *
 * The number of op-labeled ordered tree shapes grows exponentially
 * in N — T(1)=1, T(n) = 2 * sum_k T(k)T(n-k) — which is exactly why
 * the paper's Fig. 16 shows ROMBF training time blowing up with
 * history length (T(8) = 54912 candidate formulas versus the ~33
 * Whisper scores per length under randomized testing).
 */

#ifndef WHISPER_ROMBF_ROMBF_FORMULA_HH
#define WHISPER_ROMBF_ROMBF_FORMULA_HH

#include <cstdint>
#include <vector>

#include "core/formula.hh"

namespace whisper
{

/** Enumeration result: candidate truth tables plus counts. */
struct RombfEnumeration
{
    /** Truth tables of the candidates (over 2^numVars entries). */
    std::vector<TruthTable> tables;
    /** Formulas enumerated before deduplication. */
    uint64_t enumerated = 0;
    unsigned numVars = 0;
};

/**
 * Enumerate every ROMBF over @p numVars ordered variables.
 *
 * @param numVars history length (4 or 8 in the paper's variants)
 * @param dedupe collapse formulas computing identical functions
 */
RombfEnumeration enumerateRombf(unsigned numVars, bool dedupe);

/** T(n): the number of op-labeled read-once trees over n leaves. */
uint64_t rombfCount(unsigned numVars);

} // namespace whisper

#endif // WHISPER_ROMBF_ROMBF_FORMULA_HH
