/**
 * @file
 * Hybrid run-time predictor for the ROMBF baseline.
 *
 * The 2001 scheme annotates branch instructions directly (hints
 * decode with the branch), so unlike Whisper there is no hint buffer
 * or timeliness concern: every annotated branch always predicts via
 * its formula over the raw last-N global outcomes; everything else
 * uses the dynamic predictor.
 */

#ifndef WHISPER_ROMBF_ROMBF_PREDICTOR_HH
#define WHISPER_ROMBF_ROMBF_PREDICTOR_HH

#include <memory>
#include <unordered_map>

#include "bp/branch_predictor.hh"
#include "rombf/rombf_trainer.hh"
#include "trace/global_history.hh"

namespace whisper
{

/** ROMBF-over-TAGE hybrid. */
class RombfPredictor : public BranchPredictor
{
  public:
    RombfPredictor(std::unique_ptr<BranchPredictor> base,
                   const RombfTrainer &trainer,
                   const std::vector<RombfHint> &hints);

    /** Deep copy: clones the owned dynamic predictor; the formula
     * enumeration stays shared with the trainer that produced it
     * (read-only), so the trainer must outlive clones too. */
    RombfPredictor(const RombfPredictor &other);

    bool predict(uint64_t pc, bool oracleTaken) override;
    void update(uint64_t pc, bool taken, bool predicted,
                bool allocate = true) override;
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<RombfPredictor>(*this);
    }
    std::string name() const override;
    void reset() override;
    uint64_t storageBits() const override;

    uint64_t hintPredictions() const { return hintPredictions_; }
    uint64_t hintCorrect() const { return hintCorrect_; }

  private:
    struct Annotation
    {
        int tableIdx;
        bool biasTaken;
    };

    std::unique_ptr<BranchPredictor> base_;
    const RombfEnumeration &enum_;
    unsigned histLen_;
    std::unordered_map<uint64_t, Annotation> hints_;
    GlobalHistory history_;

    bool usedHint_ = false;
    bool basePred_ = false;
    uint64_t hintPredictions_ = 0;
    uint64_t hintCorrect_ = 0;
};

} // namespace whisper

#endif // WHISPER_ROMBF_ROMBF_PREDICTOR_HH
