#include "rombf/rombf_formula.hh"

#include <unordered_set>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

/** Bitwise AND/OR over packed truth tables. */
TruthTable
combine(const TruthTable &a, const TruthTable &b, bool isAnd)
{
    TruthTable out;
    for (size_t w = 0; w < out.size(); ++w)
        out[w] = isAnd ? (a[w] & b[w]) : (a[w] | b[w]);
    return out;
}

struct TruthTableHash
{
    size_t
    operator()(const TruthTable &t) const
    {
        uint64_t h = 0x9E3779B97F4A7C15ULL;
        for (uint64_t w : t)
            h = hashCombine(h, w);
        return static_cast<size_t>(h);
    }
};

/**
 * Recursively enumerate all ROMBFs over variables [lo, hi).
 * Memoization is unnecessary: every (lo, hi) range is visited once
 * per parent split, and the total work is proportional to the
 * output size.
 */
std::vector<TruthTable>
enumerateRange(unsigned lo, unsigned hi, unsigned numVars,
               uint64_t &enumerated)
{
    std::vector<TruthTable> out;
    if (hi - lo == 1) {
        // The truth table of variable 'lo' over numVars packed
        // inputs: true whenever input bit lo is set.
        TruthTable tt{};
        unsigned count = 1u << numVars;
        for (unsigned v = 0; v < count; ++v)
            if ((v >> lo) & 1)
                tt[v / 64] |= 1ULL << (v % 64);
        out.push_back(tt);
        ++enumerated;
        return out;
    }
    for (unsigned split = lo + 1; split < hi; ++split) {
        auto left = enumerateRange(lo, split, numVars, enumerated);
        auto right = enumerateRange(split, hi, numVars, enumerated);
        for (const auto &l : left) {
            for (const auto &r : right) {
                out.push_back(combine(l, r, true));
                out.push_back(combine(l, r, false));
                enumerated += 2;
            }
        }
    }
    return out;
}

} // namespace

uint64_t
rombfCount(unsigned numVars)
{
    whisper_assert(numVars >= 1 && numVars <= 16);
    std::vector<uint64_t> t(numVars + 1, 0);
    t[1] = 1;
    for (unsigned n = 2; n <= numVars; ++n) {
        uint64_t sum = 0;
        for (unsigned k = 1; k < n; ++k)
            sum += t[k] * t[n - k];
        t[n] = 2 * sum;
    }
    return t[numVars];
}

RombfEnumeration
enumerateRombf(unsigned numVars, bool dedupe)
{
    whisper_assert(numVars >= 2 && numVars <= 8,
                   "numVars=", numVars);
    RombfEnumeration result;
    result.numVars = numVars;

    uint64_t leafCount = 0;
    auto all = enumerateRange(0, numVars, numVars, leafCount);
    // 'enumerated' counts the formulas proper: every combine.
    result.enumerated = rombfCount(numVars);

    if (!dedupe) {
        result.tables = std::move(all);
        return result;
    }

    std::unordered_set<TruthTable, TruthTableHash> seen;
    for (const auto &tt : all) {
        if (seen.insert(tt).second)
            result.tables.push_back(tt);
    }
    return result;
}

} // namespace whisper
