#include "core/history_hash.hh"

#include <cmath>

#include "util/logging.hh"

namespace whisper
{

std::vector<unsigned>
geometricLengths(unsigned a, unsigned n, unsigned m)
{
    whisper_assert(m >= 2, "need at least two lengths");
    whisper_assert(n > a && a >= 1);
    double r = std::pow(static_cast<double>(n) / a,
                        1.0 / (m - 1));
    std::vector<unsigned> lengths(m);
    double len = a;
    for (unsigned i = 0; i < m; ++i) {
        unsigned v = static_cast<unsigned>(len + 0.5);
        if (i > 0 && v <= lengths[i - 1])
            v = lengths[i - 1] + 1;
        lengths[i] = v;
        len *= r;
    }
    lengths[m - 1] = n;
    return lengths;
}

std::vector<unsigned>
geometricLengths(const WhisperConfig &cfg)
{
    return geometricLengths(cfg.minHistoryLength, cfg.maxHistoryLength,
                            cfg.numHistoryLengths);
}

} // namespace whisper
