#include "core/history_hash.hh"

#include <cmath>

#include "util/logging.hh"

namespace whisper
{

std::vector<unsigned>
geometricLengths(unsigned a, unsigned n, unsigned m)
{
    whisper_assert(m >= 2, "need at least two lengths");
    whisper_assert(n > a && a >= 1);
    double r = std::pow(static_cast<double>(n) / a,
                        1.0 / (m - 1));
    std::vector<unsigned> lengths;
    lengths.reserve(m);
    double len = a;
    for (unsigned i = 0; i < m; ++i) {
        unsigned v = static_cast<unsigned>(len + 0.5);
        // Force strict monotonicity, but never let the +1 walk an
        // intermediate length past N: when m is large relative to
        // N - a the walked values used to overshoot N and the final
        // lengths[m-1] = N overwrite produced a non-increasing,
        // duplicate-laden tail. Clamp to N and drop duplicates
        // instead; the result is strictly increasing and ends at N
        // (possibly with fewer than m entries).
        if (!lengths.empty() && v <= lengths.back())
            v = lengths.back() + 1;
        if (v > n)
            v = n;
        if (lengths.empty() || v > lengths.back())
            lengths.push_back(v);
        len *= r;
    }
    // Floating-point rounding can leave the tail just below N; the
    // series must end exactly at the maximum correlation length.
    if (lengths.back() != n)
        lengths.back() = n;
    return lengths;
}

std::vector<unsigned>
geometricLengths(const WhisperConfig &cfg)
{
    return geometricLengths(cfg.minHistoryLength, cfg.maxHistoryLength,
                            cfg.numHistoryLengths);
}

} // namespace whisper
