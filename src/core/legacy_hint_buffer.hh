/**
 * @file
 * The pre-refactor hint buffer: a std::list LRU chained to a
 * std::unordered_map node index.
 *
 * Kept ONLY as a differential baseline — it is not used by any
 * predictor. tests/test_hintbuf.cc replays identical access scripts
 * against this and the flat open-addressing HintBuffer and asserts
 * bit-identical hits/misses/insertions/refreshes/evictions, sizes
 * and recency order; bench_micro_throughput uses it as the
 * "pre-refactor baseline" series of the throughput trajectory.
 * Remove it once a couple of releases have pinned the flat table.
 *
 * The statistics semantics carry the same fixes as HintBuffer (a
 * refresh of a resident PC counts as a refresh, not an insertion;
 * clear() preserves counters; resetStats() zeroes them) so the two
 * implementations are comparable field for field.
 */

#ifndef WHISPER_CORE_LEGACY_HINT_BUFFER_HH
#define WHISPER_CORE_LEGACY_HINT_BUFFER_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/brhint.hh"

namespace whisper
{

/** Pointer-chasing LRU buffer of decoded brhints (legacy layout). */
class LegacyHintBuffer
{
  public:
    explicit LegacyHintBuffer(unsigned entries = 32);

    /** Copying preserves contents, LRU order, and counters; the
     * PC-to-node index is rebuilt so it points into the copy's own
     * list (a memberwise copy would alias the source's nodes). */
    LegacyHintBuffer(const LegacyHintBuffer &other);
    LegacyHintBuffer &operator=(const LegacyHintBuffer &other);
    LegacyHintBuffer(LegacyHintBuffer &&) = default;
    LegacyHintBuffer &operator=(LegacyHintBuffer &&) = default;

    /** Install a hint (brhint executed); LRU-evicts when full. */
    void insert(uint64_t branchPc, const BrHint &hint);

    /**
     * Query for the branch at @p pc; refreshes LRU on hit.
     * @return pointer valid until the next insert, or nullptr.
     */
    const BrHint *lookup(uint64_t branchPc);

    unsigned capacity() const { return capacity_; }
    size_t size() const { return map_.size(); }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t insertions() const { return insertions_; }
    uint64_t refreshes() const { return refreshes_; }
    uint64_t evictions() const { return evictions_; }

    /** Drop all entries; counters are preserved (see HintBuffer). */
    void clear();

    /** Zero the hit/miss/insertion/refresh/eviction counters. */
    void resetStats();

    /** Resident PCs in recency order, most recently used first. */
    std::vector<uint64_t> lruOrder() const;

  private:
    struct Node
    {
        uint64_t pc;
        BrHint hint;
    };

    unsigned capacity_;
    std::list<Node> lru_; //!< front = most recently used
    std::unordered_map<uint64_t, std::list<Node>::iterator> map_;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t insertions_ = 0;
    uint64_t refreshes_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace whisper

#endif // WHISPER_CORE_LEGACY_HINT_BUFFER_HH
