#include "core/formula_trainer.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace whisper
{

TruthTableCache::TruthTableCache(unsigned numInputs)
    : numInputs_(numInputs)
{
    uint32_t count = BoolFormula::encodingCount(numInputs);
    tables_.resize(count);
    supports_.resize(count, 0);
    uint32_t inputCount = 1u << numInputs;
    for (uint32_t enc = 0; enc < count; ++enc) {
        tables_[enc] =
            BoolFormula(static_cast<uint16_t>(enc), numInputs)
                .truthTable();
        const TruthTable &tt = tables_[enc];
        uint8_t mask = 0;
        for (unsigned bit = 0; bit < numInputs; ++bit) {
            uint32_t flip = 1u << bit;
            for (uint32_t v = 0; v < inputCount; ++v) {
                if (v & flip)
                    continue;
                bool a = (tt[v / 64] >> (v % 64)) & 1;
                uint32_t w = v | flip;
                bool b = (tt[w / 64] >> (w % 64)) & 1;
                if (a != b) {
                    mask |= static_cast<uint8_t>(1u << bit);
                    break;
                }
            }
        }
        supports_[enc] = mask;
    }
}

const TruthTable &
TruthTableCache::table(uint16_t encoding) const
{
    whisper_assert(encoding < tables_.size());
    return tables_[encoding];
}

FormulaCandidates::FormulaCandidates(unsigned numInputs,
                                     double fraction, uint64_t seed)
    : numInputs_(numInputs), fraction_(fraction)
{
    whisper_assert(fraction > 0.0 && fraction <= 1.0,
                   "fraction=", fraction);
    uint32_t count = BoolFormula::encodingCount(numInputs);
    permutation_.resize(count);
    for (uint32_t i = 0; i < count; ++i)
        permutation_[i] = static_cast<uint16_t>(i);
    Rng rng(seed);
    rng.shuffle(permutation_);
    selected_ = withFraction(fraction);
}

std::vector<uint16_t>
FormulaCandidates::withFraction(double fraction) const
{
    whisper_assert(fraction > 0.0 && fraction <= 1.0);
    size_t n = static_cast<size_t>(fraction * permutation_.size());
    n = std::max<size_t>(n, 1);
    n = std::min(n, permutation_.size());
    return {permutation_.begin(),
            permutation_.begin() + static_cast<long>(n)};
}

uint64_t
scoreFormula(const TruthTable &tt, const HashedSampleTable &samples,
             uint64_t earlyOut)
{
    // Mispredictions = taken samples the formula calls not-taken plus
    // not-taken samples it calls taken (Algorithm 1 lines 5-11).
    uint64_t t = 0;
    size_t keys = samples.taken.size();
    for (size_t k = 0; k < keys; ++k) {
        bool sat = (tt[k / 64] >> (k % 64)) & 1;
        t += sat ? samples.notTaken[k] : samples.taken[k];
        if (t > earlyOut)
            return t;
    }
    return t;
}

FormulaSearchResult
findBooleanFormula(const HashedSampleTable &samples,
                   const std::vector<uint16_t> &candidates,
                   const TruthTableCache &cache)
{
    FormulaSearchResult best;
    for (uint16_t enc : candidates) {
        uint64_t t = scoreFormula(cache.table(enc), samples,
                                  best.mispredicts);
        ++best.explored;
        if (t < best.mispredicts) {
            best.mispredicts = t;
            best.formula = BoolFormula(enc, cache.numInputs());
            best.valid = true;
        }
        if (best.mispredicts == 0)
            break;
    }
    return best;
}

} // namespace whisper
