#include "core/formula.hh"

#include "util/bits.hh"

namespace whisper
{

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::AlwaysTaken:
        return "Always-taken";
      case OpClass::NeverTaken:
        return "Never-taken";
      case OpClass::And:
        return "And";
      case OpClass::Or:
        return "Or";
      case OpClass::Impl:
        return "Implication";
      case OpClass::Cnimpl:
        return "Converse-nonimplication";
      case OpClass::Others:
        return "Others";
    }
    return "?";
}

BoolFormula::BoolFormula(uint16_t encoding, unsigned numInputs)
    : encoding_(encoding), numInputs_(static_cast<uint8_t>(numInputs))
{
    whisper_assert(numInputs == 2 || numInputs == 4 || numInputs == 8,
                   "numInputs=", numInputs);
    whisper_assert(encoding < encodingCount(numInputs));
}

unsigned
BoolFormula::encodingBits(unsigned numInputs)
{
    whisper_assert(numInputs >= 2);
    return 2 * (numInputs - 1) + 1;
}

uint32_t
BoolFormula::encodingCount(unsigned numInputs)
{
    return 1u << encodingBits(numInputs);
}

BoolOp
BoolFormula::nodeOp(unsigned node) const
{
    whisper_assert(node < numNodes());
    return static_cast<BoolOp>((encoding_ >> (2 * node)) & 3);
}

bool
BoolFormula::inverted() const
{
    return (encoding_ >> (2 * numNodes())) & 1;
}

bool
BoolFormula::evaluate(uint8_t inputs) const
{
    // Level-order evaluation of the complete binary tree: layer 0
    // combines input pairs, each following layer combines the
    // previous layer's outputs (Fig. 9's single-unit network).
    bool vals[kMaxInputs];
    unsigned n = numInputs_;
    for (unsigned i = 0; i < n; ++i)
        vals[i] = (inputs >> i) & 1;

    unsigned node = 0;
    while (n > 1) {
        for (unsigned i = 0; i < n / 2; ++i) {
            vals[i] = applyBoolOp(nodeOp(node), vals[2 * i],
                                  vals[2 * i + 1]);
            ++node;
        }
        n /= 2;
    }
    return inverted() ? !vals[0] : vals[0];
}

TruthTable
BoolFormula::truthTable() const
{
    TruthTable tt{};
    unsigned count = 1u << numInputs_;
    for (unsigned v = 0; v < count; ++v) {
        if (evaluate(static_cast<uint8_t>(v)))
            tt[v / 64] |= 1ULL << (v % 64);
    }
    return tt;
}

bool
BoolFormula::isConstant(bool &value) const
{
    TruthTable tt = truthTable();
    unsigned count = 1u << numInputs_;
    uint64_t all = 0, any = 0;
    for (unsigned w = 0; w * 64 < count; ++w) {
        uint64_t mask = count - w * 64 >= 64
            ? ~0ULL : maskBits(count - w * 64);
        all |= (tt[w] & mask) ^ mask;
        any |= tt[w] & mask;
    }
    if (any == 0) {
        value = false;
        return true;
    }
    if (all == 0) {
        value = true;
        return true;
    }
    return false;
}

OpClass
BoolFormula::classify() const
{
    bool constant = false;
    if (isConstant(constant))
        return constant ? OpClass::AlwaysTaken : OpClass::NeverTaken;

    // Inverted formulas fall outside the four base families; the
    // dominant structure of everything else is its root operation.
    if (inverted())
        return OpClass::Others;
    switch (nodeOp(numNodes() - 1)) {
      case BoolOp::And:
        return OpClass::And;
      case BoolOp::Or:
        return OpClass::Or;
      case BoolOp::Impl:
        return OpClass::Impl;
      case BoolOp::Cnimpl:
        return OpClass::Cnimpl;
    }
    return OpClass::Others;
}

namespace
{

const char *
opSymbol(BoolOp op)
{
    switch (op) {
      case BoolOp::And:
        return "&";
      case BoolOp::Or:
        return "|";
      case BoolOp::Impl:
        return "->";
      case BoolOp::Cnimpl:
        return "!&";
    }
    return "?";
}

} // namespace

std::string
BoolFormula::toString() const
{
    // Build layer by layer, mirroring evaluate().
    std::string terms[kMaxInputs];
    unsigned n = numInputs_;
    for (unsigned i = 0; i < n; ++i)
        terms[i] = "b" + std::to_string(i);

    unsigned node = 0;
    while (n > 1) {
        for (unsigned i = 0; i < n / 2; ++i) {
            terms[i] = "(" + terms[2 * i] + opSymbol(nodeOp(node)) +
                       terms[2 * i + 1] + ")";
            ++node;
        }
        n /= 2;
    }
    return inverted() ? "!" + terms[0] : terms[0];
}

bool
BoolFormula::isMonotone() const
{
    if (inverted())
        return false;
    for (unsigned i = 0; i < numNodes(); ++i) {
        BoolOp op = nodeOp(i);
        if (op != BoolOp::And && op != BoolOp::Or)
            return false;
    }
    return true;
}

unsigned
formulaGateDelay(unsigned numInputs)
{
    whisper_assert(isPowerOfTwo(numInputs) && numInputs >= 2);
    unsigned levels = floorLog2(numInputs);
    return levels * kSingleUnitGateDelay + kOutputMuxGateDelay;
}

} // namespace whisper
