/**
 * @file
 * The run-time hint buffer (paper SIV, "Run-time hint usage").
 *
 * Executing a brhint instruction places its four decoded parameters
 * in a small fully-associative buffer keyed by the hinted branch's
 * PC. The branch predictor queries the buffer in parallel with
 * TAGE-SC-L; a hit overrides the dynamic prediction. The paper's
 * sensitivity study settles on 32 entries.
 *
 * The buffer sits on the modeled front-end critical path and on the
 * simulator's hot path (one lookup per conditional branch), so the
 * implementation is data-oriented throughout — flat parallel arrays,
 * no per-entry allocation, no pointer chasing:
 *
 *  - Placement: linear-probing open addressing over parallel arrays
 *    (PCs, payloads, occupancy), power-of-two slot count, one-
 *    multiply Fibonacci hash. Deletion is backward-shift, so probing
 *    never meets tombstones.
 *  - Recency: an intrusive doubly-linked list threaded through two
 *    index arrays (prev/next per slot). Eviction pops the tail in
 *    O(1) and reproduces a true LRU list's victim order exactly. (An
 *    age-stamp-per-slot scheme was tried first; its min-stamp victim
 *    scan made inserts O(slots) and dominated the hot path.)
 *  - Miss filtering: lookups are overwhelmingly misses — most
 *    conditionals are not hinted — so a 1024-bit membership filter
 *    over a second hash of the PC rejects almost all of them with
 *    one AND. A per-signature count (updated on insert/evict) keeps
 *    the filter exact: no false negatives, ever.
 *
 * lookupMany() exploits the same layout to strip the remaining
 * per-lookup branching: a branchless hash+filter pass over the whole
 * batch, then short probes for the few candidates. It is observably
 * identical to calling lookup() in a loop; tests/test_hintbuf.cc
 * pins all of this differentially against the pre-refactor
 * list+map implementation (core/legacy_hint_buffer.hh).
 */

#ifndef WHISPER_CORE_HINT_BUFFER_HH
#define WHISPER_CORE_HINT_BUFFER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/brhint.hh"

namespace whisper
{

/** Fully-associative LRU buffer of decoded brhints (flat layout). */
class HintBuffer
{
  public:
    explicit HintBuffer(unsigned entries = 32);

    // Memberwise copies are deep and correct: the slot arrays hold
    // values and slot *indices* (never pointers), so a copy
    // preserves contents, recency order, and counters.

    /** Install a hint (brhint executed); LRU-evicts when full. A
     * re-insert of a resident PC refreshes the payload and recency
     * and counts as a refresh, not an insertion. */
    void insert(uint64_t branchPc, const BrHint &hint);

    /**
     * Query for the branch at @p pc; refreshes recency on hit.
     * @return pointer valid until the next insert, or nullptr.
     */
    const BrHint *
    lookup(uint64_t branchPc)
    {
        uint64_t h = hashPc(branchPc);
        if (!filterHas(h)) {
            ++misses_;
            return nullptr;
        }
        size_t s = h >> shift_;
        while (occ_[s]) {
            if (pcs_[s] == branchPc) {
                ++hits_;
                touch(s);
                return &hints_[s];
            }
            s = (s + 1) & slotMask_;
        }
        ++misses_;
        return nullptr;
    }

    /**
     * Batched lookup: exactly lookup() applied to pcs[0..n) in
     * order — same hits, misses, and recency refreshes — with the
     * per-call branching hoisted out: a branchless hash-and-filter
     * pass classifies the batch, then only the rare candidates
     * (resident PCs and filter false positives) take the probe path.
     * @param out out[i] receives the hint pointer or nullptr;
     *        pointers are valid until the next insert.
     */
    void lookupMany(const uint64_t *pcs, size_t n,
                    const BrHint **out);

    unsigned capacity() const { return capacity_; }
    size_t size() const { return size_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    /** Installs of a PC not currently resident. */
    uint64_t insertions() const { return insertions_; }
    /** Re-inserts of a resident PC (payload/recency refresh only). */
    uint64_t refreshes() const { return refreshes_; }
    uint64_t evictions() const { return evictions_; }

    /**
     * Drop all entries but keep the service counters: a hint-bundle
     * redeploy empties the buffer, and the hit/miss/eviction totals
     * are cumulative service metrics that must survive it. Use
     * resetStats() for a full statistical reset.
     */
    void clear();

    /** Zero the hit/miss/insertion/refresh/eviction counters. */
    void resetStats();

    /** Resident PCs in recency order, most recently used first.
     * Introspection for the differential/golden tests. */
    std::vector<uint64_t> lruOrder() const;

  private:
    static constexpr int32_t kNull = -1;
    static constexpr unsigned kFilterBits = 1024;

    /** One-multiply Fibonacci hash; the top bits index the table
     * (via shift_) and bits 40.. index the membership filter. */
    static uint64_t
    hashPc(uint64_t pc)
    {
        return pc * 0x9E3779B97F4A7C15ull;
    }

    static unsigned
    signatureOf(uint64_t h)
    {
        return (h >> 40) & (kFilterBits - 1);
    }

    bool
    filterHas(uint64_t h) const
    {
        unsigned sig = signatureOf(h);
        return (filter_[sig >> 6] >> (sig & 63)) & 1;
    }

    /** Move resident slot @p s to MRU. */
    void
    touch(size_t s)
    {
        if (static_cast<int32_t>(s) == head_)
            return;
        unlink(s);
        pushFront(s);
    }

    void
    unlink(size_t s)
    {
        int32_t p = prev_[s], n = next_[s];
        if (p != kNull)
            next_[p] = n;
        else
            head_ = n;
        if (n != kNull)
            prev_[n] = p;
        else
            tail_ = p;
    }

    void
    pushFront(size_t s)
    {
        prev_[s] = kNull;
        next_[s] = head_;
        if (head_ != kNull)
            prev_[head_] = static_cast<int32_t>(s);
        else
            tail_ = static_cast<int32_t>(s);
        head_ = static_cast<int32_t>(s);
    }

    /** Probe for a resident PC known to pass the filter; kNull if
     * it was a false positive. */
    int32_t findSlot(uint64_t branchPc, uint64_t h) const;

    void filterAdd(uint64_t h);
    void filterDrop(uint64_t h);
    void eraseSlot(size_t s);

    unsigned capacity_;
    size_t slotMask_; //!< slots - 1; slots = pow2 >= 4 * capacity
    unsigned shift_;  //!< 64 - log2(slots): home = hash >> shift_
    size_t size_ = 0;

    std::vector<uint8_t> occ_;   //!< slot occupied?
    std::vector<uint64_t> pcs_;  //!< key per slot
    std::vector<BrHint> hints_;  //!< payload per slot
    std::vector<int32_t> prev_;  //!< recency list, toward MRU
    std::vector<int32_t> next_;  //!< recency list, toward LRU
    int32_t head_ = kNull;       //!< most recently used slot
    int32_t tail_ = kNull;       //!< least recently used slot

    std::array<uint64_t, kFilterBits / 64> filter_{};
    std::array<uint16_t, kFilterBits> filterCount_{};

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t insertions_ = 0;
    uint64_t refreshes_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace whisper

#endif // WHISPER_CORE_HINT_BUFFER_HH
