/**
 * @file
 * The run-time hint buffer (paper SIV, "Run-time hint usage").
 *
 * Executing a brhint instruction places its four decoded parameters
 * in a small fully-associative buffer keyed by the hinted branch's
 * PC. The branch predictor queries the buffer in parallel with
 * TAGE-SC-L; a hit overrides the dynamic prediction. The paper's
 * sensitivity study settles on 32 entries.
 */

#ifndef WHISPER_CORE_HINT_BUFFER_HH
#define WHISPER_CORE_HINT_BUFFER_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/brhint.hh"

namespace whisper
{

/** Fully-associative LRU buffer of decoded brhints. */
class HintBuffer
{
  public:
    explicit HintBuffer(unsigned entries = 32);

    /** Copying preserves contents, LRU order, and counters; the
     * PC-to-node index is rebuilt so it points into the copy's own
     * list (a memberwise copy would alias the source's nodes). */
    HintBuffer(const HintBuffer &other);
    HintBuffer &operator=(const HintBuffer &other);
    HintBuffer(HintBuffer &&) = default;
    HintBuffer &operator=(HintBuffer &&) = default;

    /** Install a hint (brhint executed); LRU-evicts when full. */
    void insert(uint64_t branchPc, const BrHint &hint);

    /**
     * Query for the branch at @p pc; refreshes LRU on hit.
     * @return pointer valid until the next insert, or nullptr.
     */
    const BrHint *lookup(uint64_t branchPc);

    unsigned capacity() const { return capacity_; }
    size_t size() const { return map_.size(); }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t insertions() const { return insertions_; }
    uint64_t evictions() const { return evictions_; }

    void clear();

  private:
    struct Node
    {
        uint64_t pc;
        BrHint hint;
    };

    unsigned capacity_;
    std::list<Node> lru_; //!< front = most recently used
    std::unordered_map<uint64_t, std::list<Node>::iterator> map_;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t insertions_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace whisper

#endif // WHISPER_CORE_HINT_BUFFER_HH
