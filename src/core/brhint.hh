/**
 * @file
 * The brhint instruction (paper Fig. 11).
 *
 * A brhint carries four fields:
 *   History         4 bits  index into the geometric length series
 *   Boolean formula 15 bits extended-ROMBF encoding
 *   Bias            2 bits  0 = use formula, 1 = always-taken,
 *                           2 = never-taken
 *   PC pointer      12 bits offset locating the hinted branch
 */

#ifndef WHISPER_CORE_BRHINT_HH
#define WHISPER_CORE_BRHINT_HH

#include <cstdint>
#include <string>

namespace whisper
{

/** Bias field values. */
enum class HintBias : uint8_t
{
    Formula = 0,    //!< predict with the Boolean formula
    AlwaysTaken = 1,
    NeverTaken = 2,
};

/** Decoded brhint contents. */
struct BrHint
{
    uint8_t historyIdx = 0;   //!< 4-bit history-length index
    uint16_t formula = 0;     //!< 15-bit formula encoding
    HintBias bias = HintBias::Formula;
    uint16_t pcPointer = 0;   //!< 12-bit branch-PC offset

    /** Total encoded width in bits (4 + 15 + 2 + 12). */
    static constexpr unsigned kEncodedBits = 33;

    /** Pack into the instruction's immediate encoding. */
    uint64_t encode() const;

    /** Unpack; asserts reserved bias value 3 is not present. */
    static BrHint decode(uint64_t bits);

    /** 12-bit PC pointer derived from a full branch address. */
    static uint16_t pcPointerFor(uint64_t branchPc);

    std::string toString() const;

    bool operator==(const BrHint &o) const = default;
};

} // namespace whisper

#endif // WHISPER_CORE_BRHINT_HH
