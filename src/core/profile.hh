/**
 * @file
 * In-production profile data (paper SIV, step 1-2).
 *
 * A BranchProfile is what Whisper's offline analysis consumes: for
 * every static conditional branch, its execution/taken counts and the
 * profiled processor's misprediction count (the information Intel
 * LBR provides); and for branches selected as "hard", the
 * taken/not-taken sample tables keyed by hashed history at each
 * candidate length (the information derived from Intel PT traces).
 */

#ifndef WHISPER_CORE_PROFILE_HH
#define WHISPER_CORE_PROFILE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/history_hash.hh"

namespace whisper
{

/**
 * Taken/not-taken counts per hashed-history value (the T and NT
 * hash tables of Algorithm 1) for one history length.
 */
struct HashedSampleTable
{
    std::vector<uint32_t> taken;
    std::vector<uint32_t> notTaken;

    HashedSampleTable() = default;
    explicit HashedSampleTable(unsigned keyBits)
        : taken(1u << keyBits, 0), notTaken(1u << keyBits, 0)
    {
    }

    void
    record(unsigned key, bool wasTaken)
    {
        if (wasTaken)
            ++taken[key];
        else
            ++notTaken[key];
    }

    /** Elementwise sum (profile merging). */
    void addFrom(const HashedSampleTable &other);

    /** Total samples recorded. */
    uint64_t totalSamples() const;

    /**
     * Mispredictions of the best possible per-key constant
     * prediction: sum over keys of min(T, NT). This is the floor any
     * formula over this key space can reach.
     */
    uint64_t oracleMispredicts() const;

    bool empty() const { return taken.empty(); }

    bool operator==(const HashedSampleTable &o) const = default;
};

/** Profile record for one static conditional branch. */
struct BranchProfileEntry
{
    uint64_t pc = 0;
    uint64_t executions = 0;
    uint64_t takenCount = 0;
    /** Mispredictions of the profiled (baseline) predictor. */
    uint64_t baselineMispredicts = 0;
    /** True when detailed sample tables were collected. */
    bool hard = false;

    /** Hashed tables, one per candidate history length. */
    std::vector<HashedSampleTable> byLength;
    /** Raw (unhashed) last-4 and last-8 tables for the ROMBF
     * baselines. */
    HashedSampleTable raw4;
    HashedSampleTable raw8;

    uint64_t notTakenCount() const { return executions - takenCount; }

    /** Mispredictions of the best static (always/never) prediction. */
    uint64_t
    biasMispredicts() const
    {
        return std::min(takenCount, notTakenCount());
    }

    double
    baselineAccuracy() const
    {
        return executions == 0
            ? 1.0
            : 1.0 - static_cast<double>(baselineMispredicts) /
                    executions;
    }

    bool operator==(const BranchProfileEntry &o) const = default;
};

/**
 * Whole-application profile: per-branch entries plus trace-level
 * totals. Profiles from multiple inputs can be merged (Fig. 18).
 */
class BranchProfile
{
  public:
    explicit BranchProfile(const WhisperConfig &cfg = WhisperConfig{});

    const WhisperConfig &config() const { return cfg_; }
    const std::vector<unsigned> &lengths() const { return lengths_; }

    /** Find-or-create the entry for @p pc. */
    BranchProfileEntry &entry(uint64_t pc);
    const BranchProfileEntry *find(uint64_t pc) const;

    /** Allocate the detailed tables for @p pc and mark it hard. */
    void markHard(uint64_t pc);

    size_t numBranches() const { return entries_.size(); }
    size_t numHardBranches() const;

    const std::unordered_map<uint64_t, BranchProfileEntry> &
    entries() const
    {
        return entries_;
    }
    std::unordered_map<uint64_t, BranchProfileEntry> &
    entries()
    {
        return entries_;
    }

    /** Hard entries sorted by descending baseline mispredictions. */
    std::vector<const BranchProfileEntry *> hardBranches() const;

    /**
     * Merge another profile (same config) into this one, summing all
     * counts; a branch is hard in the union if hard in either.
     */
    void mergeFrom(const BranchProfile &other);

    /**
     * Associative, commutative combination of two profiles: the
     * profile of a trace split into chunks equals the merge of the
     * per-chunk profiles (given identical profiling state threading,
     * see service/ChunkProfiler). This is what lets N ingest shards
     * profile independently and combine (and what the paper's
     * merged-profile experiment, Fig. 18, relies on).
     */
    static BranchProfile merge(const BranchProfile &a,
                               const BranchProfile &b);

    /** Structural equality of all counts and tables (test support;
     * the config itself is compared via its length series). */
    bool operator==(const BranchProfile &o) const
    {
        return lengths_ == o.lengths_ &&
               totalInstructions == o.totalInstructions &&
               totalConditionals == o.totalConditionals &&
               totalMispredicts == o.totalMispredicts &&
               entries_ == o.entries_;
    }

    uint64_t totalInstructions = 0;
    uint64_t totalConditionals = 0;
    uint64_t totalMispredicts = 0;

  private:
    WhisperConfig cfg_;
    std::vector<unsigned> lengths_;
    std::unordered_map<uint64_t, BranchProfileEntry> entries_;
};

} // namespace whisper

#endif // WHISPER_CORE_PROFILE_HH
