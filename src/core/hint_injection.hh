/**
 * @file
 * Link-time brhint placement (paper SIV, "Hint injection").
 *
 * For each hinted branch Whisper picks a predecessor basic block
 * using the conditional-probability correlation algorithm of the
 * I-SPY/Ripple/Twig line of work: among blocks that execute shortly
 * before the branch, pick the one whose execution best predicts an
 * imminent execution of the branch (high coverage of the branch's
 * executions, high precision so the hint is not executed uselessly).
 *
 * The trace's branch PCs stand in for basic blocks: the block led by
 * the instruction after a branch is identified by that branch's PC.
 */

#ifndef WHISPER_CORE_HINT_INJECTION_HH
#define WHISPER_CORE_HINT_INJECTION_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/whisper_trainer.hh"
#include "trace/branch_source.hh"

namespace whisper
{

/** Placement of one brhint into a predecessor block. */
struct HintPlacement
{
    uint64_t branchPc = 0;      //!< the hinted branch
    uint64_t predecessorPc = 0; //!< block that executes the brhint
    double coverage = 0.0;  //!< P(pred executed within window | branch)
    double precision = 0.0; //!< P(branch within window | pred executed)
    /** Dynamic executions of the predecessor on the training trace
     * (= brhint instructions executed there). */
    uint64_t predecessorExecutions = 0;

    bool operator==(const HintPlacement &o) const = default;
};

/** Static/dynamic instruction overhead of an injection (Fig. 19). */
struct InjectionOverhead
{
    uint64_t staticHints = 0;       //!< brhint instructions added
    uint64_t dynamicHints = 0;      //!< brhint executions on the trace
    double staticIncreasePct = 0.0; //!< vs static instruction footprint
    double dynamicIncreasePct = 0.0; //!< vs dynamic instructions
};

/** Offline placement pass. */
class HintInjector
{
  public:
    struct Config
    {
        /** Look-behind window, in branch records, within which a
         * block counts as a predecessor. Bounds hint timeliness. */
        unsigned window = 16;
        /** Placements below this coverage fall back to the hinted
         * branch's own block (self-placement). */
        double minCoverage = 0.30;
    };

    HintInjector();
    explicit HintInjector(const Config &cfg);

    /**
     * One pass over @p trace selecting a predecessor for every hint.
     * @p trace is rewound first.
     */
    std::vector<HintPlacement>
    place(BranchSource &trace,
          const std::vector<TrainedHint> &hints) const;

    /**
     * Overhead accounting: @p staticInstructions is the footprint of
     * the unmodified binary; @p dynamicInstructions the trace's
     * retired count.
     */
    static InjectionOverhead
    overhead(const std::vector<HintPlacement> &placements,
             uint64_t staticInstructions, uint64_t dynamicInstructions);

  private:
    Config cfg_;
};

} // namespace whisper

#endif // WHISPER_CORE_HINT_INJECTION_HH
