#include "core/formula_gates.hh"

#include <algorithm>

#include "util/logging.hh"

namespace whisper
{

FormulaNetlist::FormulaNetlist(const BoolFormula &formula)
    : formula_(formula), numInputs_(formula.numInputs())
{
    // Net indices: [0, numInputs) are the hashed-history bits;
    // gate i produces net numInputs_ + i.
    std::vector<int> layer(numInputs_);
    for (unsigned i = 0; i < numInputs_; ++i)
        layer[i] = static_cast<int>(i);

    unsigned node = 0;
    unsigned width = numInputs_;
    while (width > 1) {
        for (unsigned i = 0; i < width / 2; ++i) {
            layer[i] =
                emitSingleUnit(node, layer[2 * i], layer[2 * i + 1]);
            ++node;
        }
        width /= 2;
    }

    // Fig. 9's final stage: 2:1 mux between the tree output and its
    // inversion, selected by the encoding's inversion bit.
    int inverted = emit(GateKind::Not, layer[0]);
    int sel = emitConst(formula.inverted());
    output_ = emitMux2(sel, layer[0], inverted);
}

int
FormulaNetlist::emit(GateKind kind, int a, int b)
{
    gates_.push_back(Gate{kind, a, b, false});
    return static_cast<int>(numInputs_ + gates_.size() - 1);
}

int
FormulaNetlist::emitConst(bool value)
{
    gates_.push_back(Gate{GateKind::Const, -1, -1, value});
    return static_cast<int>(numInputs_ + gates_.size() - 1);
}

int
FormulaNetlist::emitMux2(int sel, int d0, int d1)
{
    int nsel = emit(GateKind::Not, sel);
    int lo = emit(GateKind::And, nsel, d0);
    int hi = emit(GateKind::And, sel, d1);
    return emit(GateKind::Or, lo, hi);
}

int
FormulaNetlist::emitSingleUnit(unsigned node, int a, int b)
{
    // The four operation outputs of Fig. 8...
    int notA = emit(GateKind::Not, a);
    int andOut = emit(GateKind::And, a, b);
    int orOut = emit(GateKind::Or, a, b);
    int implOut = emit(GateKind::Or, notA, b);
    int cnimplOut = emit(GateKind::And, notA, b);

    // ...selected by a 4:1 mux on the encoding's two op bits. The
    // op bits are constants per deployed hint (they come from the
    // brhint immediate).
    unsigned op = static_cast<unsigned>(formula_.nodeOp(node));
    int o0 = emitConst(op & 1);
    int o1 = emitConst((op >> 1) & 1);
    int lo = emitMux2(o0, andOut, orOut);
    int hi = emitMux2(o0, implOut, cnimplOut);
    return emitMux2(o1, lo, hi);
}

bool
FormulaNetlist::evaluate(uint8_t inputs) const
{
    std::vector<uint8_t> nets(numInputs_ + gates_.size());
    for (unsigned i = 0; i < numInputs_; ++i)
        nets[i] = (inputs >> i) & 1;
    for (size_t g = 0; g < gates_.size(); ++g) {
        const Gate &gate = gates_[g];
        uint8_t v = 0;
        switch (gate.kind) {
          case GateKind::Const:
            v = gate.constValue;
            break;
          case GateKind::Not:
            v = !nets[gate.a];
            break;
          case GateKind::And:
            v = nets[gate.a] && nets[gate.b];
            break;
          case GateKind::Or:
            v = nets[gate.a] || nets[gate.b];
            break;
        }
        nets[numInputs_ + g] = v;
    }
    return nets[output_];
}

unsigned
FormulaNetlist::criticalPathDelay() const
{
    // Constants are settled long before evaluation (they decode with
    // the hint), so they contribute no delay.
    std::vector<unsigned> depth(numInputs_ + gates_.size(), 0);
    for (size_t g = 0; g < gates_.size(); ++g) {
        const Gate &gate = gates_[g];
        unsigned d = 0;
        if (gate.kind != GateKind::Const) {
            d = depth[gate.a] + 1;
            if (gate.b >= 0)
                d = std::max(d, depth[gate.b] + 1);
        }
        depth[numInputs_ + g] = d;
    }
    return depth[output_];
}

} // namespace whisper
