#include "core/correlation_screen.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace whisper
{

namespace
{

/** Taken/not-taken mass on each side of one key bit. */
struct BitSplit
{
    uint64_t taken[2] = {0, 0};
    uint64_t notTaken[2] = {0, 0};

    uint64_t
    total() const
    {
        return taken[0] + taken[1] + notTaken[0] + notTaken[1];
    }

    uint64_t
    biasMispredicts() const
    {
        return std::min(taken[0] + taken[1],
                        notTaken[0] + notTaken[1]);
    }

    uint64_t
    splitMispredicts() const
    {
        return std::min(taken[0], notTaken[0]) +
               std::min(taken[1], notTaken[1]);
    }
};

BitSplit
splitByBit(const HashedSampleTable &table, unsigned bit)
{
    BitSplit s;
    for (size_t key = 0; key < table.taken.size(); ++key) {
        unsigned side = (key >> bit) & 1;
        s.taken[side] += table.taken[key];
        s.notTaken[side] += table.notTaken[key];
    }
    return s;
}

double
entropyTerm(double p)
{
    return p > 0.0 ? -p * std::log2(p) : 0.0;
}

} // namespace

CorrelationScreen::CorrelationScreen(const ScreenConfig &cfg)
    : cfg_(cfg)
{
}

double
CorrelationScreen::lengthGain(const HashedSampleTable &table)
{
    uint64_t total = table.totalSamples();
    if (total == 0)
        return 0.0;
    uint64_t taken = 0;
    for (uint32_t t : table.taken)
        taken += t;
    uint64_t bias = std::min(taken, total - taken);
    uint64_t oracle = table.oracleMispredicts();
    return static_cast<double>(bias - oracle) /
           static_cast<double>(total);
}

double
CorrelationScreen::bitGain(const HashedSampleTable &table, unsigned bit)
{
    BitSplit s = splitByBit(table, bit);
    uint64_t total = s.total();
    if (total == 0)
        return 0.0;
    return static_cast<double>(s.biasMispredicts() -
                               s.splitMispredicts()) /
           static_cast<double>(total);
}

double
CorrelationScreen::bitMutualInformation(const HashedSampleTable &table,
                                        unsigned bit)
{
    BitSplit s = splitByBit(table, bit);
    double total = static_cast<double>(s.total());
    if (total == 0.0)
        return 0.0;

    // I(B; O) = H(O) + H(B) - H(B, O), all in bits.
    double joint[2][2] = {
        {s.notTaken[0] / total, s.taken[0] / total},
        {s.notTaken[1] / total, s.taken[1] / total},
    };
    double pBit[2] = {joint[0][0] + joint[0][1],
                      joint[1][0] + joint[1][1]};
    double pOut[2] = {joint[0][0] + joint[1][0],
                      joint[0][1] + joint[1][1]};
    double mi = entropyTerm(pOut[0]) + entropyTerm(pOut[1]) +
                entropyTerm(pBit[0]) + entropyTerm(pBit[1]) -
                entropyTerm(joint[0][0]) - entropyTerm(joint[0][1]) -
                entropyTerm(joint[1][0]) - entropyTerm(joint[1][1]);
    return std::max(mi, 0.0);
}

bool
CorrelationScreen::bitPerfectlyCorrelated(const HashedSampleTable &table,
                                          unsigned bit)
{
    BitSplit s = splitByBit(table, bit);
    if (s.total() == 0)
        return false;
    // Both outcomes must occur (a constant branch is "predicted"
    // by anything) and the bit must decide every sample.
    uint64_t taken = s.taken[0] + s.taken[1];
    uint64_t notTaken = s.notTaken[0] + s.notTaken[1];
    return taken > 0 && notTaken > 0 && s.splitMispredicts() == 0;
}

std::vector<unsigned>
CorrelationScreen::distinctLengthIndices(
    const std::vector<unsigned> &lengths)
{
    std::vector<unsigned> out;
    out.reserve(lengths.size());
    for (unsigned i = 0; i < lengths.size(); ++i) {
        bool seen = false;
        for (unsigned j : out)
            if (lengths[j] == lengths[i]) {
                seen = true;
                break;
            }
        if (!seen)
            out.push_back(i);
    }
    return out;
}

BranchScreen
CorrelationScreen::screenBranch(
    const BranchProfileEntry &entry,
    const std::vector<unsigned> &lengths) const
{
    whisper_assert(entry.byLength.size() == lengths.size());
    BranchScreen out;
    if (!cfg_.enabled || lengths.empty()) {
        out.lengthIdx = distinctLengthIndices(lengths);
        return out;
    }

    // -- length selection: rank distinct lengths by oracle headroom,
    // keep the top maxLengths; a length holding a perfectly
    // correlated bit is kept unconditionally.
    struct Scored
    {
        unsigned idx;
        double gain;
        bool perfect;
    };
    std::vector<Scored> scored;
    for (unsigned idx : distinctLengthIndices(lengths)) {
        const HashedSampleTable &table = entry.byLength[idx];
        if (table.empty() || table.totalSamples() == 0)
            continue;
        Scored s{idx, lengthGain(table), false};
        unsigned bits =
            static_cast<unsigned>(std::countr_zero(table.taken.size()));
        for (unsigned b = 0; b < bits && !s.perfect; ++b)
            s.perfect = bitPerfectlyCorrelated(table, b);
        scored.push_back(s);
    }
    // Stable sort, descending gain, perfect first; ties keep series
    // order so the pass is deterministic.
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored &a, const Scored &b) {
                         if (a.perfect != b.perfect)
                             return a.perfect;
                         return a.gain > b.gain;
                     });
    unsigned budget = std::max(1u, cfg_.maxLengths);
    for (const Scored &s : scored) {
        if (out.lengthIdx.size() >= budget && !s.perfect)
            continue;
        out.lengthIdx.push_back(s.idx);
    }
    std::sort(out.lengthIdx.begin(), out.lengthIdx.end());

    // -- input-bit selection: union of informative bits over the
    // kept lengths, scored by mutual information. Perfect bits are
    // kept unconditionally; otherwise a bit must reach the relative
    // threshold at some kept length.
    unsigned hashBits = 0;
    for (unsigned idx : out.lengthIdx)
        hashBits = std::max(
            hashBits, static_cast<unsigned>(std::countr_zero(
                          entry.byLength[idx].taken.size())));
    hashBits = std::min(hashBits, 8u);
    if (hashBits == 0) {
        out.inputMask = 0xFF;
        return out;
    }

    double mi[8] = {};
    bool perfect[8] = {};
    double bestMi = 0.0;
    for (unsigned idx : out.lengthIdx) {
        const HashedSampleTable &table = entry.byLength[idx];
        for (unsigned b = 0; b < hashBits; ++b) {
            mi[b] = std::max(mi[b], bitMutualInformation(table, b));
            perfect[b] =
                perfect[b] || bitPerfectlyCorrelated(table, b);
            bestMi = std::max(bestMi, mi[b]);
        }
    }
    uint8_t mask = 0;
    for (unsigned b = 0; b < hashBits; ++b)
        if (perfect[b] || mi[b] >= bestMi * cfg_.bitKeepFraction)
            mask |= static_cast<uint8_t>(1u << b);
    // Top up to minBits with the best remaining bits (index order
    // breaks ties deterministically).
    unsigned floor = std::min(cfg_.minBits, hashBits);
    while (static_cast<unsigned>(std::popcount(mask)) < floor) {
        int bestBit = -1;
        double best = -1.0;
        for (unsigned b = 0; b < hashBits; ++b) {
            if (mask & (1u << b))
                continue;
            if (mi[b] > best) {
                best = mi[b];
                bestBit = static_cast<int>(b);
            }
        }
        if (bestBit < 0)
            break;
        mask |= static_cast<uint8_t>(1u << bestBit);
    }
    out.inputMask = mask ? mask : 0xFF;
    return out;
}

} // namespace whisper
