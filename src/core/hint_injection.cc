#include "core/hint_injection.hh"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/logging.hh"

namespace whisper
{

HintInjector::HintInjector() : HintInjector(Config{})
{
}

HintInjector::HintInjector(const Config &cfg) : cfg_(cfg)
{
    whisper_assert(cfg.window >= 1);
}

std::vector<HintPlacement>
HintInjector::place(BranchSource &trace,
                    const std::vector<TrainedHint> &hints) const
{
    std::unordered_set<uint64_t> hinted;
    for (const auto &h : hints)
        hinted.insert(h.pc);

    // cooccur[branch][pred] = branch executions with pred in the
    // preceding window (each pred counted once per branch execution).
    std::unordered_map<uint64_t,
                       std::unordered_map<uint64_t, uint64_t>>
        cooccur;
    std::unordered_map<uint64_t, uint64_t> execCount;
    std::unordered_map<uint64_t, uint64_t> branchExec;

    trace.rewind();
    std::deque<uint64_t> window;
    BranchRecord rec;
    std::unordered_set<uint64_t> seen;
    while (trace.next(rec)) {
        ++execCount[rec.pc];
        if (rec.isConditional() && hinted.count(rec.pc)) {
            ++branchExec[rec.pc];
            auto &preds = cooccur[rec.pc];
            seen.clear();
            for (uint64_t p : window) {
                if (seen.insert(p).second)
                    ++preds[p];
            }
        }
        window.push_back(rec.pc);
        if (window.size() > cfg_.window)
            window.pop_front();
    }

    std::vector<HintPlacement> placements;
    placements.reserve(hints.size());
    for (const auto &h : hints) {
        HintPlacement pl;
        pl.branchPc = h.pc;

        uint64_t execs = branchExec[h.pc];
        double bestScore = -1.0;
        const auto it = cooccur.find(h.pc);
        if (it != cooccur.end() && execs > 0) {
            for (const auto &[pred, count] : it->second) {
                double coverage =
                    static_cast<double>(count) / execs;
                // A branch may execute several times inside one
                // predecessor window; cap so precision stays a
                // probability.
                double precision = std::min(
                    1.0,
                    static_cast<double>(count) / execCount[pred]);
                // Conditional-probability score: a good predecessor
                // covers the branch and rarely fires spuriously.
                double score = coverage * precision;
                if (coverage >= cfg_.minCoverage &&
                    score > bestScore) {
                    bestScore = score;
                    pl.predecessorPc = pred;
                    pl.coverage = coverage;
                    pl.precision = precision;
                }
            }
        }
        if (bestScore < 0.0) {
            // Fall back to the branch's own block: the hint becomes
            // available from the branch's second execution onwards.
            pl.predecessorPc = h.pc;
            pl.coverage = 1.0;
            pl.precision = 1.0;
        }
        pl.predecessorExecutions = execCount[pl.predecessorPc];
        placements.push_back(pl);
    }
    return placements;
}

InjectionOverhead
HintInjector::overhead(const std::vector<HintPlacement> &placements,
                       uint64_t staticInstructions,
                       uint64_t dynamicInstructions)
{
    InjectionOverhead o;
    o.staticHints = placements.size();
    for (const auto &pl : placements)
        o.dynamicHints += pl.predecessorExecutions;
    if (staticInstructions > 0) {
        o.staticIncreasePct = 100.0 *
            static_cast<double>(o.staticHints) / staticInstructions;
    }
    if (dynamicInstructions > 0) {
        o.dynamicIncreasePct = 100.0 *
            static_cast<double>(o.dynamicHints) / dynamicInstructions;
    }
    return o;
}

} // namespace whisper
