#include "core/static_profile.hh"

#include "core/profile.hh"

namespace whisper
{

StaticProfilePredictor::StaticProfilePredictor(
    const BranchProfile &profile, bool fallbackTaken)
    : fallbackTaken_(fallbackTaken)
{
    for (const auto &[pc, e] : profile.entries()) {
        if (e.executions > 0)
            direction_[pc] = e.takenCount >= e.notTakenCount();
    }
}

bool
StaticProfilePredictor::predict(uint64_t pc, bool)
{
    auto it = direction_.find(pc);
    return it == direction_.end() ? fallbackTaken_ : it->second;
}

} // namespace whisper
