/**
 * @file
 * Whisper's offline branch analysis (paper SIV, step 2).
 *
 * For every hard branch in the profile the trainer scans all m
 * candidate history lengths, runs Algorithm 1 with the randomized
 * candidate set at each length, also considers the static bias
 * options, and emits a brhint only when the winner beats the
 * profiled processor's accuracy on that branch.
 */

#ifndef WHISPER_CORE_WHISPER_TRAINER_HH
#define WHISPER_CORE_WHISPER_TRAINER_HH

#include <cstdint>
#include <vector>

#include "core/brhint.hh"
#include "core/correlation_screen.hh"
#include "core/formula_trainer.hh"
#include "core/profile.hh"

namespace whisper
{

/** One trained hint plus the bookkeeping the evaluation uses. */
struct TrainedHint
{
    uint64_t pc = 0;           //!< full branch address
    BrHint hint;               //!< encoded instruction payload
    unsigned historyLength = 0; //!< resolved length (series value)
    uint64_t expectedMispredicts = 0; //!< m' on the training profile
    uint64_t profiledMispredicts = 0; //!< baseline on the profile
    uint64_t executions = 0;

    bool operator==(const TrainedHint &o) const = default;
};

/** Aggregate statistics of one training run. */
struct TrainingStats
{
    uint64_t branchesConsidered = 0;
    uint64_t hintsEmitted = 0;
    uint64_t formulasScored = 0;
    double trainSeconds = 0.0;
    /** Profiled mispredictions covered by emitted hints. */
    uint64_t coveredMispredicts = 0;
    /** Expected remaining mispredictions on those branches. */
    uint64_t expectedRemaining = 0;

    // -- warm-start accounting --
    /** Branches whose warm seed (previous formula + neighborhood)
     * satisfied the emission gates, skipping the cold search. */
    uint64_t warmHits = 0;
    /** Branches that ran the full (possibly pruned) search. */
    uint64_t coldSearches = 0;
    /** Per-branch train-time accumulators (mean = sum over
     * branchesConsidered). */
    double branchSecondsSum = 0.0;
    double branchSecondsMax = 0.0;
};

/** Per-branch outcome of one trainBranchSeeded call. */
struct BranchTrainOutcome
{
    bool warmHit = false;  //!< emitted straight from the warm seed
    uint64_t scored = 0;   //!< formulas scored for this branch
    double seconds = 0.0;  //!< wall time spent on this branch
};

/** Whisper's offline trainer. */
class WhisperTrainer
{
  public:
    /**
     * @param cfg design parameters (Table III defaults)
     * @param cache shared truth-table cache (must outlive trainer)
     */
    WhisperTrainer(const WhisperConfig &cfg,
                   const TruthTableCache &cache);

    /**
     * Train hints for every hard branch of @p profile.
     * @param stats optional run statistics out-param
     */
    std::vector<TrainedHint> train(const BranchProfile &profile,
                                   TrainingStats *stats = nullptr) const;

    /**
     * Warm-started variant: @p warmSeeds (typically the previous
     * epoch's deployed hints) seed the per-branch search; branches
     * without a seed train cold.
     */
    std::vector<TrainedHint>
    train(const BranchProfile &profile,
          const std::vector<TrainedHint> *warmSeeds,
          TrainingStats *stats) const;

    /**
     * Train a single branch; returns false when no hint beats the
     * profiled predictor for it.
     */
    bool trainBranch(const BranchProfileEntry &entry,
                     const std::vector<unsigned> &lengths,
                     TrainedHint &out, uint64_t *scored = nullptr) const;

    /**
     * Train one branch, optionally warm-started from @p warm (the
     * branch's previously deployed hint, or nullptr for a cold
     * search). The warm path re-scores the previous formula and its
     * one-bit-flip neighborhood on the fresh profile; if that
     * neighborhood still clears the emission gates AND retains the
     * seed's trained quality ratio (expectedMispredicts /
     * profiledMispredicts, within warmRetentionSlack/-Noise) the
     * hint is emitted without a cold search (outcome->warmHit). A
     * seed that fails either check falls through to the cold
     * search, so decorrelated traffic never inherits a stale or
     * degraded formula. With screening enabled (setScreen) both
     * paths search only the pruned candidate set.
     */
    bool trainBranchSeeded(const BranchProfileEntry &entry,
                           const std::vector<unsigned> &lengths,
                           const TrainedHint *warm, TrainedHint &out,
                           BranchTrainOutcome *outcome
                           = nullptr) const;

    /** Enable/replace the sparse-correlation screening pass. */
    void setScreen(const ScreenConfig &cfg);
    const ScreenConfig &screenConfig() const
    {
        return screen_.config();
    }

    const FormulaCandidates &candidates() const { return candidates_; }
    const WhisperConfig &config() const { return cfg_; }

    /** Rebuild with a different candidate fraction (Fig. 15 sweep). */
    void setCandidateFraction(double fraction);

    /** Replace the candidate set outright (ablation studies). */
    void setCandidateList(std::vector<uint16_t> encodings);

    /**
     * All AND/OR-only, non-inverted encodings — the classic-ROMBF
     * subset of the formula space (used for the Fig. 14 ablation
     * separating hashed-history correlation from the new
     * implication operators).
     */
    static std::vector<uint16_t> monotoneCandidates();

  private:
    /** selected_ filtered to formulas supported by @p mask (with
     * the unfiltered fallback when too few survive). */
    std::vector<uint16_t> maskedCandidates(uint8_t mask) const;

    WhisperConfig cfg_;
    const TruthTableCache &cache_;
    FormulaCandidates candidates_;
    std::vector<uint16_t> selected_;
    CorrelationScreen screen_;
};

} // namespace whisper

#endif // WHISPER_CORE_WHISPER_TRAINER_HH
