#include "core/whisper_trainer.hh"

#include <chrono>
#include <cmath>
#include <unordered_map>

#include "util/logging.hh"

namespace whisper
{

WhisperTrainer::WhisperTrainer(const WhisperConfig &cfg,
                               const TruthTableCache &cache)
    : cfg_(cfg), cache_(cache),
      candidates_(cache.numInputs(), cfg.formulaFraction,
                  cfg.formulaShuffleSeed),
      selected_(candidates_.encodings())
{
    // Screening is opt-in: the offline tools and figure benches
    // reproduce the paper's exhaustive scan unless setScreen() is
    // called (whisperd enables it by default).
    ScreenConfig off;
    off.enabled = false;
    screen_ = CorrelationScreen(off);
}

void
WhisperTrainer::setScreen(const ScreenConfig &cfg)
{
    screen_ = CorrelationScreen(cfg);
}

std::vector<uint16_t>
WhisperTrainer::maskedCandidates(uint8_t mask) const
{
    if (mask == 0xFF)
        return selected_;
    std::vector<uint16_t> out;
    out.reserve(selected_.size());
    for (uint16_t enc : selected_)
        if ((cache_.supportMask(enc) & ~mask) == 0)
            out.push_back(enc);
    if (out.size() < screen_.config().minFormulaCandidates)
        return selected_;
    return out;
}

void
WhisperTrainer::setCandidateFraction(double fraction)
{
    selected_ = candidates_.withFraction(fraction);
}

void
WhisperTrainer::setCandidateList(std::vector<uint16_t> encodings)
{
    whisper_assert(!encodings.empty());
    selected_ = std::move(encodings);
}

std::vector<uint16_t>
WhisperTrainer::monotoneCandidates()
{
    std::vector<uint16_t> out;
    for (uint32_t enc = 0; enc < BoolFormula::encodingCount(8);
         ++enc) {
        BoolFormula f(static_cast<uint16_t>(enc), 8);
        if (f.isMonotone())
            out.push_back(static_cast<uint16_t>(enc));
    }
    return out;
}

bool
WhisperTrainer::trainBranch(const BranchProfileEntry &entry,
                            const std::vector<unsigned> &lengths,
                            TrainedHint &out, uint64_t *scored) const
{
    BranchTrainOutcome outcome;
    bool produced = trainBranchSeeded(entry, lengths, nullptr, out,
                                      &outcome);
    if (scored)
        *scored += outcome.scored;
    return produced;
}

namespace
{

/** Running winner of one branch's search. */
struct BranchBest
{
    uint64_t mispredicts;
    HintBias bias;
    int lenIdx = -1;
    uint16_t formula = 0;
};

/** The warm candidate set: the previous formula plus its one-bit-
 * flip neighborhood in the 15-bit encoding space. */
std::vector<uint16_t>
warmNeighborhood(uint16_t encoding, unsigned numInputs)
{
    std::vector<uint16_t> encs;
    uint32_t count = BoolFormula::encodingCount(numInputs);
    encs.push_back(encoding);
    for (unsigned bit = 0; bit < 16; ++bit) {
        uint16_t flipped =
            static_cast<uint16_t>(encoding ^ (1u << bit));
        if (flipped < count)
            encs.push_back(flipped);
    }
    return encs;
}

} // namespace

bool
WhisperTrainer::trainBranchSeeded(const BranchProfileEntry &entry,
                                  const std::vector<unsigned> &lengths,
                                  const TrainedHint *warm,
                                  TrainedHint &out,
                                  BranchTrainOutcome *outcome) const
{
    whisper_assert(entry.hard, "trainBranch needs detailed tables");
    whisper_assert(entry.byLength.size() == lengths.size());
    auto t0 = std::chrono::steady_clock::now();

    const bool screened = screen_.config().enabled;
    BranchScreen scr = screen_.screenBranch(entry, lengths);
    std::vector<uint16_t> candidates =
        screened ? maskedCandidates(scr.inputMask) : selected_;

    BranchTrainOutcome local;
    auto finish = [&](bool produced) {
        local.seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        if (outcome)
            *outcome = local;
        return produced;
    };

    // Start from the static-bias options: they are always available
    // through the brhint Bias field and cost no formula search.
    auto freshBest = [&]() {
        return BranchBest{entry.biasMispredicts(),
                          entry.takenCount >= entry.notTakenCount()
                              ? HintBias::AlwaysTaken
                              : HintBias::NeverTaken};
    };

    auto searchLengths = [&](BranchBest &best,
                             const std::vector<uint16_t> &encs) {
        for (unsigned l : scr.lengthIdx) {
            if (entry.byLength[l].totalSamples() == 0)
                continue;
            FormulaSearchResult res =
                findBooleanFormula(entry.byLength[l], encs, cache_);
            local.scored += res.explored;
            if (res.valid && res.mispredicts < best.mispredicts) {
                best.mispredicts = res.mispredicts;
                best.bias = HintBias::Formula;
                best.lenIdx = static_cast<int>(l);
                best.formula = res.formula.encoding();
            }
        }
    };

    // Emit only when the winner beats the profiled predictor by the
    // configured relative margin (paper SIV: "only if Boolean
    // formula-based prediction achieves better accuracy than the
    // profiled processor's predictor") AND the absolute per-
    // execution gain is worth a hint.
    auto passesGates = [&](const BranchBest &best) {
        double baseline =
            static_cast<double>(entry.baselineMispredicts);
        if (static_cast<double>(best.mispredicts) >=
            baseline * (1.0 - cfg_.minImprovement))
            return false;
        double gainPerExec =
            (baseline - static_cast<double>(best.mispredicts)) /
            static_cast<double>(
                std::max<uint64_t>(entry.executions, 1));
        return gainPerExec >= cfg_.minGainPerExecution;
    };

    auto emit = [&](const BranchBest &best) {
        out.pc = entry.pc;
        out.hint.historyIdx = best.lenIdx < 0
            ? 0 : static_cast<uint8_t>(best.lenIdx);
        out.hint.formula = best.formula;
        out.hint.bias = best.bias;
        out.hint.pcPointer = BrHint::pcPointerFor(entry.pc);
        out.historyLength =
            best.lenIdx < 0 ? 0 : lengths[best.lenIdx];
        out.expectedMispredicts = best.mispredicts;
        out.profiledMispredicts = entry.baselineMispredicts;
        out.executions = entry.executions;
    };

    // -- warm path: re-score the previous hint (for formulas, its
    // one-bit-flip neighborhood too) on the fresh tables. The gates
    // run against the *fresh* profile, so a seed that decorrelated
    // since the last epoch fails here and falls through to cold.
    if (warm) {
        // Clearing the emission gates alone is not enough for a
        // warm hit: a drifted formula can still beat the bias by
        // the minimum margin while a cold search would find a far
        // better one. Require the seed's relative quality to
        // survive on the fresh profile too.
        auto retainsQuality = [&](const BranchBest &best) {
            double seedRatio =
                static_cast<double>(warm->expectedMispredicts) /
                static_cast<double>(std::max<uint64_t>(
                    warm->profiledMispredicts, 1));
            double freshRatio =
                static_cast<double>(best.mispredicts) /
                static_cast<double>(std::max<uint64_t>(
                    entry.baselineMispredicts, 1));
            return freshRatio <=
                   seedRatio * cfg_.warmRetentionSlack +
                       cfg_.warmRetentionNoise;
        };
        BranchBest best = freshBest();
        if (warm->hint.bias == HintBias::Formula)
            searchLengths(best,
                          warmNeighborhood(warm->hint.formula,
                                           cache_.numInputs()));
        if (passesGates(best) && retainsQuality(best)) {
            emit(best);
            local.warmHit = true;
            return finish(true);
        }
    }

    // -- cold (possibly pruned) search.
    BranchBest best = freshBest();
    searchLengths(best, candidates);
    if (!passesGates(best))
        return finish(false);
    emit(best);
    return finish(true);
}

std::vector<TrainedHint>
WhisperTrainer::train(const BranchProfile &profile,
                      TrainingStats *stats) const
{
    return train(profile, nullptr, stats);
}

std::vector<TrainedHint>
WhisperTrainer::train(const BranchProfile &profile,
                      const std::vector<TrainedHint> *warmSeeds,
                      TrainingStats *stats) const
{
    auto start = std::chrono::steady_clock::now();
    TrainingStats local;

    std::unordered_map<uint64_t, const TrainedHint *> seeds;
    if (warmSeeds)
        for (const TrainedHint &h : *warmSeeds)
            seeds.emplace(h.pc, &h);

    std::vector<TrainedHint> hints;
    for (const BranchProfileEntry *entry : profile.hardBranches()) {
        if (entry->baselineMispredicts < cfg_.minMispredictions)
            continue;
        ++local.branchesConsidered;
        const TrainedHint *warm = nullptr;
        if (auto it = seeds.find(entry->pc); it != seeds.end())
            warm = it->second;
        TrainedHint hint;
        BranchTrainOutcome outcome;
        bool produced = trainBranchSeeded(*entry, profile.lengths(),
                                          warm, hint, &outcome);
        local.formulasScored += outcome.scored;
        if (outcome.warmHit)
            ++local.warmHits;
        else
            ++local.coldSearches;
        local.branchSecondsSum += outcome.seconds;
        local.branchSecondsMax =
            std::max(local.branchSecondsMax, outcome.seconds);
        if (produced) {
            local.coveredMispredicts += hint.profiledMispredicts;
            local.expectedRemaining += hint.expectedMispredicts;
            hints.push_back(hint);
        }
    }

    local.hintsEmitted = hints.size();
    local.trainSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (stats)
        *stats = local;
    return hints;
}

} // namespace whisper
