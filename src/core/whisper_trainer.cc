#include "core/whisper_trainer.hh"

#include <chrono>
#include <cmath>

#include "util/logging.hh"

namespace whisper
{

WhisperTrainer::WhisperTrainer(const WhisperConfig &cfg,
                               const TruthTableCache &cache)
    : cfg_(cfg), cache_(cache),
      candidates_(cache.numInputs(), cfg.formulaFraction,
                  cfg.formulaShuffleSeed),
      selected_(candidates_.encodings())
{
}

void
WhisperTrainer::setCandidateFraction(double fraction)
{
    selected_ = candidates_.withFraction(fraction);
}

void
WhisperTrainer::setCandidateList(std::vector<uint16_t> encodings)
{
    whisper_assert(!encodings.empty());
    selected_ = std::move(encodings);
}

std::vector<uint16_t>
WhisperTrainer::monotoneCandidates()
{
    std::vector<uint16_t> out;
    for (uint32_t enc = 0; enc < BoolFormula::encodingCount(8);
         ++enc) {
        BoolFormula f(static_cast<uint16_t>(enc), 8);
        if (f.isMonotone())
            out.push_back(static_cast<uint16_t>(enc));
    }
    return out;
}

bool
WhisperTrainer::trainBranch(const BranchProfileEntry &entry,
                            const std::vector<unsigned> &lengths,
                            TrainedHint &out, uint64_t *scored) const
{
    whisper_assert(entry.hard, "trainBranch needs detailed tables");
    whisper_assert(entry.byLength.size() == lengths.size());

    // Start from the static-bias options: they are always available
    // through the brhint Bias field and cost no formula search.
    uint64_t best = entry.biasMispredicts();
    HintBias bestBias = entry.takenCount >= entry.notTakenCount()
        ? HintBias::AlwaysTaken : HintBias::NeverTaken;
    int bestLenIdx = -1;
    uint16_t bestFormula = 0;

    for (size_t l = 0; l < lengths.size(); ++l) {
        if (entry.byLength[l].totalSamples() == 0)
            continue;
        FormulaSearchResult res =
            findBooleanFormula(entry.byLength[l], selected_, cache_);
        if (scored)
            *scored += res.explored;
        if (res.valid && res.mispredicts < best) {
            best = res.mispredicts;
            bestBias = HintBias::Formula;
            bestLenIdx = static_cast<int>(l);
            bestFormula = res.formula.encoding();
        }
    }

    // Emit only when the winner beats the profiled predictor by the
    // configured relative margin (paper SIV: "only if Boolean
    // formula-based prediction achieves better accuracy than the
    // profiled processor's predictor") AND the absolute per-
    // execution gain is worth a hint.
    double baseline =
        static_cast<double>(entry.baselineMispredicts);
    if (static_cast<double>(best) >=
        baseline * (1.0 - cfg_.minImprovement))
        return false;
    double gainPerExec =
        (baseline - static_cast<double>(best)) /
        static_cast<double>(std::max<uint64_t>(entry.executions, 1));
    if (gainPerExec < cfg_.minGainPerExecution)
        return false;

    out.pc = entry.pc;
    out.hint.historyIdx =
        bestLenIdx < 0 ? 0 : static_cast<uint8_t>(bestLenIdx);
    out.hint.formula = bestFormula;
    out.hint.bias = bestBias;
    out.hint.pcPointer = BrHint::pcPointerFor(entry.pc);
    out.historyLength = bestLenIdx < 0 ? 0 : lengths[bestLenIdx];
    out.expectedMispredicts = best;
    out.profiledMispredicts = entry.baselineMispredicts;
    out.executions = entry.executions;
    return true;
}

std::vector<TrainedHint>
WhisperTrainer::train(const BranchProfile &profile,
                      TrainingStats *stats) const
{
    auto start = std::chrono::steady_clock::now();
    TrainingStats local;

    std::vector<TrainedHint> hints;
    for (const BranchProfileEntry *entry : profile.hardBranches()) {
        if (entry->baselineMispredicts < cfg_.minMispredictions)
            continue;
        ++local.branchesConsidered;
        TrainedHint hint;
        if (trainBranch(*entry, profile.lengths(), hint,
                        &local.formulasScored)) {
            local.coveredMispredicts += hint.profiledMispredicts;
            local.expectedRemaining += hint.expectedMispredicts;
            hints.push_back(hint);
        }
    }

    local.hintsEmitted = hints.size();
    local.trainSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (stats)
        *stats = local;
    return hints;
}

} // namespace whisper
