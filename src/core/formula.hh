/**
 * @file
 * Extended Read-Once Monotone Boolean Formulas (paper SIII-C).
 *
 * A formula is a complete binary tree over n hashed-history bits
 * (n = 2, 4 or 8). Every internal node is one of Whisper's four
 * "single unit" operations {AND, OR, IMPL, CNIMPL} (Fig. 8) and one
 * final bit optionally inverts the root (the 2-to-1 output
 * multiplexer of Fig. 9). For n = 8 the encoding is
 * 7 nodes x 2 bits + 1 inversion bit = 15 bits — exactly the
 * "Boolean formula" field of the brhint instruction (Fig. 11).
 *
 * The classic ROMBF of Jimenez et al. is the subset with ops in
 * {AND, OR} and no inversion.
 */

#ifndef WHISPER_CORE_FORMULA_HH
#define WHISPER_CORE_FORMULA_HH

#include <array>
#include <cstdint>
#include <string>

#include "util/logging.hh"

namespace whisper
{

/** The four single-unit operations, in encoding order. */
enum class BoolOp : uint8_t
{
    And = 0,    //!< a & b
    Or = 1,     //!< a | b
    Impl = 2,   //!< a -> b  (=!a | b)
    Cnimpl = 3, //!< converse non-implication: !a & b
};

/** Evaluate one single unit (Fig. 8). */
inline bool
applyBoolOp(BoolOp op, bool a, bool b)
{
    switch (op) {
      case BoolOp::And:
        return a && b;
      case BoolOp::Or:
        return a || b;
      case BoolOp::Impl:
        return !a || b;
      case BoolOp::Cnimpl:
        return !a && b;
    }
    return false;
}

/** Operation-family classification used for Fig. 7. */
enum class OpClass : uint8_t
{
    AlwaysTaken,
    NeverTaken,
    And,
    Or,
    Impl,
    Cnimpl,
    Others,
};

const char *opClassName(OpClass c);

/** 256-entry truth table packed into four 64-bit words. */
using TruthTable = std::array<uint64_t, 4>;

/**
 * An encoded extended-ROMBF formula over n inputs.
 *
 * Bit layout of the encoding (n inputs, n-1 internal nodes):
 *   bits [2i, 2i+2)   op of node i (level order, leaves first)
 *   bit  2*(n-1)      root inversion
 */
class BoolFormula
{
  public:
    static constexpr unsigned kMaxInputs = 8;

    BoolFormula() = default;

    /**
     * @param encoding raw bit pattern (see layout above)
     * @param numInputs 2, 4 or 8
     */
    explicit BoolFormula(uint16_t encoding, unsigned numInputs = 8);

    /** Number of encoding bits for @p numInputs (15 for 8 inputs). */
    static unsigned encodingBits(unsigned numInputs);

    /** Number of distinct encodings, 2^encodingBits (32768 for 8). */
    static uint32_t encodingCount(unsigned numInputs);

    /** Evaluate on packed inputs (bit i of @p inputs is variable i). */
    bool evaluate(uint8_t inputs) const;

    /** Operation of internal node @p node (level order). */
    BoolOp nodeOp(unsigned node) const;

    /** Whether the final 2-to-1 mux selects the inverted output. */
    bool inverted() const;

    uint16_t encoding() const { return encoding_; }
    unsigned numInputs() const { return numInputs_; }
    unsigned numNodes() const { return numInputs_ - 1; }

    /**
     * Truth table over all 2^numInputs packed-input values. For
     * n < 8 only the first 2^n bits are meaningful.
     */
    TruthTable truthTable() const;

    /**
     * True when the formula computes a constant function;
     * @p value receives the constant.
     */
    bool isConstant(bool &value) const;

    /** Classify for the Fig. 7 operation-distribution analysis. */
    OpClass classify() const;

    /** Infix rendering, e.g. "!((b0&b1)|(b2->b3))". */
    std::string toString() const;

    /** True when all node ops are in {AND, OR} and not inverted
     * (i.e., a classic monotone ROMBF). */
    bool isMonotone() const;

    bool operator==(const BoolFormula &o) const
    {
        return encoding_ == o.encoding_ && numInputs_ == o.numInputs_;
    }

  private:
    uint16_t encoding_ = 0;
    uint8_t numInputs_ = 8;
};

/**
 * Gate-delay model of the hardware evaluation tree (paper SIII-C).
 *
 * Every single unit costs at most 5 gate delays (NOT, AND/OR, and a
 * 3-gate 4-to-1 mux); the final inversion mux costs 4 (NOT plus a
 * 3-gate 2-to-1 mux). For n inputs the units form log2(n) sequential
 * levels. The paper's example: n = 8 gives 3*5 + 4 = 19 gates.
 */
constexpr unsigned kSingleUnitGateDelay = 5;
constexpr unsigned kOutputMuxGateDelay = 4;

unsigned formulaGateDelay(unsigned numInputs);

} // namespace whisper

#endif // WHISPER_CORE_FORMULA_HH
