#include "core/legacy_hint_buffer.hh"

#include "util/logging.hh"

namespace whisper
{

LegacyHintBuffer::LegacyHintBuffer(unsigned entries)
    : capacity_(entries)
{
    whisper_assert(entries >= 1);
}

LegacyHintBuffer::LegacyHintBuffer(const LegacyHintBuffer &other)
    : capacity_(other.capacity_), lru_(other.lru_),
      hits_(other.hits_), misses_(other.misses_),
      insertions_(other.insertions_), refreshes_(other.refreshes_),
      evictions_(other.evictions_)
{
    for (auto it = lru_.begin(); it != lru_.end(); ++it)
        map_[it->pc] = it;
}

LegacyHintBuffer &
LegacyHintBuffer::operator=(const LegacyHintBuffer &other)
{
    if (this == &other)
        return *this;
    LegacyHintBuffer copy(other);
    capacity_ = copy.capacity_;
    lru_ = std::move(copy.lru_);
    map_ = std::move(copy.map_);
    hits_ = copy.hits_;
    misses_ = copy.misses_;
    insertions_ = copy.insertions_;
    refreshes_ = copy.refreshes_;
    evictions_ = copy.evictions_;
    return *this;
}

void
LegacyHintBuffer::insert(uint64_t branchPc, const BrHint &hint)
{
    auto it = map_.find(branchPc);
    if (it != map_.end()) {
        // Refresh the existing entry and move it to MRU.
        ++refreshes_;
        it->second->hint = hint;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        ++evictions_;
        map_.erase(lru_.back().pc);
        lru_.pop_back();
    }
    ++insertions_;
    lru_.push_front(Node{branchPc, hint});
    map_[branchPc] = lru_.begin();
}

const BrHint *
LegacyHintBuffer::lookup(uint64_t branchPc)
{
    auto it = map_.find(branchPc);
    if (it == map_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->hint;
}

void
LegacyHintBuffer::clear()
{
    lru_.clear();
    map_.clear();
}

void
LegacyHintBuffer::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    insertions_ = 0;
    refreshes_ = 0;
    evictions_ = 0;
}

std::vector<uint64_t>
LegacyHintBuffer::lruOrder() const
{
    std::vector<uint64_t> order;
    order.reserve(lru_.size());
    for (const auto &node : lru_)
        order.push_back(node.pc);
    return order;
}

} // namespace whisper
