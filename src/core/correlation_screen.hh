/**
 * @file
 * Sparse-correlation screening of the formula-search space.
 *
 * Algorithm 1 is exhaustive in two dimensions: it scans every
 * candidate history length and scores a fixed randomized slice of
 * all formula encodings at each one. Zouzias et al. ("Identifying
 * and Exploiting Sparse Branch Correlations...", PAPERS.md) observe
 * that hard branches correlate with only a handful of history
 * positions — most lengths and most input bits carry no signal for
 * a given branch. This pass scores each candidate length and each
 * hashed-history input bit against the branch outcome using the
 * per-branch sample tables the profiler already collects, and emits
 * a pruned per-branch candidate set:
 *
 *  - the top-K *distinct* history lengths by achievable gain (the
 *    oracle headroom of that length's table over the static bias),
 *    K counting distinct length values even when the caller's
 *    series contains duplicates;
 *  - a mask of informative input bits, scored by mutual information
 *    between the bit of the hashed key and the outcome.
 *
 * Guarantee: a position with *perfect* correlation (a length, or a
 * bit within a kept length, whose value determines the outcome on
 * every recorded sample) is never pruned, regardless of budgets —
 * the screening may only drop provably-weaker candidates.
 *
 * The trainer uses the mask to discard candidate encodings whose
 * support touches an uninformative bit (see
 * TruthTableCache::supportMask), and the length list to skip
 * FIND-BOOLEAN-FORMULA calls entirely.
 */

#ifndef WHISPER_CORE_CORRELATION_SCREEN_HH
#define WHISPER_CORE_CORRELATION_SCREEN_HH

#include <cstdint>
#include <vector>

#include "core/profile.hh"

namespace whisper
{

/** Screening budgets and thresholds. */
struct ScreenConfig
{
    /** Master switch: disabled = the trainer keeps the exhaustive
     * length scan and the full randomized candidate slice. */
    bool enabled = true;
    /** Distinct history lengths kept per branch (duplicates in the
     * caller's series collapse before this budget applies). */
    unsigned maxLengths = 4;
    /** Keep input bits scoring at least this fraction of the
     * best bit's mutual information. */
    double bitKeepFraction = 1.0 / 64.0;
    /** Never mask the input space below this many bits (a formula
     * over too few inputs cannot express much). */
    unsigned minBits = 4;
    /** When mask-filtering leaves fewer than this many candidate
     * encodings, the trainer falls back to the unfiltered slice. */
    unsigned minFormulaCandidates = 32;
};

/** Pruned per-branch candidate set. */
struct BranchScreen
{
    /** Kept indices into the caller's length series, ascending (so
     * BrHint::historyIdx keeps its meaning). Empty only when the
     * entry has no populated tables. */
    std::vector<unsigned> lengthIdx;
    /** Informative hashed-history bits (bit b set = keep input b). */
    uint8_t inputMask = 0xFF;
};

/** The screening pass (stateless; one instance per trainer). */
class CorrelationScreen
{
  public:
    explicit CorrelationScreen(const ScreenConfig &cfg = ScreenConfig{});

    const ScreenConfig &config() const { return cfg_; }

    /**
     * Score and prune the candidate set of one hard branch.
     * @p lengths is the caller's candidate series; entry.byLength
     * must be parallel to it.
     */
    BranchScreen screenBranch(const BranchProfileEntry &entry,
                              const std::vector<unsigned> &lengths) const;

    /**
     * Achievable gain of a length: (bias - oracle) mispredictions
     * of its table, as a fraction of samples. The oracle (best
     * per-key constant) is the floor any formula can reach, so a
     * length scoring 0 cannot beat the static bias no matter what
     * formula is searched.
     */
    static double lengthGain(const HashedSampleTable &table);

    /**
     * Gain of the best single-bit predictor on input bit @p bit:
     * (bias - split) mispredictions as a fraction of samples, where
     * split = min(T,NT) on each side of the bit.
     */
    static double bitGain(const HashedSampleTable &table, unsigned bit);

    /** Mutual information (bits) between input bit @p bit of the
     * hashed key and the branch outcome. */
    static double bitMutualInformation(const HashedSampleTable &table,
                                       unsigned bit);

    /** True when @p bit determines the outcome on every sample and
     * both outcomes occur (the never-prune guarantee trigger). */
    static bool bitPerfectlyCorrelated(const HashedSampleTable &table,
                                       unsigned bit);

    /**
     * Indices of the first occurrence of each distinct value of
     * @p lengths, in series order. The "top-K lengths" budget
     * counts distinct lengths through this, so a series with
     * duplicated entries cannot eat the budget with copies.
     */
    static std::vector<unsigned>
    distinctLengthIndices(const std::vector<unsigned> &lengths);

  private:
    ScreenConfig cfg_;
};

} // namespace whisper

#endif // WHISPER_CORE_CORRELATION_SCREEN_HH
