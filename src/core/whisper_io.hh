/**
 * @file
 * Binary (de)serialization for Whisper's offline artifacts.
 *
 * Two artifact kinds cross process boundaries in a deployment
 * pipeline (paper Fig. 10): the collected profile (steps 1-2) and
 * the trained hint bundle (step 3, the inputs to binary rewriting).
 * Both get simple versioned binary formats so the CLI tools in
 * tools/ can split the flow across invocations.
 *
 * Load paths return IoStatus instead of bool so callers can tell a
 * missing file (regenerate it) from a corrupt one (raise an
 * incident); every size field is bounds-checked so a damaged or
 * hostile length can never drive an unbounded allocation.
 *
 * Versioned bundles can additionally be encoded to / decoded from a
 * memory buffer — the payload format of the hint-store journal,
 * which wraps each encoded bundle in its own CRC-framed record.
 */

#ifndef WHISPER_CORE_WHISPER_IO_HH
#define WHISPER_CORE_WHISPER_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/hint_injection.hh"
#include "core/profile.hh"
#include "core/whisper_trainer.hh"
#include "util/io_status.hh"

namespace whisper
{

/** Trained hints plus their placements: one deployable bundle. */
struct HintBundle
{
    std::vector<TrainedHint> hints;
    std::vector<HintPlacement> placements;

    bool operator==(const HintBundle &o) const = default;
};

/**
 * A hint bundle stamped with its deployment epoch and the validation
 * accuracy it was accepted with — what whisperd's versioned hint
 * store persists so a restarted consumer can tell which generation
 * of hints it is running.
 */
struct VersionedHintBundle
{
    uint64_t epoch = 0;
    double validationAccuracy = 0.0;
    HintBundle bundle;

    bool operator==(const VersionedHintBundle &o) const = default;
};

/** Save/load a profile. Loads report missing-vs-corrupt. */
bool saveProfile(const BranchProfile &profile,
                 const std::string &path);
IoStatus loadProfile(BranchProfile &profile, const std::string &path);

/** Save/load a hint bundle. */
bool saveHintBundle(const HintBundle &bundle,
                    const std::string &path);
IoStatus loadHintBundle(HintBundle &bundle, const std::string &path);

/** Save/load an epoch-stamped bundle (own magic; bad magic or a
 * truncated epoch header is rejected). */
bool saveVersionedBundle(const VersionedHintBundle &bundle,
                         const std::string &path);
IoStatus loadVersionedBundle(VersionedHintBundle &bundle,
                             const std::string &path);

/** Serialize a versioned bundle to bytes (journal record payload). */
std::vector<unsigned char>
encodeVersionedBundle(const VersionedHintBundle &bundle);

/** Parse bytes produced by encodeVersionedBundle. @return false on
 * any truncation or bounds violation. */
bool decodeVersionedBundle(VersionedHintBundle &bundle,
                           const unsigned char *data, size_t size);

} // namespace whisper

#endif // WHISPER_CORE_WHISPER_IO_HH
