/**
 * @file
 * Hashed history correlation support (paper SIII-A).
 *
 * Whisper considers m candidate history lengths in a geometric
 * series a, ar, ar^2, ..., ar^(m-1) with r = (N/a)^(1/(m-1)) and
 * XOR-folds each candidate history into a fixed hashWidth-bit value.
 */

#ifndef WHISPER_CORE_HISTORY_HASH_HH
#define WHISPER_CORE_HISTORY_HASH_HH

#include <cstdint>
#include <vector>

namespace whisper
{

/** Whisper design parameters (paper Table III defaults). */
struct WhisperConfig
{
    unsigned minHistoryLength = 8;    //!< a
    unsigned maxHistoryLength = 1024; //!< N
    unsigned numHistoryLengths = 16;  //!< m
    unsigned hashWidth = 8;           //!< bits of the hashed history
    unsigned hintBufferEntries = 32;  //!< run-time hint buffer size
    /**
     * Fraction of all formula encodings scored per candidate length
     * (randomized formula testing). The paper's operating point is
     * 0.001 (0.1%) on profiles of 100M+ instructions; at this
     * reproduction's ~10M-instruction profiles the per-branch
     * sample tables cover less of the key space, and a slightly
     * larger sample (1%) is needed for formulas that generalize to
     * unseen inputs. bench_fig15_randomized sweeps the tradeoff.
     */
    double formulaFraction = 0.01;
    /** Seed of the global Fisher-Yates formula permutation. */
    uint64_t formulaShuffleSeed = 0xF0F0F0F0ULL;
    /**
     * A branch receives a hint only when the formula removes at
     * least this fraction of its profiled mispredictions. The bar
     * is deliberately high: a hint that merely ties the dynamic
     * predictor on the training input tends to lose on unseen
     * inputs (SV-B's input-sensitivity discussion).
     */
    double minImprovement = 0.15;
    /**
     * ...and save at least this many mispredictions per execution
     * of the branch. Filters hints whose absolute benefit is too
     * thin to survive input shift (a hint that wins 0.2% of
     * executions on the training input easily loses that margin on
     * an unseen one).
     */
    double minGainPerExecution = 0.005;
    /** Ignore branches with fewer profiled mispredictions. */
    uint64_t minMispredictions = 16;
    /**
     * Warm-start quality retention. A warm seed skips the cold
     * search only when its mispredict ratio on the *fresh* profile
     * (best / baseline) is no worse than the ratio it achieved when
     * it was trained, scaled by this slack plus a small absolute
     * allowance for sampling noise between profiles. Without this,
     * a drifted formula that still clears the 15% bias gate — while
     * a cold search would find a far better one — pins the branch
     * at degraded quality for as long as it keeps passing gates.
     */
    double warmRetentionSlack = 1.25;
    double warmRetentionNoise = 0.02;
};

/**
 * The geometric history-length series, exactly as specified in the
 * paper: lengths[i] = round(a * r^i), forced strictly increasing and
 * capped at N, ending exactly at N. Defaults give
 * {8, 11, 15, 20, 26, ..., 1024}. When m is large relative to N - a
 * the monotonicity walk would overrun N; such duplicates are dropped,
 * so the result may carry fewer than m (but at least two) entries —
 * e.g. (a=1, n=4, m=8) yields {1, 2, 3, 4}.
 */
std::vector<unsigned> geometricLengths(unsigned a, unsigned n,
                                       unsigned m);

/** Convenience: the series for a given config. */
std::vector<unsigned> geometricLengths(const WhisperConfig &cfg);

} // namespace whisper

#endif // WHISPER_CORE_HISTORY_HASH_HH
