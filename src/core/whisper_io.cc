#include "core/whisper_io.hh"

#include <cstdio>
#include <cstring>
#include <type_traits>

namespace whisper
{

namespace
{

constexpr uint32_t kProfileMagic = 0x57485052; // "WHPR"
constexpr uint32_t kHintMagic = 0x57484E54;    // "WHNT"
constexpr uint32_t kEpochMagic = 0x57484550;   // "WHEP"
constexpr uint32_t kVersion = 1;

/** Hard caps on untrusted length fields (counts, not bytes). */
constexpr uint64_t kMaxHints = 1ULL << 24;
constexpr uint64_t kMaxBranches = 1ULL << 32;
constexpr uint64_t kMaxTableEntries = 1ULL << 20;

/** Minimal checked binary writer/reader over stdio. */
class BinFile
{
  public:
    BinFile(const std::string &path, const char *mode)
        : f_(std::fopen(path.c_str(), mode))
    {
    }
    ~BinFile()
    {
        if (f_)
            std::fclose(f_);
    }
    BinFile(const BinFile &) = delete;
    BinFile &operator=(const BinFile &) = delete;

    bool opened() const { return f_ != nullptr; }
    bool valid() const { return f_ != nullptr && ok_; }

    template <typename T>
    void
    put(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (valid() && std::fwrite(&v, 1, sizeof(T), f_) != sizeof(T))
            ok_ = false;
    }

    template <typename T>
    void
    get(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (valid() && std::fread(&v, 1, sizeof(T), f_) != sizeof(T))
            ok_ = false;
    }

    void
    putVec32(const std::vector<uint32_t> &v)
    {
        put(static_cast<uint64_t>(v.size()));
        if (valid() && !v.empty() &&
            std::fwrite(v.data(), sizeof(uint32_t), v.size(), f_) !=
                v.size()) {
            ok_ = false;
        }
    }

    bool
    getVec32(std::vector<uint32_t> &v, uint64_t maxSize)
    {
        uint64_t n = 0;
        get(n);
        if (!valid() || n > maxSize)
            return false;
        v.resize(n);
        if (!v.empty() &&
            std::fread(v.data(), sizeof(uint32_t), v.size(), f_) !=
                v.size()) {
            ok_ = false;
        }
        return valid();
    }

  private:
    std::FILE *f_;
    bool ok_ = true;
};

/** BinFile-compatible writer appending to a byte vector. */
class MemWriter
{
  public:
    bool valid() const { return true; }

    template <typename T>
    void
    put(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const unsigned char *>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    void
    putVec32(const std::vector<uint32_t> &v)
    {
        put(static_cast<uint64_t>(v.size()));
        const auto *p =
            reinterpret_cast<const unsigned char *>(v.data());
        buf_.insert(buf_.end(), p, p + v.size() * sizeof(uint32_t));
    }

    std::vector<unsigned char> take() { return std::move(buf_); }

  private:
    std::vector<unsigned char> buf_;
};

/** BinFile-compatible bounds-checked reader over a byte buffer. */
class MemReader
{
  public:
    MemReader(const unsigned char *data, size_t size)
        : data_(data), size_(size)
    {
    }

    bool valid() const { return ok_; }
    bool exhausted() const { return pos_ == size_; }

    template <typename T>
    void
    get(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (!ok_ || size_ - pos_ < sizeof(T)) {
            ok_ = false;
            return;
        }
        std::memcpy(&v, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
    }

    bool
    getVec32(std::vector<uint32_t> &v, uint64_t maxSize)
    {
        uint64_t n = 0;
        get(n);
        if (!ok_ || n > maxSize ||
            size_ - pos_ < n * sizeof(uint32_t)) {
            ok_ = false;
            return false;
        }
        v.resize(n);
        std::memcpy(v.data(), data_ + pos_, n * sizeof(uint32_t));
        pos_ += n * sizeof(uint32_t);
        return true;
    }

  private:
    const unsigned char *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

void
putSampleTable(BinFile &f, const HashedSampleTable &t)
{
    f.putVec32(t.taken);
    f.putVec32(t.notTaken);
}

bool
getSampleTable(BinFile &f, HashedSampleTable &t)
{
    return f.getVec32(t.taken, kMaxTableEntries) &&
           f.getVec32(t.notTaken, kMaxTableEntries) &&
           t.taken.size() == t.notTaken.size();
}

template <typename Writer>
void
putBundleBody(Writer &f, const HintBundle &bundle)
{
    f.put(static_cast<uint64_t>(bundle.hints.size()));
    for (const auto &h : bundle.hints) {
        f.put(h.pc);
        f.put(h.hint.encode());
        f.put(h.historyLength);
        f.put(h.expectedMispredicts);
        f.put(h.profiledMispredicts);
        f.put(h.executions);
    }
    f.put(static_cast<uint64_t>(bundle.placements.size()));
    for (const auto &p : bundle.placements) {
        f.put(p.branchPc);
        f.put(p.predecessorPc);
        f.put(p.coverage);
        f.put(p.precision);
        f.put(p.predecessorExecutions);
    }
}

template <typename Reader>
bool
getBundleBody(Reader &f, HintBundle &bundle)
{
    uint64_t n = 0;
    f.get(n);
    if (!f.valid() || n > kMaxHints)
        return false;
    bundle.hints.resize(n);
    for (auto &h : bundle.hints) {
        uint64_t encoded = 0;
        f.get(h.pc);
        f.get(encoded);
        if (!f.valid() || encoded >= (1ULL << BrHint::kEncodedBits))
            return false;
        h.hint = BrHint::decode(encoded);
        f.get(h.historyLength);
        f.get(h.expectedMispredicts);
        f.get(h.profiledMispredicts);
        f.get(h.executions);
    }
    f.get(n);
    if (!f.valid() || n > kMaxHints)
        return false;
    bundle.placements.resize(n);
    for (auto &p : bundle.placements) {
        f.get(p.branchPc);
        f.get(p.predecessorPc);
        f.get(p.coverage);
        f.get(p.precision);
        f.get(p.predecessorExecutions);
    }
    return f.valid();
}

} // namespace

bool
saveProfile(const BranchProfile &profile, const std::string &path)
{
    BinFile f(path, "wb");
    if (!f.valid())
        return false;

    f.put(kProfileMagic);
    f.put(kVersion);
    const WhisperConfig &cfg = profile.config();
    f.put(cfg.minHistoryLength);
    f.put(cfg.maxHistoryLength);
    f.put(cfg.numHistoryLengths);
    f.put(cfg.hashWidth);
    f.put(profile.totalInstructions);
    f.put(profile.totalConditionals);
    f.put(profile.totalMispredicts);

    f.put(static_cast<uint64_t>(profile.numBranches()));
    for (const auto &[pc, e] : profile.entries()) {
        f.put(e.pc);
        f.put(e.executions);
        f.put(e.takenCount);
        f.put(e.baselineMispredicts);
        f.put(static_cast<uint8_t>(e.hard));
        if (e.hard) {
            for (const auto &table : e.byLength)
                putSampleTable(f, table);
            putSampleTable(f, e.raw4);
            putSampleTable(f, e.raw8);
        }
    }
    return f.valid();
}

IoStatus
loadProfile(BranchProfile &profile, const std::string &path)
{
    BinFile f(path, "rb");
    if (!f.opened())
        return IoStatus::missingFile(path);

    uint32_t magic = 0, version = 0;
    f.get(magic);
    f.get(version);
    if (!f.valid() || magic != kProfileMagic)
        return IoStatus::corruptFile(path,
                                     "bad magic (not a profile)");
    if (version != kVersion)
        return IoStatus::corruptFile(path,
                                     "unsupported profile version");

    WhisperConfig cfg;
    f.get(cfg.minHistoryLength);
    f.get(cfg.maxHistoryLength);
    f.get(cfg.numHistoryLengths);
    f.get(cfg.hashWidth);
    if (!f.valid() || cfg.numHistoryLengths < 2 ||
        cfg.numHistoryLengths > 16 ||
        cfg.minHistoryLength >= cfg.maxHistoryLength) {
        return IoStatus::corruptFile(path,
                                     "implausible profile config");
    }

    BranchProfile loaded(cfg);
    f.get(loaded.totalInstructions);
    f.get(loaded.totalConditionals);
    f.get(loaded.totalMispredicts);

    uint64_t numBranches = 0;
    f.get(numBranches);
    if (!f.valid() || numBranches > kMaxBranches)
        return IoStatus::corruptFile(path,
                                     "branch count out of bounds");

    for (uint64_t i = 0; i < numBranches; ++i) {
        uint64_t pc = 0;
        f.get(pc);
        if (!f.valid())
            return IoStatus::corruptFile(path, "truncated entry");
        BranchProfileEntry &e = loaded.entry(pc);
        f.get(e.executions);
        f.get(e.takenCount);
        f.get(e.baselineMispredicts);
        uint8_t hard = 0;
        f.get(hard);
        if (!f.valid())
            return IoStatus::corruptFile(path, "truncated entry");
        if (hard) {
            loaded.markHard(pc);
            for (auto &table : e.byLength) {
                if (!getSampleTable(f, table)) {
                    return IoStatus::corruptFile(
                        path, "damaged sample table");
                }
            }
            if (!getSampleTable(f, e.raw4) ||
                !getSampleTable(f, e.raw8)) {
                return IoStatus::corruptFile(path,
                                             "damaged sample table");
            }
        }
    }
    if (!f.valid())
        return IoStatus::corruptFile(path, "truncated profile");
    profile = std::move(loaded);
    return IoStatus::okStatus();
}

bool
saveHintBundle(const HintBundle &bundle, const std::string &path)
{
    BinFile f(path, "wb");
    if (!f.valid())
        return false;
    f.put(kHintMagic);
    f.put(kVersion);
    putBundleBody(f, bundle);
    return f.valid();
}

IoStatus
loadHintBundle(HintBundle &bundle, const std::string &path)
{
    BinFile f(path, "rb");
    if (!f.opened())
        return IoStatus::missingFile(path);
    uint32_t magic = 0, version = 0;
    f.get(magic);
    f.get(version);
    if (!f.valid() || magic != kHintMagic)
        return IoStatus::corruptFile(
            path, "bad magic (not a hint bundle)");
    if (version != kVersion)
        return IoStatus::corruptFile(path,
                                     "unsupported bundle version");

    HintBundle loaded;
    if (!getBundleBody(f, loaded))
        return IoStatus::corruptFile(path,
                                     "truncated or damaged bundle");
    bundle = std::move(loaded);
    return IoStatus::okStatus();
}

bool
saveVersionedBundle(const VersionedHintBundle &bundle,
                    const std::string &path)
{
    BinFile f(path, "wb");
    if (!f.valid())
        return false;
    f.put(kEpochMagic);
    f.put(kVersion);
    f.put(bundle.epoch);
    f.put(bundle.validationAccuracy);
    putBundleBody(f, bundle.bundle);
    return f.valid();
}

IoStatus
loadVersionedBundle(VersionedHintBundle &bundle,
                    const std::string &path)
{
    BinFile f(path, "rb");
    if (!f.opened())
        return IoStatus::missingFile(path);
    uint32_t magic = 0, version = 0;
    f.get(magic);
    f.get(version);
    if (!f.valid() || magic != kEpochMagic)
        return IoStatus::corruptFile(
            path, "bad magic (not a versioned bundle)");
    if (version != kVersion)
        return IoStatus::corruptFile(path,
                                     "unsupported bundle version");

    VersionedHintBundle loaded;
    f.get(loaded.epoch);
    f.get(loaded.validationAccuracy);
    if (!f.valid())
        return IoStatus::corruptFile(path, "truncated epoch header");
    if (!getBundleBody(f, loaded.bundle))
        return IoStatus::corruptFile(path,
                                     "truncated or damaged bundle");
    bundle = std::move(loaded);
    return IoStatus::okStatus();
}

std::vector<unsigned char>
encodeVersionedBundle(const VersionedHintBundle &bundle)
{
    MemWriter w;
    w.put(bundle.epoch);
    w.put(bundle.validationAccuracy);
    putBundleBody(w, bundle.bundle);
    return w.take();
}

bool
decodeVersionedBundle(VersionedHintBundle &bundle,
                      const unsigned char *data, size_t size)
{
    MemReader r(data, size);
    VersionedHintBundle loaded;
    r.get(loaded.epoch);
    r.get(loaded.validationAccuracy);
    if (!r.valid())
        return false;
    if (!getBundleBody(r, loaded.bundle))
        return false;
    if (!r.exhausted()) // trailing garbage = damaged record
        return false;
    bundle = std::move(loaded);
    return true;
}

} // namespace whisper
