/**
 * @file
 * Gate-level model of Whisper's formula-evaluation hardware
 * (paper Figs. 8 and 9).
 *
 * BoolFormula::evaluate() is the behavioural model; this class
 * builds the actual netlist — NOT/AND/OR primitives composing each
 * "single unit" (the four operations plus a 4-to-1 operation mux)
 * and the final 2-to-1 inversion mux — and evaluates it gate by
 * gate. It exists to validate the micro-architectural claims: the
 * netlist must compute exactly the same function as the behavioural
 * model for every encoding, and its critical path must stay within
 * the paper's 19-gate-delay bound (SIII-C) up to the primitive-
 * decomposition factor.
 */

#ifndef WHISPER_CORE_FORMULA_GATES_HH
#define WHISPER_CORE_FORMULA_GATES_HH

#include <cstdint>
#include <vector>

#include "core/formula.hh"

namespace whisper
{

/** A synthesized evaluation network for one formula. */
class FormulaNetlist
{
  public:
    explicit FormulaNetlist(const BoolFormula &formula);

    /** Evaluate gate-by-gate on packed inputs. */
    bool evaluate(uint8_t inputs) const;

    /** Primitive gates (NOT/AND/OR) in the network. */
    size_t gateCount() const { return gates_.size(); }

    /** Longest input-to-output path, in primitive gate delays. */
    unsigned criticalPathDelay() const;

    const BoolFormula &formula() const { return formula_; }

  private:
    enum class GateKind : uint8_t { Not, And, Or, Const };

    struct Gate
    {
        GateKind kind;
        int a = -1; //!< net index (< numInputs: primary input)
        int b = -1;
        bool constValue = false;
    };

    /** Append a gate; returns its net index. */
    int emit(GateKind kind, int a, int b = -1);
    int emitConst(bool value);
    /** 2:1 mux from primitives: sel ? d1 : d0. */
    int emitMux2(int sel, int d0, int d1);
    /** One Fig. 8 single unit for tree node @p node. */
    int emitSingleUnit(unsigned node, int a, int b);

    BoolFormula formula_;
    unsigned numInputs_;
    std::vector<Gate> gates_; //!< topological order
    int output_ = -1;
};

} // namespace whisper

#endif // WHISPER_CORE_FORMULA_GATES_HH
