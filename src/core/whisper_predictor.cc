#include "core/whisper_predictor.hh"

#include "util/logging.hh"

namespace whisper
{

WhisperPredictor::WhisperPredictor(
    std::unique_ptr<BranchPredictor> base, const WhisperConfig &cfg,
    const TruthTableCache &cache, const std::vector<TrainedHint> &hints,
    const std::vector<HintPlacement> &placements)
    : base_(std::move(base)), cfg_(cfg), cache_(cache),
      lengths_(geometricLengths(cfg)),
      buffer_(cfg.hintBufferEntries),
      history_(2 * cfg.maxHistoryLength)
{
    whisper_assert(base_ != nullptr);
    whisper_assert(lengths_.size() <= 16,
                   "history index must fit the 4-bit field");

    for (unsigned len : lengths_)
        history_.addFoldedView(len, cfg.hashWidth);

    replaceHints(hints, placements);
}

WhisperPredictor::WhisperPredictor(const WhisperPredictor &other)
    : base_(other.base_->clone()), cfg_(other.cfg_),
      cache_(other.cache_), lengths_(other.lengths_),
      hints_(other.hints_), triggers_(other.triggers_),
      buffer_(other.buffer_), history_(other.history_),
      usedHint_(other.usedHint_), basePred_(other.basePred_),
      hintPredictions_(other.hintPredictions_),
      hintCorrect_(other.hintCorrect_),
      dynamicHints_(other.dynamicHints_)
{
}

void
WhisperPredictor::replaceHints(
    const std::vector<TrainedHint> &hints,
    const std::vector<HintPlacement> &placements)
{
    hints_.clear();
    triggers_.clear();
    buffer_.clear();
    for (const auto &h : hints)
        hints_[h.pc] = h.hint;
    for (const auto &pl : placements) {
        whisper_assert(hints_.count(pl.branchPc),
                       "placement for unknown hint");
        triggers_[pl.predecessorPc].push_back(pl.branchPc);
    }
}

std::string
WhisperPredictor::name() const
{
    return "whisper+" + base_->name();
}

uint64_t
WhisperPredictor::storageBits() const
{
    // The hint buffer is the only added predictor-side storage; the
    // hints themselves live in the binary as brhint instructions.
    return base_->storageBits() +
           cfg_.hintBufferEntries * (BrHint::kEncodedBits + 64);
}

bool
WhisperPredictor::evaluateHint(const BrHint &hint) const
{
    switch (hint.bias) {
      case HintBias::AlwaysTaken:
        return true;
      case HintBias::NeverTaken:
        return false;
      case HintBias::Formula:
        break;
    }
    whisper_assert(hint.historyIdx < lengths_.size());
    uint8_t hashed = static_cast<uint8_t>(
        history_.foldedValue(hint.historyIdx));
    return cache_.evaluate(hint.formula, hashed);
}

bool
WhisperPredictor::predict(uint64_t pc, bool oracleTaken)
{
    // Query the dynamic predictor unconditionally: real hardware
    // looks up both structures in parallel, and the base predictor
    // needs its prediction context for update().
    basePred_ = base_->predict(pc, oracleTaken);
    usedHint_ = false;

    const BrHint *hint = buffer_.lookup(pc);
    if (hint) {
        usedHint_ = true;
        ++hintPredictions_;
        return evaluateHint(*hint);
    }
    return basePred_;
}

void
WhisperPredictor::update(uint64_t pc, bool taken, bool predicted,
                         bool allocate)
{
    if (usedHint_ && predicted == taken)
        ++hintCorrect_;
    // Hinted branches never allocate new entries in the dynamic
    // predictor (paper SIV); its capacity serves the rest.
    base_->update(pc, taken, basePred_, allocate && !usedHint_);
    history_.push(taken);
}

void
WhisperPredictor::predictMany(const BranchRecord *records, size_t n,
                              uint8_t *outMispredicted)
{
    // Same per-record sequence as the base-class loop, with this
    // class's predict/update/onRecord resolved statically. The base
    // predictor is still reached through its vtable; TageScl et al.
    // devirtualize their own inner loops when driven directly.
    for (size_t i = 0; i < n; ++i) {
        const BranchRecord &rec = records[i];
        uint8_t miss = 0;
        if (rec.isConditional()) {
            bool p = WhisperPredictor::predict(rec.pc, rec.taken);
            WhisperPredictor::update(rec.pc, rec.taken, p);
            miss = p != rec.taken;
        }
        WhisperPredictor::onRecord(rec);
        outMispredicted[i] = miss;
    }
}

void
WhisperPredictor::onRecord(const BranchRecord &rec)
{
    auto it = triggers_.find(rec.pc);
    if (it == triggers_.end())
        return;
    // This block carries brhint instructions: executing it decodes
    // each hint into the hint buffer.
    for (uint64_t branchPc : it->second) {
        ++dynamicHints_;
        buffer_.insert(branchPc, hints_[branchPc]);
    }
}

void
WhisperPredictor::reset()
{
    base_->reset();
    buffer_.clear();
    buffer_.resetStats();
    history_.reset();
    usedHint_ = false;
    basePred_ = false;
    hintPredictions_ = 0;
    hintCorrect_ = 0;
    dynamicHints_ = 0;
}

} // namespace whisper
