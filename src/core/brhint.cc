#include "core/brhint.hh"

#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

uint64_t
BrHint::encode() const
{
    whisper_assert(historyIdx < 16);
    whisper_assert(formula < (1u << 15));
    whisper_assert(static_cast<uint8_t>(bias) < 4);
    whisper_assert(pcPointer < (1u << 12));
    uint64_t bits = historyIdx;
    bits |= static_cast<uint64_t>(formula) << 4;
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(bias)) << 19;
    bits |= static_cast<uint64_t>(pcPointer) << 21;
    return bits;
}

BrHint
BrHint::decode(uint64_t bits)
{
    whisper_assert(bits < (1ULL << kEncodedBits),
                   "brhint encoding overflow");
    BrHint h;
    h.historyIdx = static_cast<uint8_t>(bitsOf(bits, 0, 4));
    h.formula = static_cast<uint16_t>(bitsOf(bits, 4, 15));
    uint8_t biasRaw = static_cast<uint8_t>(bitsOf(bits, 19, 2));
    whisper_assert(biasRaw < 3, "reserved bias encoding");
    h.bias = static_cast<HintBias>(biasRaw);
    h.pcPointer = static_cast<uint16_t>(bitsOf(bits, 21, 12));
    return h;
}

uint16_t
BrHint::pcPointerFor(uint64_t branchPc)
{
    return static_cast<uint16_t>((branchPc >> 1) & maskBits(12));
}

std::string
BrHint::toString() const
{
    std::ostringstream os;
    os << "brhint{len#" << static_cast<int>(historyIdx) << ", f=0x"
       << std::hex << formula << std::dec << ", bias=";
    switch (bias) {
      case HintBias::Formula:
        os << "formula";
        break;
      case HintBias::AlwaysTaken:
        os << "always";
        break;
      case HintBias::NeverTaken:
        os << "never";
        break;
    }
    os << ", pc=0x" << std::hex << pcPointer << std::dec << "}";
    return os.str();
}

} // namespace whisper
