/**
 * @file
 * Algorithm 1 (FIND-BOOLEAN-FORMULA) and randomized formula testing
 * (paper SIII-B).
 */

#ifndef WHISPER_CORE_FORMULA_TRAINER_HH
#define WHISPER_CORE_FORMULA_TRAINER_HH

#include <cstdint>
#include <vector>

#include "core/formula.hh"
#include "core/profile.hh"

namespace whisper
{

/**
 * Shared cache of formula truth tables.
 *
 * Scoring a formula against a sample table only needs the formula's
 * truth table; caching all 2^15 of them (1MB) makes exhaustive
 * sweeps and repeated randomized searches cheap.
 */
class TruthTableCache
{
  public:
    explicit TruthTableCache(unsigned numInputs = 8);

    const TruthTable &table(uint16_t encoding) const;
    unsigned numInputs() const { return numInputs_; }

    /**
     * Support mask of @p encoding: bit i is set iff flipping input
     * bit i changes the formula's output for some input vector.
     * A formula's mispredictions depend only on its supported bits,
     * so the sparse-correlation screen can discard candidates whose
     * support touches an uninformative input.
     */
    uint8_t
    supportMask(uint16_t encoding) const
    {
        return supports_[encoding];
    }

    /** Evaluate encoding on packed inputs via the cached table. */
    bool
    evaluate(uint16_t encoding, uint8_t inputs) const
    {
        const TruthTable &tt = tables_[encoding];
        return (tt[inputs / 64] >> (inputs % 64)) & 1;
    }

  private:
    unsigned numInputs_;
    std::vector<TruthTable> tables_;
    std::vector<uint8_t> supports_;
};

/**
 * The candidate set produced by randomized formula testing.
 *
 * One global Fisher-Yates permutation of all encodings is generated
 * once (from the config seed) and reused for every branch, exactly
 * as the paper specifies; a branch's candidates are the first
 * fraction * count entries of that permutation.
 */
class FormulaCandidates
{
  public:
    /**
     * @param numInputs formula arity (8 for Whisper)
     * @param fraction fraction of all encodings to consider (0..1]
     * @param seed Fisher-Yates shuffle seed
     */
    FormulaCandidates(unsigned numInputs, double fraction,
                      uint64_t seed);

    const std::vector<uint16_t> &encodings() const { return selected_; }
    unsigned numInputs() const { return numInputs_; }
    double fraction() const { return fraction_; }

    /** A different selection fraction over the same permutation. */
    std::vector<uint16_t> withFraction(double fraction) const;

  private:
    unsigned numInputs_;
    double fraction_;
    std::vector<uint16_t> permutation_;
    std::vector<uint16_t> selected_;
};

/** Result of Algorithm 1. */
struct FormulaSearchResult
{
    BoolFormula formula;
    /** m': mispredictions the chosen formula incurs on the profile. */
    uint64_t mispredicts = ~0ULL;
    /** Number of formulas actually scored. */
    uint64_t explored = 0;
    bool valid = false;
};

/**
 * Count the mispredictions formula @p encoding incurs on @p samples
 * (the inner loop of Algorithm 1, lines 5-11).
 *
 * @param earlyOut stop early once the count exceeds this bound
 *        (pass ~0 to disable).
 */
uint64_t scoreFormula(const TruthTable &tt,
                      const HashedSampleTable &samples,
                      uint64_t earlyOut = ~0ULL);

/**
 * Algorithm 1: pick the candidate formula with the fewest
 * mispredictions on the T/NT tables.
 */
FormulaSearchResult findBooleanFormula(
    const HashedSampleTable &samples,
    const std::vector<uint16_t> &candidates,
    const TruthTableCache &cache);

} // namespace whisper

#endif // WHISPER_CORE_FORMULA_TRAINER_HH
