#include "core/hint_buffer.hh"

#include "util/logging.hh"

namespace whisper
{

HintBuffer::HintBuffer(unsigned entries) : capacity_(entries)
{
    whisper_assert(entries >= 1);
}

void
HintBuffer::insert(uint64_t branchPc, const BrHint &hint)
{
    ++insertions_;
    auto it = map_.find(branchPc);
    if (it != map_.end()) {
        // Refresh the existing entry and move it to MRU.
        it->second->hint = hint;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        ++evictions_;
        map_.erase(lru_.back().pc);
        lru_.pop_back();
    }
    lru_.push_front(Node{branchPc, hint});
    map_[branchPc] = lru_.begin();
}

const BrHint *
HintBuffer::lookup(uint64_t branchPc)
{
    auto it = map_.find(branchPc);
    if (it == map_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->hint;
}

void
HintBuffer::clear()
{
    lru_.clear();
    map_.clear();
}

} // namespace whisper
