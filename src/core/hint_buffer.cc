#include "core/hint_buffer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace whisper
{

HintBuffer::HintBuffer(unsigned entries)
    : capacity_(entries ? entries : 1)
{
    // Slot count: power of two at least 4x the capacity, so the
    // load factor never exceeds 1/4 — probe clusters stay tiny,
    // which matters most for eviction's backward-shift walk; the
    // power-of-two size turns the modulo into a mask. At the
    // paper's 32 entries this is still only 128 slots (~4KB with
    // payloads), comfortably L1-resident.
    size_t slots = 4;
    unsigned log2Slots = 2;
    while (slots < 4 * static_cast<size_t>(capacity_)) {
        slots <<= 1;
        ++log2Slots;
    }
    slotMask_ = slots - 1;
    shift_ = 64 - log2Slots;

    occ_.assign(slots, 0);
    pcs_.assign(slots, 0);
    hints_.assign(slots, BrHint{});
    prev_.assign(slots, kNull);
    next_.assign(slots, kNull);
}

int32_t
HintBuffer::findSlot(uint64_t branchPc, uint64_t h) const
{
    size_t s = h >> shift_;
    while (occ_[s]) {
        if (pcs_[s] == branchPc)
            return static_cast<int32_t>(s);
        s = (s + 1) & slotMask_;
    }
    return kNull;
}

void
HintBuffer::filterAdd(uint64_t h)
{
    unsigned sig = signatureOf(h);
    if (filterCount_[sig]++ == 0)
        filter_[sig >> 6] |= uint64_t{1} << (sig & 63);
}

void
HintBuffer::filterDrop(uint64_t h)
{
    unsigned sig = signatureOf(h);
    whisper_assert(filterCount_[sig] > 0,
                   "hint-buffer filter count underflow");
    if (--filterCount_[sig] == 0)
        filter_[sig >> 6] &= ~(uint64_t{1} << (sig & 63));
}

/**
 * Remove the entry in slot @p s: unlink it from the recency list,
 * drop its filter signature, then backward-shift displaced entries
 * so linear probing never needs tombstones. A shifted entry keeps
 * its recency-list identity — its neighbours (or head/tail) are
 * re-pointed at the slot it moves into.
 */
void
HintBuffer::eraseSlot(size_t s)
{
    unlink(s);
    filterDrop(hashPc(pcs_[s]));
    --size_;

    size_t hole = s;
    size_t j = (hole + 1) & slotMask_;
    while (occ_[j]) {
        size_t home = hashPc(pcs_[j]) >> shift_;
        // Shift j into the hole iff its probe path from home passes
        // through the hole (cyclic distance comparison).
        if (((j - home) & slotMask_) >= ((j - hole) & slotMask_)) {
            pcs_[hole] = pcs_[j];
            hints_[hole] = hints_[j];
            int32_t p = prev_[j], n = next_[j];
            prev_[hole] = p;
            next_[hole] = n;
            if (p != kNull)
                next_[p] = static_cast<int32_t>(hole);
            else
                head_ = static_cast<int32_t>(hole);
            if (n != kNull)
                prev_[n] = static_cast<int32_t>(hole);
            else
                tail_ = static_cast<int32_t>(hole);
            hole = j;
        }
        j = (j + 1) & slotMask_;
    }
    occ_[hole] = 0;
}

void
HintBuffer::insert(uint64_t branchPc, const BrHint &hint)
{
    uint64_t h = hashPc(branchPc);
    if (filterHas(h)) {
        int32_t s = findSlot(branchPc, h);
        if (s != kNull) {
            // Refresh the existing entry and make it MRU. (The
            // pre-refactor buffer also counted this as an insertion,
            // overstating installs; see refreshes().)
            ++refreshes_;
            hints_[s] = hint;
            touch(static_cast<size_t>(s));
            return;
        }
    }

    if (size_ >= capacity_) {
        // O(1): the victim is the recency-list tail, exactly the
        // entry a true LRU list would evict.
        ++evictions_;
        eraseSlot(static_cast<size_t>(tail_));
    }

    // Probe fresh: an eviction above may have backward-shifted
    // entries across this PC's probe path.
    size_t s = h >> shift_;
    while (occ_[s])
        s = (s + 1) & slotMask_;
    ++insertions_;
    occ_[s] = 1;
    pcs_[s] = branchPc;
    hints_[s] = hint;
    pushFront(s);
    filterAdd(h);
    ++size_;
}

void
HintBuffer::lookupMany(const uint64_t *pcs, size_t n,
                       const BrHint **out)
{
    // Short runs can't amortize the two-pass structure; the scalar
    // loop is observably identical by construction.
    if (n < 32) {
        for (size_t i = 0; i < n; ++i)
            out[i] = lookup(pcs[i]);
        return;
    }

    constexpr size_t kChunk = 512;
    uint32_t cand[kChunk];

    for (size_t base = 0; base < n; base += kChunk) {
        size_t m = std::min(kChunk, n - base);

        // Pass 1, branchless: hash each PC, test the membership
        // filter, and compact the indices of the (rare) survivors.
        // No inserts happen during a batch, so the filter snapshot
        // stays valid for the whole pass and every non-survivor is a
        // certain miss (the counting filter has no false negatives).
        size_t nc = 0;
        for (size_t i = 0; i < m; ++i) {
            uint64_t h = hashPc(pcs[base + i]);
            unsigned sig = signatureOf(h);
            uint64_t bit = (filter_[sig >> 6] >> (sig & 63)) & 1;
            out[base + i] = nullptr;
            cand[nc] = static_cast<uint32_t>(i);
            nc += bit;
        }
        misses_ += m;

        // Pass 2: probe the survivors in script order so recency
        // refreshes land exactly as serial lookup() calls would.
        for (size_t c = 0; c < nc; ++c) {
            size_t i = base + cand[c];
            uint64_t pc = pcs[i];
            int32_t s = findSlot(pc, hashPc(pc));
            if (s != kNull) {
                ++hits_;
                --misses_;
                touch(static_cast<size_t>(s));
                out[i] = &hints_[s];
            }
        }
    }
}

void
HintBuffer::clear()
{
    std::fill(occ_.begin(), occ_.end(), uint8_t{0});
    std::fill(prev_.begin(), prev_.end(), kNull);
    std::fill(next_.begin(), next_.end(), kNull);
    filter_.fill(0);
    filterCount_.fill(0);
    head_ = tail_ = kNull;
    size_ = 0;
}

void
HintBuffer::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    insertions_ = 0;
    refreshes_ = 0;
    evictions_ = 0;
}

std::vector<uint64_t>
HintBuffer::lruOrder() const
{
    std::vector<uint64_t> order;
    order.reserve(size_);
    for (int32_t s = head_; s != kNull; s = next_[s])
        order.push_back(pcs_[s]);
    return order;
}

} // namespace whisper
