#include "core/hint_buffer.hh"

#include "util/logging.hh"

namespace whisper
{

HintBuffer::HintBuffer(unsigned entries) : capacity_(entries)
{
    whisper_assert(entries >= 1);
}

HintBuffer::HintBuffer(const HintBuffer &other)
    : capacity_(other.capacity_), lru_(other.lru_),
      hits_(other.hits_), misses_(other.misses_),
      insertions_(other.insertions_), evictions_(other.evictions_)
{
    for (auto it = lru_.begin(); it != lru_.end(); ++it)
        map_[it->pc] = it;
}

HintBuffer &
HintBuffer::operator=(const HintBuffer &other)
{
    if (this == &other)
        return *this;
    HintBuffer copy(other);
    capacity_ = copy.capacity_;
    lru_ = std::move(copy.lru_);
    map_ = std::move(copy.map_);
    hits_ = copy.hits_;
    misses_ = copy.misses_;
    insertions_ = copy.insertions_;
    evictions_ = copy.evictions_;
    return *this;
}

void
HintBuffer::insert(uint64_t branchPc, const BrHint &hint)
{
    ++insertions_;
    auto it = map_.find(branchPc);
    if (it != map_.end()) {
        // Refresh the existing entry and move it to MRU.
        it->second->hint = hint;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        ++evictions_;
        map_.erase(lru_.back().pc);
        lru_.pop_back();
    }
    lru_.push_front(Node{branchPc, hint});
    map_[branchPc] = lru_.begin();
}

const BrHint *
HintBuffer::lookup(uint64_t branchPc)
{
    auto it = map_.find(branchPc);
    if (it == map_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->hint;
}

void
HintBuffer::clear()
{
    lru_.clear();
    map_.clear();
}

} // namespace whisper
