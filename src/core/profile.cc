#include "core/profile.hh"

#include <algorithm>

#include "util/logging.hh"

namespace whisper
{

void
HashedSampleTable::addFrom(const HashedSampleTable &other)
{
    if (other.taken.empty())
        return;
    if (taken.empty()) {
        taken = other.taken;
        notTaken = other.notTaken;
        return;
    }
    whisper_assert(taken.size() == other.taken.size());
    for (size_t i = 0; i < taken.size(); ++i) {
        taken[i] += other.taken[i];
        notTaken[i] += other.notTaken[i];
    }
}

uint64_t
HashedSampleTable::totalSamples() const
{
    uint64_t sum = 0;
    for (size_t i = 0; i < taken.size(); ++i)
        sum += taken[i] + notTaken[i];
    return sum;
}

uint64_t
HashedSampleTable::oracleMispredicts() const
{
    uint64_t sum = 0;
    for (size_t i = 0; i < taken.size(); ++i)
        sum += std::min(taken[i], notTaken[i]);
    return sum;
}

BranchProfile::BranchProfile(const WhisperConfig &cfg)
    : cfg_(cfg), lengths_(geometricLengths(cfg))
{
}

BranchProfileEntry &
BranchProfile::entry(uint64_t pc)
{
    auto [it, inserted] = entries_.try_emplace(pc);
    if (inserted)
        it->second.pc = pc;
    return it->second;
}

const BranchProfileEntry *
BranchProfile::find(uint64_t pc) const
{
    auto it = entries_.find(pc);
    return it == entries_.end() ? nullptr : &it->second;
}

void
BranchProfile::markHard(uint64_t pc)
{
    BranchProfileEntry &e = entry(pc);
    if (e.hard)
        return;
    e.hard = true;
    e.byLength.assign(lengths_.size(),
                      HashedSampleTable(cfg_.hashWidth));
    e.raw4 = HashedSampleTable(4);
    e.raw8 = HashedSampleTable(8);
}

size_t
BranchProfile::numHardBranches() const
{
    size_t n = 0;
    for (const auto &[pc, e] : entries_)
        if (e.hard)
            ++n;
    return n;
}

std::vector<const BranchProfileEntry *>
BranchProfile::hardBranches() const
{
    std::vector<const BranchProfileEntry *> hard;
    for (const auto &[pc, e] : entries_)
        if (e.hard)
            hard.push_back(&e);
    std::sort(hard.begin(), hard.end(),
              [](const BranchProfileEntry *a,
                 const BranchProfileEntry *b) {
                  if (a->baselineMispredicts != b->baselineMispredicts)
                      return a->baselineMispredicts >
                             b->baselineMispredicts;
                  return a->pc < b->pc;
              });
    return hard;
}

BranchProfile
BranchProfile::merge(const BranchProfile &a, const BranchProfile &b)
{
    BranchProfile out(a.config());
    out.mergeFrom(a);
    out.mergeFrom(b);
    return out;
}

void
BranchProfile::mergeFrom(const BranchProfile &other)
{
    whisper_assert(lengths_ == other.lengths_,
                   "merging profiles with different length series");
    totalInstructions += other.totalInstructions;
    totalConditionals += other.totalConditionals;
    totalMispredicts += other.totalMispredicts;

    for (const auto &[pc, oe] : other.entries_) {
        BranchProfileEntry &e = entry(pc);
        e.executions += oe.executions;
        e.takenCount += oe.takenCount;
        e.baselineMispredicts += oe.baselineMispredicts;
        if (oe.hard) {
            if (!e.hard)
                markHard(pc);
            for (size_t l = 0; l < e.byLength.size(); ++l)
                e.byLength[l].addFrom(oe.byLength[l]);
            e.raw4.addFrom(oe.raw4);
            e.raw8.addFrom(oe.raw8);
        }
    }
}

} // namespace whisper
