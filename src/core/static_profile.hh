/**
 * @file
 * Profile-guided static prediction (Fisher & Freudenberger, one of
 * the classic offline methods the paper's related work surveys):
 * every static branch is predicted in its profiled majority
 * direction, with no dynamic state at all. Included as the floor
 * reference for what profile information alone buys.
 */

#ifndef WHISPER_CORE_STATIC_PROFILE_HH
#define WHISPER_CORE_STATIC_PROFILE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "bp/branch_predictor.hh"

namespace whisper
{

class BranchProfile;

/** Static majority-direction predictor from a profile. */
class StaticProfilePredictor : public BranchPredictor
{
  public:
    /**
     * @param profile training profile supplying per-branch majority
     *        directions
     * @param fallbackTaken direction for branches absent from the
     *        profile (backward-taken heuristics are out of scope:
     *        the synthetic traces carry no loop-direction encoding)
     */
    explicit StaticProfilePredictor(const BranchProfile &profile,
                                    bool fallbackTaken = true);

    bool predict(uint64_t pc, bool) override;
    void update(uint64_t, bool, bool, bool = true) override {}
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<StaticProfilePredictor>(*this);
    }
    std::string name() const override { return "profile-static"; }
    void reset() override {}

    size_t coveredBranches() const { return direction_.size(); }

  private:
    std::unordered_map<uint64_t, bool> direction_;
    bool fallbackTaken_;
};

} // namespace whisper

#endif // WHISPER_CORE_STATIC_PROFILE_HH
