/**
 * @file
 * The run-time Whisper hybrid (paper SIV, "Run-time hint usage").
 *
 * Predictions query the hint buffer and the underlying dynamic
 * predictor in parallel. A buffer hit predicts via the hint's bias
 * or Boolean formula applied to the hashed dynamic history; a miss
 * falls through to the dynamic predictor. Hinted branches do not
 * allocate new entries in the dynamic predictor, freeing its
 * capacity for the remaining branches.
 */

#ifndef WHISPER_CORE_WHISPER_PREDICTOR_HH
#define WHISPER_CORE_WHISPER_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bp/branch_predictor.hh"
#include "core/formula_trainer.hh"
#include "core/hint_buffer.hh"
#include "core/hint_injection.hh"
#include "core/history_hash.hh"
#include "trace/global_history.hh"

namespace whisper
{

/** Whisper hybrid: hint buffer + formulas over a dynamic predictor. */
class WhisperPredictor : public BranchPredictor
{
  public:
    /**
     * @param base underlying dynamic predictor (owned)
     * @param cfg Whisper design parameters
     * @param cache shared truth-table cache (must outlive this)
     * @param hints trained hints
     * @param placements brhint placements for the hints
     */
    WhisperPredictor(std::unique_ptr<BranchPredictor> base,
                     const WhisperConfig &cfg,
                     const TruthTableCache &cache,
                     const std::vector<TrainedHint> &hints,
                     const std::vector<HintPlacement> &placements);

    /**
     * Swap in a new hint deployment without disturbing the dynamic
     * predictor or history state — the model of whisperd pushing a
     * fresh bundle to a running fleet: the rewritten binary carries
     * new brhint instructions (so the hint buffer starts empty), but
     * the hardware predictor tables stay warm.
     */
    void replaceHints(const std::vector<TrainedHint> &hints,
                      const std::vector<HintPlacement> &placements);

    /** Deep copy: clones the owned dynamic predictor and copies the
     * hint buffer, history, and statistics; the truth-table cache is
     * shared (it is immutable after construction). */
    WhisperPredictor(const WhisperPredictor &other);

    bool predict(uint64_t pc, bool oracleTaken) override;
    void update(uint64_t pc, bool taken, bool predicted,
                bool allocate = true) override;
    void onRecord(const BranchRecord &rec) override;
    void predictMany(const BranchRecord *records, size_t n,
                     uint8_t *outMispredicted) override;
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<WhisperPredictor>(*this);
    }
    std::string name() const override;
    void reset() override;
    uint64_t storageBits() const override;

    // --- statistics ---
    uint64_t hintPredictions() const { return hintPredictions_; }
    uint64_t hintCorrect() const { return hintCorrect_; }
    uint64_t dynamicHintInstructions() const { return dynamicHints_; }
    uint64_t staticHintInstructions() const { return hints_.size(); }
    const HintBuffer &hintBuffer() const { return buffer_; }
    BranchPredictor &base() { return *base_; }

    /** Whether the last prediction came from a hint. */
    bool lastUsedHint() const { return usedHint_; }

  private:
    bool evaluateHint(const BrHint &hint) const;

    std::unique_ptr<BranchPredictor> base_;
    WhisperConfig cfg_;
    const TruthTableCache &cache_;
    std::vector<unsigned> lengths_;

    /** hint payload per hinted branch PC. */
    std::unordered_map<uint64_t, BrHint> hints_;
    /** predecessor PC -> hints injected there. */
    std::unordered_map<uint64_t, std::vector<uint64_t>> triggers_;

    HintBuffer buffer_;
    GlobalHistory history_;

    bool usedHint_ = false;
    bool basePred_ = false;
    uint64_t hintPredictions_ = 0;
    uint64_t hintCorrect_ = 0;
    uint64_t dynamicHints_ = 0;
};

} // namespace whisper

#endif // WHISPER_CORE_WHISPER_PREDICTOR_HH
