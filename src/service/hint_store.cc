#include "service/hint_store.hh"

namespace whisper
{

void
HintStore::publish(std::shared_ptr<const VersionedHintBundle> next)
{
    current_.store(next, std::memory_order_release);
    std::lock_guard<std::mutex> lock(historyMutex_);
    history_.push_back(std::move(next));
}

bool
HintStore::propose(HintBundle candidate, double candidateAccuracy,
                   double incumbentAccuracy, double margin)
{
    if (candidateAccuracy <= incumbentAccuracy + margin) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    auto version = std::make_shared<VersionedHintBundle>();
    version->epoch =
        nextEpoch_.fetch_add(1, std::memory_order_relaxed);
    version->validationAccuracy = candidateAccuracy;
    version->bundle = std::move(candidate);
    publish(std::move(version));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
HintStore::rollback()
{
    Snapshot previous;
    {
        std::lock_guard<std::mutex> lock(historyMutex_);
        if (history_.size() < 2)
            return false;
        previous = history_[history_.size() - 2];
    }
    auto version = std::make_shared<VersionedHintBundle>();
    version->epoch =
        nextEpoch_.fetch_add(1, std::memory_order_relaxed);
    version->validationAccuracy = previous->validationAccuracy;
    version->bundle = previous->bundle;
    publish(std::move(version));
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

size_t
HintStore::generations() const
{
    std::lock_guard<std::mutex> lock(historyMutex_);
    return history_.size();
}

HintStoreConsultant::HintStoreConsultant(const HintStore &store,
                                         const WhisperConfig &cfg,
                                         const TruthTableCache &cache,
                                         BaselineFactory baseline)
    : store_(store), cfg_(cfg), cache_(cache),
      baseline_(std::move(baseline))
{
}

WhisperPredictor &
HintStoreConsultant::predictor()
{
    if (!active_) {
        HintStore::Snapshot snap = store_.current();
        static const std::vector<TrainedHint> noHints;
        static const std::vector<HintPlacement> noPlacements;
        active_ = std::make_unique<WhisperPredictor>(
            baseline_(), cfg_, cache_,
            snap ? snap->bundle.hints : noHints,
            snap ? snap->bundle.placements : noPlacements);
        seenEpoch_ = snap ? snap->epoch : 0;
    }
    return *active_;
}

BranchPredictor *
HintStoreConsultant::refresh(uint64_t)
{
    HintStore::Snapshot snap = store_.current();
    if (!snap || snap->epoch == seenEpoch_)
        return nullptr;
    if (active_) {
        active_->replaceHints(snap->bundle.hints,
                              snap->bundle.placements);
    } else {
        active_ = std::make_unique<WhisperPredictor>(
            baseline_(), cfg_, cache_, snap->bundle.hints,
            snap->bundle.placements);
    }
    seenEpoch_ = snap->epoch;
    return active_.get();
}

} // namespace whisper
