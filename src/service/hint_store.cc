#include "service/hint_store.hh"

#include "util/logging.hh"

namespace whisper
{

void
HintStore::publish(std::shared_ptr<const VersionedHintBundle> next)
{
    if (journal_ && !journal_->append(*next)) {
        journalFailures_.fetch_add(1, std::memory_order_relaxed);
        whisper_warn("hint store: journal append failed for epoch ",
                     next->epoch, " (deployment proceeds, durability "
                     "degraded)");
    }
    current_.store(next, std::memory_order_release);
    std::lock_guard<std::mutex> lock(historyMutex_);
    history_.push_back(std::move(next));
}

size_t
HintStore::restore(std::vector<VersionedHintBundle> history)
{
    std::vector<Snapshot> restored;
    uint64_t lastEpoch = 0;
    for (VersionedHintBundle &bundle : history) {
        if (bundle.epoch <= lastEpoch) {
            whisper_warn("hint store: dropping non-monotonic journal "
                         "record (epoch ", bundle.epoch, " after ",
                         lastEpoch, ")");
            continue;
        }
        lastEpoch = bundle.epoch;
        restored.push_back(std::make_shared<VersionedHintBundle>(
            std::move(bundle)));
    }
    if (restored.empty())
        return 0;

    whisper_assert(!current_.load() && generations() == 0,
                   "restore() must precede any deployment");
    current_.store(restored.back(), std::memory_order_release);
    nextEpoch_.store(lastEpoch + 1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(historyMutex_);
    history_ = std::move(restored);
    return history_.size();
}

void
HintStore::attachJournal(HintJournal *journal)
{
    journal_ = journal;
}

bool
HintStore::propose(HintBundle candidate, double candidateAccuracy,
                   double incumbentAccuracy, double margin)
{
    if (candidateAccuracy <= incumbentAccuracy + margin) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    auto version = std::make_shared<VersionedHintBundle>();
    version->epoch =
        nextEpoch_.fetch_add(1, std::memory_order_relaxed);
    version->validationAccuracy = candidateAccuracy;
    version->bundle = std::move(candidate);
    publish(std::move(version));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
HintStore::rollback()
{
    Snapshot previous;
    {
        std::lock_guard<std::mutex> lock(historyMutex_);
        // Nothing deployed, or only the first generation: there is
        // no earlier payload to return to (epoch 0 is "no hints",
        // not a generation). Clean error, never an out-of-bounds
        // history index.
        if (history_.size() < 2)
            return false;
        previous = history_[history_.size() - 2];
    }
    auto version = std::make_shared<VersionedHintBundle>();
    version->epoch =
        nextEpoch_.fetch_add(1, std::memory_order_relaxed);
    version->validationAccuracy = previous->validationAccuracy;
    version->bundle = previous->bundle;
    publish(std::move(version));
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

size_t
HintStore::generations() const
{
    std::lock_guard<std::mutex> lock(historyMutex_);
    return history_.size();
}

HintStoreConsultant::HintStoreConsultant(const HintStore &store,
                                         const WhisperConfig &cfg,
                                         const TruthTableCache &cache,
                                         BaselineFactory baseline)
    : store_(store), cfg_(cfg), cache_(cache),
      baseline_(std::move(baseline))
{
}

WhisperPredictor &
HintStoreConsultant::predictor()
{
    if (!active_) {
        HintStore::Snapshot snap = store_.current();
        static const std::vector<TrainedHint> noHints;
        static const std::vector<HintPlacement> noPlacements;
        active_ = std::make_unique<WhisperPredictor>(
            baseline_(), cfg_, cache_,
            snap ? snap->bundle.hints : noHints,
            snap ? snap->bundle.placements : noPlacements);
        seenEpoch_ = snap ? snap->epoch : 0;
    }
    return *active_;
}

BranchPredictor *
HintStoreConsultant::refresh(uint64_t)
{
    HintStore::Snapshot snap = store_.current();
    if (!snap || snap->epoch == seenEpoch_)
        return nullptr;
    if (active_) {
        active_->replaceHints(snap->bundle.hints,
                              snap->bundle.placements);
    } else {
        active_ = std::make_unique<WhisperPredictor>(
            baseline_(), cfg_, cache_, snap->bundle.hints,
            snap->bundle.placements);
    }
    seenEpoch_ = snap->epoch;
    return active_.get();
}

} // namespace whisper
