#include "service/training_pool.hh"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "util/logging.hh"

namespace whisper
{

TrainingPool::TrainingPool(unsigned workers)
    : workers_(workers == 0 ? 1 : workers)
{
}

std::vector<TrainedHint>
TrainingPool::train(const WhisperTrainer &trainer,
                    const BranchProfile &profile,
                    TrainingStats *stats) const
{
    auto start = std::chrono::steady_clock::now();
    const WhisperConfig &cfg = trainer.config();

    // Same work list and order as WhisperTrainer::train.
    std::vector<const BranchProfileEntry *> work;
    for (const BranchProfileEntry *entry : profile.hardBranches())
        if (entry->baselineMispredicts >= cfg.minMispredictions)
            work.push_back(entry);

    std::vector<std::optional<TrainedHint>> slots(work.size());
    std::vector<uint64_t> scored(work.size(), 0);
    std::atomic<size_t> cursor{0};

    auto runWorker = [&]() {
        for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
             i < work.size();
             i = cursor.fetch_add(1, std::memory_order_relaxed)) {
            TrainedHint hint;
            if (trainer.trainBranch(*work[i], profile.lengths(),
                                    hint, &scored[i])) {
                slots[i] = hint;
            }
        }
    };

    unsigned spawned = static_cast<unsigned>(
        std::min<size_t>(workers_, work.size() ? work.size() : 1));
    if (spawned <= 1) {
        runWorker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(spawned);
        for (unsigned w = 0; w < spawned; ++w)
            threads.emplace_back(runWorker);
        for (auto &t : threads)
            t.join();
    }

    TrainingStats local;
    local.branchesConsidered = work.size();
    std::vector<TrainedHint> hints;
    for (size_t i = 0; i < work.size(); ++i) {
        local.formulasScored += scored[i];
        if (slots[i]) {
            local.coveredMispredicts += slots[i]->profiledMispredicts;
            local.expectedRemaining += slots[i]->expectedMispredicts;
            hints.push_back(*slots[i]);
        }
    }
    local.hintsEmitted = hints.size();
    local.trainSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (stats)
        *stats = local;
    return hints;
}

} // namespace whisper
