#include "service/training_pool.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "service/fault_injection.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Per-branch task lifecycle, driven by atomic transitions so the
 * supervisor can reclaim a task out from under a dead worker. */
enum TaskState : int
{
    kPending = 0,
    kRunning = 1,
    kDone = 2,
    kDegraded = 3,
};

struct Task
{
    std::atomic<int> state{kPending};
    std::atomic<unsigned> attempts{0};
    std::atomic<int64_t> claimedAtMs{0};
};

} // namespace

TrainingPool::TrainingPool(unsigned workers)
{
    options_.workers = workers == 0 ? 1 : workers;
}

TrainingPool::TrainingPool(const TrainingPoolOptions &options)
    : options_(options)
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.maxAttempts == 0)
        options_.maxAttempts = 1;
}

std::vector<TrainedHint>
TrainingPool::train(const WhisperTrainer &trainer,
                    const BranchProfile &profile,
                    TrainingStats *stats) const
{
    return train(trainer, profile, nullptr, stats);
}

std::vector<TrainedHint>
TrainingPool::train(const WhisperTrainer &trainer,
                    const BranchProfile &profile,
                    const std::vector<TrainedHint> *warmSeeds,
                    TrainingStats *stats) const
{
    auto start = std::chrono::steady_clock::now();
    const WhisperConfig &cfg = trainer.config();

    std::unordered_map<uint64_t, const TrainedHint *> seeds;
    if (warmSeeds)
        for (const TrainedHint &h : *warmSeeds)
            seeds.emplace(h.pc, &h);

    // Same work list and order as WhisperTrainer::train.
    std::vector<const BranchProfileEntry *> work;
    std::vector<const TrainedHint *> warm;
    for (const BranchProfileEntry *entry : profile.hardBranches())
        if (entry->baselineMispredicts >= cfg.minMispredictions) {
            work.push_back(entry);
            auto it = seeds.find(entry->pc);
            warm.push_back(it == seeds.end() ? nullptr : it->second);
        }

    std::vector<std::optional<TrainedHint>> slots(work.size());
    std::vector<BranchTrainOutcome> outcomes(work.size());
    std::vector<Task> tasks(work.size());

    std::mutex mtx;
    std::condition_variable cv;
    std::deque<size_t> ready;
    for (size_t i = 0; i < work.size(); ++i)
        ready.push_back(i);
    std::atomic<size_t> unresolved{work.size()};
    std::atomic<unsigned> aliveWorkers{0};

    std::atomic<uint64_t> tasksRequeued{0};
    std::atomic<uint64_t> taskFailures{0};
    std::atomic<uint64_t> branchesDegraded{0};
    std::atomic<uint64_t> workersDied{0};

    const bool supervised = options_.taskDeadlineMs > 0;

    auto resolve = [&]() {
        if (unresolved.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mtx);
            cv.notify_all();
        }
    };

    // Push a claimed-but-unfinished task back onto the ready queue
    // (worker stuck/dead, or a retriable failure).
    auto requeue = [&](size_t i, std::atomic<uint64_t> *counter) {
        int expected = kRunning;
        if (tasks[i].state.compare_exchange_strong(expected,
                                                   kPending)) {
            if (counter)
                counter->fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mtx);
            ready.push_back(i);
            cv.notify_one();
        }
    };

    auto degrade = [&](size_t i, int fromState) {
        int expected = fromState;
        if (tasks[i].state.compare_exchange_strong(expected,
                                                   kDegraded)) {
            branchesDegraded.fetch_add(1, std::memory_order_relaxed);
            whisper_warn("training pool: degrading branch 0x",
                         std::hex, work[i]->pc, std::dec,
                         " to baseline after repeated failures");
            resolve();
        }
    };

    auto runWorker = [&](unsigned workerId) {
        for (;;) {
            size_t i;
            {
                std::unique_lock<std::mutex> lock(mtx);
                cv.wait(lock, [&] {
                    return !ready.empty() ||
                           unresolved.load(
                               std::memory_order_acquire) == 0;
                });
                if (ready.empty())
                    break; // all tasks resolved
                i = ready.front();
                ready.pop_front();
            }

            int expected = kPending;
            if (!tasks[i].state.compare_exchange_strong(expected,
                                                        kRunning)) {
                // Stale ready entry for a task someone else already
                // finished or degraded; drop it.
                continue;
            }
            unsigned attempt =
                tasks[i].attempts.fetch_add(
                    1, std::memory_order_relaxed) +
                1;
            if (attempt > options_.maxAttempts) {
                degrade(i, kRunning);
                continue;
            }
            tasks[i].claimedAtMs.store(nowMs(),
                                       std::memory_order_relaxed);

            FaultInjector::instance().maybeStallWorker(workerId);
            // Only die when a supervisor exists to reclaim our task;
            // without one the injected fault would deadlock the pool
            // instead of exercising recovery.
            if (supervised &&
                FaultInjector::instance().shouldKillWorker(
                    workerId)) {
                workersDied.fetch_add(1, std::memory_order_relaxed);
                break;
            }

            TrainedHint hint;
            BranchTrainOutcome outcome;
            bool produced = false;
            bool failed = false;
            try {
                if (FaultInjector::instance().failTraining(i,
                                                           attempt)) {
                    throw std::runtime_error(
                        "injected training failure");
                }
                produced = trainer.trainBranchSeeded(
                    *work[i], profile.lengths(), warm[i], hint,
                    &outcome);
            } catch (const std::exception &e) {
                failed = true;
                taskFailures.fetch_add(1, std::memory_order_relaxed);
                whisper_warn("training pool: branch 0x", std::hex,
                             work[i]->pc, std::dec, " attempt ",
                             attempt, " failed: ", e.what());
            }

            if (failed) {
                if (attempt >= options_.maxAttempts)
                    degrade(i, kRunning);
                else
                    requeue(i, nullptr); // counted as taskFailure
                continue;
            }

            // Accept the completion even if the supervisor requeued
            // the task mid-training (it assumed we were dead, but we
            // were merely slow) or a rival worker re-claimed it: CAS
            // from any non-terminal state. kDone is terminal, so
            // exactly one completion wins and writes the slot — and
            // trainBranch is deterministic, so any winner produces
            // identical bytes.
            int state = tasks[i].state.load(std::memory_order_acquire);
            while (state == kRunning || state == kPending) {
                if (tasks[i].state.compare_exchange_weak(state,
                                                         kDone)) {
                    if (produced)
                        slots[i] = hint;
                    outcomes[i] = outcome;
                    resolve();
                    break;
                }
            }
        }
        aliveWorkers.fetch_sub(1, std::memory_order_acq_rel);
        std::lock_guard<std::mutex> lock(mtx);
        cv.notify_all();
    };

    unsigned spawned = static_cast<unsigned>(std::min<size_t>(
        options_.workers, work.size() ? work.size() : 1));
    aliveWorkers.store(spawned, std::memory_order_relaxed);

    std::thread supervisorThread;
    if (supervised) {
        supervisorThread = std::thread([&] {
            while (unresolved.load(std::memory_order_acquire) > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        options_.superviseIntervalMs));
                int64_t now = nowMs();
                for (size_t i = 0; i < tasks.size(); ++i) {
                    if (tasks[i].state.load(
                            std::memory_order_acquire) != kRunning)
                        continue;
                    int64_t claimed = tasks[i].claimedAtMs.load(
                        std::memory_order_relaxed);
                    if (now - claimed <
                        static_cast<int64_t>(
                            options_.taskDeadlineMs))
                        continue;
                    // Past deadline: the worker holding this task is
                    // stuck or dead. Reclaim it for a live worker.
                    requeue(i, &tasksRequeued);
                }
                if (aliveWorkers.load(std::memory_order_acquire) ==
                        0 &&
                    unresolved.load(std::memory_order_acquire) > 0) {
                    // Every worker died. Nothing will ever claim the
                    // remaining tasks: degrade them all so the epoch
                    // completes on the baseline predictor instead of
                    // hanging the service.
                    for (size_t i = 0; i < tasks.size(); ++i) {
                        degrade(i, kPending);
                        degrade(i, kRunning);
                    }
                }
            }
        });
    }

    if (spawned <= 1 && !supervised) {
        runWorker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(spawned);
        for (unsigned w = 0; w < spawned; ++w)
            threads.emplace_back(runWorker, w);
        for (auto &t : threads)
            t.join();
    }
    if (supervisorThread.joinable())
        supervisorThread.join();

    supervision_.tasksRequeued = tasksRequeued.load();
    supervision_.taskFailures = taskFailures.load();
    supervision_.branchesDegraded = branchesDegraded.load();
    supervision_.workersDied = workersDied.load();

    TrainingStats local;
    local.branchesConsidered = work.size();
    std::vector<TrainedHint> hints;
    for (size_t i = 0; i < work.size(); ++i) {
        local.formulasScored += outcomes[i].scored;
        if (outcomes[i].warmHit)
            ++local.warmHits;
        else
            ++local.coldSearches;
        local.branchSecondsSum += outcomes[i].seconds;
        local.branchSecondsMax =
            std::max(local.branchSecondsMax, outcomes[i].seconds);
        if (slots[i]) {
            local.coveredMispredicts += slots[i]->profiledMispredicts;
            local.expectedRemaining += slots[i]->expectedMispredicts;
            hints.push_back(*slots[i]);
        }
    }
    local.hintsEmitted = hints.size();
    local.trainSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (stats)
        *stats = local;
    return hints;
}

} // namespace whisper
