/**
 * @file
 * Streaming trace ingest for whisperd.
 *
 * The offline tools load whole .whrt traces into memory; a
 * continuously profiling service cannot. TraceStreamReader walks a
 * trace file in bounded chunks, and ChunkIngestor runs a producer
 * thread over a directory of trace files (sorted by name, so file
 * naming encodes the drift sequence) feeding a BoundedQueue of
 * TraceChunks.
 *
 * The reader is hardened against the inputs production actually
 * delivers: version-2 traces are CRC32-framed, and a frame that
 * fails its checksum (bit rot, torn write, fault injection) is
 * skipped and counted instead of poisoning the profile or killing
 * the stream; a damaged frame header triggers a bounded resync scan
 * for the next frame magic; transient short reads are retried with
 * exponential backoff; and every length field is hard-capped so a
 * corrupt (or hostile) size can never drive an unbounded
 * allocation.
 */

#ifndef WHISPER_SERVICE_TRACE_STREAM_HH
#define WHISPER_SERVICE_TRACE_STREAM_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "service/bounded_queue.hh"
#include "trace/branch_record.hh"
#include "trace/branch_source.hh"
#include "util/io_status.hh"

namespace whisper
{

/** One bounded slice of a trace file, the service's unit of work. */
struct TraceChunk
{
    uint64_t sequence = 0;    //!< global arrival index
    std::string app;          //!< application the trace came from
    uint32_t inputId = 0;     //!< workload input id
    std::string sourceFile;   //!< originating .whrt path
    std::vector<BranchRecord> records;
};

/** BranchSource view over a chunk's record array. */
class ChunkSource : public BranchSource
{
  public:
    explicit ChunkSource(const std::vector<BranchRecord> &records)
        : records_(records)
    {
    }

    bool
    next(BranchRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

  private:
    const std::vector<BranchRecord> &records_;
    size_t pos_ = 0;
};

/**
 * Incremental .whrt reader: parses the header eagerly, then returns
 * records in caller-sized chunks so memory stays bounded no matter
 * how large the trace file is. Reads both format versions (raw v1,
 * CRC-framed v2); damaged v2 frames are skipped and counted.
 */
class TraceStreamReader
{
  public:
    /** Bytes scanned past a damaged frame header looking for the
     * next frame magic before giving up on the file. */
    static constexpr size_t kResyncWindowBytes = 4u << 20;
    /** Transient-read retries before the error counts as hard. */
    static constexpr unsigned kMaxReadRetries = 4;

    explicit TraceStreamReader(const std::string &path);
    ~TraceStreamReader();

    TraceStreamReader(const TraceStreamReader &) = delete;
    TraceStreamReader &operator=(const TraceStreamReader &) = delete;

    /** Header parsed and magic/version verified. */
    bool valid() const { return file_ != nullptr; }
    /** Why the header was rejected (missing vs corrupt). */
    const IoStatus &status() const { return status_; }

    const std::string &app() const { return app_; }
    uint32_t inputId() const { return inputId_; }
    const std::string &path() const { return path_; }

    /** Records the header promises / already delivered. */
    uint64_t recordsTotal() const { return recordsTotal_; }
    uint64_t recordsRead() const { return recordsRead_; }

    /** Damaged frames dropped (CRC mismatch, bad header, torn
     * tail). */
    uint64_t framesSkipped() const { return framesSkipped_; }
    /** Records lost to dropped frames. */
    uint64_t recordsSkipped() const { return recordsSkipped_; }
    /** Transient read errors that were retried. */
    uint64_t readRetries() const { return readRetries_; }

    /**
     * Read up to @p maxRecords into @p out (replacing its contents).
     * @return number of records delivered; 0 at end of stream.
     * Damaged v2 frames are skipped (see framesSkipped()); a short
     * v1 file (fewer records than the header claimed) invalidates
     * the reader.
     */
    size_t readChunk(std::vector<BranchRecord> &out,
                     size_t maxRecords);

  private:
    /** Outcome of trying to buffer the next v2 frame. */
    enum class FrameResult
    {
        Loaded,
        EndOfStream,
    };

    FrameResult loadNextFrame();
    bool resyncToFrameMagic();
    /** fread with bounded retry/backoff on transient errors; returns
     * bytes actually read (< @p n only on EOF or hard error). */
    size_t readWithRetry(void *p, size_t n);
    void finishStream(bool corrupt);

    std::string path_;
    std::FILE *file_ = nullptr;
    IoStatus status_;
    uint32_t version_ = 0;
    std::string app_;
    uint32_t inputId_ = 0;
    uint64_t recordsTotal_ = 0;
    uint64_t recordsRead_ = 0;

    std::vector<BranchRecord> frame_; //!< validated v2 frame buffer
    size_t framePos_ = 0;

    uint64_t framesSkipped_ = 0;
    uint64_t recordsSkipped_ = 0;
    uint64_t readRetries_ = 0;
};

/**
 * Producer side of the ingest pipeline: streams every trace file of
 * a directory, in name order, as TraceChunks into a shared queue.
 * Several ingestors may feed one queue (MPSC); each runs one thread.
 */
class ChunkIngestor
{
  public:
    /**
     * @param chunkRecords chunk granularity (records per chunk)
     * @param queue destination; NOT closed by the ingestor (the
     *        coordinator closes it once all producers joined)
     * @param sequence shared arrival counter for deterministic chunk
     *        numbering across producers (may be shared or private)
     */
    ChunkIngestor(std::vector<std::string> files, size_t chunkRecords,
                  BoundedQueue<TraceChunk> &queue,
                  std::atomic<uint64_t> &sequence);
    ~ChunkIngestor();

    /** Spawn the producer thread. */
    void start();
    /** Wait for the producer to finish its file list. */
    void join();

    uint64_t filesIngested() const { return filesIngested_; }
    uint64_t chunksProduced() const { return chunksProduced_; }
    uint64_t recordsIngested() const { return recordsIngested_; }
    /** Damaged frames skipped across all files. */
    uint64_t framesSkipped() const { return framesSkipped_; }
    /** Records lost to skipped frames across all files. */
    uint64_t recordsSkipped() const { return recordsSkipped_; }
    /** Transient read errors retried across all files. */
    uint64_t readRetries() const { return readRetries_; }
    /** Files that failed to open/parse, with the reason (missing vs
     * corrupt header vs truncated body). */
    const std::vector<std::string> &errors() const { return errors_; }

    /** All .whrt files directly inside @p dir, sorted by name. */
    static std::vector<std::string>
    listTraceFiles(const std::string &dir);

  private:
    void produce();

    std::vector<std::string> files_;
    size_t chunkRecords_;
    BoundedQueue<TraceChunk> &queue_;
    std::atomic<uint64_t> &sequence_;
    std::thread thread_;

    uint64_t filesIngested_ = 0;
    uint64_t chunksProduced_ = 0;
    uint64_t recordsIngested_ = 0;
    uint64_t framesSkipped_ = 0;
    uint64_t recordsSkipped_ = 0;
    uint64_t readRetries_ = 0;
    std::vector<std::string> errors_;
};

} // namespace whisper

#endif // WHISPER_SERVICE_TRACE_STREAM_HH
