/**
 * @file
 * Streaming trace ingest for whisperd.
 *
 * The offline tools load whole .whrt traces into memory; a
 * continuously profiling service cannot. TraceStreamReader walks a
 * trace file in bounded chunks, and ChunkIngestor runs a producer
 * thread over a directory of trace files (sorted by name, so file
 * naming encodes the drift sequence) feeding a BoundedQueue of
 * TraceChunks.
 */

#ifndef WHISPER_SERVICE_TRACE_STREAM_HH
#define WHISPER_SERVICE_TRACE_STREAM_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "service/bounded_queue.hh"
#include "trace/branch_record.hh"
#include "trace/branch_source.hh"

namespace whisper
{

/** One bounded slice of a trace file, the service's unit of work. */
struct TraceChunk
{
    uint64_t sequence = 0;    //!< global arrival index
    std::string app;          //!< application the trace came from
    uint32_t inputId = 0;     //!< workload input id
    std::string sourceFile;   //!< originating .whrt path
    std::vector<BranchRecord> records;
};

/** BranchSource view over a chunk's record array. */
class ChunkSource : public BranchSource
{
  public:
    explicit ChunkSource(const std::vector<BranchRecord> &records)
        : records_(records)
    {
    }

    bool
    next(BranchRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

  private:
    const std::vector<BranchRecord> &records_;
    size_t pos_ = 0;
};

/**
 * Incremental .whrt reader: parses the header eagerly, then returns
 * records in caller-sized chunks so memory stays bounded no matter
 * how large the trace file is.
 */
class TraceStreamReader
{
  public:
    explicit TraceStreamReader(const std::string &path);
    ~TraceStreamReader();

    TraceStreamReader(const TraceStreamReader &) = delete;
    TraceStreamReader &operator=(const TraceStreamReader &) = delete;

    /** Header parsed and magic/version verified. */
    bool valid() const { return file_ != nullptr; }

    const std::string &app() const { return app_; }
    uint32_t inputId() const { return inputId_; }
    const std::string &path() const { return path_; }

    /** Records the header promises / already delivered. */
    uint64_t recordsTotal() const { return recordsTotal_; }
    uint64_t recordsRead() const { return recordsRead_; }

    /**
     * Read up to @p maxRecords into @p out (replacing its contents).
     * @return number of records delivered; 0 at end of stream. A
     * short file (fewer records than the header claimed) invalidates
     * the reader.
     */
    size_t readChunk(std::vector<BranchRecord> &out,
                     size_t maxRecords);

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::string app_;
    uint32_t inputId_ = 0;
    uint64_t recordsTotal_ = 0;
    uint64_t recordsRead_ = 0;
};

/**
 * Producer side of the ingest pipeline: streams every trace file of
 * a directory, in name order, as TraceChunks into a shared queue.
 * Several ingestors may feed one queue (MPSC); each runs one thread.
 */
class ChunkIngestor
{
  public:
    /**
     * @param chunkRecords chunk granularity (records per chunk)
     * @param queue destination; NOT closed by the ingestor (the
     *        coordinator closes it once all producers joined)
     * @param sequence shared arrival counter for deterministic chunk
     *        numbering across producers (may be shared or private)
     */
    ChunkIngestor(std::vector<std::string> files, size_t chunkRecords,
                  BoundedQueue<TraceChunk> &queue,
                  std::atomic<uint64_t> &sequence);
    ~ChunkIngestor();

    /** Spawn the producer thread. */
    void start();
    /** Wait for the producer to finish its file list. */
    void join();

    uint64_t filesIngested() const { return filesIngested_; }
    uint64_t chunksProduced() const { return chunksProduced_; }
    uint64_t recordsIngested() const { return recordsIngested_; }
    /** Files that failed to open/parse. */
    const std::vector<std::string> &errors() const { return errors_; }

    /** All .whrt files directly inside @p dir, sorted by name. */
    static std::vector<std::string>
    listTraceFiles(const std::string &dir);

  private:
    void produce();

    std::vector<std::string> files_;
    size_t chunkRecords_;
    BoundedQueue<TraceChunk> &queue_;
    std::atomic<uint64_t> &sequence_;
    std::thread thread_;

    uint64_t filesIngested_ = 0;
    uint64_t chunksProduced_ = 0;
    uint64_t recordsIngested_ = 0;
    std::vector<std::string> errors_;
};

} // namespace whisper

#endif // WHISPER_SERVICE_TRACE_STREAM_HH
