/**
 * @file
 * Bounded multi-producer queue connecting whisperd's ingest threads
 * to its consumers.
 *
 * A fixed-capacity ring guarded by one mutex and two condition
 * variables: producers block when the ring is full (backpressure
 * toward the trace readers instead of unbounded buffering), consumers
 * block when it is empty. close() wakes everyone; a closed queue
 * drains its remaining elements before pop() starts returning false,
 * so no ingested chunk is ever dropped.
 */

#ifndef WHISPER_SERVICE_BOUNDED_QUEUE_HH
#define WHISPER_SERVICE_BOUNDED_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.hh"

namespace whisper
{

/** Bounded blocking MPSC/MPMC queue. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity)
    {
        whisper_assert(capacity > 0);
    }

    /**
     * Block until there is room, then enqueue.
     * @return false when the queue was closed (item not enqueued).
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an element is available or the queue is closed and
     * drained. @return false only in the latter case.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock,
                       [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /**
     * Non-blocking push: enqueue only when there is room right now.
     * @return false when the queue was full or closed (item
     * dropped) — the quota-enforcement primitive of the multi-tenant
     * router, where one tenant's backlog must never block the shared
     * ingest path.
     */
    bool
    tryPush(T item)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Timed push: block up to @p timeout for room, then enqueue.
     * @return false when the deadline passed with the queue still
     * full, or the queue was closed (item not enqueued either way).
     * close() wakes blocked timed pushers immediately — shutdown
     * never waits out the timeout.
     */
    template <typename Rep, typename Period>
    bool
    tryPushFor(T item,
               const std::chrono::duration<Rep, Period> &timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!notFull_.wait_for(lock, timeout, [&] {
                return closed_ || items_.size() < capacity_;
            })) {
            return false; // deadline passed, still full
        }
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /** Non-blocking pop. @return false when nothing was available. */
    bool
    tryPop(T &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /** No further pushes; consumers drain what remains. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace whisper

#endif // WHISPER_SERVICE_BOUNDED_QUEUE_HH
