/**
 * @file
 * Versioned hint-bundle store: whisperd's deployment point.
 *
 * The consumer side (a simulated fleet, or the adaptive runner in
 * sim/runner) reads the currently deployed bundle wait-free through
 * an RCU-style std::atomic<std::shared_ptr>: readers pin whatever
 * generation they observed and keep using it while the trainer
 * publishes the next one. Epochs increase monotonically with every
 * deployment (including rollbacks, which re-publish an old payload
 * under a new epoch).
 *
 * Deployment is guarded: a candidate bundle must beat the incumbent
 * on a held-out validation window or it is rejected — the
 * rollback-on-regression rule that keeps a bad training epoch from
 * ever reaching the fleet.
 */

#ifndef WHISPER_SERVICE_HINT_STORE_HH
#define WHISPER_SERVICE_HINT_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bp/branch_predictor.hh"
#include "core/whisper_io.hh"
#include "core/whisper_predictor.hh"
#include "service/chunk_profiler.hh"
#include "service/hint_journal.hh"

namespace whisper
{

/** Versioned, atomically swappable bundle store. */
class HintStore
{
  public:
    using Snapshot = std::shared_ptr<const VersionedHintBundle>;

    /**
     * Preload the store from journal-replayed generations (ascending
     * epochs; out-of-order records are dropped as corrupt). The last
     * one becomes the deployed bundle and new epochs continue after
     * it — a restarted service resumes instead of starting at 0.
     * Must be called before any propose(). @return generations kept.
     */
    size_t restore(std::vector<VersionedHintBundle> history);

    /** Journal every subsequent deployment (including rollbacks)
     * to @p journal (not owned; may be nullptr to detach). Already
     * restored generations are NOT re-journaled. */
    void attachJournal(HintJournal *journal);

    /** Appends that failed (deployment stays up, durability is
     * degraded until the journal self-heals). */
    uint64_t journalFailures() const { return journalFailures_.load(); }

    /** Currently deployed bundle; nullptr before any deployment.
     * Wait-free for readers. */
    Snapshot
    current() const
    {
        return current_.load(std::memory_order_acquire);
    }

    /** Epoch of the deployed bundle (0 = nothing deployed). */
    uint64_t
    epoch() const
    {
        Snapshot snap = current();
        return snap ? snap->epoch : 0;
    }

    /**
     * Offer a candidate for deployment. Accepted (and atomically
     * swapped in under a fresh epoch) only when it beats the
     * incumbent on the shared validation window by more than
     * @p margin; rejected otherwise.
     *
     * @param candidateAccuracy candidate's validation accuracy
     * @param incumbentAccuracy deployed bundle's (or the un-hinted
     *        baseline's) accuracy on the same window
     */
    bool propose(HintBundle candidate, double candidateAccuracy,
                 double incumbentAccuracy, double margin = 0.0);

    /**
     * Re-deploy the previously accepted bundle under a fresh epoch
     * (manual regression escape hatch). Rolling back an empty store,
     * or past the first generation (epoch 0 has no payload to return
     * to), is a clean `false` — never UB.
     */
    bool rollback();

    uint64_t accepted() const { return accepted_.load(); }
    uint64_t rejected() const { return rejected_.load(); }
    uint64_t rollbacks() const { return rollbacks_.load(); }

    /** Number of generations ever deployed. */
    size_t generations() const;

  private:
    void publish(std::shared_ptr<const VersionedHintBundle> next);

    std::atomic<std::shared_ptr<const VersionedHintBundle>> current_{
        nullptr};

    mutable std::mutex historyMutex_;
    std::vector<Snapshot> history_;

    std::atomic<uint64_t> nextEpoch_{1};
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> rollbacks_{0};

    HintJournal *journal_ = nullptr;
    std::atomic<uint64_t> journalFailures_{0};
};

/**
 * Glue between a HintStore and sim/runPredictorAdaptive: each epoch
 * boundary, rebuild the Whisper predictor iff the store has deployed
 * a new generation since the last look.
 */
class HintStoreConsultant
{
  public:
    HintStoreConsultant(const HintStore &store,
                        const WhisperConfig &cfg,
                        const TruthTableCache &cache,
                        BaselineFactory baseline);

    /**
     * runPredictorAdaptive refresh hook. The first deployment builds
     * the managed Whisper predictor (and returns it, so the runner
     * swaps to it); later deployments replace its hints in place —
     * the dynamic predictor state stays warm across redeployments,
     * as on real hardware where a binary push does not flush the
     * branch predictor tables.
     */
    BranchPredictor *refresh(uint64_t nextEpoch);

    /**
     * The managed predictor, created on first use with whatever is
     * currently deployed (possibly no hints yet). Handing this to
     * runPredictorAdaptive as the initial predictor makes every
     * deployment an in-place hint swap with zero cold restarts.
     */
    WhisperPredictor &predictor();

    /** Store epoch the active predictor was built from. */
    uint64_t deployedEpoch() const { return seenEpoch_; }

  private:
    const HintStore &store_;
    WhisperConfig cfg_;
    const TruthTableCache &cache_;
    BaselineFactory baseline_;
    std::unique_ptr<WhisperPredictor> active_;
    uint64_t seenEpoch_ = 0;
};

} // namespace whisper

#endif // WHISPER_SERVICE_HINT_STORE_HH
