/**
 * @file
 * Single-pass streaming profile collection for whisperd.
 *
 * The offline profiler (sim/collectProfile) makes two passes over a
 * materialized trace; a service consuming an endless chunk stream
 * gets one look at each record. ChunkProfiler therefore keeps the
 * baseline predictor, the global history and the hard-branch set
 * alive across chunks and emits one partial BranchProfile per chunk.
 * Because every piece of profiling state threads through chunk
 * boundaries, the per-chunk profiles combine exactly:
 *
 *   Profile::merge(profile(chunk A), profile(chunk B))
 *     == profile(chunk A ++ chunk B)
 *
 * which is what makes the sharded aggregation below associative.
 *
 * Hard branches are promoted adaptively: once a branch has
 * accumulated enough lifetime mispredictions it starts collecting
 * the hashed-history sample tables of Algorithm 1 (the offline
 * profiler instead selects them between its two passes).
 */

#ifndef WHISPER_SERVICE_CHUNK_PROFILER_HH
#define WHISPER_SERVICE_CHUNK_PROFILER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bp/branch_predictor.hh"
#include "core/profile.hh"
#include "service/bounded_queue.hh"
#include "service/trace_stream.hh"
#include "trace/global_history.hh"

namespace whisper
{

/** Factory for fresh baseline predictor instances. */
using BaselineFactory =
    std::function<std::unique_ptr<BranchPredictor>()>;

/** Streaming profiler with state persisting across chunks. */
class ChunkProfiler
{
  public:
    struct Options
    {
        /** Cap on branches with detailed tables (memory bound). */
        unsigned maxHardBranches = 512;
        /** Lifetime mispredictions before a branch turns hard. */
        uint64_t promoteMispredicts = 16;
        /** When false, only branches pre-registered via trackHard()
         * collect tables (used by the merge-equality tests). */
        bool adaptivePromotion = true;
        /**
         * Lifetime records to run through the baseline before any
         * statistics are recorded — the streaming analog of the
         * offline profiler's statsWarmupFraction: cold-start
         * mispredictions would otherwise make the baseline look
         * worse than its steady state and skew hint selection.
         * Counted from profiler birth, so merge equality holds.
         */
        uint64_t statsWarmupRecords = 0;
    };

    ChunkProfiler(const WhisperConfig &cfg,
                  std::unique_ptr<BranchPredictor> baseline,
                  const Options &opt);
    ChunkProfiler(const WhisperConfig &cfg,
                  std::unique_ptr<BranchPredictor> baseline)
        : ChunkProfiler(cfg, std::move(baseline), Options{})
    {
    }

    /** Pre-designate @p pc as hard (tables from the next record). */
    void trackHard(uint64_t pc);

    /** Profile one chunk, advancing the persistent state. */
    BranchProfile profileChunk(const std::vector<BranchRecord> &records);

    size_t numHardTracked() const { return hard_.size(); }
    uint64_t recordsProfiled() const { return recordsProfiled_; }
    const WhisperConfig &config() const { return cfg_; }

  private:
    WhisperConfig cfg_;
    Options opt_;
    std::unique_ptr<BranchPredictor> baseline_;
    std::vector<unsigned> lengths_;
    GlobalHistory history_;
    std::unordered_set<uint64_t> hard_;
    /** Lifetime misprediction counts driving promotion. */
    std::unordered_map<uint64_t, uint64_t> lifetimeMispredicts_;
    uint64_t recordsProfiled_ = 0;
};

/**
 * Sharded profile aggregator: N worker threads each own a
 * ChunkProfiler and accumulate a shard profile; chunks are routed by
 * sequence number (deterministic regardless of thread timing) and
 * the aggregate is the associative merge of the shard profiles in
 * shard order.
 */
class ShardedProfiler
{
  public:
    ShardedProfiler(const WhisperConfig &cfg, unsigned shards,
                    const BaselineFactory &baseline,
                    const ChunkProfiler::Options &opt
                    = ChunkProfiler::Options{},
                    size_t queueCapacity = 4);
    ~ShardedProfiler();

    /** Route @p chunk to shard (sequence mod N); blocks when that
     * shard's queue is full (backpressure). */
    void submit(TraceChunk chunk);

    /** Barrier: wait until every submitted chunk is folded in. */
    void drain();

    /** Deterministic merge of all shard profiles (drain() first). */
    BranchProfile aggregate();

    unsigned numShards() const { return static_cast<unsigned>(shards_.size()); }
    uint64_t recordsProfiled() const;
    uint64_t chunksProfiled() const;

  private:
    struct Shard
    {
        explicit Shard(const WhisperConfig &cfg,
                       std::unique_ptr<BranchPredictor> baseline,
                       const ChunkProfiler::Options &opt,
                       size_t queueCapacity)
            : queue(queueCapacity), profiler(cfg, std::move(baseline), opt),
              accumulated(cfg)
        {
        }

        BoundedQueue<TraceChunk> queue;
        ChunkProfiler profiler;
        BranchProfile accumulated;
        std::thread worker;

        std::mutex mutex;
        std::condition_variable idle;
        uint64_t submitted = 0;
        uint64_t completed = 0;
        uint64_t chunks = 0;
    };

    void workerLoop(Shard &shard);

    WhisperConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace whisper

#endif // WHISPER_SERVICE_CHUNK_PROFILER_HH
