/**
 * @file
 * whisperd's operational metrics, built on util/stats accumulators:
 * ingest throughput, training latency per epoch, bundle
 * acceptance, and the per-epoch validation-MPKI movement of the
 * deployed configuration.
 */

#ifndef WHISPER_SERVICE_SERVICE_METRICS_HH
#define WHISPER_SERVICE_SERVICE_METRICS_HH

#include <atomic>
#include <cstdint>
#include <ostream>

#include "util/stats.hh"
#include "util/table.hh"

namespace whisper
{

/** Counters and accumulators for one service run. */
struct ServiceMetrics
{
    // -- ingest (written by the consumer loop) --
    uint64_t chunksIngested = 0;
    uint64_t recordsIngested = 0;
    uint64_t filesIngested = 0;
    RunningStat ingestRate; //!< records/sec, one sample per chunk

    // -- training --
    uint64_t epochsRun = 0;
    RunningStat trainLatency;    //!< seconds per training epoch
    RunningStat hintsPerEpoch;   //!< bundle size per epoch
    RatioStat bundleAcceptance;  //!< accepted / proposed
    /** Validation MPKI of the deployed configuration after each
     * epoch minus before it (negative = the swap helped). */
    RunningStat deployedMpkiDelta;

    // -- robustness: corrupt-input handling --
    uint64_t chunksSkipped = 0;   //!< damaged trace frames dropped
    uint64_t recordsSkipped = 0;  //!< records lost to dropped frames
    uint64_t readRetries = 0;     //!< transient read errors retried
    uint64_t corruptFiles = 0;    //!< files rejected (bad header/body)

    // -- robustness: training supervision --
    uint64_t tasksRequeued = 0;     //!< deadline-expired reclaims
    uint64_t taskFailures = 0;      //!< training attempts that threw
    uint64_t branchesDegraded = 0;  //!< fell back to TAGE-SC-L
    uint64_t workersDied = 0;       //!< training workers lost

    // -- robustness: journal durability --
    uint64_t journalAppendFailures = 0; //!< torn/failed appends
    uint64_t journalRepairs = 0;        //!< in-place tail truncations
    uint64_t journalResumedEpoch = 0;   //!< epoch restored at startup
    uint64_t journalRecoveredRecords = 0; //!< generations replayed

    void
    report(std::ostream &os) const
    {
        TableReporter t("whisperd service metrics");
        t.setHeader({"metric", "value"});
        auto num = [](double v) {
            return TableReporter::formatDouble(v, 2);
        };
        t.addRow({"chunks ingested",
                  std::to_string(chunksIngested)});
        t.addRow({"records ingested",
                  std::to_string(recordsIngested)});
        t.addRow({"files ingested", std::to_string(filesIngested)});
        t.addRow({"ingest rate (records/s, mean)",
                  num(ingestRate.mean())});
        t.addRow({"training epochs", std::to_string(epochsRun)});
        t.addRow({"training latency (s, mean)",
                  num(trainLatency.mean())});
        t.addRow({"training latency (s, max)",
                  num(trainLatency.max())});
        t.addRow({"hints per epoch (mean)",
                  num(hintsPerEpoch.mean())});
        t.addRow({"bundles accepted",
                  std::to_string(bundleAcceptance.hits())});
        t.addRow({"bundles rejected",
                  std::to_string(bundleAcceptance.misses())});
        t.addRow({"acceptance ratio",
                  num(bundleAcceptance.ratio())});
        t.addRow({"deployed MPKI delta per epoch (mean)",
                  num(deployedMpkiDelta.mean())});
        t.addRow({"chunks skipped (corrupt)",
                  std::to_string(chunksSkipped)});
        t.addRow({"records skipped (corrupt)",
                  std::to_string(recordsSkipped)});
        t.addRow({"read retries", std::to_string(readRetries)});
        t.addRow({"files rejected", std::to_string(corruptFiles)});
        t.addRow({"training tasks requeued",
                  std::to_string(tasksRequeued)});
        t.addRow({"training task failures",
                  std::to_string(taskFailures)});
        t.addRow({"branches degraded to baseline",
                  std::to_string(branchesDegraded)});
        t.addRow({"training workers died",
                  std::to_string(workersDied)});
        t.addRow({"journal append failures",
                  std::to_string(journalAppendFailures)});
        t.addRow({"journal repairs",
                  std::to_string(journalRepairs)});
        t.addRow({"journal resumed epoch",
                  std::to_string(journalResumedEpoch)});
        t.addRow({"journal generations recovered",
                  std::to_string(journalRecoveredRecords)});
        t.print(os);
    }
};

} // namespace whisper

#endif // WHISPER_SERVICE_SERVICE_METRICS_HH
