/**
 * @file
 * whisperd's operational metrics, built on util/stats accumulators:
 * ingest throughput, training latency per epoch, bundle
 * acceptance, and the per-epoch validation-MPKI movement of the
 * deployed configuration.
 *
 * A multi-tenant service additionally reports one metrics row per
 * application (ingested/dropped chunks, epochs, train latency,
 * deployment state) plus an aggregate roll-up — the `tenants` map
 * below, rendered by dump(). Every cell of every table is rendered
 * explicitly, zeros included: a tenant that never trained prints
 * "0", not a blank cell, so the tables stay machine-parseable when
 * the per-tenant dimension makes them wide.
 */

#ifndef WHISPER_SERVICE_SERVICE_METRICS_HH
#define WHISPER_SERVICE_SERVICE_METRICS_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/stats.hh"
#include "util/table.hh"

namespace whisper
{

/** One tenant's slice of the service metrics (a value snapshot, so
 * callers can hold it without racing the live counters). */
struct TenantMetrics
{
    // -- ingest / routing --
    uint64_t chunksRouted = 0;
    uint64_t recordsRouted = 0;
    uint64_t chunksDropped = 0;    //!< maxQueuedChunks quota breaches
    uint64_t recordsDropped = 0;
    uint64_t trainJobsDropped = 0; //!< maxPendingTrainJobs breaches

    // -- training --
    uint64_t epochsRun = 0;
    double trainLatencyMean = 0.0; //!< seconds per epoch
    double trainLatencyMax = 0.0;
    double hintsPerEpochMean = 0.0;

    // -- warm-start / screening --
    uint64_t warmHits = 0;          //!< branches emitted from seeds
    uint64_t coldSearches = 0;      //!< branches searched cold
    uint64_t warmFallbackEpochs = 0; //!< epochs retrained cold
    double branchTrainMsMean = 0.0; //!< per-branch train time
    double branchTrainMsMax = 0.0;

    // -- deployment --
    uint64_t bundlesAccepted = 0;
    uint64_t bundlesRejected = 0;
    uint64_t rollbacks = 0;
    uint64_t deployedEpoch = 0;
    uint64_t hintsDeployed = 0;
    double lastValidationAccuracy = 0.0;

    // -- durability --
    uint64_t journalResumedEpoch = 0;
    uint64_t journalRecoveredRecords = 0;

    // -- training supervision --
    uint64_t tasksRequeued = 0;
    uint64_t taskFailures = 0;
    uint64_t branchesDegraded = 0;
    uint64_t workersDied = 0;
};

/** Counters and accumulators for one service run. */
struct ServiceMetrics
{
    // -- ingest (written by the consumer loop) --
    uint64_t chunksIngested = 0;
    uint64_t recordsIngested = 0;
    uint64_t filesIngested = 0;
    RunningStat ingestRate; //!< records/sec, one sample per chunk

    // -- training --
    uint64_t epochsRun = 0;
    RunningStat trainLatency;    //!< seconds per training epoch
    RunningStat hintsPerEpoch;   //!< bundle size per epoch
    RatioStat bundleAcceptance;  //!< accepted / proposed
    /** Warm-start / sparse-correlation screening: branches whose
     * previous-epoch seed cleared the gates vs branches searched
     * cold, epochs where a regressing warm candidate forced a cold
     * retrain, and the per-branch train time (ms, one sample = one
     * epoch's mean). */
    uint64_t warmHits = 0;
    uint64_t coldSearches = 0;
    uint64_t warmFallbackEpochs = 0;
    RunningStat branchTrainMs;
    /** Validation MPKI of the deployed configuration after each
     * epoch minus before it (negative = the swap helped). */
    RunningStat deployedMpkiDelta;

    // -- robustness: corrupt-input handling --
    uint64_t chunksSkipped = 0;   //!< damaged trace frames dropped
    uint64_t recordsSkipped = 0;  //!< records lost to dropped frames
    uint64_t readRetries = 0;     //!< transient read errors retried
    uint64_t corruptFiles = 0;    //!< files rejected (bad header/body)

    // -- robustness: training supervision --
    uint64_t tasksRequeued = 0;     //!< deadline-expired reclaims
    uint64_t taskFailures = 0;      //!< training attempts that threw
    uint64_t branchesDegraded = 0;  //!< fell back to TAGE-SC-L
    uint64_t workersDied = 0;       //!< training workers lost

    // -- robustness: journal durability --
    uint64_t journalAppendFailures = 0; //!< torn/failed appends
    uint64_t journalRepairs = 0;        //!< in-place tail truncations
    uint64_t journalResumedEpoch = 0;   //!< epoch restored at startup
    uint64_t journalRecoveredRecords = 0; //!< generations replayed

    // -- multi-tenancy --
    uint64_t tenantsRegistered = 0;
    /** Chunks whose app matched no registered tenant (dropped). */
    uint64_t unknownAppChunks = 0;
    /** Per-application metrics, keyed by app name. Empty in
     * single-tenant runs. */
    std::map<std::string, TenantMetrics> tenants;

    /** Render the aggregate table plus (when tenants exist) the
     * per-tenant table with an ALL roll-up row. Every counter is
     * printed, zero or not — no blank cells. */
    void
    dump(std::ostream &os) const
    {
        TableReporter t("whisperd service metrics");
        t.setHeader({"metric", "value"});
        auto num = [](double v) {
            return TableReporter::formatDouble(v, 2);
        };
        t.addRow({"chunks ingested",
                  std::to_string(chunksIngested)});
        t.addRow({"records ingested",
                  std::to_string(recordsIngested)});
        t.addRow({"files ingested", std::to_string(filesIngested)});
        t.addRow({"ingest rate (records/s, mean)",
                  num(ingestRate.mean())});
        t.addRow({"training epochs", std::to_string(epochsRun)});
        t.addRow({"training latency (s, mean)",
                  num(trainLatency.mean())});
        t.addRow({"training latency (s, max)",
                  num(trainLatency.max())});
        t.addRow({"hints per epoch (mean)",
                  num(hintsPerEpoch.mean())});
        t.addRow({"warm-start hits (branches)",
                  std::to_string(warmHits)});
        t.addRow({"cold searches (branches)",
                  std::to_string(coldSearches)});
        t.addRow({"warm-fallback epochs",
                  std::to_string(warmFallbackEpochs)});
        t.addRow({"branch train time (ms, mean)",
                  TableReporter::formatDouble(branchTrainMs.mean(),
                                              3)});
        t.addRow({"branch train time (ms, max)",
                  TableReporter::formatDouble(branchTrainMs.max(),
                                              3)});
        t.addRow({"bundles accepted",
                  std::to_string(bundleAcceptance.hits())});
        t.addRow({"bundles rejected",
                  std::to_string(bundleAcceptance.misses())});
        t.addRow({"acceptance ratio",
                  num(bundleAcceptance.ratio())});
        t.addRow({"deployed MPKI delta per epoch (mean)",
                  num(deployedMpkiDelta.mean())});
        t.addRow({"chunks skipped (corrupt)",
                  std::to_string(chunksSkipped)});
        t.addRow({"records skipped (corrupt)",
                  std::to_string(recordsSkipped)});
        t.addRow({"read retries", std::to_string(readRetries)});
        t.addRow({"files rejected", std::to_string(corruptFiles)});
        t.addRow({"training tasks requeued",
                  std::to_string(tasksRequeued)});
        t.addRow({"training task failures",
                  std::to_string(taskFailures)});
        t.addRow({"branches degraded to baseline",
                  std::to_string(branchesDegraded)});
        t.addRow({"training workers died",
                  std::to_string(workersDied)});
        t.addRow({"journal append failures",
                  std::to_string(journalAppendFailures)});
        t.addRow({"journal repairs",
                  std::to_string(journalRepairs)});
        t.addRow({"journal resumed epoch",
                  std::to_string(journalResumedEpoch)});
        t.addRow({"journal generations recovered",
                  std::to_string(journalRecoveredRecords)});
        if (tenantsRegistered > 0) {
            t.addRow({"tenants registered",
                      std::to_string(tenantsRegistered)});
            t.addRow({"unknown-app chunks dropped",
                      std::to_string(unknownAppChunks)});
        }
        t.print(os);

        if (!tenants.empty())
            dumpTenants(os);
    }

    /** Back-compat alias for dump(). */
    void report(std::ostream &os) const { dump(os); }

  private:
    void
    dumpTenants(std::ostream &os) const
    {
        TableReporter t("whisperd per-tenant metrics");
        t.setHeader({"tenant", "chunks", "records", "drop-chunks",
                     "drop-jobs", "epochs", "accept", "reject",
                     "rollbk", "deploy-epoch", "hints", "train-s",
                     "warm", "cold", "fallbk", "br-ms",
                     "val-acc%", "resume-epoch"});
        TenantMetrics all;
        auto row = [&](const std::string &name,
                       const TenantMetrics &m) {
            t.addRow({name, std::to_string(m.chunksRouted),
                      std::to_string(m.recordsRouted),
                      std::to_string(m.chunksDropped),
                      std::to_string(m.trainJobsDropped),
                      std::to_string(m.epochsRun),
                      std::to_string(m.bundlesAccepted),
                      std::to_string(m.bundlesRejected),
                      std::to_string(m.rollbacks),
                      std::to_string(m.deployedEpoch),
                      std::to_string(m.hintsDeployed),
                      TableReporter::formatDouble(
                          m.trainLatencyMean, 3),
                      std::to_string(m.warmHits),
                      std::to_string(m.coldSearches),
                      std::to_string(m.warmFallbackEpochs),
                      TableReporter::formatDouble(
                          m.branchTrainMsMean, 3),
                      TableReporter::formatDouble(
                          100.0 * m.lastValidationAccuracy, 3),
                      std::to_string(m.journalResumedEpoch)});
        };
        double latencySum = 0.0;
        double accuracySum = 0.0;
        double branchMsSum = 0.0;
        for (const auto &[name, m] : tenants) {
            row(name, m);
            all.warmHits += m.warmHits;
            all.coldSearches += m.coldSearches;
            all.warmFallbackEpochs += m.warmFallbackEpochs;
            all.branchTrainMsMax = std::max(all.branchTrainMsMax,
                                            m.branchTrainMsMax);
            branchMsSum += m.branchTrainMsMean;
            all.chunksRouted += m.chunksRouted;
            all.recordsRouted += m.recordsRouted;
            all.chunksDropped += m.chunksDropped;
            all.recordsDropped += m.recordsDropped;
            all.trainJobsDropped += m.trainJobsDropped;
            all.epochsRun += m.epochsRun;
            all.bundlesAccepted += m.bundlesAccepted;
            all.bundlesRejected += m.bundlesRejected;
            all.rollbacks += m.rollbacks;
            all.deployedEpoch =
                std::max(all.deployedEpoch, m.deployedEpoch);
            all.hintsDeployed += m.hintsDeployed;
            all.journalResumedEpoch = std::max(
                all.journalResumedEpoch, m.journalResumedEpoch);
            latencySum += m.trainLatencyMean;
            accuracySum += m.lastValidationAccuracy;
        }
        size_t n = tenants.size();
        all.trainLatencyMean = n ? latencySum / n : 0.0;
        all.lastValidationAccuracy = n ? accuracySum / n : 0.0;
        all.branchTrainMsMean = n ? branchMsSum / n : 0.0;
        row("ALL", all);
        t.print(os);
    }
};

} // namespace whisper

#endif // WHISPER_SERVICE_SERVICE_METRICS_HH
