/**
 * @file
 * whisperd's operational metrics, built on util/stats accumulators:
 * ingest throughput, training latency per epoch, bundle
 * acceptance, and the per-epoch validation-MPKI movement of the
 * deployed configuration.
 */

#ifndef WHISPER_SERVICE_SERVICE_METRICS_HH
#define WHISPER_SERVICE_SERVICE_METRICS_HH

#include <atomic>
#include <cstdint>
#include <ostream>

#include "util/stats.hh"
#include "util/table.hh"

namespace whisper
{

/** Counters and accumulators for one service run. */
struct ServiceMetrics
{
    // -- ingest (written by the consumer loop) --
    uint64_t chunksIngested = 0;
    uint64_t recordsIngested = 0;
    uint64_t filesIngested = 0;
    RunningStat ingestRate; //!< records/sec, one sample per chunk

    // -- training --
    uint64_t epochsRun = 0;
    RunningStat trainLatency;    //!< seconds per training epoch
    RunningStat hintsPerEpoch;   //!< bundle size per epoch
    RatioStat bundleAcceptance;  //!< accepted / proposed
    /** Validation MPKI of the deployed configuration after each
     * epoch minus before it (negative = the swap helped). */
    RunningStat deployedMpkiDelta;

    void
    report(std::ostream &os) const
    {
        TableReporter t("whisperd service metrics");
        t.setHeader({"metric", "value"});
        auto num = [](double v) {
            return TableReporter::formatDouble(v, 2);
        };
        t.addRow({"chunks ingested",
                  std::to_string(chunksIngested)});
        t.addRow({"records ingested",
                  std::to_string(recordsIngested)});
        t.addRow({"files ingested", std::to_string(filesIngested)});
        t.addRow({"ingest rate (records/s, mean)",
                  num(ingestRate.mean())});
        t.addRow({"training epochs", std::to_string(epochsRun)});
        t.addRow({"training latency (s, mean)",
                  num(trainLatency.mean())});
        t.addRow({"training latency (s, max)",
                  num(trainLatency.max())});
        t.addRow({"hints per epoch (mean)",
                  num(hintsPerEpoch.mean())});
        t.addRow({"bundles accepted",
                  std::to_string(bundleAcceptance.hits())});
        t.addRow({"bundles rejected",
                  std::to_string(bundleAcceptance.misses())});
        t.addRow({"acceptance ratio",
                  num(bundleAcceptance.ratio())});
        t.addRow({"deployed MPKI delta per epoch (mean)",
                  num(deployedMpkiDelta.mean())});
        t.print(os);
    }
};

} // namespace whisper

#endif // WHISPER_SERVICE_SERVICE_METRICS_HH
