#include "service/fault_injection.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

namespace whisper
{

namespace
{

/** SplitMix64: cheap, seedable, stateless-per-call mixing. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Split "a:b" (both optional) around the first ':'. */
void
splitPair(const std::string &value, std::string &a, std::string &b)
{
    size_t colon = value.find(':');
    if (colon == std::string::npos) {
        a = value;
        b.clear();
    } else {
        a = value.substr(0, colon);
        b = value.substr(colon + 1);
    }
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 0);
    return end && *end == '\0';
}

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::reset()
{
    enabled_ = false;
    flipChunks_ = false;
    flipPeriod_ = 100;
    flipSeed_ = 0x77486973ULL;
    framesSeen_ = 0;
    failReads_ = 0;
    readsAttempted_ = 0;
    tornAppend_ = 0;
    stallEnabled_ = false;
    stallWorker_ = 0;
    stallMs_ = 400;
    stallDone_ = false;
    killEnabled_ = false;
    killWorker_ = 1;
    killDone_ = false;
    failTrainEnabled_ = false;
    failTrainIndex_ = 0;
    failTrainAttempts_ = 1'000'000;
    wireCorruptPeriod_ = 0;
    wireTearPeriod_ = 0;
    wireKillPeriod_ = 0;
    wireStallPeriod_ = 0;
    wireStallMs_ = 50;
    wireSends_ = 0;
    listenerRestartAfter_ = 0;
    listenerChunks_ = 0;
    listenerRestartDone_ = false;
    framesCorrupted_ = 0;
    readsFailed_ = 0;
    writesTorn_ = 0;
    workerStalls_ = 0;
    workerKills_ = 0;
    trainFailures_ = 0;
    wireCorrupted_ = 0;
    wireTorn_ = 0;
    wireKills_ = 0;
    wireStalled_ = 0;
    listenerRestarts_ = 0;
}

bool
FaultInjector::configure(const std::string &spec, std::string *error)
{
    reset();
    if (spec.empty())
        return true;

    auto fail = [&](const std::string &msg) {
        reset();
        if (error)
            *error = msg;
        return false;
    };

    size_t at = 0;
    while (at <= spec.size()) {
        size_t comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(at, comma - at);
        at = comma + 1;
        if (token.empty())
            continue;

        std::string key = token, value;
        size_t eq = token.find('=');
        if (eq != std::string::npos) {
            key = token.substr(0, eq);
            value = token.substr(eq + 1);
        }

        if (key == "flip-chunks") {
            flipChunks_ = true;
            if (!value.empty()) {
                // Accept either a period ("100") or a rate ("0.01").
                double rate = std::atof(value.c_str());
                if (rate <= 0.0)
                    return fail("flip-chunks: bad value '" + value +
                                "'");
                flipPeriod_ =
                    rate < 1.0
                        ? static_cast<uint64_t>(std::lround(1.0 / rate))
                        : static_cast<uint64_t>(std::lround(rate));
                if (flipPeriod_ == 0)
                    flipPeriod_ = 1;
            }
        } else if (key == "fail-read") {
            failReads_ = 2;
            if (!value.empty() && !parseU64(value, failReads_))
                return fail("fail-read: bad value '" + value + "'");
        } else if (key == "truncate-journal") {
            tornAppend_ = 2;
            if (!value.empty() && !parseU64(value, tornAppend_))
                return fail("truncate-journal: bad value '" + value +
                            "'");
            if (tornAppend_ == 0)
                return fail("truncate-journal: value is 1-based");
        } else if (key == "stall-worker") {
            stallEnabled_ = true;
            if (!value.empty()) {
                std::string id, ms;
                splitPair(value, id, ms);
                uint64_t v = 0;
                if (!id.empty()) {
                    if (!parseU64(id, v))
                        return fail("stall-worker: bad id '" + id +
                                    "'");
                    stallWorker_ = static_cast<unsigned>(v);
                }
                if (!ms.empty()) {
                    if (!parseU64(ms, stallMs_))
                        return fail("stall-worker: bad ms '" + ms +
                                    "'");
                }
            }
        } else if (key == "kill-worker") {
            killEnabled_ = true;
            if (!value.empty()) {
                uint64_t v = 0;
                if (!parseU64(value, v))
                    return fail("kill-worker: bad id '" + value +
                                "'");
                killWorker_ = static_cast<unsigned>(v);
            }
        } else if (key == "fail-train") {
            failTrainEnabled_ = true;
            if (!value.empty()) {
                std::string idx, n;
                splitPair(value, idx, n);
                uint64_t v = 0;
                if (!idx.empty()) {
                    if (!parseU64(idx, v))
                        return fail("fail-train: bad index '" + idx +
                                    "'");
                    failTrainIndex_ = static_cast<size_t>(v);
                }
                if (!n.empty()) {
                    if (!parseU64(n, v))
                        return fail("fail-train: bad count '" + n +
                                    "'");
                    failTrainAttempts_ = static_cast<unsigned>(v);
                }
            }
        } else if (key == "wire-corrupt") {
            wireCorruptPeriod_ = 8;
            if (!value.empty() &&
                (!parseU64(value, wireCorruptPeriod_) ||
                 wireCorruptPeriod_ == 0)) {
                return fail("wire-corrupt: bad period '" + value +
                            "'");
            }
        } else if (key == "wire-tear") {
            wireTearPeriod_ = 16;
            if (!value.empty() &&
                (!parseU64(value, wireTearPeriod_) ||
                 wireTearPeriod_ == 0)) {
                return fail("wire-tear: bad period '" + value + "'");
            }
        } else if (key == "wire-kill") {
            wireKillPeriod_ = 16;
            if (!value.empty() &&
                (!parseU64(value, wireKillPeriod_) ||
                 wireKillPeriod_ == 0)) {
                return fail("wire-kill: bad period '" + value + "'");
            }
        } else if (key == "wire-stall") {
            wireStallPeriod_ = 32;
            if (!value.empty()) {
                std::string period, ms;
                splitPair(value, period, ms);
                if (!period.empty() &&
                    (!parseU64(period, wireStallPeriod_) ||
                     wireStallPeriod_ == 0)) {
                    return fail("wire-stall: bad period '" + period +
                                "'");
                }
                if (!ms.empty() && !parseU64(ms, wireStallMs_))
                    return fail("wire-stall: bad ms '" + ms + "'");
            }
        } else if (key == "restart-listener") {
            listenerRestartAfter_ = 8;
            if (!value.empty() &&
                (!parseU64(value, listenerRestartAfter_) ||
                 listenerRestartAfter_ == 0)) {
                return fail("restart-listener: bad count '" + value +
                            "'");
            }
        } else if (key == "seed") {
            if (!parseU64(value, flipSeed_))
                return fail("seed: bad value '" + value + "'");
        } else {
            return fail("unknown fault token '" + key + "'");
        }
    }
    enabled_ = true;
    return true;
}

bool
FaultInjector::corruptFrame(void *data, size_t bytes)
{
    if (!enabled_ || !flipChunks_ || bytes == 0)
        return false;
    uint64_t frame = framesSeen_.fetch_add(1);
    // Periodic and phase-0, so even a short stream sees at least one
    // corrupted frame — a probabilistic 1% would usually see none.
    if (frame % flipPeriod_ != 0)
        return false;
    auto *p = static_cast<unsigned char *>(data);
    uint64_t r = mix64(flipSeed_ ^ frame);
    p[r % bytes] ^= static_cast<unsigned char>(1u << ((r >> 32) & 7));
    framesCorrupted_.fetch_add(1);
    return true;
}

bool
FaultInjector::failRead()
{
    if (!enabled_ || failReads_ == 0)
        return false;
    if (readsAttempted_.fetch_add(1) >= failReads_)
        return false;
    readsFailed_.fetch_add(1);
    return true;
}

FaultInjector::WritePlan
FaultInjector::journalWritePlan(uint64_t appendIndex)
{
    if (!enabled_ || tornAppend_ == 0 ||
        appendIndex + 1 != tornAppend_) {
        return WritePlan::Full;
    }
    writesTorn_.fetch_add(1);
    return WritePlan::Torn;
}

void
FaultInjector::maybeStallWorker(unsigned worker)
{
    if (!enabled_ || !stallEnabled_ || worker != stallWorker_)
        return;
    if (stallDone_.exchange(true))
        return;
    workerStalls_.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(stallMs_));
}

bool
FaultInjector::shouldKillWorker(unsigned worker)
{
    if (!enabled_ || !killEnabled_ || worker != killWorker_)
        return false;
    if (killDone_.exchange(true))
        return false;
    workerKills_.fetch_add(1);
    return true;
}

FaultInjector::WireSendPlan
FaultInjector::wireSendPlan(unsigned attempt)
{
    bool any = wireCorruptPeriod_ || wireTearPeriod_ ||
               wireKillPeriod_ || wireStallPeriod_;
    if (!enabled_ || !any || attempt != 1)
        return WireSendPlan::Normal;
    // The index advances on first attempts only, so a chunk that was
    // faulted once retransmits clean — every injected fault makes
    // progress instead of livelocking.
    uint64_t n = wireSends_.fetch_add(1);
    // Distinct phase offsets so co-armed tokens with common factors
    // do not all claim the same send (folded by each period so a
    // period-1 token still fires on every send).
    if (wireCorruptPeriod_ &&
        n % wireCorruptPeriod_ == 0 % wireCorruptPeriod_) {
        wireCorrupted_.fetch_add(1);
        return WireSendPlan::CorruptPayload;
    }
    if (wireTearPeriod_ &&
        n % wireTearPeriod_ == 1 % wireTearPeriod_) {
        wireTorn_.fetch_add(1);
        return WireSendPlan::TearAndDrop;
    }
    if (wireKillPeriod_ &&
        n % wireKillPeriod_ == 2 % wireKillPeriod_) {
        wireKills_.fetch_add(1);
        return WireSendPlan::KillAfterSend;
    }
    if (wireStallPeriod_ &&
        n % wireStallPeriod_ == 3 % wireStallPeriod_) {
        wireStalled_.fetch_add(1);
        return WireSendPlan::StallMidFrame;
    }
    return WireSendPlan::Normal;
}

bool
FaultInjector::shouldRestartListener()
{
    if (!enabled_ || listenerRestartAfter_ == 0)
        return false;
    if (listenerChunks_.fetch_add(1) + 1 < listenerRestartAfter_)
        return false;
    if (listenerRestartDone_.exchange(true))
        return false;
    listenerRestarts_.fetch_add(1);
    return true;
}

bool
FaultInjector::failTraining(size_t taskIndex, unsigned attempt)
{
    if (!enabled_ || !failTrainEnabled_ ||
        taskIndex != failTrainIndex_ ||
        attempt > failTrainAttempts_) {
        return false;
    }
    trainFailures_.fetch_add(1);
    return true;
}

} // namespace whisper
