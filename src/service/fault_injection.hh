/**
 * @file
 * Deterministic fault injection for whisperd's recovery paths.
 *
 * Every fault-tolerance mechanism in the service — CRC-framed chunk
 * skipping, read retry/backoff, journal torn-write repair, training
 * supervision with requeue and degradation — is exercised by tests
 * and the demo script through this harness rather than hoped for.
 * A fault spec is a comma-separated token list installed process-wide
 * (e.g. via `whisperd --fault-spec`):
 *
 *   flip-chunks[=P]       corrupt every P-th trace frame read by the
 *                         streaming reader, starting with the first
 *                         (P<1 is treated as a rate: P=1/rate).
 *                         Default P=100 (~1% of frames).
 *   fail-read[=N]         the first N frame reads fail transiently
 *                         (exercises bounded retry/backoff). Default 2.
 *   truncate-journal[=N]  the N-th journal append (1-based) is torn:
 *                         only half the record reaches the file.
 *                         Default 2.
 *   stall-worker[=ID:MS]  training worker ID stalls MS milliseconds
 *                         on its first claimed task. Default 0:400.
 *   kill-worker[=ID]      training worker ID dies right after
 *                         claiming its first task. Default 1.
 *   fail-train[=IDX:N]    training of work item IDX throws on its
 *                         first N attempts (N large = always, which
 *                         degrades the branch). Default 0:1000000.
 *   seed=N                RNG seed for bit-flip positions.
 *
 * Wire-layer faults (client side, applied to the FIRST transmission
 * attempt of every P-th chunk so a retransmission always makes
 * progress; see src/net/):
 *
 *   wire-corrupt[=P]      flip one payload byte after the CRC is
 *                         computed (server detects the mismatch and
 *                         answers ERROR(BadCrc); the client must
 *                         retransmit). Default P=8.
 *   wire-tear[=P]         send only half the frame, then hard-close
 *                         the socket (mid-frame connection kill seen
 *                         by the server as a torn stream). Default 16.
 *   wire-kill[=P]         send the whole frame, then close before
 *                         reading the ack (exercises idempotent
 *                         duplicate-ack on retransmit). Default 16.
 *   wire-stall[=P:MS]     stall MS milliseconds between the header
 *                         and the payload bytes (slow-loris writer;
 *                         a stall beyond the server's idle timeout
 *                         gets the connection reaped). Default 32:50.
 *   restart-listener[=N]  server side: after the N-th ingested chunk
 *                         the listener and every connection are torn
 *                         down and re-opened once (clients must
 *                         reconnect and retransmit). Default 8.
 *
 * All decisions are deterministic functions of the spec plus
 * event counters, so a failing run replays exactly.
 */

#ifndef WHISPER_SERVICE_FAULT_INJECTION_HH
#define WHISPER_SERVICE_FAULT_INJECTION_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace whisper
{

/** Process-wide deterministic fault injector. Disabled (all hooks
 * no-ops) until configure() installs a non-empty spec. */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Install @p spec ("" disables). @return false and fill
     * @p error on an unknown token or malformed value. */
    bool configure(const std::string &spec,
                   std::string *error = nullptr);
    /** Remove all faults and zero the counters. */
    void reset();

    bool enabled() const { return enabled_; }

    // ---- hooks (called from production code paths) ----

    /** Trace-frame payload just read from disk; may flip bits in
     * place. @return true when the frame was corrupted. */
    bool corruptFrame(void *data, size_t bytes);

    /** @return true to simulate a transient read error (the caller
     * should back off and retry). */
    bool failRead();

    /** What should happen to journal append number @p appendIndex
     * (0-based): Full = write everything, Torn = stop half-way. */
    enum class WritePlan
    {
        Full,
        Torn
    };
    WritePlan journalWritePlan(uint64_t appendIndex);

    /** Stall hook for training worker @p worker (sleeps inline). */
    void maybeStallWorker(unsigned worker);

    /** @return true when training worker @p worker should die now. */
    bool shouldKillWorker(unsigned worker);

    /** @return true when the @p attempt-th (1-based) attempt at work
     * item @p taskIndex should fail. */
    bool failTraining(size_t taskIndex, unsigned attempt);

    // ---- wire-layer hooks (see src/net/) ----

    /** What the client should do to the frame it is about to send.
     * Only first attempts (@p attempt == 1) are ever faulted; the
     * per-token periods advance on first attempts only, so the
     * decision is a deterministic function of the send index. */
    enum class WireSendPlan
    {
        Normal,
        CorruptPayload, //!< flip a payload byte after CRC
        TearAndDrop,    //!< send half the frame, close the socket
        KillAfterSend,  //!< send fully, close before the ack
        StallMidFrame,  //!< sleep wireStallMs() mid-frame
    };
    WireSendPlan wireSendPlan(unsigned attempt);
    uint64_t wireStallMs() const { return wireStallMs_; }

    /** Called by the server once per accepted chunk; @return true
     * exactly once, when the restart-listener threshold is hit. */
    bool shouldRestartListener();

    // ---- observability ----
    uint64_t framesCorrupted() const { return framesCorrupted_; }
    uint64_t readsFailed() const { return readsFailed_; }
    uint64_t writesTorn() const { return writesTorn_; }
    uint64_t workerStalls() const { return workerStalls_; }
    uint64_t workerKills() const { return workerKills_; }
    uint64_t trainFailures() const { return trainFailures_; }
    uint64_t wireFramesCorrupted() const { return wireCorrupted_; }
    uint64_t wireFramesTorn() const { return wireTorn_; }
    uint64_t wireConnKills() const { return wireKills_; }
    uint64_t wireStalls() const { return wireStalled_; }
    uint64_t listenerRestarts() const { return listenerRestarts_; }

  private:
    FaultInjector() = default;

    bool enabled_ = false;

    // flip-chunks
    bool flipChunks_ = false;
    uint64_t flipPeriod_ = 100;
    uint64_t flipSeed_ = 0x77486973ULL; // "wHis"
    std::atomic<uint64_t> framesSeen_{0};

    // fail-read
    uint64_t failReads_ = 0;
    std::atomic<uint64_t> readsAttempted_{0};

    // truncate-journal
    uint64_t tornAppend_ = 0; //!< 1-based; 0 = disabled

    // stall-worker
    bool stallEnabled_ = false;
    unsigned stallWorker_ = 0;
    uint64_t stallMs_ = 400;
    std::atomic<bool> stallDone_{false};

    // kill-worker
    bool killEnabled_ = false;
    unsigned killWorker_ = 1;
    std::atomic<bool> killDone_{false};

    // fail-train
    bool failTrainEnabled_ = false;
    size_t failTrainIndex_ = 0;
    unsigned failTrainAttempts_ = 1'000'000;

    // wire faults (periods advance on first-attempt sends only)
    uint64_t wireCorruptPeriod_ = 0; //!< 0 = disabled
    uint64_t wireTearPeriod_ = 0;
    uint64_t wireKillPeriod_ = 0;
    uint64_t wireStallPeriod_ = 0;
    uint64_t wireStallMs_ = 50;
    std::atomic<uint64_t> wireSends_{0};
    uint64_t listenerRestartAfter_ = 0; //!< chunks; 0 = disabled
    std::atomic<uint64_t> listenerChunks_{0};
    std::atomic<bool> listenerRestartDone_{false};

    std::atomic<uint64_t> framesCorrupted_{0};
    std::atomic<uint64_t> readsFailed_{0};
    std::atomic<uint64_t> writesTorn_{0};
    std::atomic<uint64_t> workerStalls_{0};
    std::atomic<uint64_t> workerKills_{0};
    std::atomic<uint64_t> trainFailures_{0};
    std::atomic<uint64_t> wireCorrupted_{0};
    std::atomic<uint64_t> wireTorn_{0};
    std::atomic<uint64_t> wireKills_{0};
    std::atomic<uint64_t> wireStalled_{0};
    std::atomic<uint64_t> listenerRestarts_{0};
};

} // namespace whisper

#endif // WHISPER_SERVICE_FAULT_INJECTION_HH
