#include "service/tenant_router.hh"

#include <chrono>

#include "core/whisper_predictor.hh"
#include "sim/experiment.hh"
#include "util/logging.hh"

namespace whisper
{

// --------------------------------------------------------------------
// FairShareScheduler
// --------------------------------------------------------------------

FairShareScheduler::Entry *
FairShareScheduler::entryFor(Tenant *tenant)
{
    for (auto &e : ring_)
        if (e->tenant == tenant)
            return e.get();
    return nullptr;
}

void
FairShareScheduler::add(Tenant *tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (entryFor(tenant))
        return;
    auto entry = std::make_unique<Entry>();
    entry->tenant = tenant;
    ring_.push_back(std::move(entry));
}

bool
FairShareScheduler::submit(TrainJob job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry *e = entryFor(job.tenant);
    whisper_assert(e != nullptr,
                   "tenant submitted before scheduler add()");
    if (closed_)
        return false;
    size_t cap = std::max<size_t>(1, job.tenant->quota.maxPendingTrainJobs);
    if (e->jobs.size() >= cap)
        return false;
    e->jobs.push_back(std::move(job));
    ready_.notify_one();
    return true;
}

bool
FairShareScheduler::next(TrainJob &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        bool anyJobs = false;
        for (size_t scanned = 0; scanned < ring_.size(); ++scanned) {
            Entry &e = *ring_[cursor_ % ring_.size()];
            unsigned cap =
                std::max(1u, e.tenant->quota.maxInFlightTrainJobs);
            if (!e.jobs.empty())
                anyJobs = true;
            if (!e.jobs.empty() && e.inFlight < cap) {
                if (!e.charged) {
                    // One quantum per service visit: weight W buys W
                    // unit-cost jobs before the cursor moves on.
                    e.deficit +=
                        std::max(1u, e.tenant->quota.weight);
                    e.charged = true;
                }
                if (e.deficit >= 1.0) {
                    e.deficit -= 1.0;
                    out = std::move(e.jobs.front());
                    e.jobs.pop_front();
                    ++e.inFlight;
                    if (e.deficit < 1.0 || e.jobs.empty()) {
                        // Visit exhausted; an emptied queue forfeits
                        // leftover credit (no hoarding while idle).
                        e.charged = false;
                        if (e.jobs.empty())
                            e.deficit = 0.0;
                        cursor_ = (cursor_ + 1) % ring_.size();
                    }
                    return true;
                }
            } else if (e.jobs.empty()) {
                e.deficit = 0.0;
                e.charged = false;
            }
            // At-cap tenants keep their credit; they are skipped,
            // not punished, until done() frees a slot.
            cursor_ = (cursor_ + 1) % ring_.size();
        }
        if (!anyJobs && closed_)
            return false;
        ready_.wait(lock);
    }
}

void
FairShareScheduler::done(Tenant *tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry *e = entryFor(tenant);
    whisper_assert(e != nullptr && e->inFlight > 0);
    --e->inFlight;
    ready_.notify_all();
}

void
FairShareScheduler::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
}

size_t
FairShareScheduler::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &e : ring_)
        n += e->jobs.size();
    return n;
}

// --------------------------------------------------------------------
// TenantRouter
// --------------------------------------------------------------------

TenantRouter::TenantRouter(const TenantRouterConfig &cfg,
                           const TruthTableCache &cache)
    : cfg_(cfg), cache_(cache)
{
}

TenantRouter::~TenantRouter()
{
    finish();
}

Tenant *
TenantRouter::addTenant(const std::string &name)
{
    return addTenant(name, cfg_.defaultQuota);
}

Tenant *
TenantRouter::addTenant(const std::string &name,
                        const TenantQuota &quota)
{
    Tenant *tenant = registry_.add(
        name, quota, cfg_.whisper, makeTage(cfg_.tageBudgetKB),
        cfg_.profilePolicy, cfg_.journalDir);
    scheduler_.add(tenant);
    if (started_)
        tenant->worker =
            std::thread([this, tenant] { absorberLoop(*tenant); });
    return tenant;
}

void
TenantRouter::start()
{
    whisper_assert(!started_ && !finished_);
    started_ = true;
    for (Tenant *tenant : registry_.all())
        tenant->worker =
            std::thread([this, tenant] { absorberLoop(*tenant); });
    unsigned dispatchers = std::max(1u, cfg_.trainDispatchers);
    dispatchers_.reserve(dispatchers);
    for (unsigned i = 0; i < dispatchers; ++i)
        dispatchers_.emplace_back(
            [this, i] { dispatcherLoop(i); });
}

bool
TenantRouter::offer(TraceChunk chunk)
{
    Tenant *tenant = registry_.find(chunk.app);
    if (!tenant) {
        if (!cfg_.autoRegister) {
            ++unknownAppChunks_;
            return false;
        }
        tenant = addTenant(chunk.app);
    }
    size_t records = chunk.records.size();
    if (!tenant->queue.tryPush(std::move(chunk))) {
        tenant->withCounters([&](Tenant::Counters &c) {
            ++c.chunksDropped;
            c.recordsDropped += records;
        });
        return false;
    }
    tenant->withCounters([&](Tenant::Counters &c) {
        ++c.chunksRouted;
        c.recordsRouted += records;
    });
    return true;
}

TenantRouter::OfferOutcome
TenantRouter::tryOffer(TraceChunk chunk)
{
    Tenant *tenant = registry_.find(chunk.app);
    if (!tenant) {
        if (!cfg_.autoRegister) {
            ++unknownAppChunks_;
            return OfferOutcome::UnknownApp;
        }
        tenant = addTenant(chunk.app);
    }
    size_t records = chunk.records.size();
    if (!tenant->queue.tryPush(std::move(chunk))) {
        // Not a drop: the caller reports backpressure and the client
        // retransmits, so no counter moves here.
        return OfferOutcome::Backpressure;
    }
    tenant->withCounters([&](Tenant::Counters &c) {
        ++c.chunksRouted;
        c.recordsRouted += records;
    });
    return OfferOutcome::Accepted;
}

void
TenantRouter::runFromQueue(BoundedQueue<TraceChunk> &queue)
{
    if (!started_)
        start();
    using clock = std::chrono::steady_clock;
    auto runStart = clock::now();
    uint64_t recordsAtStart = recordsIngested_;
    TraceChunk chunk;
    while (queue.pop(chunk)) {
        recordsIngested_ += chunk.records.size();
        ++chunksIngested_;
        offer(std::move(chunk));
        double elapsed =
            std::chrono::duration<double>(clock::now() - runStart)
                .count();
        if (elapsed > 0.0)
            ingestRate_.add(
                static_cast<double>(recordsIngested_ -
                                    recordsAtStart) /
                elapsed);
    }
    finish();
}

void
TenantRouter::run(const std::string &chunkDir)
{
    BoundedQueue<TraceChunk> queue(cfg_.queueCapacity);
    std::atomic<uint64_t> sequence{0};
    ChunkIngestor ingestor(ChunkIngestor::listTraceFiles(chunkDir),
                           cfg_.chunkRecords, queue, sequence);
    ingestor.start();
    std::thread closer([&] {
        ingestor.join();
        queue.close();
    });

    runFromQueue(queue);

    closer.join();
    filesIngested_ += ingestor.filesIngested();
    chunksSkipped_ += ingestor.framesSkipped();
    recordsSkipped_ += ingestor.recordsSkipped();
    readRetries_ += ingestor.readRetries();
    corruptFiles_ += ingestor.errors().size();
    for (const std::string &bad : ingestor.errors())
        whisper_warn("whisperd: could not ingest ", bad);
}

void
TenantRouter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (Tenant *tenant : registry_.all())
        tenant->queue.close();
    if (!started_)
        return;
    for (Tenant *tenant : registry_.all())
        if (tenant->worker.joinable())
            tenant->worker.join();
    scheduler_.close();
    for (std::thread &d : dispatchers_)
        d.join();
}

void
TenantRouter::absorberLoop(Tenant &tenant)
{
    TraceChunk chunk;
    while (tenant.queue.pop(chunk))
        absorb(tenant, std::move(chunk));
    // Stream over: flush a final partial epoch over anything not yet
    // trained on (the newest chunk stays held out for validation).
    if (tenant.chunksSinceTrain > 0 && tenant.validationChunk)
        enqueueEpochJob(tenant);
}

void
TenantRouter::absorb(Tenant &tenant, TraceChunk chunk)
{
    // The previous validation window becomes training data now that
    // a newer one exists to validate on (same holdout discipline as
    // the single-tenant service).
    if (tenant.validationChunk) {
        TraceChunk prev = std::move(*tenant.validationChunk);
        tenant.validationChunk.reset();
        if (!prev.records.empty()) {
            tenant.placementWindow = prev.records;
            BranchProfile part =
                tenant.profiler.profileChunk(prev.records);
            tenant.accumulated.mergeFrom(part);
            ++tenant.chunksSinceTrain;
        }
    }
    tenant.validationChunk = std::move(chunk);

    if (tenant.chunksSinceTrain >= cfg_.epochChunks)
        enqueueEpochJob(tenant);
}

void
TenantRouter::enqueueEpochJob(Tenant &tenant)
{
    TrainJob job;
    job.tenant = &tenant;
    job.jobIndex = ++tenant.jobsIssued;
    job.profile = tenant.accumulated;
    job.validation = tenant.validationChunk->records;
    job.placement = tenant.placementWindow;
    if (!scheduler_.submit(std::move(job))) {
        // Quota breach: the epoch is skipped, not lost — absorbed
        // chunks stay in the accumulated profile, so the tenant's
        // next job trains on strictly more data.
        tenant.withCounters(
            [](Tenant::Counters &c) { ++c.trainJobsDropped; });
    }
    tenant.chunksSinceTrain = 0;
}

void
TenantRouter::dispatcherLoop(unsigned dispatcherIndex)
{
    (void)dispatcherIndex;
    TrainingPoolOptions opts;
    opts.workers = cfg_.trainWorkers;
    opts.taskDeadlineMs = cfg_.trainTaskDeadlineMs;
    opts.maxAttempts = cfg_.trainMaxAttempts;
    TrainingPool pool(opts);

    TrainJob job;
    while (scheduler_.next(job)) {
        trainEpoch(pool, job);
        scheduler_.done(job.tenant);
        // Release the snapshot before blocking for the next job.
        job.profile = BranchProfile(cfg_.whisper);
        job.validation.clear();
        job.placement.clear();
    }
}

PredictorRunStats
TenantRouter::evalOnRecords(const std::vector<BranchRecord> &records,
                            const HintBundle *bundle) const
{
    ChunkSource source(records);
    std::unique_ptr<BranchPredictor> predictor;
    if (bundle) {
        predictor = std::make_unique<WhisperPredictor>(
            makeTage(cfg_.tageBudgetKB), cfg_.whisper, cache_,
            bundle->hints, bundle->placements);
    } else {
        predictor = makeTage(cfg_.tageBudgetKB);
    }
    return runPredictor(source, *predictor);
}

void
TenantRouter::trainEpoch(TrainingPool &pool, TrainJob &job)
{
    Tenant &tenant = *job.tenant;
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();

    WhisperTrainer trainer(cfg_.whisper, cache_);
    if (cfg_.trainPrune) {
        ScreenConfig screen = cfg_.screen;
        screen.enabled = true;
        trainer.setScreen(screen);
    }

    HintStore::Snapshot incumbent = tenant.store.current();
    const std::vector<TrainedHint> *warmSeeds =
        cfg_.warmStart && incumbent ? &incumbent->bundle.hints
                                    : nullptr;

    TrainingStats stats;
    HintBundle candidate;
    candidate.hints =
        pool.train(trainer, job.profile, warmSeeds, &stats);

    HintInjector injector(cfg_.injector);
    auto placeCandidate = [&](HintBundle &bundle) {
        if (job.placement.empty())
            return;
        ChunkSource placementSource(job.placement);
        bundle.placements =
            injector.place(placementSource, bundle.hints);
    };
    placeCandidate(candidate);

    PredictorRunStats incumbentStats = evalOnRecords(
        job.validation, incumbent ? &incumbent->bundle : nullptr);
    PredictorRunStats candidateStats =
        evalOnRecords(job.validation, &candidate);

    // Warm-start safety valve (same contract as Whisperd): a warm
    // candidate that is worse than the incumbent on the holdout —
    // stale formulas pinning the search — forces a cold retrain of
    // this epoch.
    uint64_t warmFallback = 0;
    if (warmSeeds && stats.warmHits > 0 &&
        candidateStats.accuracy() + cfg_.warmFallbackMargin <
            incumbentStats.accuracy()) {
        warmFallback = 1;
        TrainingStats coldStats;
        HintBundle coldCandidate;
        coldCandidate.hints =
            pool.train(trainer, job.profile, nullptr, &coldStats);
        placeCandidate(coldCandidate);
        candidate = std::move(coldCandidate);
        candidateStats = evalOnRecords(job.validation, &candidate);
        stats.formulasScored += coldStats.formulasScored;
        stats.branchSecondsSum += coldStats.branchSecondsSum;
        stats.branchSecondsMax = std::max(stats.branchSecondsMax,
                                          coldStats.branchSecondsMax);
        stats.warmHits = 0;
        stats.coldSearches = coldStats.coldSearches;
        stats.hintsEmitted = coldStats.hintsEmitted;
    }

    double trainSecs =
        std::chrono::duration<double>(clock::now() - t0).count();

    size_t hints = candidate.hints.size();
    bool accepted = tenant.store.propose(
        std::move(candidate), candidateStats.accuracy(),
        incumbentStats.accuracy(), cfg_.acceptMargin);

    const SupervisionStats &sup = pool.supervision();
    double deployedAccuracy = accepted ? candidateStats.accuracy()
                                       : incumbentStats.accuracy();
    tenant.withCounters([&](Tenant::Counters &c) {
        ++c.epochsRun;
        c.trainLatency.add(trainSecs);
        c.hintsPerEpoch.add(static_cast<double>(hints));
        c.warmHits += stats.warmHits;
        c.coldSearches += stats.coldSearches;
        c.warmFallbackEpochs += warmFallback;
        if (stats.branchesConsidered > 0)
            c.branchTrainMs.add(
                1e3 * stats.branchSecondsSum /
                static_cast<double>(stats.branchesConsidered));
        c.lastValidationAccuracy = deployedAccuracy;
        c.tasksRequeued += sup.tasksRequeued;
        c.taskFailures += sup.taskFailures;
        c.branchesDegraded += sup.branchesDegraded;
        c.workersDied += sup.workersDied;
    });
    {
        std::lock_guard<std::mutex> lock(aggMutex_);
        aggTrainLatency_.add(trainSecs);
        aggHintsPerEpoch_.add(static_cast<double>(hints));
        aggDeployedMpkiDelta_.add(
            (accepted ? candidateStats.mpki()
                      : incumbentStats.mpki()) -
            incumbentStats.mpki());
    }

    if (cfg_.verbose) {
        whisper_inform(
            "whisperd[", tenant.name, "] epoch ", job.jobIndex, ": ",
            hints, " hints in ",
            TableReporter::formatDouble(trainSecs, 2), "s — "
            "candidate acc ",
            TableReporter::formatDouble(
                100.0 * candidateStats.accuracy(), 4),
            "% vs incumbent ",
            TableReporter::formatDouble(
                100.0 * incumbentStats.accuracy(), 4),
            "% -> ",
            accepted ? "ACCEPTED (deployed epoch "
                     : "REJECTED (deployed epoch ",
            tenant.store.epoch(), ")");
    }
}

ServiceMetrics
TenantRouter::metrics() const
{
    ServiceMetrics m;
    m.chunksIngested = chunksIngested_;
    m.recordsIngested = recordsIngested_;
    m.filesIngested = filesIngested_;
    m.ingestRate = ingestRate_;
    m.chunksSkipped = chunksSkipped_;
    m.recordsSkipped = recordsSkipped_;
    m.readRetries = readRetries_;
    m.corruptFiles = corruptFiles_;
    m.tenantsRegistered = registry_.size();
    m.unknownAppChunks = unknownAppChunks_;
    {
        std::lock_guard<std::mutex> lock(aggMutex_);
        m.trainLatency = aggTrainLatency_;
        m.hintsPerEpoch = aggHintsPerEpoch_;
        m.deployedMpkiDelta = aggDeployedMpkiDelta_;
    }
    for (const Tenant *tenant : registry_.all()) {
        TenantMetrics tm = tenant->metrics();
        m.epochsRun += tm.epochsRun;
        m.bundleAcceptance.add(
            tm.bundlesAccepted,
            tm.bundlesAccepted + tm.bundlesRejected);
        m.tasksRequeued += tm.tasksRequeued;
        m.taskFailures += tm.taskFailures;
        m.branchesDegraded += tm.branchesDegraded;
        m.workersDied += tm.workersDied;
        m.warmHits += tm.warmHits;
        m.coldSearches += tm.coldSearches;
        m.warmFallbackEpochs += tm.warmFallbackEpochs;
        if (tm.epochsRun > 0)
            m.branchTrainMs.add(tm.branchTrainMsMean);
        m.journalAppendFailures += tenant->journal.appendFailures();
        m.journalRepairs += tenant->journal.repairs();
        m.journalResumedEpoch = std::max(m.journalResumedEpoch,
                                         tm.journalResumedEpoch);
        m.journalRecoveredRecords += tm.journalRecoveredRecords;
        m.tenants.emplace(tenant->name, std::move(tm));
    }
    return m;
}

} // namespace whisper
