/**
 * @file
 * Supervised parallel per-branch formula search for whisperd.
 *
 * Algorithm 1 is embarrassingly parallel across branches: each hard
 * branch's history-length scan and randomized formula testing touch
 * only that branch's sample tables plus the shared read-only truth
 * table cache. The pool distributes the hard-branch list over N
 * worker threads through a shared ready-queue (work stealing:
 * whichever worker finishes first grabs the next branch, so skewed
 * per-branch costs balance automatically) and writes each result
 * into a per-branch slot. Because branches are assembled back in
 * list order — and trainBranch is deterministic — the emitted bundle
 * is bit-identical for any worker count: N=4 must equal N=1.
 *
 * A long-running service also has to survive its own workers. With a
 * task deadline configured, a supervisor thread watches per-task
 * heartbeats (claim timestamps) and requeues any task whose worker
 * stalled or died past the deadline; duplicate completions are
 * harmless because training is deterministic, and only the first
 * finisher's result is kept. A branch whose training throws
 * repeatedly is degraded — dropped from the bundle so the predictor
 * falls back to plain TAGE-SC-L for it — rather than wedging the
 * epoch.
 */

#ifndef WHISPER_SERVICE_TRAINING_POOL_HH
#define WHISPER_SERVICE_TRAINING_POOL_HH

#include <cstdint>
#include <vector>

#include "core/profile.hh"
#include "core/whisper_trainer.hh"

namespace whisper
{

/** Knobs for the pool's supervision layer. */
struct TrainingPoolOptions
{
    unsigned workers = 4;
    /** Milliseconds a claimed task may run before the supervisor
     * requeues it (stuck/dead worker recovery). 0 = no supervisor
     * thread: tasks may run forever, as in the offline tools. */
    uint64_t taskDeadlineMs = 0;
    /** Attempts (initial + retries) before a branch is degraded. */
    unsigned maxAttempts = 3;
    /** Supervisor polling cadence. */
    uint64_t superviseIntervalMs = 20;
};

/** What the supervision layer had to do during one train() call. */
struct SupervisionStats
{
    uint64_t tasksRequeued = 0;    //!< deadline-expired reclaims
    uint64_t taskFailures = 0;     //!< training attempts that threw
    uint64_t branchesDegraded = 0; //!< dropped to TAGE-SC-L fallback
    uint64_t workersDied = 0;      //!< workers that exited early
};

/** Work-stealing, supervised wrapper around trainBranch. */
class TrainingPool
{
  public:
    explicit TrainingPool(unsigned workers);
    explicit TrainingPool(const TrainingPoolOptions &options);

    /**
     * Train hints for every hard branch of @p profile — the exact
     * result of WhisperTrainer::train(), computed on the pool.
     * Branches whose training failed maxAttempts times are omitted
     * (graceful degradation); see supervision() for the tally.
     */
    std::vector<TrainedHint> train(const WhisperTrainer &trainer,
                                   const BranchProfile &profile,
                                   TrainingStats *stats
                                   = nullptr) const;

    /**
     * Warm-started variant — the exact result of
     * WhisperTrainer::train(profile, warmSeeds): each branch with a
     * seed in @p warmSeeds (typically the previous epoch's deployed
     * hints) re-scores it first and skips the cold search when it
     * still clears the gates. Deterministic and bit-identical for
     * any worker count, like the cold path.
     */
    std::vector<TrainedHint>
    train(const WhisperTrainer &trainer, const BranchProfile &profile,
          const std::vector<TrainedHint> *warmSeeds,
          TrainingStats *stats) const;

    /** Supervision tally of the most recent train() call. */
    const SupervisionStats &supervision() const { return supervision_; }

    unsigned workers() const { return options_.workers; }
    const TrainingPoolOptions &options() const { return options_; }

  private:
    TrainingPoolOptions options_;
    mutable SupervisionStats supervision_;
};

} // namespace whisper

#endif // WHISPER_SERVICE_TRAINING_POOL_HH
