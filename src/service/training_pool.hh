/**
 * @file
 * Parallel per-branch formula search for whisperd.
 *
 * Algorithm 1 is embarrassingly parallel across branches: each hard
 * branch's history-length scan and randomized formula testing touch
 * only that branch's sample tables plus the shared read-only truth
 * table cache. The pool distributes the hard-branch list over N
 * worker threads through a shared atomic cursor (work stealing:
 * whichever worker finishes first grabs the next branch, so skewed
 * per-branch costs balance automatically) and writes each result
 * into a per-branch slot. Because branches are assembled back in
 * list order, the emitted bundle is bit-identical for any worker
 * count — N=4 must equal N=1.
 */

#ifndef WHISPER_SERVICE_TRAINING_POOL_HH
#define WHISPER_SERVICE_TRAINING_POOL_HH

#include <vector>

#include "core/profile.hh"
#include "core/whisper_trainer.hh"

namespace whisper
{

/** Work-stealing wrapper around WhisperTrainer::trainBranch. */
class TrainingPool
{
  public:
    explicit TrainingPool(unsigned workers);

    /**
     * Train hints for every hard branch of @p profile — the exact
     * result of WhisperTrainer::train(), computed on the pool.
     */
    std::vector<TrainedHint> train(const WhisperTrainer &trainer,
                                   const BranchProfile &profile,
                                   TrainingStats *stats
                                   = nullptr) const;

    unsigned workers() const { return workers_; }

  private:
    unsigned workers_;
};

} // namespace whisper

#endif // WHISPER_SERVICE_TRAINING_POOL_HH
