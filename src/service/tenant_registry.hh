/**
 * @file
 * Per-application tenant state for the multi-tenant whisperd.
 *
 * The paper's deployment unit is one application: profiles, trained
 * formulas, and hint bundles are all keyed to a single binary, and
 * hints only generalize across inputs of the *same* app
 * (Figs. 17/18). A fleet-scale service therefore cannot funnel every
 * ingested chunk into one profile/bundle stream — correlation
 * structure is app-specific, so mixing tenants would corrupt every
 * profile involved. Each Tenant here is a full per-app pipeline:
 *
 *   bounded chunk queue (quota: maxQueuedChunks, drop-and-count)
 *     -> streaming ChunkProfiler + accumulated BranchProfile
 *     -> epoch train jobs (quota: maxPendingTrainJobs)
 *     -> RCU-style versioned HintStore, independently deployable
 *        and rollback-able, journaled to its own per-app WAL
 *
 * The TenantRegistry owns the tenants, opens each tenant's journal
 * (journalDir/<app>.journal) at registration, and hands out stable
 * pointers — a Tenant never moves or disappears while the service
 * runs, which is what lets the router and scheduler keep raw
 * pointers without reference counting.
 */

#ifndef WHISPER_SERVICE_TENANT_REGISTRY_HH
#define WHISPER_SERVICE_TENANT_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.hh"
#include "service/bounded_queue.hh"
#include "service/chunk_profiler.hh"
#include "service/hint_journal.hh"
#include "service/hint_store.hh"
#include "service/service_metrics.hh"
#include "service/trace_stream.hh"

namespace whisper
{

/** Per-tenant resource limits and scheduling weight. */
struct TenantQuota
{
    /** Chunks buffered between the router and this tenant's
     * absorber; a full queue drops the chunk (and counts it) instead
     * of letting one tenant's backlog block the shared ingest path. */
    size_t maxQueuedChunks = 16;
    /** Training epochs queued in the fair-share scheduler; a breach
     * drops the job (the absorbed chunks stay in the profile, so the
     * next epoch trains on strictly more data — nothing is lost, the
     * tenant just trains less often under pressure). */
    size_t maxPendingTrainJobs = 4;
    /** Concurrent training jobs for this tenant. Keep at 1 for
     * deterministic per-tenant epoch ordering (the isolation
     * guarantee relies on per-tenant FIFO execution). */
    unsigned maxInFlightTrainJobs = 1;
    /** Deficit-round-robin weight: a tenant with weight W is served
     * W epoch jobs per scheduler round. */
    unsigned weight = 1;
};

/** One snapshot-able training epoch for a tenant: a pure function of
 * its inputs, so the dispatcher may run jobs from different tenants
 * in any interleaving without breaking per-tenant determinism. */
struct TrainJob
{
    class Tenant *tenant = nullptr;
    uint64_t jobIndex = 0; //!< per-tenant monotonic sequence
    BranchProfile profile; //!< accumulated profile at the boundary
    std::vector<BranchRecord> validation; //!< held-out newest chunk
    std::vector<BranchRecord> placement;  //!< brhint placement window
};

/** Full per-application pipeline state. */
class Tenant
{
  public:
    Tenant(std::string name, const TenantQuota &quota,
           const WhisperConfig &whisper,
           std::unique_ptr<BranchPredictor> baseline,
           const ChunkProfiler::Options &profileOpt);

    const std::string name;
    TenantQuota quota;

    /** Router -> absorber handoff (capacity = maxQueuedChunks). */
    BoundedQueue<TraceChunk> queue;

    // -- absorber-thread state (only the tenant's worker touches
    //    these after start) --
    ChunkProfiler profiler;
    BranchProfile accumulated;
    std::optional<TraceChunk> validationChunk;
    std::vector<BranchRecord> placementWindow;
    unsigned chunksSinceTrain = 0;
    uint64_t jobsIssued = 0;
    std::thread worker;

    // -- deployment (store is internally thread-safe; the journal is
    //    only written through the store) --
    HintStore store;
    HintJournal journal;

    /** Open journalDir/<name>.journal, replay it into the store, and
     * journal every later deployment. Safe to skip (no journalDir =
     * no durability). */
    void openJournal(const std::string &journalDir);

    /** Mutable operational counters, guarded by their own mutex
     * (router, absorber, and dispatcher all report here). */
    struct Counters
    {
        uint64_t chunksRouted = 0;
        uint64_t recordsRouted = 0;
        uint64_t chunksDropped = 0;  //!< maxQueuedChunks breaches
        uint64_t recordsDropped = 0;
        uint64_t trainJobsDropped = 0; //!< maxPendingTrainJobs breaches
        uint64_t epochsRun = 0;
        RunningStat trainLatency;
        RunningStat hintsPerEpoch;
        uint64_t warmHits = 0;
        uint64_t coldSearches = 0;
        uint64_t warmFallbackEpochs = 0;
        RunningStat branchTrainMs;
        double lastValidationAccuracy = 0.0;
        uint64_t journalResumedEpoch = 0;
        uint64_t journalRecoveredRecords = 0;
        uint64_t tasksRequeued = 0;
        uint64_t taskFailures = 0;
        uint64_t branchesDegraded = 0;
        uint64_t workersDied = 0;
    };

    /** Run @p fn with the counters locked. */
    template <typename Fn>
    void
    withCounters(Fn &&fn)
    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        fn(counters_);
    }

    /** Copy of the counters plus store-derived deployment state. */
    TenantMetrics metrics() const;

  private:
    mutable std::mutex countersMutex_;
    Counters counters_;
};

/** Owner of all tenants; registration order is iteration order. */
class TenantRegistry
{
  public:
    /** Create and register a tenant; fatal on duplicate names.
     * @return stable pointer, valid for the registry's lifetime. */
    Tenant *add(const std::string &name, const TenantQuota &quota,
                const WhisperConfig &whisper,
                std::unique_ptr<BranchPredictor> baseline,
                const ChunkProfiler::Options &profileOpt,
                const std::string &journalDir = "");

    /** @return the tenant named @p name, or nullptr. */
    Tenant *find(const std::string &name);
    const Tenant *find(const std::string &name) const;

    /** All tenants in registration order. */
    std::vector<Tenant *> all();
    std::vector<const Tenant *> all() const;

    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
};

} // namespace whisper

#endif // WHISPER_SERVICE_TENANT_REGISTRY_HH
