#include "service/chunk_profiler.hh"

#include "util/logging.hh"

namespace whisper
{

ChunkProfiler::ChunkProfiler(const WhisperConfig &cfg,
                             std::unique_ptr<BranchPredictor> baseline,
                             const Options &opt)
    : cfg_(cfg), opt_(opt), baseline_(std::move(baseline)),
      lengths_(geometricLengths(cfg)),
      history_(2 * cfg.maxHistoryLength)
{
    whisper_assert(baseline_ != nullptr);
    for (unsigned len : lengths_)
        history_.addFoldedView(len, cfg_.hashWidth);
}

void
ChunkProfiler::trackHard(uint64_t pc)
{
    hard_.insert(pc);
}

BranchProfile
ChunkProfiler::profileChunk(const std::vector<BranchRecord> &records)
{
    BranchProfile profile(cfg_);

    for (const BranchRecord &rec : records) {
        // During warm-up the baseline and history still train, but
        // nothing is recorded into the profile.
        bool warm = recordsProfiled_ >= opt_.statsWarmupRecords;
        ++recordsProfiled_;
        if (warm)
            profile.totalInstructions +=
                static_cast<uint64_t>(rec.instGap) + 1;
        if (!rec.isConditional()) {
            baseline_->onRecord(rec);
            continue;
        }

        bool pred = baseline_->predict(rec.pc, rec.taken);
        baseline_->update(rec.pc, rec.taken, pred);
        baseline_->onRecord(rec);

        if (!warm) {
            history_.push(rec.taken);
            continue;
        }

        ++profile.totalConditionals;
        BranchProfileEntry &e = profile.entry(rec.pc);
        ++e.executions;
        if (rec.taken)
            ++e.takenCount;
        bool mispredicted = pred != rec.taken;
        if (mispredicted) {
            ++e.baselineMispredicts;
            ++profile.totalMispredicts;
            if (opt_.adaptivePromotion &&
                !hard_.contains(rec.pc) &&
                hard_.size() < opt_.maxHardBranches) {
                uint64_t &misses = lifetimeMispredicts_[rec.pc];
                if (++misses >= opt_.promoteMispredicts)
                    hard_.insert(rec.pc);
            }
        }

        if (hard_.contains(rec.pc)) {
            if (!e.hard)
                profile.markHard(rec.pc);
            for (size_t l = 0; l < lengths_.size(); ++l)
                e.byLength[l].record(history_.foldedValue(l),
                                     rec.taken);
            e.raw4.record(
                static_cast<unsigned>(history_.lastBits(4)),
                rec.taken);
            e.raw8.record(
                static_cast<unsigned>(history_.lastBits(8)),
                rec.taken);
        }
        history_.push(rec.taken);
    }
    return profile;
}

ShardedProfiler::ShardedProfiler(const WhisperConfig &cfg,
                                 unsigned shards,
                                 const BaselineFactory &baseline,
                                 const ChunkProfiler::Options &opt,
                                 size_t queueCapacity)
    : cfg_(cfg)
{
    whisper_assert(shards > 0);
    for (unsigned s = 0; s < shards; ++s) {
        shards_.push_back(std::make_unique<Shard>(
            cfg, baseline(), opt, queueCapacity));
    }
    for (auto &shard : shards_) {
        Shard *s = shard.get();
        shard->worker = std::thread([this, s] { workerLoop(*s); });
    }
}

ShardedProfiler::~ShardedProfiler()
{
    for (auto &shard : shards_)
        shard->queue.close();
    for (auto &shard : shards_)
        if (shard->worker.joinable())
            shard->worker.join();
}

void
ShardedProfiler::workerLoop(Shard &shard)
{
    TraceChunk chunk;
    while (shard.queue.pop(chunk)) {
        BranchProfile partial =
            shard.profiler.profileChunk(chunk.records);
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.accumulated.mergeFrom(partial);
            ++shard.completed;
            ++shard.chunks;
        }
        shard.idle.notify_all();
    }
}

void
ShardedProfiler::submit(TraceChunk chunk)
{
    Shard &shard = *shards_[chunk.sequence % shards_.size()];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        ++shard.submitted;
    }
    bool pushed = shard.queue.push(std::move(chunk));
    whisper_assert(pushed, "submit() after shutdown");
}

void
ShardedProfiler::drain()
{
    for (auto &shard : shards_) {
        std::unique_lock<std::mutex> lock(shard->mutex);
        shard->idle.wait(lock, [&] {
            return shard->completed == shard->submitted;
        });
    }
}

BranchProfile
ShardedProfiler::aggregate()
{
    BranchProfile out(cfg_);
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        out.mergeFrom(shard->accumulated);
    }
    return out;
}

uint64_t
ShardedProfiler::recordsProfiled() const
{
    uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard->profiler.recordsProfiled();
    return sum;
}

uint64_t
ShardedProfiler::chunksProfiled() const
{
    uint64_t sum = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        sum += shard->chunks;
    }
    return sum;
}

} // namespace whisper
