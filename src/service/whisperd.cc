#include "service/whisperd.hh"

#include <chrono>

#include "sim/experiment.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

TrainingPoolOptions
poolOptions(const WhisperdConfig &cfg)
{
    TrainingPoolOptions opts;
    opts.workers = cfg.trainWorkers;
    opts.taskDeadlineMs = cfg.trainTaskDeadlineMs;
    opts.maxAttempts = cfg.trainMaxAttempts;
    return opts;
}

} // namespace

Whisperd::Whisperd(const WhisperdConfig &cfg,
                   const TruthTableCache &cache)
    : cfg_(cfg), cache_(cache), pool_(poolOptions(cfg))
{
    BaselineFactory baseline = [kb = cfg_.tageBudgetKB] {
        return makeTage(kb);
    };
    shards_ = std::make_unique<ShardedProfiler>(
        cfg_.whisper, cfg_.profileShards, baseline,
        cfg_.profilePolicy,
        std::max<size_t>(1, cfg_.queueCapacity / 2));

    if (!cfg_.journalPath.empty()) {
        std::vector<VersionedHintBundle> replayed;
        HintJournal::RecoveryInfo recovery;
        IoStatus st =
            journal_.open(cfg_.journalPath, replayed, &recovery);
        if (!st) {
            whisper_warn("whisperd: journal disabled: ", st.message);
        } else {
            size_t kept = store_.restore(std::move(replayed));
            store_.attachJournal(&journal_);
            metrics_.journalResumedEpoch = store_.epoch();
            metrics_.journalRecoveredRecords = kept;
            if (recovery.tailBytesDiscarded > 0) {
                whisper_warn("whisperd: journal had a torn tail (",
                             recovery.tailBytesDiscarded,
                             " bytes discarded, file compacted)");
            }
            if (cfg_.verbose && kept > 0) {
                whisper_inform("whisperd: resumed from journal at "
                               "epoch ",
                               store_.epoch(), " (", kept,
                               " generations)");
            }
        }
    }
}

Whisperd::~Whisperd() = default;

void
Whisperd::run(const std::string &chunkDir)
{
    BoundedQueue<TraceChunk> queue(cfg_.queueCapacity);
    std::atomic<uint64_t> sequence{0};
    ChunkIngestor ingestor(ChunkIngestor::listTraceFiles(chunkDir),
                           cfg_.chunkRecords, queue, sequence);
    ingestor.start();

    // The ingestor runs concurrently; close the queue once it has
    // pushed everything so the consumer loop drains and returns.
    std::thread closer([&] {
        ingestor.join();
        queue.close();
    });

    runFromQueue(queue);

    closer.join();
    metrics_.filesIngested += ingestor.filesIngested();
    metrics_.chunksSkipped += ingestor.framesSkipped();
    metrics_.recordsSkipped += ingestor.recordsSkipped();
    metrics_.readRetries += ingestor.readRetries();
    metrics_.corruptFiles += ingestor.errors().size();
    for (const std::string &bad : ingestor.errors())
        whisper_warn("whisperd: could not ingest ", bad);
}

void
Whisperd::runFromQueue(BoundedQueue<TraceChunk> &queue)
{
    using clock = std::chrono::steady_clock;
    auto runStart = clock::now();
    uint64_t recordsAtStart = metrics_.recordsIngested;
    TraceChunk chunk;
    while (queue.pop(chunk)) {
        metrics_.recordsIngested += chunk.records.size();
        ++metrics_.chunksIngested;

        // The previous validation window becomes training data now
        // that a newer one exists to validate on.
        if (validationChunk_)
            absorb(std::move(*validationChunk_));
        validationChunk_ = std::move(chunk);

        if (chunksSinceTrain_ >= cfg_.epochChunks)
            trainEpoch();

        // Sustained ingest throughput including profiling and
        // training stalls — the number a capacity planner wants.
        double elapsed =
            std::chrono::duration<double>(clock::now() - runStart)
                .count();
        if (elapsed > 0.0)
            metrics_.ingestRate.add(
                static_cast<double>(metrics_.recordsIngested -
                                    recordsAtStart) /
                elapsed);
    }

    // Stream over: train one last epoch on anything not yet covered
    // (the final chunk stays held out as the validation window).
    if (chunksSinceTrain_ > 0 && validationChunk_)
        trainEpoch();
}

void
Whisperd::absorb(TraceChunk chunk)
{
    // A chunk can arrive empty when every frame of its file slice
    // failed validation; folding it in would only clear the
    // placement window.
    if (chunk.records.empty())
        return;
    placementWindow_ = chunk.records;
    shards_->submit(std::move(chunk));
    ++chunksSinceTrain_;
    ++chunksAbsorbed_;
}

PredictorRunStats
Whisperd::evalOnValidation(const HintBundle *bundle)
{
    whisper_assert(validationChunk_.has_value());
    ChunkSource source(validationChunk_->records);
    std::unique_ptr<BranchPredictor> predictor;
    if (bundle) {
        predictor = std::make_unique<WhisperPredictor>(
            makeTage(cfg_.tageBudgetKB), cfg_.whisper, cache_,
            bundle->hints, bundle->placements);
    } else {
        predictor = makeTage(cfg_.tageBudgetKB);
    }
    return runPredictor(source, *predictor);
}

void
Whisperd::trainEpoch()
{
    if (!validationChunk_)
        return;
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();

    shards_->drain();
    BranchProfile profile = shards_->aggregate();

    WhisperTrainer trainer(cfg_.whisper, cache_);
    if (cfg_.trainPrune) {
        ScreenConfig screen = cfg_.screen;
        screen.enabled = true;
        trainer.setScreen(screen);
    }

    HintStore::Snapshot incumbent = store_.current();
    const std::vector<TrainedHint> *warmSeeds =
        cfg_.warmStart && incumbent ? &incumbent->bundle.hints
                                    : nullptr;

    TrainingStats stats;
    HintBundle candidate;
    candidate.hints = pool_.train(trainer, profile, warmSeeds,
                                  &stats);

    HintInjector injector(cfg_.injector);
    auto placeCandidate = [&](HintBundle &bundle) {
        if (placementWindow_.empty())
            return;
        ChunkSource placementSource(placementWindow_);
        bundle.placements =
            injector.place(placementSource, bundle.hints);
    };
    placeCandidate(candidate);

    // Validate against the incumbent on the held-out window.
    PredictorRunStats incumbentStats =
        evalOnValidation(incumbent ? &incumbent->bundle : nullptr);
    PredictorRunStats candidateStats = evalOnValidation(&candidate);

    // Warm-start safety valve: formulas inherited from the previous
    // epoch must not regress the deployed configuration. When the
    // warm candidate is *worse* than the incumbent on the holdout
    // (not merely short of beating it), retrain the epoch cold so a
    // stale neighborhood cannot pin the search.
    if (warmSeeds && stats.warmHits > 0 &&
        candidateStats.accuracy() + cfg_.warmFallbackMargin <
            incumbentStats.accuracy()) {
        ++metrics_.warmFallbackEpochs;
        TrainingStats coldStats;
        HintBundle coldCandidate;
        coldCandidate.hints =
            pool_.train(trainer, profile, nullptr, &coldStats);
        placeCandidate(coldCandidate);
        candidate = std::move(coldCandidate);
        candidateStats = evalOnValidation(&candidate);
        // The epoch paid both searches; report the combined cost.
        stats.formulasScored += coldStats.formulasScored;
        stats.branchSecondsSum += coldStats.branchSecondsSum;
        stats.branchSecondsMax = std::max(stats.branchSecondsMax,
                                          coldStats.branchSecondsMax);
        stats.warmHits = 0;
        stats.coldSearches = coldStats.coldSearches;
        stats.hintsEmitted = coldStats.hintsEmitted;
    }

    double trainSecs =
        std::chrono::duration<double>(clock::now() - t0).count();
    metrics_.trainLatency.add(trainSecs);
    metrics_.hintsPerEpoch.add(
        static_cast<double>(candidate.hints.size()));
    metrics_.warmHits += stats.warmHits;
    metrics_.coldSearches += stats.coldSearches;
    if (stats.branchesConsidered > 0)
        metrics_.branchTrainMs.add(
            1e3 * stats.branchSecondsSum /
            static_cast<double>(stats.branchesConsidered));

    size_t hints = candidate.hints.size();
    bool accepted = store_.propose(
        std::move(candidate), candidateStats.accuracy(),
        incumbentStats.accuracy(), cfg_.acceptMargin);
    metrics_.bundleAcceptance.record(accepted);
    double deployedMpkiAfter = accepted ? candidateStats.mpki()
                                        : incumbentStats.mpki();
    metrics_.deployedMpkiDelta.add(deployedMpkiAfter -
                                   incumbentStats.mpki());
    ++metrics_.epochsRun;
    chunksSinceTrain_ = 0;

    const SupervisionStats &sup = pool_.supervision();
    metrics_.tasksRequeued += sup.tasksRequeued;
    metrics_.taskFailures += sup.taskFailures;
    metrics_.branchesDegraded += sup.branchesDegraded;
    metrics_.workersDied += sup.workersDied;
    metrics_.journalAppendFailures = journal_.appendFailures();
    metrics_.journalRepairs = journal_.repairs();

    if (cfg_.verbose) {
        whisper_inform(
            "whisperd epoch ", metrics_.epochsRun, ": ", hints,
            " hints in ", TableReporter::formatDouble(trainSecs, 2),
            "s (", stats.formulasScored, " formulas, ",
            pool_.workers(), " workers) — candidate acc ",
            TableReporter::formatDouble(
                100.0 * candidateStats.accuracy(), 4),
            "% vs incumbent ",
            TableReporter::formatDouble(
                100.0 * incumbentStats.accuracy(), 4),
            "% -> ",
            accepted ? "ACCEPTED (deployed epoch "
                     : "REJECTED (deployed epoch ",
            store_.epoch(), ")");
    }
}

} // namespace whisper
