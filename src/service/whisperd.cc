#include "service/whisperd.hh"

#include <chrono>

#include "sim/experiment.hh"
#include "util/logging.hh"

namespace whisper
{

Whisperd::Whisperd(const WhisperdConfig &cfg,
                   const TruthTableCache &cache)
    : cfg_(cfg), cache_(cache), pool_(cfg.trainWorkers)
{
    BaselineFactory baseline = [kb = cfg_.tageBudgetKB] {
        return makeTage(kb);
    };
    shards_ = std::make_unique<ShardedProfiler>(
        cfg_.whisper, cfg_.profileShards, baseline,
        cfg_.profilePolicy,
        std::max<size_t>(1, cfg_.queueCapacity / 2));
}

Whisperd::~Whisperd() = default;

void
Whisperd::run(const std::string &chunkDir)
{
    BoundedQueue<TraceChunk> queue(cfg_.queueCapacity);
    std::atomic<uint64_t> sequence{0};
    ChunkIngestor ingestor(ChunkIngestor::listTraceFiles(chunkDir),
                           cfg_.chunkRecords, queue, sequence);
    ingestor.start();

    // The ingestor runs concurrently; close the queue once it has
    // pushed everything so the consumer loop drains and returns.
    std::thread closer([&] {
        ingestor.join();
        queue.close();
    });

    runFromQueue(queue);

    closer.join();
    metrics_.filesIngested += ingestor.filesIngested();
    for (const std::string &bad : ingestor.errors())
        whisper_warn("whisperd: could not ingest ", bad);
}

void
Whisperd::runFromQueue(BoundedQueue<TraceChunk> &queue)
{
    using clock = std::chrono::steady_clock;
    auto runStart = clock::now();
    uint64_t recordsAtStart = metrics_.recordsIngested;
    TraceChunk chunk;
    while (queue.pop(chunk)) {
        metrics_.recordsIngested += chunk.records.size();
        ++metrics_.chunksIngested;

        // The previous validation window becomes training data now
        // that a newer one exists to validate on.
        if (validationChunk_)
            absorb(std::move(*validationChunk_));
        validationChunk_ = std::move(chunk);

        if (chunksSinceTrain_ >= cfg_.epochChunks)
            trainEpoch();

        // Sustained ingest throughput including profiling and
        // training stalls — the number a capacity planner wants.
        double elapsed =
            std::chrono::duration<double>(clock::now() - runStart)
                .count();
        if (elapsed > 0.0)
            metrics_.ingestRate.add(
                static_cast<double>(metrics_.recordsIngested -
                                    recordsAtStart) /
                elapsed);
    }

    // Stream over: train one last epoch on anything not yet covered
    // (the final chunk stays held out as the validation window).
    if (chunksSinceTrain_ > 0 && validationChunk_)
        trainEpoch();
}

void
Whisperd::absorb(TraceChunk chunk)
{
    placementWindow_ = chunk.records;
    shards_->submit(std::move(chunk));
    ++chunksSinceTrain_;
    ++chunksAbsorbed_;
}

PredictorRunStats
Whisperd::evalOnValidation(const HintBundle *bundle)
{
    whisper_assert(validationChunk_.has_value());
    ChunkSource source(validationChunk_->records);
    std::unique_ptr<BranchPredictor> predictor;
    if (bundle) {
        predictor = std::make_unique<WhisperPredictor>(
            makeTage(cfg_.tageBudgetKB), cfg_.whisper, cache_,
            bundle->hints, bundle->placements);
    } else {
        predictor = makeTage(cfg_.tageBudgetKB);
    }
    return runPredictor(source, *predictor);
}

void
Whisperd::trainEpoch()
{
    if (!validationChunk_)
        return;
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();

    shards_->drain();
    BranchProfile profile = shards_->aggregate();

    WhisperTrainer trainer(cfg_.whisper, cache_);
    TrainingStats stats;
    HintBundle candidate;
    candidate.hints = pool_.train(trainer, profile, &stats);

    HintInjector injector(cfg_.injector);
    if (!placementWindow_.empty()) {
        ChunkSource placementSource(placementWindow_);
        candidate.placements =
            injector.place(placementSource, candidate.hints);
    }

    double trainSecs =
        std::chrono::duration<double>(clock::now() - t0).count();
    metrics_.trainLatency.add(trainSecs);
    metrics_.hintsPerEpoch.add(
        static_cast<double>(candidate.hints.size()));

    // Validate against the incumbent on the held-out window.
    HintStore::Snapshot incumbent = store_.current();
    PredictorRunStats incumbentStats =
        evalOnValidation(incumbent ? &incumbent->bundle : nullptr);
    PredictorRunStats candidateStats = evalOnValidation(&candidate);

    size_t hints = candidate.hints.size();
    bool accepted = store_.propose(
        std::move(candidate), candidateStats.accuracy(),
        incumbentStats.accuracy(), cfg_.acceptMargin);
    metrics_.bundleAcceptance.record(accepted);
    double deployedMpkiAfter = accepted ? candidateStats.mpki()
                                        : incumbentStats.mpki();
    metrics_.deployedMpkiDelta.add(deployedMpkiAfter -
                                   incumbentStats.mpki());
    ++metrics_.epochsRun;
    chunksSinceTrain_ = 0;

    if (cfg_.verbose) {
        whisper_inform(
            "whisperd epoch ", metrics_.epochsRun, ": ", hints,
            " hints in ", TableReporter::formatDouble(trainSecs, 2),
            "s (", stats.formulasScored, " formulas, ",
            pool_.workers(), " workers) — candidate acc ",
            TableReporter::formatDouble(
                100.0 * candidateStats.accuracy(), 4),
            "% vs incumbent ",
            TableReporter::formatDouble(
                100.0 * incumbentStats.accuracy(), 4),
            "% -> ",
            accepted ? "ACCEPTED (deployed epoch "
                     : "REJECTED (deployed epoch ",
            store_.epoch(), ")");
    }
}

} // namespace whisper
