#include "service/tenant_registry.hh"

#include "util/logging.hh"

namespace whisper
{

Tenant::Tenant(std::string name_, const TenantQuota &quota_,
               const WhisperConfig &whisper,
               std::unique_ptr<BranchPredictor> baseline,
               const ChunkProfiler::Options &profileOpt)
    : name(std::move(name_)), quota(quota_),
      queue(std::max<size_t>(1, quota_.maxQueuedChunks)),
      profiler(whisper, std::move(baseline), profileOpt),
      accumulated(whisper)
{
}

void
Tenant::openJournal(const std::string &journalDir)
{
    std::string path = journalDir + "/" + name + ".journal";
    std::vector<VersionedHintBundle> replayed;
    HintJournal::RecoveryInfo recovery;
    IoStatus st = journal.open(path, replayed, &recovery);
    if (!st) {
        whisper_warn("whisperd[", name,
                     "]: journal disabled: ", st.message);
        return;
    }
    size_t kept = store.restore(std::move(replayed));
    store.attachJournal(&journal);
    if (recovery.tailBytesDiscarded > 0) {
        whisper_warn("whisperd[", name, "]: journal had a torn tail (",
                     recovery.tailBytesDiscarded,
                     " bytes discarded, file compacted)");
    }
    withCounters([&](Counters &c) {
        c.journalResumedEpoch = store.epoch();
        c.journalRecoveredRecords = kept;
    });
}

TenantMetrics
Tenant::metrics() const
{
    TenantMetrics m;
    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        m.chunksRouted = counters_.chunksRouted;
        m.recordsRouted = counters_.recordsRouted;
        m.chunksDropped = counters_.chunksDropped;
        m.recordsDropped = counters_.recordsDropped;
        m.trainJobsDropped = counters_.trainJobsDropped;
        m.epochsRun = counters_.epochsRun;
        m.trainLatencyMean = counters_.trainLatency.mean();
        m.trainLatencyMax = counters_.trainLatency.max();
        m.hintsPerEpochMean = counters_.hintsPerEpoch.mean();
        m.warmHits = counters_.warmHits;
        m.coldSearches = counters_.coldSearches;
        m.warmFallbackEpochs = counters_.warmFallbackEpochs;
        m.branchTrainMsMean = counters_.branchTrainMs.mean();
        m.branchTrainMsMax = counters_.branchTrainMs.max();
        m.lastValidationAccuracy = counters_.lastValidationAccuracy;
        m.journalResumedEpoch = counters_.journalResumedEpoch;
        m.journalRecoveredRecords = counters_.journalRecoveredRecords;
        m.tasksRequeued = counters_.tasksRequeued;
        m.taskFailures = counters_.taskFailures;
        m.branchesDegraded = counters_.branchesDegraded;
        m.workersDied = counters_.workersDied;
    }
    m.bundlesAccepted = store.accepted();
    m.bundlesRejected = store.rejected();
    m.rollbacks = store.rollbacks();
    m.deployedEpoch = store.epoch();
    if (HintStore::Snapshot snap = store.current())
        m.hintsDeployed = snap->bundle.hints.size();
    return m;
}

Tenant *
TenantRegistry::add(const std::string &name, const TenantQuota &quota,
                    const WhisperConfig &whisper,
                    std::unique_ptr<BranchPredictor> baseline,
                    const ChunkProfiler::Options &profileOpt,
                    const std::string &journalDir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &t : tenants_)
        if (t->name == name)
            whisper_fatal("duplicate tenant '", name, "'");
    tenants_.push_back(std::make_unique<Tenant>(
        name, quota, whisper, std::move(baseline), profileOpt));
    Tenant *tenant = tenants_.back().get();
    if (!journalDir.empty())
        tenant->openJournal(journalDir);
    return tenant;
}

Tenant *
TenantRegistry::find(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &t : tenants_)
        if (t->name == name)
            return t.get();
    return nullptr;
}

const Tenant *
TenantRegistry::find(const std::string &name) const
{
    return const_cast<TenantRegistry *>(this)->find(name);
}

std::vector<Tenant *>
TenantRegistry::all()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Tenant *> out;
    out.reserve(tenants_.size());
    for (const auto &t : tenants_)
        out.push_back(t.get());
    return out;
}

std::vector<const Tenant *>
TenantRegistry::all() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Tenant *> out;
    out.reserve(tenants_.size());
    for (const auto &t : tenants_)
        out.push_back(t.get());
    return out;
}

size_t
TenantRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tenants_.size();
}

} // namespace whisper
