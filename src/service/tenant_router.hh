/**
 * @file
 * Multi-tenant whisperd: route a mixed-fleet chunk stream into
 * per-application pipelines sharing one training capacity.
 *
 * Topology (one TenantRouter per service process):
 *
 *   ingest queue (chunks tagged with their app name)
 *        │ router thread: lookup tenant, enforce maxQueuedChunks
 *        ▼ (tryPush; full queue = drop-and-count, never block)
 *   per-tenant chunk queue ──▶ per-tenant absorber thread:
 *        ChunkProfiler + validation-window holdout; every
 *        epochChunks boundary snapshots (profile, validation,
 *        placement) into a TrainJob
 *        │ FairShareScheduler::submit (maxPendingTrainJobs quota)
 *        ▼
 *   FairShareScheduler: deficit-round-robin across tenants with
 *        pending jobs, weight W = W jobs per round, per-tenant
 *        in-flight cap (1 by default, preserving per-tenant FIFO)
 *        │
 *        ▼
 *   dispatcher thread(s): train on a supervised TrainingPool,
 *        validate candidate vs incumbent on the tenant's held-out
 *        window, propose to the tenant's own versioned HintStore
 *        (journaled per app)
 *
 * Isolation: a TrainJob is a pure function of one tenant's chunk
 * sequence, and jobs of one tenant execute FIFO — so every tenant's
 * bundle history is byte-identical to what it gets running alone,
 * no matter what the co-tenants do (the mixed-fleet tests assert
 * exactly this). Fairness: the deficit-round-robin scheduler bounds
 * how far a noisy tenant can push ahead — with equal weights a
 * tenant streaming at 10x the rate still only trains one epoch per
 * scheduler round while others have jobs pending.
 */

#ifndef WHISPER_SERVICE_TENANT_ROUTER_HH
#define WHISPER_SERVICE_TENANT_ROUTER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/correlation_screen.hh"
#include "core/formula_trainer.hh"
#include "core/hint_injection.hh"
#include "service/tenant_registry.hh"
#include "service/training_pool.hh"
#include "sim/runner.hh"

namespace whisper
{

/** Multi-tenant service configuration (the per-app analog of
 * WhisperdConfig; one of these covers every tenant). */
struct TenantRouterConfig
{
    size_t chunkRecords = 50'000;  //!< ingest chunk granularity
    unsigned epochChunks = 4;      //!< training chunks per epoch
    unsigned trainWorkers = 4;     //!< TrainingPool width per dispatcher
    /** Dispatcher threads draining the fair-share scheduler. Each
     * owns its own supervised TrainingPool; per-tenant jobs stay
     * FIFO regardless (the scheduler's in-flight cap enforces it). */
    unsigned trainDispatchers = 1;
    size_t queueCapacity = 8;      //!< shared ingest queue bound
    unsigned tageBudgetKB = 64;    //!< baseline predictor budget
    double acceptMargin = 0.0;
    ChunkProfiler::Options profilePolicy;
    WhisperConfig whisper;
    HintInjector::Config injector;
    bool verbose = true;

    /** Directory for per-app journals (<app>.journal); "" = none. */
    std::string journalDir;
    uint64_t trainTaskDeadlineMs = 30'000;
    unsigned trainMaxAttempts = 3;

    /** Sparse-correlation screening before formula search
     * (--train-prune); applies to every tenant. */
    bool trainPrune = true;
    ScreenConfig screen;
    /** Warm-start each tenant epoch from its deployed bundle
     * (--warm-start); a warm candidate regressing vs the incumbent
     * beyond warmFallbackMargin retrains the epoch cold. */
    bool warmStart = true;
    double warmFallbackMargin = 0.0;

    /** Quota applied to tenants registered without an explicit one
     * (including auto-registered tenants). */
    TenantQuota defaultQuota;
    /** Register unknown apps on first chunk instead of dropping. */
    bool autoRegister = false;
};

/**
 * Deficit-round-robin scheduler over per-tenant training-job queues.
 *
 * Each scheduler round visits the tenants in registration order;
 * a tenant with pending jobs earns its weight in deficit and is
 * served while the deficit lasts (unit job cost), so weight W buys W
 * epochs per round. Tenants without pending work earn nothing — an
 * idle tenant cannot hoard credit and then monopolize the pool.
 * A tenant at its in-flight cap is skipped (its jobs stay queued)
 * until done() frees a slot, which keeps per-tenant execution FIFO
 * when the cap is 1. submit() never blocks: a tenant already at
 * maxPendingTrainJobs has the job rejected (drop-and-count at the
 * caller) so a stalled training pool cannot wedge the absorbers.
 */
class FairShareScheduler
{
  public:
    /** Make @p tenant schedulable (idempotent). */
    void add(Tenant *tenant);

    /** Queue @p job for its tenant. @return false when the tenant is
     * at maxPendingTrainJobs (job dropped; caller counts it). */
    bool submit(TrainJob job);

    /** Block for the next job in deficit-round-robin order.
     * @return false once the scheduler is closed and drained. */
    bool next(TrainJob &out);

    /** Report @p tenant's in-flight job finished. */
    void done(Tenant *tenant);

    /** No further submissions; next() drains what remains. */
    void close();

    /** Jobs currently queued (all tenants). */
    size_t pending() const;

  private:
    struct Entry
    {
        Tenant *tenant = nullptr;
        std::deque<TrainJob> jobs;
        double deficit = 0.0;
        /** Quantum already granted for the current service visit. */
        bool charged = false;
        unsigned inFlight = 0;
    };

    Entry *entryFor(Tenant *tenant);

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::vector<std::unique_ptr<Entry>> ring_;
    size_t cursor_ = 0;
    bool closed_ = false;
};

/** The multi-tenant service. */
class TenantRouter
{
  public:
    TenantRouter(const TenantRouterConfig &cfg,
                 const TruthTableCache &cache);
    ~TenantRouter();

    /** Register an app before start(); returns its tenant. */
    Tenant *addTenant(const std::string &name);
    Tenant *addTenant(const std::string &name,
                      const TenantQuota &quota);

    /** Spawn the per-tenant absorbers and the dispatchers. */
    void start();

    /**
     * Route one chunk to its tenant (quota-checked, never blocks).
     * @return false when the chunk was dropped: unknown app (unless
     * autoRegister) or the tenant's queue was full.
     */
    bool offer(TraceChunk chunk);

    /** Distinguishes the wire server's reply per tryOffer() verdict:
     * ack, permanent error, or RETRY_AFTER. */
    enum class OfferOutcome
    {
        Accepted,
        UnknownApp,
        Backpressure,
    };

    /**
     * Like offer(), but a full tenant queue is reported as
     * Backpressure WITHOUT counting a drop: the caller (the wire
     * server) answers RETRY_AFTER and the client retransmits, so
     * nothing was lost. Only unknown apps still count (the chunk is
     * genuinely refused).
     */
    OfferOutcome tryOffer(TraceChunk chunk);

    /** Consume an externally produced chunk stream: start(), route
     * every chunk, then finish(). The queue must be closed by its
     * producers for this to return. */
    void runFromQueue(BoundedQueue<TraceChunk> &queue);

    /** Stream a directory of .whrt chunk files (ingest thread +
     * runFromQueue), as Whisperd::run does for one tenant. */
    void run(const std::string &chunkDir);

    /**
     * Drain and stop: close tenant queues, join absorbers (each
     * flushes a final partial epoch), drain the scheduler, join
     * dispatchers. Idempotent; called by the destructor if needed.
     */
    void finish();

    TenantRegistry &registry() { return registry_; }
    const TenantRegistry &registry() const { return registry_; }
    const TenantRouterConfig &config() const { return cfg_; }

    /** Aggregate + per-tenant metrics snapshot (callable anytime,
     * but consistent only after finish()). */
    ServiceMetrics metrics() const;

  private:
    void absorberLoop(Tenant &tenant);
    void dispatcherLoop(unsigned dispatcherIndex);
    void absorb(Tenant &tenant, TraceChunk chunk);
    void enqueueEpochJob(Tenant &tenant);
    void trainEpoch(TrainingPool &pool, TrainJob &job);
    PredictorRunStats evalOnRecords(
        const std::vector<BranchRecord> &records,
        const HintBundle *bundle) const;

    TenantRouterConfig cfg_;
    const TruthTableCache &cache_;
    TenantRegistry registry_;
    FairShareScheduler scheduler_;
    std::vector<std::thread> dispatchers_;
    bool started_ = false;
    bool finished_ = false;

    // Router-thread ingest counters (single writer; snapshot after
    // finish()).
    uint64_t chunksIngested_ = 0;
    uint64_t recordsIngested_ = 0;
    /** Atomic: bumped from the wire server's event thread too. */
    std::atomic<uint64_t> unknownAppChunks_{0};
    uint64_t filesIngested_ = 0;
    uint64_t chunksSkipped_ = 0;
    uint64_t recordsSkipped_ = 0;
    uint64_t readRetries_ = 0;
    uint64_t corruptFiles_ = 0;
    RunningStat ingestRate_;

    // Aggregate training accumulators (dispatcher threads write;
    // metrics() reads).
    mutable std::mutex aggMutex_;
    RunningStat aggTrainLatency_;
    RunningStat aggHintsPerEpoch_;
    RunningStat aggDeployedMpkiDelta_;
};

} // namespace whisper

#endif // WHISPER_SERVICE_TENANT_ROUTER_HH
