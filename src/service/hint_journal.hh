/**
 * @file
 * Crash-safe write-ahead journal for the versioned hint store.
 *
 * Every accepted deployment (and rollback) is appended as one
 * self-checking record — record magic, payload length, payload CRC32,
 * then the encoded VersionedHintBundle — written with a single
 * fwrite and made durable with fflush+fsync before the append
 * returns. A crash can therefore only ever produce a torn *tail*:
 * on open() the journal replays records until the first one that
 * fails validation, discards everything from there on, and compacts
 * the surviving prefix through a temp file + atomic rename so the
 * file on disk is valid again. whisperd feeds the replayed bundles
 * into HintStore::restore() and resumes from the last intact epoch
 * instead of epoch 0.
 *
 * A torn append observed *in-process* (injected via
 * `truncate-journal`, or a real ENOSPC) is self-healed: the next
 * append first truncates back to the last known-good offset.
 */

#ifndef WHISPER_SERVICE_HINT_JOURNAL_HH
#define WHISPER_SERVICE_HINT_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/whisper_io.hh"
#include "util/io_status.hh"

namespace whisper
{

/** Append-only journal of deployed hint-bundle generations. */
class HintJournal
{
  public:
    static constexpr uint32_t kFileMagic = 0x57484A4C;   // "WHJL"
    static constexpr uint32_t kRecordMagic = 0x574A5243; // "WJRC"
    static constexpr uint32_t kVersion = 1;
    /** Cap on one record's payload size (bounds allocations). */
    static constexpr uint32_t kMaxPayload = 1u << 26;

    /** What open()/replay() found on disk. */
    struct RecoveryInfo
    {
        size_t recordsRecovered = 0;
        size_t tailBytesDiscarded = 0; //!< torn/corrupt tail dropped
        bool compacted = false;        //!< file was rewritten clean
    };

    HintJournal() = default;
    ~HintJournal();
    HintJournal(const HintJournal &) = delete;
    HintJournal &operator=(const HintJournal &) = delete;

    /**
     * Open @p path (creating it when absent), replay the valid
     * record prefix into @p out, discard any torn/corrupt tail
     * (compacting via temp file + atomic rename when one is found),
     * and stay open for appends.
     */
    IoStatus open(const std::string &path,
                  std::vector<VersionedHintBundle> &out,
                  RecoveryInfo *info = nullptr);

    /**
     * Durably append one deployed generation: single fwrite of the
     * framed record, then fflush+fsync. @return false when the write
     * failed (the journal truncates back to the last good offset on
     * the next append, so one failure never poisons the file).
     */
    bool append(const VersionedHintBundle &bundle);

    void close();
    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    uint64_t appends() const { return appends_; }
    uint64_t appendFailures() const { return appendFailures_; }
    uint64_t repairs() const { return repairs_; }

    /** Read-only replay of @p path's valid record prefix. */
    static std::vector<VersionedHintBundle>
    replay(const std::string &path, RecoveryInfo *info = nullptr);

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    /** End of the last fully validated/durable record. */
    long goodOffset_ = 0;
    /** A previous append tore; truncate before the next one. */
    bool repairPending_ = false;
    uint64_t appends_ = 0;
    uint64_t appendFailures_ = 0;
    uint64_t repairs_ = 0;
};

} // namespace whisper

#endif // WHISPER_SERVICE_HINT_JOURNAL_HH
