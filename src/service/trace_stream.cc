#include "service/trace_stream.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "service/fault_injection.hh"
#include "trace/branch_trace.hh"
#include "util/crc32.hh"

namespace whisper
{

TraceStreamReader::TraceStreamReader(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_) {
        status_ = IoStatus::missingFile(path);
        return;
    }

    bool ok = true;
    auto get = [&](void *p, size_t n) {
        if (ok && std::fread(p, 1, n, file_) != n)
            ok = false;
    };
    auto reject = [&](const char *why) {
        std::fclose(file_);
        file_ = nullptr;
        status_ = IoStatus::corruptFile(path_, why);
    };

    uint32_t magic = 0;
    get(&magic, sizeof(magic));
    get(&version_, sizeof(version_));
    uint32_t nameLen = 0;
    get(&nameLen, sizeof(nameLen));
    if (!ok || magic != BranchTrace::kFileMagic) {
        reject("bad magic (not a .whrt trace)");
        return;
    }
    if (version_ != 1 && version_ != BranchTrace::kFileVersion) {
        reject("unsupported format version");
        return;
    }
    if (nameLen > 4096) {
        reject("oversized app-name length field");
        return;
    }
    app_.assign(nameLen, '\0');
    get(app_.data(), nameLen);
    get(&inputId_, sizeof(inputId_));
    get(&recordsTotal_, sizeof(recordsTotal_));
    if (!ok)
        reject("truncated header");
}

TraceStreamReader::~TraceStreamReader()
{
    if (file_)
        std::fclose(file_);
}

size_t
TraceStreamReader::readWithRetry(void *p, size_t n)
{
    auto *dst = static_cast<unsigned char *>(p);
    size_t got = 0;
    unsigned attempt = 0;
    while (got < n) {
        bool injectedFailure = FaultInjector::instance().failRead();
        if (!injectedFailure) {
            got += std::fread(dst + got, 1, n - got, file_);
            if (got == n)
                break;
            if (std::feof(file_))
                return got; // real end of data: no retry helps
            std::clearerr(file_);
        }
        if (++attempt > kMaxReadRetries)
            return got;
        // Transient error (EINTR, EAGAIN on a network fs, injected):
        // back off exponentially and try again from where we were.
        ++readRetries_;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1u << std::min(attempt, 5u)));
    }
    return got;
}

void
TraceStreamReader::finishStream(bool corrupt)
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    // Records the header promised but we never delivered were lost
    // to skipped/torn frames; keep whichever count is larger (frame
    // counts are exact, the header remainder covers torn tails).
    if (recordsTotal_ > recordsRead_) {
        recordsSkipped_ = std::max(recordsSkipped_,
                                   recordsTotal_ - recordsRead_);
    }
    if (corrupt && status_.ok())
        status_ = IoStatus::corruptFile(path_, "truncated record "
                                               "array");
}

bool
TraceStreamReader::resyncToFrameMagic()
{
    // The 4 bytes just read were not a frame magic; rescan from one
    // byte after that point, overlapping block reads so a magic
    // spanning block boundaries is still found.
    long base = std::ftell(file_);
    if (base < 0)
        return false;
    long pos = base - 3;
    const long limit =
        pos + static_cast<long>(kResyncWindowBytes);
    unsigned char buf[4096];
    while (pos < limit) {
        if (std::fseek(file_, pos, SEEK_SET) != 0)
            return false;
        size_t r = readWithRetry(buf, sizeof(buf));
        if (r < sizeof(uint32_t))
            return false; // hit EOF without finding another frame
        for (size_t i = 0; i + sizeof(uint32_t) <= r; ++i) {
            uint32_t v = 0;
            std::memcpy(&v, buf + i, sizeof(v));
            if (v == BranchTrace::kFrameMagic) {
                std::fseek(file_, pos + static_cast<long>(i),
                           SEEK_SET);
                return true;
            }
        }
        pos += static_cast<long>(r) - 3;
    }
    return false;
}

TraceStreamReader::FrameResult
TraceStreamReader::loadNextFrame()
{
    for (;;) {
        uint32_t magic = 0;
        size_t got = readWithRetry(&magic, sizeof(magic));
        if (got == 0)
            return FrameResult::EndOfStream; // clean EOF
        if (got < sizeof(magic)) {
            ++framesSkipped_; // torn tail
            return FrameResult::EndOfStream;
        }
        if (magic != BranchTrace::kFrameMagic) {
            // Damaged frame header: scan for the next frame.
            ++framesSkipped_;
            if (!resyncToFrameMagic())
                return FrameResult::EndOfStream;
            continue;
        }

        uint32_t count = 0, crc = 0;
        if (readWithRetry(&count, sizeof(count)) != sizeof(count) ||
            readWithRetry(&crc, sizeof(crc)) != sizeof(crc)) {
            ++framesSkipped_; // torn mid-header
            return FrameResult::EndOfStream;
        }
        if (count == 0 || count > BranchTrace::kMaxFrameRecords) {
            // Hostile or smashed length field: never allocate it.
            ++framesSkipped_;
            if (!resyncToFrameMagic())
                return FrameResult::EndOfStream;
            continue;
        }

        frame_.resize(count);
        size_t bytes = count * sizeof(BranchRecord);
        if (readWithRetry(frame_.data(), bytes) != bytes) {
            ++framesSkipped_; // torn mid-payload
            recordsSkipped_ += count;
            frame_.clear(); // never serve the partial frame
            framePos_ = 0;
            return FrameResult::EndOfStream;
        }

        FaultInjector::instance().corruptFrame(frame_.data(), bytes);

        if (crc32(frame_.data(), bytes) != crc) {
            // Bit rot or an overwritten frame: drop it, keep going.
            ++framesSkipped_;
            recordsSkipped_ += count;
            frame_.clear(); // never serve the damaged frame
            framePos_ = 0;
            continue;
        }
        framePos_ = 0;
        return FrameResult::Loaded;
    }
}

size_t
TraceStreamReader::readChunk(std::vector<BranchRecord> &out,
                             size_t maxRecords)
{
    out.clear();
    if (!file_ || maxRecords == 0)
        return 0;

    if (version_ == 1) {
        // Legacy raw array: bounded read, short file = corrupt.
        if (recordsRead_ >= recordsTotal_) {
            finishStream(false);
            return 0;
        }
        size_t want = static_cast<size_t>(std::min<uint64_t>(
            maxRecords, recordsTotal_ - recordsRead_));
        out.resize(want);
        size_t got = std::fread(out.data(), sizeof(BranchRecord),
                                want, file_);
        out.resize(got);
        recordsRead_ += got;
        if (got < want)
            finishStream(true);
        return got;
    }

    while (out.size() < maxRecords) {
        if (framePos_ >= frame_.size()) {
            if (loadNextFrame() == FrameResult::EndOfStream) {
                if (out.empty())
                    finishStream(false);
                break;
            }
        }
        size_t take = std::min(maxRecords - out.size(),
                               frame_.size() - framePos_);
        out.insert(out.end(), frame_.begin() + framePos_,
                   frame_.begin() + framePos_ + take);
        framePos_ += take;
    }
    recordsRead_ += out.size();
    return out.size();
}

ChunkIngestor::ChunkIngestor(std::vector<std::string> files,
                             size_t chunkRecords,
                             BoundedQueue<TraceChunk> &queue,
                             std::atomic<uint64_t> &sequence)
    : files_(std::move(files)), chunkRecords_(chunkRecords),
      queue_(queue), sequence_(sequence)
{
    whisper_assert(chunkRecords_ > 0);
}

ChunkIngestor::~ChunkIngestor()
{
    if (thread_.joinable())
        thread_.join();
}

void
ChunkIngestor::start()
{
    whisper_assert(!thread_.joinable(), "ingestor already started");
    thread_ = std::thread([this] { produce(); });
}

void
ChunkIngestor::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
ChunkIngestor::produce()
{
    for (const std::string &file : files_) {
        TraceStreamReader reader(file);
        if (!reader.valid()) {
            errors_.push_back(reader.status().message);
            continue;
        }
        TraceChunk chunk;
        while (reader.readChunk(chunk.records, chunkRecords_) > 0) {
            chunk.sequence =
                sequence_.fetch_add(1, std::memory_order_relaxed);
            chunk.app = reader.app();
            chunk.inputId = reader.inputId();
            chunk.sourceFile = file;
            recordsIngested_ += chunk.records.size();
            ++chunksProduced_;
            if (!queue_.push(std::move(chunk))) {
                framesSkipped_ += reader.framesSkipped();
                recordsSkipped_ += reader.recordsSkipped();
                readRetries_ += reader.readRetries();
                return; // queue closed under us: stop producing
            }
            chunk = TraceChunk{};
        }
        framesSkipped_ += reader.framesSkipped();
        recordsSkipped_ += reader.recordsSkipped();
        readRetries_ += reader.readRetries();
        if (!reader.status().ok())
            errors_.push_back(reader.status().message);
        else
            ++filesIngested_;
    }
}

std::vector<std::string>
ChunkIngestor::listTraceFiles(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".whrt") {
            files.push_back(entry.path().string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace whisper
