#include "service/trace_stream.hh"

#include <algorithm>
#include <filesystem>

#include "trace/branch_trace.hh"

namespace whisper
{

TraceStreamReader::TraceStreamReader(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        return;

    bool ok = true;
    auto get = [&](void *p, size_t n) {
        if (ok && std::fread(p, 1, n, file_) != n)
            ok = false;
    };

    uint32_t magic = 0, version = 0;
    get(&magic, sizeof(magic));
    get(&version, sizeof(version));
    uint32_t nameLen = 0;
    get(&nameLen, sizeof(nameLen));
    if (!ok || magic != BranchTrace::kFileMagic ||
        version != BranchTrace::kFileVersion || nameLen > 4096) {
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    app_.assign(nameLen, '\0');
    get(app_.data(), nameLen);
    get(&inputId_, sizeof(inputId_));
    get(&recordsTotal_, sizeof(recordsTotal_));
    if (!ok) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceStreamReader::~TraceStreamReader()
{
    if (file_)
        std::fclose(file_);
}

size_t
TraceStreamReader::readChunk(std::vector<BranchRecord> &out,
                             size_t maxRecords)
{
    out.clear();
    if (!file_ || recordsRead_ >= recordsTotal_ || maxRecords == 0)
        return 0;

    size_t want = static_cast<size_t>(
        std::min<uint64_t>(maxRecords, recordsTotal_ - recordsRead_));
    out.resize(want);
    size_t got =
        std::fread(out.data(), sizeof(BranchRecord), want, file_);
    out.resize(got);
    recordsRead_ += got;
    if (got < want) {
        // Header promised more records than the file holds: treat
        // the trace as corrupt and stop the stream here.
        std::fclose(file_);
        file_ = nullptr;
    }
    return got;
}

ChunkIngestor::ChunkIngestor(std::vector<std::string> files,
                             size_t chunkRecords,
                             BoundedQueue<TraceChunk> &queue,
                             std::atomic<uint64_t> &sequence)
    : files_(std::move(files)), chunkRecords_(chunkRecords),
      queue_(queue), sequence_(sequence)
{
    whisper_assert(chunkRecords_ > 0);
}

ChunkIngestor::~ChunkIngestor()
{
    if (thread_.joinable())
        thread_.join();
}

void
ChunkIngestor::start()
{
    whisper_assert(!thread_.joinable(), "ingestor already started");
    thread_ = std::thread([this] { produce(); });
}

void
ChunkIngestor::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
ChunkIngestor::produce()
{
    for (const std::string &file : files_) {
        TraceStreamReader reader(file);
        if (!reader.valid()) {
            errors_.push_back(file);
            continue;
        }
        TraceChunk chunk;
        while (reader.readChunk(chunk.records, chunkRecords_) > 0) {
            chunk.sequence =
                sequence_.fetch_add(1, std::memory_order_relaxed);
            chunk.app = reader.app();
            chunk.inputId = reader.inputId();
            chunk.sourceFile = file;
            recordsIngested_ += chunk.records.size();
            ++chunksProduced_;
            if (!queue_.push(std::move(chunk)))
                return; // queue closed under us: stop producing
            chunk = TraceChunk{};
        }
        if (!reader.valid())
            errors_.push_back(file);
        else
            ++filesIngested_;
    }
}

std::vector<std::string>
ChunkIngestor::listTraceFiles(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".whrt") {
            files.push_back(entry.path().string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace whisper
