#include "service/hint_journal.hh"

#include <cstring>

#include <unistd.h>

#include "service/fault_injection.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

/** Parse the valid record prefix of an open journal stream.
 * @return bytes consumed by valid records (header excluded records
 * start after the 8-byte file header). */
struct ReplayResult
{
    std::vector<VersionedHintBundle> bundles;
    long validEnd = 0;     //!< offset just past the last valid record
    bool sawGarbage = false;
};

ReplayResult
replayStream(std::FILE *f)
{
    ReplayResult result;
    result.validEnd = std::ftell(f);

    std::vector<unsigned char> payload;
    for (;;) {
        uint32_t magic = 0, len = 0, crc = 0;
        if (std::fread(&magic, 1, sizeof(magic), f) != sizeof(magic))
            break; // clean EOF or torn header
        if (magic != HintJournal::kRecordMagic) {
            result.sawGarbage = true;
            break;
        }
        if (std::fread(&len, 1, sizeof(len), f) != sizeof(len) ||
            std::fread(&crc, 1, sizeof(crc), f) != sizeof(crc)) {
            result.sawGarbage = true;
            break;
        }
        if (len == 0 || len > HintJournal::kMaxPayload) {
            result.sawGarbage = true;
            break;
        }
        payload.resize(len);
        if (std::fread(payload.data(), 1, len, f) != len) {
            result.sawGarbage = true; // torn mid-payload
            break;
        }
        if (crc32(payload.data(), len) != crc) {
            result.sawGarbage = true; // bit rot / torn overwrite
            break;
        }
        VersionedHintBundle bundle;
        if (!decodeVersionedBundle(bundle, payload.data(), len)) {
            result.sawGarbage = true;
            break;
        }
        result.bundles.push_back(std::move(bundle));
        result.validEnd = std::ftell(f);
    }
    return result;
}

bool
writeHeader(std::FILE *f)
{
    uint32_t magic = HintJournal::kFileMagic;
    uint32_t version = HintJournal::kVersion;
    return std::fwrite(&magic, 1, sizeof(magic), f) ==
               sizeof(magic) &&
           std::fwrite(&version, 1, sizeof(version), f) ==
               sizeof(version);
}

bool
syncFile(std::FILE *f)
{
    return std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
}

std::vector<unsigned char>
frameRecord(const VersionedHintBundle &bundle)
{
    std::vector<unsigned char> payload =
        encodeVersionedBundle(bundle);
    std::vector<unsigned char> record;
    record.reserve(12 + payload.size());
    uint32_t magic = HintJournal::kRecordMagic;
    uint32_t len = static_cast<uint32_t>(payload.size());
    uint32_t crc = crc32(payload.data(), payload.size());
    auto putU32 = [&](uint32_t v) {
        const auto *p = reinterpret_cast<const unsigned char *>(&v);
        record.insert(record.end(), p, p + sizeof(v));
    };
    putU32(magic);
    putU32(len);
    putU32(crc);
    record.insert(record.end(), payload.begin(), payload.end());
    return record;
}

} // namespace

HintJournal::~HintJournal()
{
    close();
}

void
HintJournal::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

IoStatus
HintJournal::open(const std::string &path,
                  std::vector<VersionedHintBundle> &out,
                  RecoveryInfo *info)
{
    close();
    out.clear();
    path_ = path;
    RecoveryInfo local;

    std::FILE *existing = std::fopen(path.c_str(), "rb");
    bool needCompact = false;
    long fileEnd = 0;
    long validEnd = 0;
    if (existing) {
        uint32_t magic = 0, version = 0;
        bool headerOk =
            std::fread(&magic, 1, sizeof(magic), existing) ==
                sizeof(magic) &&
            std::fread(&version, 1, sizeof(version), existing) ==
                sizeof(version) &&
            magic == kFileMagic && version == kVersion;
        if (headerOk) {
            ReplayResult replayed = replayStream(existing);
            out = std::move(replayed.bundles);
            validEnd = replayed.validEnd;
            std::fseek(existing, 0, SEEK_END);
            fileEnd = std::ftell(existing);
            needCompact = replayed.sawGarbage || validEnd != fileEnd;
        } else {
            // Header unreadable: nothing salvageable; start fresh.
            std::fseek(existing, 0, SEEK_END);
            fileEnd = std::ftell(existing);
            needCompact = fileEnd != 0;
        }
        std::fclose(existing);
        local.tailBytesDiscarded =
            static_cast<size_t>(fileEnd - validEnd);
        local.recordsRecovered = out.size();
    } else {
        needCompact = true; // no file yet: write a fresh one
    }

    if (needCompact) {
        // Rewrite the surviving prefix through a temp file and
        // atomically rename it into place, so a crash during
        // compaction leaves either the old file or the new one —
        // never a half-written hybrid.
        std::string tmp = path + ".tmp";
        std::FILE *nf = std::fopen(tmp.c_str(), "wb");
        if (!nf)
            return IoStatus::missingFile(tmp);
        bool ok = writeHeader(nf);
        for (const VersionedHintBundle &bundle : out) {
            if (!ok)
                break;
            std::vector<unsigned char> record = frameRecord(bundle);
            ok = std::fwrite(record.data(), 1, record.size(), nf) ==
                 record.size();
        }
        ok = ok && syncFile(nf);
        std::fclose(nf);
        if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
            std::remove(tmp.c_str());
            return IoStatus::corruptFile(path,
                                         "journal compaction failed");
        }
        local.compacted = true;
    }

    file_ = std::fopen(path.c_str(), "r+b");
    if (!file_)
        return IoStatus::missingFile(path);
    std::fseek(file_, 0, SEEK_END);
    goodOffset_ = std::ftell(file_);
    repairPending_ = false;
    if (info)
        *info = local;
    return IoStatus::okStatus();
}

bool
HintJournal::append(const VersionedHintBundle &bundle)
{
    if (!file_)
        return false;

    if (repairPending_) {
        // A previous append tore; cut the file back to the last
        // durable record before writing anything new.
        if (::ftruncate(::fileno(file_), goodOffset_) != 0) {
            ++appendFailures_;
            return false;
        }
        std::fseek(file_, goodOffset_, SEEK_SET);
        repairPending_ = false;
        ++repairs_;
    }

    std::vector<unsigned char> record = frameRecord(bundle);
    uint64_t index = appends_++;

    size_t toWrite = record.size();
    if (FaultInjector::instance().journalWritePlan(index) ==
        FaultInjector::WritePlan::Torn) {
        toWrite = record.size() / 2; // simulate a torn write
    }

    size_t wrote = std::fwrite(record.data(), 1, toWrite, file_);
    bool ok = wrote == record.size() && syncFile(file_);
    if (!ok) {
        std::fflush(file_);
        ++appendFailures_;
        repairPending_ = true;
        whisper_warn("hint journal: torn write on append ", index,
                     " (", wrote, "/", record.size(),
                     " bytes); will repair");
        return false;
    }
    goodOffset_ += static_cast<long>(record.size());
    return true;
}

std::vector<VersionedHintBundle>
HintJournal::replay(const std::string &path, RecoveryInfo *info)
{
    std::vector<VersionedHintBundle> out;
    RecoveryInfo local;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (info)
            *info = local;
        return out;
    }
    uint32_t magic = 0, version = 0;
    bool headerOk =
        std::fread(&magic, 1, sizeof(magic), f) == sizeof(magic) &&
        std::fread(&version, 1, sizeof(version), f) ==
            sizeof(version) &&
        magic == kFileMagic && version == kVersion;
    if (headerOk) {
        ReplayResult replayed = replayStream(f);
        out = std::move(replayed.bundles);
        long fileEnd = 0;
        std::fseek(f, 0, SEEK_END);
        fileEnd = std::ftell(f);
        local.tailBytesDiscarded =
            static_cast<size_t>(fileEnd - replayed.validEnd);
        local.recordsRecovered = out.size();
    }
    std::fclose(f);
    if (info)
        *info = local;
    return out;
}

} // namespace whisper
