/**
 * @file
 * whisperd — the continuous profile-guided optimization service.
 *
 * The paper's deployment story (Fig. 10) is a one-shot pipeline:
 * trace, profile, train, inject. A datacenter fleet instead drifts
 * across inputs (Figs. 17/18), so whisperd turns the pipeline into a
 * loop:
 *
 *   ingest threads ──bounded MPSC queue──▶ consumer loop
 *        │                                    │ newest chunk held out
 *        ▼                                    ▼ as validation window
 *   .whrt chunk files            ShardedProfiler (N streaming shards)
 *                                             │ Profile::merge
 *                                             ▼
 *                                TrainingPool (per-branch Algorithm 1)
 *                                             │ candidate bundle
 *                                             ▼
 *                                validation: candidate vs incumbent
 *                                on the held-out window
 *                                             │ beat it?  no → reject
 *                                             ▼ yes
 *                                HintStore atomic epoch swap
 *
 * Consumers (the adaptive runner, or a real fleet's binary rewriter)
 * pick up new generations wait-free from the HintStore.
 */

#ifndef WHISPER_SERVICE_WHISPERD_HH
#define WHISPER_SERVICE_WHISPERD_HH

#include <memory>
#include <optional>
#include <string>

#include "core/correlation_screen.hh"
#include "core/formula_trainer.hh"
#include "core/hint_injection.hh"
#include "sim/runner.hh"
#include "service/chunk_profiler.hh"
#include "service/hint_store.hh"
#include "service/service_metrics.hh"
#include "service/trace_stream.hh"
#include "service/training_pool.hh"

namespace whisper
{

/** Service configuration. */
struct WhisperdConfig
{
    size_t chunkRecords = 50'000;  //!< ingest chunk granularity
    unsigned epochChunks = 4;      //!< training chunks per epoch
    unsigned trainWorkers = 4;     //!< TrainingPool width
    unsigned profileShards = 2;    //!< ShardedProfiler width
    size_t queueCapacity = 8;      //!< ingest queue bound (chunks)
    unsigned tageBudgetKB = 64;    //!< baseline predictor budget
    /** Candidate must beat the incumbent by more than this accuracy
     * margin on the validation window. */
    double acceptMargin = 0.0;
    /** Streaming hard-branch promotion knobs. */
    ChunkProfiler::Options profilePolicy;
    WhisperConfig whisper;
    HintInjector::Config injector;
    /** Log per-epoch decisions to stdout. */
    bool verbose = true;

    /** Write-ahead journal for deployed bundles ("" = no journal).
     * On startup the journal is replayed and the service resumes
     * from the last durable epoch instead of epoch 0. */
    std::string journalPath;
    /** TrainingPool supervision: per-task deadline (0 = off) and
     * attempts before a branch is degraded to the baseline. */
    uint64_t trainTaskDeadlineMs = 30'000;
    unsigned trainMaxAttempts = 3;

    /** Sparse-correlation screening of the per-branch candidate
     * space before formula search (--train-prune). */
    bool trainPrune = true;
    ScreenConfig screen;
    /** Seed each epoch's search from the previous deployed bundle
     * (--warm-start); a warm candidate that regresses vs the
     * incumbent on the validation holdout beyond
     * warmFallbackMargin triggers a cold retrain of the epoch. */
    bool warmStart = true;
    double warmFallbackMargin = 0.0;
};

/** The service. One instance per monitored application. */
class Whisperd
{
  public:
    Whisperd(const WhisperdConfig &cfg, const TruthTableCache &cache);
    ~Whisperd();

    /**
     * Drive the loop over a directory of .whrt chunk files: start an
     * ingest thread, consume until the stream is exhausted, then run
     * a final training epoch over any remaining data.
     */
    void run(const std::string &chunkDir);

    /** Consume an externally produced chunk stream (the queue must
     * be closed by its producers for run to return). */
    void runFromQueue(BoundedQueue<TraceChunk> &queue);

    HintStore &store() { return store_; }
    const HintStore &store() const { return store_; }
    const ServiceMetrics &metrics() const { return metrics_; }
    uint64_t epochsRun() const { return metrics_.epochsRun; }

    /** Epoch restored from the journal at startup (0 = fresh). */
    uint64_t resumedEpoch() const { return metrics_.journalResumedEpoch; }
    /** Generations replayed from the journal at startup. */
    uint64_t recoveredGenerations() const
    {
        return metrics_.journalRecoveredRecords;
    }

  private:
    /** Fold a chunk into the training shards. */
    void absorb(TraceChunk chunk);
    /** Train + validate + propose one epoch. */
    void trainEpoch();
    /** Validation accuracy/MPKI of @p bundle (nullptr = un-hinted
     * baseline) on the held-out window. */
    PredictorRunStats evalOnValidation(const HintBundle *bundle);

    WhisperdConfig cfg_;
    const TruthTableCache &cache_;
    std::unique_ptr<ShardedProfiler> shards_;
    TrainingPool pool_;
    HintJournal journal_;
    HintStore store_;
    ServiceMetrics metrics_;

    /** Newest chunk: the held-out validation window. It becomes
     * training data only once a newer chunk displaces it. */
    std::optional<TraceChunk> validationChunk_;
    /** Most recent training chunk, kept for brhint placement. */
    std::vector<BranchRecord> placementWindow_;
    unsigned chunksSinceTrain_ = 0;
    uint64_t chunksAbsorbed_ = 0;
};

} // namespace whisper

#endif // WHISPER_SERVICE_WHISPERD_HH
