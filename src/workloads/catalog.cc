#include "workloads/app_config.hh"

#include "util/logging.hh"

namespace whisper
{

namespace
{

/**
 * Helper: start from the shared data-center defaults and tweak.
 * The per-app parameters are chosen so the emitted streams land in
 * the bands the paper reports: branch-MPKI roughly 0.5-7.2 with
 * large static footprints (Fig. 2), mispredictions spread over
 * thousands of branches (Fig. 5b), and correlation lengths up to
 * 1024 (Fig. 6).
 */
AppConfig
dcApp(const std::string &name, uint64_t seed, unsigned regions,
      unsigned requestTypes, double theta)
{
    AppConfig cfg;
    cfg.name = name;
    cfg.seed = seed;
    cfg.numRegions = regions;
    cfg.numRequestTypes = requestTypes;
    cfg.zipfTheta = theta;
    return cfg;
}

std::vector<AppConfig>
makeDataCenterApps()
{
    std::vector<AppConfig> apps;

    // cassandra: JVM storage engine, moderate footprint, lots of
    // biased error-checking branches.
    {
        AppConfig c = dcApp("cassandra", 0xCA55, 380, 110, 1.60);
        c.wBiased = 0.73;
        c.wShortHistory = 0.07;
        c.wHashedHistory = 0.060;
        c.wRandom = 0.015;
        c.histNoiseMax = 0.04;
        apps.push_back(c);
    }
    // clang: huge code footprint, branchy IR traversals with long
    // history correlations.
    {
        AppConfig c = dcApp("clang", 0xC1A6, 950, 300, 1.30);
        c.wBiased = 0.62;
        c.wShortHistory = 0.10;
        c.wHashedHistory = 0.130;
        c.wRandom = 0.035;
        c.histNoiseMax = 0.085;
        apps.push_back(c);
    }
    // drupal: PHP request processing.
    {
        AppConfig c = dcApp("drupal", 0xD2FA, 560, 180, 1.45);
        c.wShortHistory = 0.08;
        c.wHashedHistory = 0.065;
        c.wRandom = 0.020;
        c.histNoiseMax = 0.05;
        apps.push_back(c);
    }
    // finagle-chirper: RPC microservice, small hot core.
    {
        AppConfig c = dcApp("finagle-chirper", 0xF1C4, 260, 70, 1.95);
        c.wBiased = 0.76;
        c.wShortHistory = 0.04;
        c.wHashedHistory = 0.020;
        c.wRandom = 0.003;
        c.histNoiseMax = 0.02;
        apps.push_back(c);
    }
    // finagle-http: http server, similar but slightly hotter loops.
    {
        AppConfig c = dcApp("finagle-http", 0xF1BB, 240, 64, 2.00);
        c.wBiased = 0.74;
        c.wLoop = 0.06;
        c.wShortHistory = 0.035;
        c.wHashedHistory = 0.018;
        c.wRandom = 0.003;
        c.histNoiseMax = 0.02;
        apps.push_back(c);
    }
    // kafka: log broker; streaming loops and batch-size dependent
    // branches.
    {
        AppConfig c = dcApp("kafka", 0x0AFA, 430, 130, 1.55);
        c.wLoop = 0.07;
        c.wShortHistory = 0.08;
        c.wHashedHistory = 0.060;
        c.wRandom = 0.014;
        c.histNoiseMax = 0.05;
        apps.push_back(c);
    }
    // mediawiki: PHP wiki rendering; content-dependent parsing.
    {
        AppConfig c = dcApp("mediawiki", 0x3ED1, 660, 210, 1.40);
        c.wBiased = 0.64;
        c.wShortHistory = 0.09;
        c.wHashedHistory = 0.070;
        c.wRandom = 0.028;
        c.histNoiseMax = 0.08;
        apps.push_back(c);
    }
    // mysql: the paper's highest-MPKI server; very large footprint,
    // query-shape dependent control flow.
    {
        AppConfig c = dcApp("mysql", 0x3541, 850, 330, 1.25);
        c.wBiased = 0.58;
        c.wShortHistory = 0.12;
        c.wHashedHistory = 0.150;
        c.wRandom = 0.04;
        c.histNoiseMax = 0.095;
        apps.push_back(c);
    }
    // postgres: similar class to mysql, slightly smaller.
    {
        AppConfig c = dcApp("postgres", 0x9057, 740, 260, 1.30);
        c.wBiased = 0.60;
        c.wShortHistory = 0.10;
        c.wHashedHistory = 0.130;
        c.wRandom = 0.032;
        c.histNoiseMax = 0.085;
        apps.push_back(c);
    }
    // python: interpreter dispatch; long opcode-history correlations.
    {
        AppConfig c = dcApp("python", 0x9784, 700, 240, 1.30);
        c.wBiased = 0.59;
        c.wShortHistory = 0.10;
        c.wHashedHistory = 0.130;
        c.wRandom = 0.030;
        c.histNoiseMax = 0.09;
        c.minCorrelationIdx = 4;
        apps.push_back(c);
    }
    // tomcat: servlet container.
    {
        AppConfig c = dcApp("tomcat", 0x70CA, 460, 140, 1.50);
        c.wShortHistory = 0.08;
        c.wHashedHistory = 0.055;
        c.wRandom = 0.014;
        c.histNoiseMax = 0.05;
        apps.push_back(c);
    }
    // wordpress: PHP with heavy plugin dispatch.
    {
        AppConfig c = dcApp("wordpress", 0x30D9, 680, 230, 1.38);
        c.wBiased = 0.62;
        c.wShortHistory = 0.10;
        c.wHashedHistory = 0.080;
        c.wRandom = 0.028;
        c.histNoiseMax = 0.085;
        apps.push_back(c);
    }
    return apps;
}

/**
 * SPEC2017-like models: small hot code, mispredictions concentrated
 * in a handful of data-dependent branches (Fig. 5a). gcc is the
 * outlier with a datacenter-like spread, as the paper notes.
 */
AppConfig
specApp(const std::string &name, uint64_t seed, unsigned regions,
        double wRandom)
{
    AppConfig cfg;
    cfg.name = name;
    cfg.seed = seed;
    cfg.numRegions = regions;
    cfg.numRequestTypes = std::max(8u, regions / 8);
    cfg.zipfTheta = 1.15;
    cfg.wBiased = 0.62;
    cfg.wLoop = 0.08;
    cfg.wShortHistory = 0.14;
    cfg.wHashedHistory = 0.08;
    cfg.wRandom = wRandom;
    cfg.randomPMin = 0.55;
    cfg.randomPMax = 0.75;
    cfg.inputSensitiveFrac = 0.08;
    return cfg;
}

std::vector<AppConfig>
makeSpecApps()
{
    std::vector<AppConfig> apps;
    apps.push_back(specApp("deepsjeng", 0xDEE9, 90, 0.045));
    apps.push_back(specApp("exchange2", 0xE8C2, 60, 0.030));
    {
        // gcc behaves like a data center app (large, spread out).
        AppConfig c = specApp("gcc", 0x6CC0, 1200, 0.02);
        c.numRequestTypes = 260;
        c.zipfTheta = 0.45;
        c.wHashedHistory = 0.14;
        c.wShortHistory = 0.20;
        apps.push_back(c);
    }
    apps.push_back(specApp("leela", 0x1EE1, 80, 0.055));
    apps.push_back(specApp("mcf", 0x3CF0, 40, 0.060));
    apps.push_back(specApp("omnetpp", 0x03E7, 160, 0.040));
    apps.push_back(specApp("perlbench", 0x9E41, 240, 0.025));
    apps.push_back(specApp("x264", 0x0264, 110, 0.025));
    apps.push_back(specApp("xalancbmk", 0xA1A2, 210, 0.025));
    apps.push_back(specApp("xz", 0x00A2, 70, 0.050));
    return apps;
}

} // namespace

const std::vector<AppConfig> &
dataCenterApps()
{
    static const std::vector<AppConfig> apps = makeDataCenterApps();
    return apps;
}

const std::vector<AppConfig> &
specApps()
{
    static const std::vector<AppConfig> apps = makeSpecApps();
    return apps;
}

const AppConfig *
findAppByName(const std::string &name)
{
    for (const auto &c : dataCenterApps())
        if (c.name == name)
            return &c;
    for (const auto &c : specApps())
        if (c.name == name)
            return &c;
    return nullptr;
}

std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names;
    names.reserve(dataCenterApps().size() + specApps().size());
    for (const auto &c : dataCenterApps())
        names.push_back(c.name);
    for (const auto &c : specApps())
        names.push_back(c.name);
    return names;
}

const AppConfig &
appByName(const std::string &name)
{
    if (const AppConfig *app = findAppByName(name))
        return *app;
    whisper_fatal("unknown application '", name, "'");
}

} // namespace whisper
