/**
 * @file
 * DriftSpec string parsing (the `--drift` CLI surface).
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/app_config.hh"

namespace whisper
{

namespace
{

bool
parseU64(const std::string &v, uint64_t *out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(v.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseF64(const std::string &v, double *out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    *out = std::strtod(v.c_str(), &end);
    return end && *end == '\0';
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
parseDriftSpec(const std::string &spec, DriftSpec *out,
               std::string *error)
{
    DriftSpec parsed;
    size_t colon = spec.find(':');
    std::string kind = spec.substr(0, colon);

    if (kind == "none")
        parsed.kind = DriftKind::None;
    else if (kind == "phase")
        parsed.kind = DriftKind::Phase;
    else if (kind == "gradual")
        parsed.kind = DriftKind::Gradual;
    else if (kind == "adversarial")
        parsed.kind = DriftKind::Adversarial;
    else
        return fail(error, "unknown drift kind '" + kind +
                               "' (none|phase|gradual|adversarial)");

    std::string rest =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    while (!rest.empty()) {
        size_t comma = rest.find(',');
        std::string item = rest.substr(0, comma);
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail(error,
                        "drift option '" + item + "' needs key=value");
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        bool ok = true;
        if (key == "period") {
            ok = parseU64(value, &parsed.periodRecords);
        } else if (key == "phases") {
            uint64_t v = 0;
            ok = parseU64(value, &v) && v >= 1;
            parsed.phases = static_cast<unsigned>(v);
        } else if (key == "intensity") {
            ok = parseF64(value, &parsed.intensity) &&
                 parsed.intensity >= 0.0 && parsed.intensity <= 1.0;
        } else if (key == "frac") {
            ok = parseF64(value, &parsed.decorrelate) &&
                 parsed.decorrelate >= 0.0 &&
                 parsed.decorrelate <= 1.0;
        } else if (key == "seed") {
            ok = parseU64(value, &parsed.seed);
        } else {
            return fail(error, "unknown drift option '" + key +
                                   "' (period|phases|intensity|frac|"
                                   "seed)");
        }
        if (!ok)
            return fail(error, "bad value for drift option '" + key +
                                   "': '" + value + "'");
    }

    if (parsed.active() && parsed.periodRecords == 0)
        return fail(error,
                    "drift kind '" + kind + "' needs period=N (> 0)");

    *out = parsed;
    return true;
}

std::string
describeDriftSpec(const DriftSpec &spec)
{
    const char *kind = "none";
    switch (spec.kind) {
      case DriftKind::None:
        return "none";
      case DriftKind::Phase:
        kind = "phase";
        break;
      case DriftKind::Gradual:
        kind = "gradual";
        break;
      case DriftKind::Adversarial:
        kind = "adversarial";
        break;
    }
    char buf[160];
    if (spec.kind == DriftKind::Adversarial) {
        std::snprintf(buf, sizeof(buf),
                      "%s:period=%llu,frac=%g,seed=%llu", kind,
                      static_cast<unsigned long long>(
                          spec.periodRecords),
                      spec.decorrelate,
                      static_cast<unsigned long long>(spec.seed));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%s:period=%llu,phases=%u,intensity=%g,"
                      "seed=%llu",
                      kind,
                      static_cast<unsigned long long>(
                          spec.periodRecords),
                      spec.phases, spec.intensity,
                      static_cast<unsigned long long>(spec.seed));
    }
    return buf;
}

} // namespace whisper
