/**
 * @file
 * The synthetic application trace generator.
 *
 * An AppWorkload deterministically expands an AppConfig plus an
 * input id into a branch stream: regions (functions) are visited
 * with a Zipf-skewed popularity distribution, and every static
 * branch inside a region resolves according to its assigned
 * behaviour (bias, loop, short-history formula, hashed-long-history
 * formula, or data-dependent randomness). Different input ids keep
 * the code structure but shift region popularity and the parameters
 * of input-sensitive branches, mirroring how data center workloads
 * vary across requests (paper SV-A).
 */

#ifndef WHISPER_WORKLOADS_APP_WORKLOAD_HH
#define WHISPER_WORKLOADS_APP_WORKLOAD_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/formula.hh"
#include "core/history_hash.hh"
#include "trace/branch_source.hh"
#include "trace/global_history.hh"
#include "util/rng.hh"
#include "workloads/app_config.hh"

namespace whisper
{

/** Static description of one synthetic branch site. */
struct BranchSite
{
    uint64_t pc = 0;
    BehaviorKind kind = BehaviorKind::Biased;
    double param = 0.5;       //!< p for Biased/Random
    unsigned loopPeriod = 0;
    BoolFormula formula;      //!< for the history-based kinds
    unsigned lengthIdx = 0;   //!< series index for HashedHistory
    unsigned histLen = 0;     //!< resolved correlation length
    double noise = 0.0;       //!< outcome flip probability
    bool inputSensitive = false;
    bool takenBiasedDir = true; //!< structural majority direction
};

/** Deterministic synthetic application trace. */
class AppWorkload : public BranchSource
{
  public:
    /**
     * @param cfg application model
     * @param inputId workload/input selector (0 = training input)
     * @param numBranches stream length in branch records
     */
    AppWorkload(const AppConfig &cfg, uint32_t inputId,
                uint64_t numBranches);

    /**
     * Drifting variant: behaviour rotates mid-stream on the
     * deterministic schedule in @p drift (phase changes, gradual
     * morphing, or adversarial post-prefix decorrelation). A
     * DriftKind::None spec reproduces the stationary stream
     * byte-for-byte. Drift never changes the static code structure
     * (site PCs, kinds, request shapes) — only the dynamic view:
     * request-type popularity and per-site parameters/formulas,
     * applied at request boundaries.
     */
    AppWorkload(const AppConfig &cfg, uint32_t inputId,
                uint64_t numBranches, const DriftSpec &drift);

    bool next(BranchRecord &rec) override;
    void rewind() override;

    const AppConfig &config() const { return cfg_; }
    uint32_t inputId() const { return inputId_; }
    const DriftSpec &drift() const { return drift_; }

    /** Static conditional branch sites in the model. */
    uint64_t staticBranches() const { return sites_.size(); }

    /** Estimated static instruction footprint of the binary. */
    uint64_t staticInstructions() const { return staticInstructions_; }

    /** All sites (analysis/test introspection). */
    const std::vector<BranchSite> &sites() const { return sites_; }

    /** The Whisper geometric length series the model draws from. */
    const std::vector<unsigned> &lengths() const { return lengths_; }

    /** Request types this model services (region sequences). */
    const std::vector<std::vector<uint32_t>> &
    requestTypes() const
    {
        return requestTypes_;
    }

  private:
    /** Dynamic (per-view) state of one site: everything drift may
     * rotate without touching the static structure. */
    struct SiteDyn
    {
        double param = 0.5;
        double noise = 0.0;
        BoolFormula formula;
    };

    void buildStatics();
    void buildInputView();
    unsigned sampleRequestType();
    void emitRegion(unsigned region, uint64_t callPc,
                    BranchKind callKind);
    bool resolveOutcome(BranchSite &site);

    /** Re-derive the drift view for the current stream position
     * (no-op while the position stays inside the applied segment). */
    void applyDriftView();
    /** Rotated dynamic view for @p phase (phase 0 = the base input
     * view), derived from scratch so rewind replays exactly. */
    void computePhaseView(unsigned phase, std::vector<SiteDyn> &dyn,
                          std::vector<double> &cdf) const;
    /** Popularity CDF over request types from a rank permutation. */
    std::vector<double>
    cdfFromRank(const std::vector<uint32_t> &rank) const;
    void installView(const std::vector<SiteDyn> &dyn,
                     const std::vector<double> &cdf);

    AppConfig cfg_;
    uint32_t inputId_;
    uint64_t numBranches_;
    DriftSpec drift_;

    std::vector<unsigned> lengths_;
    std::vector<BranchSite> sites_;
    std::vector<uint64_t> regionBase_;
    std::vector<uint32_t> regionFirstSite_;
    std::vector<uint32_t> regionNumSites_;
    std::vector<std::vector<uint32_t>> requestTypes_;
    uint64_t staticInstructions_ = 0;

    /** Zipf CDF over request types for this input. */
    std::vector<double> typeCdf_;

    // --- drift base snapshots (the phase-0 view) ---
    std::vector<uint32_t> inputRank_; //!< post-input-shuffle ranks
    std::vector<SiteDyn> baseDyn_;
    std::vector<double> baseTypeCdf_;
    /** Applied drift segment (phase index, gradual sub-step, or the
     * adversarial before/after flag). ~0 = base view installed. */
    uint64_t driftSeg_ = ~0ULL;

    // --- run state (reset by rewind) ---
    Rng runRng_;
    GlobalHistory history_;
    std::deque<BranchRecord> pending_;
    std::vector<uint64_t> execCounter_;
    uint64_t emitted_ = 0;
};

} // namespace whisper

#endif // WHISPER_WORKLOADS_APP_WORKLOAD_HH
