#include "workloads/app_workload.hh"

#include <algorithm>
#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

constexpr uint64_t kCodeBase = 0x400000;
constexpr unsigned kInstrBytes = 16;
constexpr unsigned kMaxLoopEmit = 64;
constexpr uint64_t kRegionBytes = 4096; //!< reserved span per region
/** Per-region direct-call stubs (the "caller" code). */
constexpr uint64_t kCallStubBase = 0x200000;
/** Shared virtual-dispatch sites for request entry points. */
constexpr uint64_t kDispatchBase = 0x100000;
constexpr unsigned kDispatchSites = 8;
/** Gradual drift quantization: the blended view is refreshed this
 * many times per period (alpha resolution). */
constexpr uint64_t kGradualSteps = 32;

/** Random formula node tree honoring the configured op-family mix
 * (shared by the static build and drift's formula rotation). */
BoolFormula
randomFormula(Rng &rng, const OpFamilyMix &mix)
{
    double total =
        mix.andW + mix.orW + mix.implW + mix.cnimplW + mix.mixedW;
    double u = rng.nextDouble() * total;
    bool mixed = false;
    BoolOp root = BoolOp::And;
    if ((u -= mix.andW) < 0)
        root = BoolOp::And;
    else if ((u -= mix.orW) < 0)
        root = BoolOp::Or;
    else if ((u -= mix.implW) < 0)
        root = BoolOp::Impl;
    else if ((u -= mix.cnimplW) < 0)
        root = BoolOp::Cnimpl;
    else
        mixed = true;

    // 7 nodes * 2 bits + inversion bit; the root is node 6.
    uint16_t enc = 0;
    for (unsigned node = 0; node < 6; ++node)
        enc |= static_cast<uint16_t>(rng.nextBelow(4)) << (2 * node);
    if (mixed) {
        enc |= static_cast<uint16_t>(rng.nextBelow(4)) << 12;
        enc |= 1u << 14; // inverted -> classified "Others"
    } else {
        enc |= static_cast<uint16_t>(root) << 12;
    }
    return BoolFormula(enc, 8);
}

/** Deterministic uniform in [0, 1) for gradual drift's staggered
 * per-site formula switch points. */
double
siteSwitchPoint(uint64_t seed, uint64_t window, uint64_t site)
{
    uint64_t h = mix64(seed ^ mix64(0x6D21F700ULL + window) ^
                       mix64(0x517E0000ULL + site));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

AppWorkload::AppWorkload(const AppConfig &cfg, uint32_t inputId,
                         uint64_t numBranches)
    : AppWorkload(cfg, inputId, numBranches, DriftSpec{})
{
}

AppWorkload::AppWorkload(const AppConfig &cfg, uint32_t inputId,
                         uint64_t numBranches,
                         const DriftSpec &drift)
    : cfg_(cfg), inputId_(inputId), numBranches_(numBranches),
      drift_(drift), lengths_(geometricLengths(WhisperConfig{})),
      runRng_(cfg.seed ^ (0xABCD0000ULL + inputId)),
      history_(4096)
{
    whisper_assert(cfg.numRegions >= 1);
    whisper_assert(cfg.minBranchesPerRegion >= 1 &&
                   cfg.maxBranchesPerRegion >=
                       cfg.minBranchesPerRegion);
    whisper_assert(cfg.maxCorrelationIdx < lengths_.size());
    whisper_assert(cfg.minCorrelationIdx <= cfg.maxCorrelationIdx);
    whisper_assert(!drift_.active() || drift_.periodRecords > 0);
    whisper_assert(!drift_.active() || drift_.phases >= 1);

    for (unsigned len : lengths_)
        history_.addFoldedView(len, 8);

    buildStatics();
    buildInputView();
    execCounter_.assign(sites_.size(), 0);
}

void
AppWorkload::buildStatics()
{
    Rng rng(cfg_.seed);

    double wSum = cfg_.wBiased + cfg_.wLoop + cfg_.wShortHistory +
                  cfg_.wHashedHistory + cfg_.wRandom;
    whisper_assert(wSum > 0.0);

    auto pickKind = [&]() {
        double u = rng.nextDouble() * wSum;
        if ((u -= cfg_.wBiased) < 0)
            return BehaviorKind::Biased;
        if ((u -= cfg_.wLoop) < 0)
            return BehaviorKind::Loop;
        if ((u -= cfg_.wShortHistory) < 0)
            return BehaviorKind::ShortHistory;
        if ((u -= cfg_.wHashedHistory) < 0)
            return BehaviorKind::HashedHistory;
        return BehaviorKind::Random;
    };

    regionBase_.resize(cfg_.numRegions);
    regionFirstSite_.resize(cfg_.numRegions);
    regionNumSites_.resize(cfg_.numRegions);
    staticInstructions_ = 0;

    // Scatter region base addresses across a large code segment the
    // way linked binaries do: branch PCs must be dense and
    // irregular in their low bits or predictor indexing degenerates.
    uint64_t codeSpan = std::max<uint64_t>(
        64ULL << 20, cfg_.numRegions * kRegionBytes * 8);
    std::vector<uint64_t> claimed;
    claimed.reserve(cfg_.numRegions);
    for (unsigned r = 0; r < cfg_.numRegions; ++r) {
        for (;;) {
            uint64_t slot = rng.nextBelow(codeSpan / kRegionBytes);
            bool clash = false;
            for (uint64_t c : claimed) {
                if (c == slot) {
                    clash = true;
                    break;
                }
            }
            if (!clash) {
                claimed.push_back(slot);
                regionBase_[r] = kCodeBase + slot * kRegionBytes +
                                 (rng.nextBelow(64) * kInstrBytes);
                break;
            }
        }
    }

    for (unsigned r = 0; r < cfg_.numRegions; ++r) {
        unsigned n = static_cast<unsigned>(
            rng.nextRange(cfg_.minBranchesPerRegion,
                          cfg_.maxBranchesPerRegion));
        regionFirstSite_[r] = static_cast<uint32_t>(sites_.size());
        regionNumSites_[r] = n;
        uint64_t base = regionBase_[r];
        for (unsigned i = 0; i < n; ++i) {
            BranchSite s;
            s.pc = base + (i + 1) * kInstrBytes;
            s.kind = pickKind();
            s.inputSensitive =
                rng.nextBool(cfg_.inputSensitiveFrac);
            switch (s.kind) {
              case BehaviorKind::Biased:
                // The majority direction is code structure (an error
                // path stays an error path across inputs); only the
                // residual rate varies per input.
                s.takenBiasedDir = rng.nextBool(0.85);
                break;
              case BehaviorKind::Loop:
                s.loopPeriod = static_cast<unsigned>(
                    rng.nextRange(cfg_.loopPeriodMin,
                                  cfg_.loopPeriodMax));
                break;
              case BehaviorKind::ShortHistory:
                s.formula = randomFormula(rng, cfg_.opMix);
                s.lengthIdx = 0;
                s.histLen = static_cast<unsigned>(
                    rng.nextRange(cfg_.shortHistBitsMin,
                                  cfg_.shortHistBitsMax));
                s.noise = cfg_.histNoiseMin +
                          rng.nextDouble() *
                              (cfg_.histNoiseMax - cfg_.histNoiseMin);
                break;
              case BehaviorKind::HashedHistory:
                s.formula = randomFormula(rng, cfg_.opMix);
                s.lengthIdx = static_cast<unsigned>(
                    rng.nextRange(cfg_.minCorrelationIdx,
                                  cfg_.maxCorrelationIdx));
                s.histLen = lengths_[s.lengthIdx];
                s.noise = cfg_.histNoiseMin +
                          rng.nextDouble() *
                              (cfg_.histNoiseMax - cfg_.histNoiseMin);
                break;
              case BehaviorKind::Random:
                break;
            }
            sites_.push_back(s);
        }
        staticInstructions_ += static_cast<uint64_t>(
            n * cfg_.avgInstGap + n + 2);
    }

    // Request types: fixed region sequences drawn with a Zipf over
    // regions (hot helper regions appear in many types).
    std::vector<double> regionCdf(cfg_.numRegions);
    std::vector<uint32_t> regionRank = rng.permutation(cfg_.numRegions);
    double sum = 0.0;
    for (unsigned r = 0; r < cfg_.numRegions; ++r) {
        sum += std::pow(static_cast<double>(regionRank[r] + 1),
                        -cfg_.regionZipfTheta);
        regionCdf[r] = sum;
    }
    for (auto &v : regionCdf)
        v /= sum;

    requestTypes_.resize(cfg_.numRequestTypes);
    for (auto &type : requestTypes_) {
        unsigned len = static_cast<unsigned>(
            rng.nextRange(cfg_.requestLenMin, cfg_.requestLenMax));
        type.reserve(len);
        for (unsigned i = 0; i < len; ++i) {
            double u = rng.nextDouble();
            auto it = std::lower_bound(regionCdf.begin(),
                                       regionCdf.end(), u);
            if (it == regionCdf.end())
                --it;
            type.push_back(
                static_cast<uint32_t>(it - regionCdf.begin()));
        }
    }
}

void
AppWorkload::buildInputView()
{
    // Request-type popularity: a base rank permutation derived from
    // the structural seed, partially reshuffled per input (different
    // inputs exercise different query/request mixes).
    Rng baseRng(mix64(cfg_.seed ^ 0x5EEDBA5EULL));
    inputRank_ = baseRng.permutation(cfg_.numRequestTypes);

    if (inputId_ != 0 && cfg_.inputRankShuffle > 0.0) {
        Rng inRng(mix64(cfg_.seed) ^ mix64(0x1000 + inputId_));
        auto swaps = static_cast<uint64_t>(
            cfg_.inputRankShuffle * cfg_.numRequestTypes);
        for (uint64_t i = 0; i < swaps; ++i) {
            size_t a = inRng.nextBelow(cfg_.numRequestTypes);
            size_t b = inRng.nextBelow(cfg_.numRequestTypes);
            std::swap(inputRank_[a], inputRank_[b]);
        }
    }

    typeCdf_ = cdfFromRank(inputRank_);

    // Per-input parameters for biased/random sites. Input-sensitive
    // sites derive their parameters from the actual input id; stable
    // sites always use input 0's stream.
    for (auto &s : sites_) {
        uint64_t salt = s.inputSensitive ? inputId_ : 0;
        Rng prng(mix64(cfg_.seed ^ s.pc) ^ mix64(0x2000 + salt));
        switch (s.kind) {
          case BehaviorKind::Biased: {
            // Mostly strongly taken-biased, some not-taken-biased
            // (Fig. 7: always-taken 23.3% vs never-taken 5.9%).
            // Input-sensitive sites see a higher residual rate on
            // non-training inputs, never a direction flip.
            double flipCap = s.inputSensitive && salt != 0
                ? 4.0 * cfg_.biasNoiseMax
                : cfg_.biasNoiseMax;
            double flip = prng.nextDouble() * flipCap;
            s.param = s.takenBiasedDir ? 1.0 - flip : flip;
            break;
          }
          case BehaviorKind::Random: {
            s.param = cfg_.randomPMin +
                      prng.nextDouble() *
                          (cfg_.randomPMax - cfg_.randomPMin);
            break;
          }
          case BehaviorKind::ShortHistory:
          case BehaviorKind::HashedHistory: {
            if (s.inputSensitive) {
                // The correlation weakens on other inputs.
                s.noise = std::min(
                    0.5, s.noise + 0.08 * prng.nextDouble() *
                                       (salt != 0 ? 1.0 : 0.0));
            }
            break;
          }
          case BehaviorKind::Loop:
            break;
        }
    }

    // Snapshot the phase-0 view so drift can always re-derive from
    // (and rewind back to) it.
    baseDyn_.resize(sites_.size());
    for (size_t i = 0; i < sites_.size(); ++i)
        baseDyn_[i] = SiteDyn{sites_[i].param, sites_[i].noise,
                              sites_[i].formula};
    baseTypeCdf_ = typeCdf_;
    driftSeg_ = ~0ULL;
}

std::vector<double>
AppWorkload::cdfFromRank(const std::vector<uint32_t> &rank) const
{
    std::vector<double> cdf(cfg_.numRequestTypes);
    double sum = 0.0;
    for (unsigned t = 0; t < cfg_.numRequestTypes; ++t) {
        sum += std::pow(static_cast<double>(rank[t] + 1),
                        -cfg_.zipfTheta);
        cdf[t] = sum;
    }
    for (auto &v : cdf)
        v /= sum;
    return cdf;
}

void
AppWorkload::computePhaseView(unsigned phase,
                              std::vector<SiteDyn> &dyn,
                              std::vector<double> &cdf) const
{
    dyn = baseDyn_;
    if (phase == 0) {
        cdf = baseTypeCdf_;
        return;
    }

    // Everything below is a pure function of (structural seed, drift
    // seed, phase): views are recomputed identically after rewind and
    // across shards.
    Rng rng(mix64(cfg_.seed ^ drift_.seed) ^
            mix64(0xD41F7000ULL + phase));

    std::vector<uint32_t> rank = inputRank_;
    auto swaps = static_cast<uint64_t>(drift_.intensity *
                                       cfg_.numRequestTypes);
    for (uint64_t i = 0; i < swaps; ++i) {
        size_t a = rng.nextBelow(cfg_.numRequestTypes);
        size_t b = rng.nextBelow(cfg_.numRequestTypes);
        std::swap(rank[a], rank[b]);
    }
    cdf = cdfFromRank(rank);

    for (size_t i = 0; i < dyn.size(); ++i) {
        const BranchSite &s = sites_[i];
        if (!rng.nextBool(drift_.intensity))
            continue;
        switch (s.kind) {
          case BehaviorKind::Biased: {
            // The majority direction is structural and survives the
            // phase change; only the residual rate moves.
            double flip = rng.nextDouble() * 4.0 * cfg_.biasNoiseMax;
            dyn[i].param = s.takenBiasedDir ? 1.0 - flip : flip;
            break;
          }
          case BehaviorKind::Random:
            dyn[i].param = cfg_.randomPMin +
                           rng.nextDouble() *
                               (cfg_.randomPMax - cfg_.randomPMin);
            break;
          case BehaviorKind::ShortHistory:
          case BehaviorKind::HashedHistory:
            // A different formula over the same history bits: the
            // site stays correlated, but hints trained on the old
            // phase systematically mispredict it.
            dyn[i].formula = randomFormula(rng, cfg_.opMix);
            dyn[i].noise = cfg_.histNoiseMin +
                           rng.nextDouble() * (cfg_.histNoiseMax -
                                               cfg_.histNoiseMin);
            break;
          case BehaviorKind::Loop:
            break;
        }
    }
}

void
AppWorkload::installView(const std::vector<SiteDyn> &dyn,
                         const std::vector<double> &cdf)
{
    whisper_assert(dyn.size() == sites_.size());
    for (size_t i = 0; i < sites_.size(); ++i) {
        sites_[i].param = dyn[i].param;
        sites_[i].noise = dyn[i].noise;
        sites_[i].formula = dyn[i].formula;
    }
    typeCdf_ = cdf;
}

void
AppWorkload::applyDriftView()
{
    if (!drift_.active())
        return;

    uint64_t seg = 0;
    switch (drift_.kind) {
      case DriftKind::Phase:
        seg = emitted_ / drift_.periodRecords;
        break;
      case DriftKind::Gradual:
        seg = (emitted_ * kGradualSteps) / drift_.periodRecords;
        break;
      case DriftKind::Adversarial:
        seg = emitted_ >= drift_.periodRecords ? 1 : 0;
        break;
      case DriftKind::None:
        return;
    }
    if (seg == driftSeg_)
        return;
    driftSeg_ = seg;

    std::vector<SiteDyn> dyn;
    std::vector<double> cdf;
    switch (drift_.kind) {
      case DriftKind::Phase:
        computePhaseView(
            static_cast<unsigned>(seg % drift_.phases), dyn, cdf);
        break;
      case DriftKind::Gradual: {
        // Blend the surrounding phase views; formulas can't be
        // interpolated, so each site flips at a deterministic,
        // staggered point inside the window.
        uint64_t window = seg / kGradualSteps;
        double alpha = static_cast<double>(seg % kGradualSteps) /
                       static_cast<double>(kGradualSteps);
        computePhaseView(
            static_cast<unsigned>(window % drift_.phases), dyn, cdf);
        std::vector<SiteDyn> dynB;
        std::vector<double> cdfB;
        computePhaseView(
            static_cast<unsigned>((window + 1) % drift_.phases),
            dynB, cdfB);
        uint64_t salt = mix64(cfg_.seed ^ drift_.seed);
        for (size_t i = 0; i < dyn.size(); ++i) {
            dyn[i].param += alpha * (dynB[i].param - dyn[i].param);
            dyn[i].noise += alpha * (dynB[i].noise - dyn[i].noise);
            if (alpha >= siteSwitchPoint(salt, window, i))
                dyn[i].formula = dynB[i].formula;
        }
        for (size_t t = 0; t < cdf.size(); ++t)
            cdf[t] += alpha * (cdfB[t] - cdf[t]);
        break;
      }
      case DriftKind::Adversarial: {
        dyn = baseDyn_;
        cdf = baseTypeCdf_;
        if (seg == 1) {
            // After the correlated profiling prefix, the selected
            // history-correlated sites become coin flips: any hint
            // (or TAGE entry) trained on the prefix is now worthless
            // on them.
            Rng sel(mix64(cfg_.seed ^ drift_.seed) ^
                    0xADE55A1ULL);
            for (size_t i = 0; i < dyn.size(); ++i) {
                bool hist =
                    sites_[i].kind == BehaviorKind::ShortHistory ||
                    sites_[i].kind == BehaviorKind::HashedHistory;
                bool pick = sel.nextBool(drift_.decorrelate);
                if (hist && pick)
                    dyn[i].noise = 0.5;
            }
        }
        break;
      }
      case DriftKind::None:
        return;
    }
    installView(dyn, cdf);
}

unsigned
AppWorkload::sampleRequestType()
{
    double u = runRng_.nextDouble();
    auto it = std::lower_bound(typeCdf_.begin(), typeCdf_.end(), u);
    if (it == typeCdf_.end())
        --it;
    return static_cast<unsigned>(it - typeCdf_.begin());
}

bool
AppWorkload::resolveOutcome(BranchSite &site)
{
    double u = runRng_.nextDouble();
    bool taken = false;
    switch (site.kind) {
      case BehaviorKind::Biased:
      case BehaviorKind::Random:
        taken = u < site.param;
        break;
      case BehaviorKind::ShortHistory: {
        // Replicate the k raw bits across the formula's 8 inputs so
        // the dependence stays non-degenerate for any tree shape.
        uint64_t raw = history_.lastBits(site.histLen);
        uint64_t bits = 0;
        for (unsigned sh = 0; sh < 8; sh += site.histLen)
            bits |= raw << sh;
        taken = site.formula.evaluate(
            static_cast<uint8_t>(bits & 0xFF));
        if (u < site.noise)
            taken = !taken;
        break;
      }
      case BehaviorKind::HashedHistory: {
        uint8_t bits = static_cast<uint8_t>(
            history_.foldedValue(site.lengthIdx));
        taken = site.formula.evaluate(bits);
        if (u < site.noise)
            taken = !taken;
        break;
      }
      case BehaviorKind::Loop:
        whisper_panic("loops are expanded in emitRegion");
    }
    return taken;
}

void
AppWorkload::emitRegion(unsigned region, uint64_t callPc,
                        BranchKind callKind)
{
    uint64_t base = regionBase_[region];
    auto gap = [&]() {
        double maxGap = 2.0 * cfg_.avgInstGap - 1.0;
        return static_cast<uint16_t>(
            1 + runRng_.nextBelow(static_cast<uint64_t>(maxGap)));
    };

    BranchRecord rec;
    rec.pc = callPc;
    rec.target = base;
    rec.kind = callKind;
    rec.taken = true;
    rec.instGap = gap();
    pending_.push_back(rec);

    uint32_t first = regionFirstSite_[region];
    uint32_t n = regionNumSites_[region];
    for (uint32_t i = 0; i < n; ++i) {
        BranchSite &site = sites_[first + i];
        unsigned repeats = 1;
        if (site.kind == BehaviorKind::Loop)
            repeats = std::min(site.loopPeriod, kMaxLoopEmit);

        for (unsigned it = 0; it < repeats; ++it) {
            bool taken;
            if (site.kind == BehaviorKind::Loop) {
                // Loop back-edge: taken until the final iteration.
                taken = it + 1 < repeats;
            } else {
                taken = resolveOutcome(site);
            }
            ++execCounter_[first + i];
            BranchRecord br;
            br.pc = site.pc;
            br.target = taken ? site.pc - kInstrBytes
                              : site.pc + kInstrBytes;
            br.kind = BranchKind::Conditional;
            br.taken = taken;
            br.instGap = gap();
            pending_.push_back(br);
            history_.push(taken);
        }
    }

    BranchRecord ret;
    ret.pc = base + (n + 1) * kInstrBytes;
    ret.target = callPc + kInstrBytes; // back to the call site
    ret.kind = BranchKind::Return;
    ret.taken = true;
    ret.instGap = gap();
    pending_.push_back(ret);
}

bool
AppWorkload::next(BranchRecord &rec)
{
    if (emitted_ >= numBranches_)
        return false;
    while (pending_.empty()) {
        // Drift is applied at request boundaries only, so one
        // request always runs under a single consistent view.
        applyDriftView();
        unsigned type = sampleRequestType();
        const auto &regions = requestTypes_[type];
        for (size_t i = 0; i < regions.size(); ++i) {
            if (i == 0) {
                // Request entry goes through a shared virtual-
                // dispatch site (indirect call, IBTB territory).
                uint64_t site = kDispatchBase +
                                (type % kDispatchSites) * kInstrBytes;
                emitRegion(regions[i], site, BranchKind::Indirect);
            } else {
                // Body regions are reached via per-region direct
                // call stubs.
                uint64_t stub = kCallStubBase +
                                regions[i] * kInstrBytes;
                emitRegion(regions[i], stub, BranchKind::Call);
            }
        }
    }
    rec = pending_.front();
    pending_.pop_front();
    ++emitted_;
    return true;
}

void
AppWorkload::rewind()
{
    runRng_ = Rng(cfg_.seed ^ (0xABCD0000ULL + inputId_));
    history_.reset();
    pending_.clear();
    std::fill(execCounter_.begin(), execCounter_.end(), 0);
    emitted_ = 0;
    if (driftSeg_ != ~0ULL) {
        installView(baseDyn_, baseTypeCdf_);
        driftSeg_ = ~0ULL;
    }
}

} // namespace whisper
