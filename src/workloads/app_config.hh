/**
 * @file
 * Parameterized application models.
 *
 * The paper profiles 12 proprietary-workload data center
 * applications (Table I) via Intel PT. We model each one as a
 * synthetic control-flow generator whose emitted branch stream
 * reproduces the statistical properties the paper's analysis
 * depends on; see DESIGN.md section 2 for the substitution
 * rationale. A second family models SPEC2017-like benchmarks
 * (small footprint, concentrated mispredictions) for Fig. 5a.
 */

#ifndef WHISPER_WORKLOADS_APP_CONFIG_HH
#define WHISPER_WORKLOADS_APP_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace whisper
{

/** Static behaviour classes assigned to synthetic branches. */
enum class BehaviorKind : uint8_t
{
    Biased,        //!< Bernoulli(p), p near 0 or 1
    Loop,          //!< taken (period-1) times, then one not-taken
    ShortHistory,  //!< Boolean function of the raw last-8 outcomes
    HashedHistory, //!< Boolean function of an 8-bit hash of the
                   //!< last-L outcomes, L from Whisper's series
    Random,        //!< conditional-on-data: independent Bernoulli(p)
};

/** Mix weights over the Fig. 7 formula-op families. */
struct OpFamilyMix
{
    double andW = 0.35;
    double orW = 0.10;
    double implW = 0.15;
    double cnimplW = 0.15;
    double mixedW = 0.25; //!< mixed ops / inverted ("Others")
};

/** Everything that defines one synthetic application. */
struct AppConfig
{
    std::string name;
    uint64_t seed = 1;

    // --- code footprint ---
    unsigned numRegions = 1200;       //!< functions/blocks of hot code
    unsigned minBranchesPerRegion = 6;
    unsigned maxBranchesPerRegion = 28;
    double zipfTheta = 0.55;          //!< request-type popularity skew
    double avgInstGap = 8.0;          //!< instructions between branches

    /**
     * Control flow is organized as request types: each type is a
     * fixed region sequence (think "query plan" or "URL handler"),
     * and execution repeatedly services Zipf-distributed request
     * types. Repeating sequences are what make branch history
     * recur — the predictability that predictor capacity then
     * gates.
     */
    unsigned numRequestTypes = 150;
    unsigned requestLenMin = 4;   //!< regions per request
    unsigned requestLenMax = 14;
    double regionZipfTheta = 0.6; //!< shared-helper-function skew

    // --- behaviour mix (weights, normalized internally) ---
    double wBiased = 0.62;
    double wLoop = 0.04;
    double wShortHistory = 0.18;
    double wHashedHistory = 0.13;
    double wRandom = 0.03;

    // --- behaviour parameters ---
    double biasNoiseMax = 0.008; //!< residual flip rate of biased brs
    double histNoiseMin = 0.005;  //!< noise floor of correlated brs
    double histNoiseMax = 0.06;
    double randomPMin = 0.75;    //!< data-dependent taken-rate band
    double randomPMax = 0.97;
    unsigned loopPeriodMin = 3;
    unsigned loopPeriodMax = 12;
    /** ShortHistory branches depend on the raw last-k outcomes with
     * k drawn from this band: the per-branch context count (2^k)
     * sets how much predictor capacity the class demands. */
    unsigned shortHistBitsMin = 3;
    unsigned shortHistBitsMax = 6;
    /** Correlation lengths are drawn from Whisper's geometric series
     * restricted to [minCorrelationIdx, maxCorrelationIdx]. */
    unsigned minCorrelationIdx = 2;  //!< series index (2 -> len 15)
    unsigned maxCorrelationIdx = 15; //!< series index (15 -> 1024)

    OpFamilyMix opMix;

    /** Fraction of branches whose parameters shift across inputs. */
    double inputSensitiveFrac = 0.08;
    /** Fraction of region popularity ranks reshuffled per input. */
    double inputRankShuffle = 0.08;
};

/**
 * How a workload's statistics move while the stream is running.
 *
 * Every base AppWorkload is stationary per (seed, input): the paper's
 * premise — and the reason whisperd exists — is that production
 * branch behavior is not (PAPER.md SV-A, Figs. 17/18). A DriftSpec
 * schedules deterministic mid-stream change so the adaptive
 * redeploy/rollback machinery can be exercised against the thing it
 * was built for.
 */
enum class DriftKind : uint8_t
{
    None,        //!< stationary (exactly the base workload)
    Phase,       //!< step change every periodRecords, cycling views
    Gradual,     //!< continuous morph between phase views
    Adversarial, //!< correlated profiling prefix, then decorrelation
};

/** Deterministic mid-stream change schedule for an AppWorkload. */
struct DriftSpec
{
    DriftKind kind = DriftKind::None;
    /** Phase length (Phase/Gradual) or the length of the correlated
     * profiling prefix (Adversarial). Must be > 0 when active. */
    uint64_t periodRecords = 0;
    /** Distinct phase views cycled through (Phase/Gradual). */
    unsigned phases = 4;
    /** Fraction of region popularity ranks and branch-site
     * parameters (bias rates, history formulas) rotated per phase. */
    double intensity = 0.5;
    /** Adversarial: fraction of history-correlated sites that turn
     * into coin flips after the prefix (1.0 = global). */
    double decorrelate = 1.0;
    /** Extra salt so one app can run many independent schedules. */
    uint64_t seed = 0;

    bool active() const { return kind != DriftKind::None; }
};

/**
 * Parse a drift spec string: `KIND[:key=value,...]` with KIND one of
 * none, phase, gradual, adversarial and keys period, phases,
 * intensity, frac (decorrelate), seed. E.g.
 * `phase:period=50000,phases=4,intensity=0.5` or
 * `adversarial:period=100000,frac=0.5`.
 * @return false (with *error set) on malformed input.
 */
bool parseDriftSpec(const std::string &spec, DriftSpec *out,
                    std::string *error);

/** Canonical one-line rendering of @p spec (parseable again). */
std::string describeDriftSpec(const DriftSpec &spec);

/** The 12 data center applications of Table I. */
const std::vector<AppConfig> &dataCenterApps();

/** SPEC2017-like integer benchmarks (Fig. 5a). */
const std::vector<AppConfig> &specApps();

/** Lookup by name across both catalogs; fatal if unknown. */
const AppConfig &appByName(const std::string &name);

/** Lookup by name across both catalogs; nullptr if unknown (for
 * callers that want to report the miss themselves). */
const AppConfig *findAppByName(const std::string &name);

/** Names of every catalog application, data-center apps first. */
std::vector<std::string> allAppNames();

} // namespace whisper

#endif // WHISPER_WORKLOADS_APP_CONFIG_HH
