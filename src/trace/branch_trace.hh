/**
 * @file
 * Materialized branch trace with binary (de)serialization.
 */

#ifndef WHISPER_TRACE_BRANCH_TRACE_HH
#define WHISPER_TRACE_BRANCH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/branch_record.hh"
#include "trace/branch_source.hh"
#include "util/io_status.hh"

namespace whisper
{

/**
 * An in-memory branch trace.
 *
 * Stores the full record sequence plus identifying metadata (the
 * application name and input id the trace was collected from).
 */
class BranchTrace
{
  public:
    /** .whrt on-disk format identity, shared with the streaming
     * reader in src/service/trace_stream.*. The layout is: magic,
     * version, name length + bytes, input id, record count, then the
     * record array. Version 2 stores the array as CRC32-framed
     * chunks (frame magic, record count, CRC, records) so damage is
     * localized to one frame; version 1 (raw array) is still read. */
    static constexpr uint32_t kFileMagic = 0x57485254; // "WHRT"
    static constexpr uint32_t kFileVersion = 2;
    static constexpr uint32_t kFrameMagic = 0x57484652; // "WHFR"
    /** Upper bound a reader accepts for one frame's record count —
     * turns hostile length fields into errors, not allocations. */
    static constexpr uint32_t kMaxFrameRecords = 1u << 20;
    /** Frame granularity save() uses. */
    static constexpr uint32_t kDefaultFrameRecords = 16'384;

    BranchTrace() = default;
    BranchTrace(std::string app, uint32_t inputId)
        : app_(std::move(app)), inputId_(inputId)
    {
    }

    void
    append(const BranchRecord &rec)
    {
        records_.push_back(rec);
        instructions_ += rec.instGap + 1;
        if (rec.isConditional())
            ++conditionals_;
    }

    /** Drain @p source (up to @p maxRecords) into this trace. */
    void fill(BranchSource &source, uint64_t maxRecords);

    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const BranchRecord &operator[](size_t i) const { return records_[i]; }

    /** Total retired instructions represented by the trace. */
    uint64_t instructions() const { return instructions_; }
    /** Number of conditional-branch records. */
    uint64_t conditionals() const { return conditionals_; }

    const std::string &app() const { return app_; }
    uint32_t inputId() const { return inputId_; }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    /** Binary round-trip. save() overwrites @p path and returns
     * false on I/O failure; load() replaces the current contents and
     * reports missing-vs-corrupt through its IoStatus. */
    bool save(const std::string &path) const;
    IoStatus load(const std::string &path);

  private:
    std::string app_;
    uint32_t inputId_ = 0;
    std::vector<BranchRecord> records_;
    uint64_t instructions_ = 0;
    uint64_t conditionals_ = 0;
};

/** BranchSource view over a materialized trace. */
class TraceSource : public BranchSource
{
  public:
    explicit TraceSource(const BranchTrace &trace) : trace_(trace) {}

    bool
    next(BranchRecord &rec) override
    {
        if (pos_ >= trace_.size())
            return false;
        rec = trace_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

  private:
    const BranchTrace &trace_;
    size_t pos_ = 0;
};

/**
 * BranchSource adaptor that truncates an underlying source after a
 * fixed number of records (used for warm-up/length sweeps).
 */
class LimitSource : public BranchSource
{
  public:
    LimitSource(BranchSource &inner, uint64_t limit)
        : inner_(inner), limit_(limit)
    {
    }

    bool
    next(BranchRecord &rec) override
    {
        if (produced_ >= limit_)
            return false;
        if (!inner_.next(rec))
            return false;
        ++produced_;
        return true;
    }

    void
    rewind() override
    {
        inner_.rewind();
        produced_ = 0;
    }

  private:
    BranchSource &inner_;
    uint64_t limit_;
    uint64_t produced_ = 0;
};

} // namespace whisper

#endif // WHISPER_TRACE_BRANCH_TRACE_HH
