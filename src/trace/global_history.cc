#include "trace/global_history.hh"

namespace whisper
{

FoldedHistory::FoldedHistory(unsigned length, unsigned width)
    : length_(length), width_(width), outPoint_(length % width)
{
    whisper_assert(length >= 1);
    whisper_assert(width >= 1 && width <= 32);
}

void
FoldedHistory::update(bool newBit, bool evictedBit)
{
    folded_ = (folded_ << 1) | static_cast<uint32_t>(newBit);
    folded_ ^= static_cast<uint32_t>(evictedBit) << outPoint_;
    folded_ ^= folded_ >> width_;
    folded_ &= maskBits(width_);
}

GlobalHistory::GlobalHistory(unsigned capacity)
    : capacity_(capacity), bits_(capacity, 0)
{
    whisper_assert(capacity >= 1);
}

void
GlobalHistory::push(bool taken)
{
    for (auto &view : views_) {
        // The bit at distance length-1 (0-based) is about to move out
        // of the window once the new bit enters.
        bool evicted = count_ >= view.length()
            ? bit(view.length() - 1) : false;
        view.update(taken, evicted);
    }
    bits_[head_] = taken ? 1 : 0;
    head_ = (head_ + 1) % capacity_;
    ++count_;
}

uint64_t
GlobalHistory::lastBits(unsigned n) const
{
    whisper_assert(n <= 64 && n <= capacity_);
    uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(bit(i)) << i;
    return v;
}

uint32_t
GlobalHistory::foldedHash(unsigned length, unsigned width) const
{
    whisper_assert(length <= capacity_);
    whisper_assert(width >= 1 && width <= 32);
    uint32_t folded = 0;
    // Walk the history oldest-to-newest so the construction matches
    // FoldedHistory's insertion order exactly.
    for (unsigned i = length; i-- > 0;) {
        bool b = count_ > i ? bit(i) : false;
        folded = (folded << 1) | static_cast<uint32_t>(b);
        folded ^= folded >> width;
        folded &= maskBits(width);
    }
    return folded;
}

size_t
GlobalHistory::addFoldedView(unsigned length, unsigned width)
{
    whisper_assert(count_ == 0,
                   "folded views must be added before pushes");
    whisper_assert(length <= capacity_);
    views_.emplace_back(length, width);
    return views_.size() - 1;
}

void
GlobalHistory::reset()
{
    std::fill(bits_.begin(), bits_.end(), 0);
    head_ = 0;
    count_ = 0;
    for (auto &view : views_)
        view.reset();
}

} // namespace whisper
