#include "trace/cbp_reader.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace whisper
{

namespace
{

constexpr uint16_t kDefaultGap = 8;

bool
parseHex(const std::string &tok, uint64_t *out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(tok.c_str(), &end, 16);
    return end && *end == '\0';
}

bool
parseDir(const std::string &tok, bool *out)
{
    if (tok == "1" || tok == "T" || tok == "t") {
        *out = true;
        return true;
    }
    if (tok == "0" || tok == "N" || tok == "n") {
        *out = false;
        return true;
    }
    return false;
}

bool
parseKind(const std::string &tok, BranchKind *out)
{
    if (tok.size() != 1)
        return false;
    switch (tok[0]) {
      case 'C': case 'c': *out = BranchKind::Conditional; return true;
      case 'J': case 'j':
      case 'U': case 'u': *out = BranchKind::Unconditional; return true;
      case 'L': case 'l': *out = BranchKind::Call; return true;
      case 'R': case 'r': *out = BranchKind::Return; return true;
      case 'I': case 'i': *out = BranchKind::Indirect; return true;
    }
    return false;
}

char
kindChar(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Conditional: return 'C';
      case BranchKind::Unconditional: return 'J';
      case BranchKind::Call: return 'L';
      case BranchKind::Return: return 'R';
      case BranchKind::Indirect: return 'I';
    }
    return 'C';
}

enum class LineResult { Record, Skip, Error };

/** Parse one line; metadata comments update @p app / @p inputId. */
LineResult
parseCbpLine(const std::string &line, BranchRecord *rec,
             std::string *app, uint32_t *inputId, std::string *error)
{
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos)
        return LineResult::Skip;

    if (line[start] == '#') {
        std::string body = line.substr(start + 1);
        size_t b = body.find_first_not_of(" \t");
        if (b != std::string::npos) {
            body = body.substr(b);
            if (body.rfind("app=", 0) == 0) {
                std::string v = body.substr(4);
                size_t e = v.find_last_not_of(" \t\r");
                *app = e == std::string::npos ? std::string()
                                              : v.substr(0, e + 1);
            } else if (body.rfind("input=", 0) == 0) {
                *inputId = static_cast<uint32_t>(
                    std::strtoul(body.c_str() + 6, nullptr, 10));
            }
        }
        return LineResult::Skip;
    }

    std::istringstream iss(line);
    std::vector<std::string> toks;
    std::string tok;
    while (iss >> tok)
        toks.push_back(tok);
    if (toks.size() < 2 || toks.size() > 5) {
        *error = "expected 'PC DIR [TARGET [KIND [GAP]]]', got " +
                 std::to_string(toks.size()) + " field(s)";
        return LineResult::Error;
    }

    BranchRecord r;
    if (!parseHex(toks[0], &r.pc)) {
        *error = "bad hex pc '" + toks[0] + "'";
        return LineResult::Error;
    }
    if (!parseDir(toks[1], &r.taken)) {
        *error = "bad direction '" + toks[1] + "' (1/0/T/N)";
        return LineResult::Error;
    }
    r.target = r.pc + 4;
    r.kind = BranchKind::Conditional;
    r.instGap = kDefaultGap;
    if (toks.size() >= 3 && !parseHex(toks[2], &r.target)) {
        *error = "bad hex target '" + toks[2] + "'";
        return LineResult::Error;
    }
    if (toks.size() >= 4 && !parseKind(toks[3], &r.kind)) {
        *error = "bad kind '" + toks[3] + "' (C/J/L/R/I)";
        return LineResult::Error;
    }
    if (toks.size() >= 5) {
        char *end = nullptr;
        uint64_t gap = std::strtoull(toks[4].c_str(), &end, 10);
        if (!end || *end != '\0' || gap > UINT16_MAX) {
            *error = "bad gap '" + toks[4] + "'";
            return LineResult::Error;
        }
        r.instGap = static_cast<uint16_t>(gap);
    }
    *rec = r;
    return LineResult::Record;
}

IoStatus
lineError(const std::string &path, uint64_t lineNo,
          const std::string &why)
{
    return IoStatus::corruptFile(path, "line " +
                                           std::to_string(lineNo) +
                                           ": " + why);
}

} // namespace

IoStatus
loadCbpTrace(const std::string &path, BranchTrace *out)
{
    std::ifstream in(path);
    if (!in)
        return IoStatus::missingFile(path);

    std::string app;
    uint32_t inputId = 0;
    std::vector<BranchRecord> records;
    std::string line, error;
    uint64_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        BranchRecord rec;
        switch (parseCbpLine(line, &rec, &app, &inputId, &error)) {
          case LineResult::Record:
            records.push_back(rec);
            break;
          case LineResult::Skip:
            break;
          case LineResult::Error:
            return lineError(path, lineNo, error);
        }
    }
    if (records.empty())
        return IoStatus::corruptFile(path, "no branch records");

    *out = BranchTrace(app, inputId);
    for (const auto &rec : records)
        out->append(rec);
    return IoStatus::okStatus();
}

bool
saveCbpTrace(const BranchTrace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    bool ok =
        std::fprintf(f, "# whisper cbp-style branch trace\n") >= 0 &&
        std::fprintf(f, "# app=%s\n", trace.app().c_str()) >= 0 &&
        std::fprintf(f, "# input=%u\n", trace.inputId()) >= 0 &&
        std::fprintf(f, "# format: pc dir target kind gap\n") >= 0;
    for (const auto &rec : trace) {
        if (!ok)
            break;
        ok = std::fprintf(
                 f, "%llx %d %llx %c %u\n",
                 static_cast<unsigned long long>(rec.pc),
                 rec.taken ? 1 : 0,
                 static_cast<unsigned long long>(rec.target),
                 kindChar(rec.kind),
                 static_cast<unsigned>(rec.instGap)) >= 0;
    }
    if (std::fclose(f) != 0)
        ok = false;
    return ok;
}

CbpFileSource::CbpFileSource(const std::string &path)
    : path_(path), in_(path)
{
    if (!in_)
        status_ = IoStatus::missingFile(path);
}

bool
CbpFileSource::next(BranchRecord &rec)
{
    if (!status_.ok())
        return false;
    std::string line, error;
    while (std::getline(in_, line)) {
        ++lineNo_;
        switch (parseCbpLine(line, &rec, &app_, &inputId_, &error)) {
          case LineResult::Record:
            return true;
          case LineResult::Skip:
            break;
          case LineResult::Error:
            status_ = lineError(path_, lineNo_, error);
            return false;
        }
    }
    return false;
}

void
CbpFileSource::rewind()
{
    if (status_.corrupt())
        return; // a damaged file stays damaged
    in_.clear();
    in_.seekg(0);
    lineNo_ = 0;
    if (!in_)
        status_ = IoStatus::missingFile(path_);
}

} // namespace whisper
