#include "trace/branch_trace.hh"

#include <cstdio>
#include <cstring>

#include "util/crc32.hh"

namespace whisper
{

namespace
{

constexpr uint32_t kMagic = BranchTrace::kFileMagic;
constexpr uint32_t kVersion = BranchTrace::kFileVersion;
constexpr uint32_t kFrameMagic = BranchTrace::kFrameMagic;
constexpr uint32_t kMaxFrameRecords = BranchTrace::kMaxFrameRecords;

} // namespace

void
BranchTrace::fill(BranchSource &source, uint64_t maxRecords)
{
    BranchRecord rec;
    for (uint64_t i = 0; i < maxRecords && source.next(rec); ++i)
        append(rec);
}

bool
BranchTrace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    bool ok = true;
    auto put = [&](const void *p, size_t n) {
        if (ok && std::fwrite(p, 1, n, f) != n)
            ok = false;
    };

    uint32_t magic = kMagic, version = kVersion;
    put(&magic, sizeof(magic));
    put(&version, sizeof(version));
    uint32_t nameLen = static_cast<uint32_t>(app_.size());
    put(&nameLen, sizeof(nameLen));
    put(app_.data(), nameLen);
    put(&inputId_, sizeof(inputId_));
    uint64_t n = records_.size();
    put(&n, sizeof(n));

    // CRC-framed record array: each frame checks independently, so a
    // reader can skip one damaged frame instead of losing the file.
    // Records are staged through a zeroed buffer because BranchRecord
    // has tail padding; writing the structs raw would leak
    // indeterminate bytes and make identical traces byte-different.
    std::vector<BranchRecord> staged;
    for (size_t at = 0; at < records_.size();
         at += kDefaultFrameRecords) {
        uint32_t count = static_cast<uint32_t>(
            std::min<size_t>(kDefaultFrameRecords,
                             records_.size() - at));
        size_t bytes = count * sizeof(BranchRecord);
        staged.resize(count);
        std::memset(static_cast<void *>(staged.data()), 0, bytes);
        for (uint32_t i = 0; i < count; ++i) {
            const BranchRecord &rec = records_[at + i];
            staged[i].pc = rec.pc;
            staged[i].target = rec.target;
            staged[i].kind = rec.kind;
            staged[i].taken = rec.taken;
            staged[i].instGap = rec.instGap;
        }
        uint32_t crc = crc32(staged.data(), bytes);
        uint32_t frameMagic = kFrameMagic;
        put(&frameMagic, sizeof(frameMagic));
        put(&count, sizeof(count));
        put(&crc, sizeof(crc));
        put(staged.data(), bytes);
    }

    std::fclose(f);
    return ok;
}

IoStatus
BranchTrace::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return IoStatus::missingFile(path);

    bool ok = true;
    auto get = [&](void *p, size_t n) {
        if (ok && std::fread(p, 1, n, f) != n)
            ok = false;
    };
    auto fail = [&](const char *why) {
        std::fclose(f);
        return IoStatus::corruptFile(path, why);
    };

    uint32_t magic = 0, version = 0;
    get(&magic, sizeof(magic));
    get(&version, sizeof(version));
    if (!ok || magic != kMagic)
        return fail("bad magic (not a .whrt trace)");
    if (version != 1 && version != kVersion)
        return fail("unsupported format version");

    uint32_t nameLen = 0;
    get(&nameLen, sizeof(nameLen));
    if (!ok || nameLen > 4096)
        return fail("oversized app-name length field");
    std::string name(nameLen, '\0');
    get(name.data(), nameLen);
    uint32_t inputId = 0;
    get(&inputId, sizeof(inputId));
    uint64_t n = 0;
    get(&n, sizeof(n));
    if (!ok)
        return fail("truncated header");

    // Cap the claimed record count by what the file can actually
    // hold, so a corrupted (or hostile) length field errors out
    // instead of driving a multi-gigabyte allocation.
    long bodyStart = std::ftell(f);
    if (bodyStart < 0 || std::fseek(f, 0, SEEK_END) != 0)
        return fail("unseekable file");
    long fileEnd = std::ftell(f);
    std::fseek(f, bodyStart, SEEK_SET);
    uint64_t bodyBytes = static_cast<uint64_t>(fileEnd - bodyStart);
    if (n * sizeof(BranchRecord) > bodyBytes)
        return fail("record count exceeds file size");

    std::vector<BranchRecord> records;
    records.reserve(n);
    if (version == 1) {
        records.resize(n);
        if (!records.empty() &&
            std::fread(records.data(), sizeof(BranchRecord), n, f) !=
                n) {
            return fail("truncated record array");
        }
    } else {
        while (records.size() < n) {
            uint32_t frameMagic = 0, count = 0, crc = 0;
            get(&frameMagic, sizeof(frameMagic));
            get(&count, sizeof(count));
            get(&crc, sizeof(crc));
            if (!ok || frameMagic != kFrameMagic)
                return fail("bad frame header");
            if (count == 0 || count > kMaxFrameRecords ||
                records.size() + count > n) {
                return fail("frame record count out of bounds");
            }
            size_t at = records.size();
            records.resize(at + count);
            if (std::fread(records.data() + at, sizeof(BranchRecord),
                           count, f) != count) {
                return fail("truncated frame");
            }
            if (crc32(records.data() + at,
                      count * sizeof(BranchRecord)) != crc) {
                return fail("frame CRC mismatch");
            }
        }
    }
    std::fclose(f);

    app_ = std::move(name);
    inputId_ = inputId;
    records_ = std::move(records);
    instructions_ = 0;
    conditionals_ = 0;
    for (const auto &rec : records_) {
        instructions_ += rec.instGap + 1;
        if (rec.isConditional())
            ++conditionals_;
    }
    return IoStatus::okStatus();
}

} // namespace whisper
