#include "trace/branch_trace.hh"

#include <cstdio>
#include <cstring>

namespace whisper
{

namespace
{

constexpr uint32_t kMagic = BranchTrace::kFileMagic;
constexpr uint32_t kVersion = BranchTrace::kFileVersion;

} // namespace

void
BranchTrace::fill(BranchSource &source, uint64_t maxRecords)
{
    BranchRecord rec;
    for (uint64_t i = 0; i < maxRecords && source.next(rec); ++i)
        append(rec);
}

bool
BranchTrace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    bool ok = true;
    auto put = [&](const void *p, size_t n) {
        if (ok && std::fwrite(p, 1, n, f) != n)
            ok = false;
    };

    uint32_t magic = kMagic, version = kVersion;
    put(&magic, sizeof(magic));
    put(&version, sizeof(version));
    uint32_t nameLen = static_cast<uint32_t>(app_.size());
    put(&nameLen, sizeof(nameLen));
    put(app_.data(), nameLen);
    put(&inputId_, sizeof(inputId_));
    uint64_t n = records_.size();
    put(&n, sizeof(n));
    put(records_.data(), n * sizeof(BranchRecord));

    std::fclose(f);
    return ok;
}

bool
BranchTrace::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;

    bool ok = true;
    auto get = [&](void *p, size_t n) {
        if (ok && std::fread(p, 1, n, f) != n)
            ok = false;
    };

    uint32_t magic = 0, version = 0;
    get(&magic, sizeof(magic));
    get(&version, sizeof(version));
    if (!ok || magic != kMagic || version != kVersion) {
        std::fclose(f);
        return false;
    }

    uint32_t nameLen = 0;
    get(&nameLen, sizeof(nameLen));
    if (!ok || nameLen > 4096) {
        std::fclose(f);
        return false;
    }
    std::string name(nameLen, '\0');
    get(name.data(), nameLen);
    uint32_t inputId = 0;
    get(&inputId, sizeof(inputId));
    uint64_t n = 0;
    get(&n, sizeof(n));
    std::vector<BranchRecord> records(n);
    get(records.data(), n * sizeof(BranchRecord));
    std::fclose(f);
    if (!ok)
        return false;

    app_ = std::move(name);
    inputId_ = inputId;
    records_ = std::move(records);
    instructions_ = 0;
    conditionals_ = 0;
    for (const auto &rec : records_) {
        instructions_ += rec.instGap + 1;
        if (rec.isConditional())
            ++conditionals_;
    }
    return true;
}

} // namespace whisper
