/**
 * @file
 * The unit of control-flow tracing: one executed branch.
 *
 * This mirrors the information Intel PT + LBR deliver in the paper's
 * production profiling step: branch PC, its kind, the resolved
 * direction, the target, and the number of non-branch instructions
 * retired since the previous branch (used for MPKI and IPC
 * accounting).
 */

#ifndef WHISPER_TRACE_BRANCH_RECORD_HH
#define WHISPER_TRACE_BRANCH_RECORD_HH

#include <cstdint>

namespace whisper
{

/** Control-transfer classes distinguished by the frontend model. */
enum class BranchKind : uint8_t
{
    Conditional,    //!< direct conditional branch
    Unconditional,  //!< direct unconditional jump
    Call,           //!< direct call
    Return,         //!< function return
    Indirect,       //!< indirect jump/call
};

/** One dynamic branch execution. */
struct BranchRecord
{
    uint64_t pc = 0;        //!< address of the branch instruction
    uint64_t target = 0;    //!< taken target address
    BranchKind kind = BranchKind::Conditional;
    bool taken = false;     //!< resolved direction
    /**
     * Sequential (non-branch) instructions retired since the previous
     * branch record. The trace's instruction count is the sum of all
     * instGap values plus one per branch.
     */
    uint16_t instGap = 0;

    bool isConditional() const { return kind == BranchKind::Conditional; }
};

} // namespace whisper

#endif // WHISPER_TRACE_BRANCH_RECORD_HH
