/**
 * @file
 * CBP-style external trace import/export.
 *
 * Championship-style branch-prediction traces (and course harnesses
 * derived from them, e.g. CSE240A) are line-oriented text: a branch
 * PC and a resolved direction per line. This adapter accepts that
 * family of formats and exposes the stream behind the repo's own
 * BranchSource interface so foreign traces run through every
 * simulator, profiler, and tool unchanged.
 *
 * Accepted line grammar (whitespace-separated):
 *
 *     PC DIR [TARGET [KIND [GAP]]]
 *
 *  - PC, TARGET: hex, with or without a 0x prefix
 *  - DIR: 1/0 or T/N (case-insensitive)
 *  - KIND: C (conditional), J (unconditional jump), L (call),
 *    R (return), I (indirect); default C
 *  - GAP: decimal non-branch instructions since the previous record
 *    (BranchRecord::instGap); default 8
 *  - TARGET defaults to PC + 4 when the source format omits it
 *
 * Lines starting with '#' are comments; `# app=NAME` and
 * `# input=N` comments carry trace metadata. The full grammar is
 * what saveCbpTrace() emits, so a .whrt trace exported to .cbp and
 * re-imported reproduces the original record stream exactly;
 * minimal two-column foreign files import with the defaults.
 */

#ifndef WHISPER_TRACE_CBP_READER_HH
#define WHISPER_TRACE_CBP_READER_HH

#include <fstream>
#include <string>

#include "trace/branch_trace.hh"
#include "util/io_status.hh"

namespace whisper
{

/** Materialize a CBP-style text trace. Missing file vs. malformed
 * line are distinguished through the IoStatus, with the line number
 * named in the message. */
IoStatus loadCbpTrace(const std::string &path, BranchTrace *out);

/** Write @p trace as CBP-style text (full grammar, with metadata
 * comments). @return false on I/O failure. */
bool saveCbpTrace(const BranchTrace &trace, const std::string &path);

/**
 * Streaming BranchSource over a CBP-style file on disk.
 *
 * The file is re-read on rewind(), so multi-pass consumers
 * (profilers, trainers) work without materializing the trace.
 * Construction reports open failures through status(); a malformed
 * line ends the stream early and is reported the same way.
 */
class CbpFileSource : public BranchSource
{
  public:
    explicit CbpFileSource(const std::string &path);

    bool next(BranchRecord &rec) override;
    void rewind() override;

    /** Open/parse state; check after construction and after the
     * stream ends (a parse error also terminates next()). */
    const IoStatus &status() const { return status_; }

    /** Metadata from `# app=` / `# input=` comments seen so far. */
    const std::string &app() const { return app_; }
    uint32_t inputId() const { return inputId_; }

  private:
    std::string path_;
    std::ifstream in_;
    IoStatus status_;
    std::string app_;
    uint32_t inputId_ = 0;
    uint64_t lineNo_ = 0;
};

} // namespace whisper

#endif // WHISPER_TRACE_CBP_READER_HH
