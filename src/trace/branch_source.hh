/**
 * @file
 * Streaming interface for branch traces.
 *
 * Simulators and trainers consume BranchSource so that multi-hundred-
 * million-branch runs never need to be materialized; synthetic
 * workloads regenerate deterministically from their seed for
 * multi-pass algorithms.
 */

#ifndef WHISPER_TRACE_BRANCH_SOURCE_HH
#define WHISPER_TRACE_BRANCH_SOURCE_HH

#include <cstdint>

#include "trace/branch_record.hh"

namespace whisper
{

/** Abstract producer of a branch stream. */
class BranchSource
{
  public:
    virtual ~BranchSource() = default;

    /**
     * Produce the next record.
     * @return false when the stream is exhausted.
     */
    virtual bool next(BranchRecord &rec) = 0;

    /** Restart the stream from the beginning. */
    virtual void rewind() = 0;
};

} // namespace whisper

#endif // WHISPER_TRACE_BRANCH_SOURCE_HH
