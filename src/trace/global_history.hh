/**
 * @file
 * Global branch history registers: a raw bit ring plus TAGE-style
 * folded (hashed) views of configurable lengths.
 */

#ifndef WHISPER_TRACE_GLOBAL_HISTORY_HH
#define WHISPER_TRACE_GLOBAL_HISTORY_HH

#include <cstdint>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

/**
 * A folded view of the last @p length history bits compressed to
 * @p width bits, maintained incrementally in O(1) per branch.
 *
 * This is the circular-shift-register construction used by TAGE for
 * index/tag hashing and by Whisper for its 8-bit hashed histories
 * (paper SIII-A: "branch predictors used in today's hardware already
 * use a similar hashing mechanism").
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    /**
     * @param length number of history bits covered (>= 1)
     * @param width folded register width in bits (1..32)
     */
    FoldedHistory(unsigned length, unsigned width);

    /**
     * Push the newest bit and retire the bit that falls off the end
     * of the covered window.
     *
     * @param newBit direction of the branch just resolved
     * @param evictedBit value of the bit at distance 'length' before
     *        this update (i.e., the one leaving the window)
     */
    void update(bool newBit, bool evictedBit);

    uint32_t value() const { return folded_; }
    unsigned length() const { return length_; }
    unsigned width() const { return width_; }

    void reset() { folded_ = 0; }

  private:
    unsigned length_ = 0;
    unsigned width_ = 0;
    unsigned outPoint_ = 0; //!< length % width: where evictions land
    uint32_t folded_ = 0;
};

/**
 * Global direction history with random access to recent bits and a
 * bank of folded views.
 *
 * The raw ring stores the most recent 'capacity' outcomes (default
 * 4096, comfortably above Whisper's N = 1024 maximum correlation
 * length). bit(0) is the most recent outcome.
 */
class GlobalHistory
{
  public:
    explicit GlobalHistory(unsigned capacity = 4096);

    /** Record one resolved conditional-branch direction. */
    void push(bool taken);

    /** The i-th most recent direction (i = 0 is the newest). */
    bool
    bit(unsigned i) const
    {
        whisper_assert(i < capacity_);
        return bits_[(head_ + capacity_ - 1 - i) % capacity_];
    }

    /** Number of outcomes pushed so far (not capped). */
    uint64_t count() const { return count_; }
    unsigned capacity() const { return capacity_; }

    /**
     * The last @p n bits packed into a uint64 (bit 0 = most recent).
     * @p n must be <= 64.
     */
    uint64_t lastBits(unsigned n) const;

    /**
     * XOR-fold of the last @p length bits into @p width bits,
     * computed from the raw ring (reference implementation; the
     * folded registers below give the same quality in O(1)).
     */
    uint32_t foldedHash(unsigned length, unsigned width) const;

    /**
     * Register a folded view maintained incrementally. Returns the
     * view's index for later lookup. Must be called before any
     * push().
     */
    size_t addFoldedView(unsigned length, unsigned width);

    /** Current value of folded view @p idx. */
    uint32_t
    foldedValue(size_t idx) const
    {
        return views_[idx].value();
    }

    const FoldedHistory &view(size_t idx) const { return views_[idx]; }
    size_t numViews() const { return views_.size(); }

    void reset();

  private:
    unsigned capacity_;
    std::vector<uint8_t> bits_;
    unsigned head_ = 0; //!< next write position
    uint64_t count_ = 0;
    std::vector<FoldedHistory> views_;
};

} // namespace whisper

#endif // WHISPER_TRACE_GLOBAL_HISTORY_HH
