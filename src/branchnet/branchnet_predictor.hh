/**
 * @file
 * Hybrid run-time predictor for the BranchNet baseline: covered
 * branches predict via their CNN over the (hashed PC, direction)
 * token history, everything else via the dynamic predictor.
 */

#ifndef WHISPER_BRANCHNET_BRANCHNET_PREDICTOR_HH
#define WHISPER_BRANCHNET_BRANCHNET_PREDICTOR_HH

#include <memory>
#include <unordered_map>

#include "bp/branch_predictor.hh"
#include "branchnet/branchnet_trainer.hh"

namespace whisper
{

/**
 * Rolling token history shared by sampling and inference so that
 * training and run-time inputs match exactly.
 */
class TokenHistory
{
  public:
    TokenHistory() { reset(); }

    void
    push(uint64_t pc, bool taken)
    {
        ring_[head_] = branchNetToken(pc, taken);
        head_ = (head_ + 1) % BranchNetGeometry::kHistory;
    }

    /** Snapshot ordered oldest-to-newest. */
    std::array<uint8_t, BranchNetGeometry::kHistory>
    snapshot() const
    {
        std::array<uint8_t, BranchNetGeometry::kHistory> out;
        for (unsigned i = 0; i < BranchNetGeometry::kHistory; ++i)
            out[i] = ring_[(head_ + i) % BranchNetGeometry::kHistory];
        return out;
    }

    void
    reset()
    {
        ring_.fill(0);
        head_ = 0;
    }

  private:
    std::array<uint8_t, BranchNetGeometry::kHistory> ring_;
    unsigned head_ = 0;
};

/** BranchNet-over-TAGE hybrid. */
class BranchNetPredictor : public BranchPredictor
{
  public:
    BranchNetPredictor(std::unique_ptr<BranchPredictor> base,
                       std::vector<BranchNetDeployment> models,
                       std::string label);

    /** Deep copy: clones the owned dynamic predictor and copies the
     * deployed CNNs (inference-only weights) and token history. */
    BranchNetPredictor(const BranchNetPredictor &other);

    bool predict(uint64_t pc, bool oracleTaken) override;
    void update(uint64_t pc, bool taken, bool predicted,
                bool allocate = true) override;
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<BranchNetPredictor>(*this);
    }
    std::string name() const override;
    void reset() override;
    uint64_t storageBits() const override;

    uint64_t cnnPredictions() const { return cnnPredictions_; }
    uint64_t cnnCorrect() const { return cnnCorrect_; }

  private:
    std::unique_ptr<BranchPredictor> base_;
    std::vector<BranchNetDeployment> models_;
    std::unordered_map<uint64_t, size_t> byPc_;
    std::string label_;
    TokenHistory history_;

    bool usedCnn_ = false;
    bool basePred_ = false;
    uint64_t cnnPredictions_ = 0;
    uint64_t cnnCorrect_ = 0;
};

} // namespace whisper

#endif // WHISPER_BRANCHNET_BRANCHNET_PREDICTOR_HH
