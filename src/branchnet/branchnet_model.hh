/**
 * @file
 * Per-branch convolutional model (BranchNet baseline [35]).
 *
 * BranchNet trains one CNN per hard-to-predict branch on (PC,
 * direction) history. We reproduce its architecture at reduced
 * scale: an embedding of 7-bit history tokens (1x1 convolution over
 * the one-hot encoding), sum pooling over fixed windows, and a
 * fully-connected sigmoid output, trained with SGD on logistic
 * loss. Each model quantizes to roughly 1KB of metadata, matching
 * the paper's 256B-2KB per-branch storage figures.
 */

#ifndef WHISPER_BRANCHNET_BRANCHNET_MODEL_HH
#define WHISPER_BRANCHNET_BRANCHNET_MODEL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace whisper
{

/** Fixed geometry of the mini CNN. */
struct BranchNetGeometry
{
    static constexpr unsigned kHistory = 64;   //!< tokens of history
    static constexpr unsigned kVocab = 128;    //!< 7-bit tokens
    static constexpr unsigned kChannels = 8;   //!< embedding width
    static constexpr unsigned kPools = 4;      //!< pooling windows
    static constexpr unsigned kPoolLen = kHistory / kPools;
    static constexpr unsigned kFeatures = kPools * kChannels;

    /** Metadata bytes of one int8-quantized deployed model. */
    static constexpr uint64_t
    modelBytes()
    {
        return kVocab * kChannels + kFeatures + 1;
    }
};

/** Token for a resolved conditional branch in the history. */
uint8_t branchNetToken(uint64_t pc, bool taken);

/** One (history, outcome) training sample. */
struct BranchNetSample
{
    std::array<uint8_t, BranchNetGeometry::kHistory> tokens;
    bool taken = false;
};

/** The per-branch model. */
class BranchNetModel
{
  public:
    explicit BranchNetModel(uint64_t seed = 1);

    /** Probability the branch is taken given the token history. */
    double forward(
        const std::array<uint8_t, BranchNetGeometry::kHistory>
            &tokens) const;

    bool
    predict(const std::array<uint8_t, BranchNetGeometry::kHistory>
                &tokens) const
    {
        return forward(tokens) >= 0.5;
    }

    /** One SGD step on logistic loss; returns the pre-step loss. */
    double trainStep(const BranchNetSample &sample, double lr);

    /**
     * Train for @p epochs passes over @p samples.
     * @return final training accuracy
     */
    double train(const std::vector<BranchNetSample> &samples,
                 unsigned epochs, double lr);

  private:
    std::vector<float> embedding_; //!< kVocab x kChannels
    std::vector<float> fc_;        //!< kFeatures
    float bias_ = 0.0f;
};

} // namespace whisper

#endif // WHISPER_BRANCHNET_BRANCHNET_MODEL_HH
