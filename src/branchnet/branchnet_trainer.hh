/**
 * @file
 * BranchNet offline training with metadata budgets.
 *
 * BranchNet assumes a few static branches cause most mispredictions
 * and spends its metadata budget on those: the 8KB and 32KB variants
 * cover the top mispredicting branches until the budget is
 * exhausted; the "unlimited" variant covers every hard branch. The
 * trainer also records wall-clock training time, which Fig. 16
 * contrasts with the formula-based approaches.
 */

#ifndef WHISPER_BRANCHNET_BRANCHNET_TRAINER_HH
#define WHISPER_BRANCHNET_BRANCHNET_TRAINER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "branchnet/branchnet_model.hh"
#include "core/profile.hh"

namespace whisper
{

/** Per-branch training samples gathered during profiling. */
class BranchNetSampleStore
{
  public:
    explicit BranchNetSampleStore(size_t samplesPerBranch = 600)
        : cap_(samplesPerBranch)
    {
    }

    /** Restrict collection to these PCs (the hard branches). */
    void setTracked(const std::vector<uint64_t> &pcs);
    bool tracked(uint64_t pc) const;

    void record(uint64_t pc, const BranchNetSample &sample);

    const std::vector<BranchNetSample> *find(uint64_t pc) const;
    size_t numBranches() const { return samples_.size(); }

  private:
    size_t cap_;
    std::unordered_map<uint64_t, std::vector<BranchNetSample>>
        samples_;
};

/** One deployed CNN. */
struct BranchNetDeployment
{
    uint64_t pc = 0;
    BranchNetModel model;
    double trainAccuracy = 0.0;
};

/** Training statistics. */
struct BranchNetTrainingStats
{
    uint64_t branchesConsidered = 0;
    uint64_t modelsDeployed = 0;
    uint64_t sgdSteps = 0;
    double trainSeconds = 0.0;
    uint64_t metadataBytes = 0;
};

/** Budgeted BranchNet trainer. */
class BranchNetTrainer
{
  public:
    /**
     * @param budgetBytes metadata budget; 0 means unlimited
     * @param maxModels hard cap for the unlimited variant (keeps
     *        host training time bounded; documented substitution)
     */
    explicit BranchNetTrainer(uint64_t budgetBytes,
                              unsigned maxModels = 512,
                              unsigned epochs = 3, double lr = 0.08);

    std::vector<BranchNetDeployment>
    train(const BranchProfile &profile,
          const BranchNetSampleStore &store,
          BranchNetTrainingStats *stats = nullptr) const;

    uint64_t budgetBytes() const { return budget_; }

  private:
    uint64_t budget_;
    unsigned maxModels_;
    unsigned epochs_;
    double lr_;
};

} // namespace whisper

#endif // WHISPER_BRANCHNET_BRANCHNET_TRAINER_HH
