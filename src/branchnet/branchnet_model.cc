#include "branchnet/branchnet_model.hh"

#include <cmath>

#include "util/bits.hh"

namespace whisper
{

uint8_t
branchNetToken(uint64_t pc, bool taken)
{
    // 6 hashed PC bits + the direction bit = 7-bit vocabulary.
    uint8_t pcHash = static_cast<uint8_t>(mix64(pc) & 0x3F);
    return static_cast<uint8_t>((pcHash << 1) |
                                static_cast<uint8_t>(taken));
}

BranchNetModel::BranchNetModel(uint64_t seed)
    : embedding_(BranchNetGeometry::kVocab *
                     BranchNetGeometry::kChannels,
                 0.0f),
      fc_(BranchNetGeometry::kFeatures, 0.0f)
{
    Rng rng(seed);
    for (auto &w : embedding_)
        w = static_cast<float>(rng.nextGaussian(0.05));
    for (auto &w : fc_)
        w = static_cast<float>(rng.nextGaussian(0.05));
}

double
BranchNetModel::forward(
    const std::array<uint8_t, BranchNetGeometry::kHistory> &tokens)
    const
{
    constexpr unsigned C = BranchNetGeometry::kChannels;
    constexpr unsigned P = BranchNetGeometry::kPools;
    constexpr unsigned L = BranchNetGeometry::kPoolLen;

    double logit = bias_;
    for (unsigned p = 0; p < P; ++p) {
        float pooled[C] = {};
        for (unsigned i = 0; i < L; ++i) {
            const float *emb =
                &embedding_[tokens[p * L + i] * C];
            for (unsigned c = 0; c < C; ++c)
                pooled[c] += emb[c];
        }
        for (unsigned c = 0; c < C; ++c)
            logit += fc_[p * C + c] * pooled[c];
    }
    return 1.0 / (1.0 + std::exp(-logit));
}

double
BranchNetModel::trainStep(const BranchNetSample &sample, double lr)
{
    constexpr unsigned C = BranchNetGeometry::kChannels;
    constexpr unsigned P = BranchNetGeometry::kPools;
    constexpr unsigned L = BranchNetGeometry::kPoolLen;

    // Forward pass, keeping the pooled activations.
    float pooled[BranchNetGeometry::kFeatures] = {};
    for (unsigned p = 0; p < P; ++p) {
        for (unsigned i = 0; i < L; ++i) {
            const float *emb =
                &embedding_[sample.tokens[p * L + i] * C];
            for (unsigned c = 0; c < C; ++c)
                pooled[p * C + c] += emb[c];
        }
    }
    double logit = bias_;
    for (unsigned f = 0; f < BranchNetGeometry::kFeatures; ++f)
        logit += fc_[f] * pooled[f];
    double prob = 1.0 / (1.0 + std::exp(-logit));
    double y = sample.taken ? 1.0 : 0.0;
    double loss = -(y * std::log(prob + 1e-12) +
                    (1 - y) * std::log(1 - prob + 1e-12));

    // Backward: dL/dlogit = prob - y.
    float g = static_cast<float>((prob - y) * lr);
    bias_ -= g;
    for (unsigned f = 0; f < BranchNetGeometry::kFeatures; ++f) {
        float fcOld = fc_[f];
        fc_[f] -= g * pooled[f];
        // Embedding gradient flows through the (frozen-this-step)
        // FC weight of the token's pool.
        pooled[f] = fcOld; // reuse storage: pooled now holds fc old
    }
    for (unsigned p = 0; p < P; ++p) {
        for (unsigned i = 0; i < L; ++i) {
            float *emb = &embedding_[sample.tokens[p * L + i] * C];
            for (unsigned c = 0; c < C; ++c)
                emb[c] -= g * pooled[p * C + c];
        }
    }
    return loss;
}

double
BranchNetModel::train(const std::vector<BranchNetSample> &samples,
                      unsigned epochs, double lr)
{
    if (samples.empty())
        return 0.0;
    for (unsigned e = 0; e < epochs; ++e) {
        double decayed = lr / (1.0 + 0.5 * e);
        for (const auto &s : samples)
            trainStep(s, decayed);
    }
    uint64_t correct = 0;
    for (const auto &s : samples)
        if (predict(s.tokens) == s.taken)
            ++correct;
    return static_cast<double>(correct) / samples.size();
}

} // namespace whisper
