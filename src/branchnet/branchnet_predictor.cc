#include "branchnet/branchnet_predictor.hh"

#include "util/logging.hh"

namespace whisper
{

BranchNetPredictor::BranchNetPredictor(
    std::unique_ptr<BranchPredictor> base,
    std::vector<BranchNetDeployment> models, std::string label)
    : base_(std::move(base)), models_(std::move(models)),
      label_(std::move(label))
{
    whisper_assert(base_ != nullptr);
    for (size_t i = 0; i < models_.size(); ++i)
        byPc_[models_[i].pc] = i;
}

BranchNetPredictor::BranchNetPredictor(
    const BranchNetPredictor &other)
    : base_(other.base_->clone()), models_(other.models_),
      byPc_(other.byPc_), label_(other.label_),
      history_(other.history_), usedCnn_(other.usedCnn_),
      basePred_(other.basePred_),
      cnnPredictions_(other.cnnPredictions_),
      cnnCorrect_(other.cnnCorrect_)
{
}

std::string
BranchNetPredictor::name() const
{
    return label_ + "+" + base_->name();
}

uint64_t
BranchNetPredictor::storageBits() const
{
    return base_->storageBits() +
           models_.size() * BranchNetGeometry::modelBytes() * 8;
}

bool
BranchNetPredictor::predict(uint64_t pc, bool oracleTaken)
{
    basePred_ = base_->predict(pc, oracleTaken);
    usedCnn_ = false;

    auto it = byPc_.find(pc);
    if (it == byPc_.end())
        return basePred_;

    usedCnn_ = true;
    ++cnnPredictions_;
    return models_[it->second].model.predict(history_.snapshot());
}

void
BranchNetPredictor::update(uint64_t pc, bool taken, bool predicted,
                           bool allocate)
{
    if (usedCnn_ && predicted == taken)
        ++cnnCorrect_;
    base_->update(pc, taken, basePred_, allocate && !usedCnn_);
    history_.push(pc, taken);
}

void
BranchNetPredictor::reset()
{
    base_->reset();
    history_.reset();
    usedCnn_ = false;
    basePred_ = false;
    cnnPredictions_ = 0;
    cnnCorrect_ = 0;
}

} // namespace whisper
