#include "branchnet/branchnet_trainer.hh"

#include <chrono>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

void
BranchNetSampleStore::setTracked(const std::vector<uint64_t> &pcs)
{
    samples_.clear();
    for (uint64_t pc : pcs)
        samples_[pc].reserve(64);
}

bool
BranchNetSampleStore::tracked(uint64_t pc) const
{
    return samples_.count(pc) != 0;
}

void
BranchNetSampleStore::record(uint64_t pc,
                             const BranchNetSample &sample)
{
    auto it = samples_.find(pc);
    if (it == samples_.end())
        return;
    if (it->second.size() < cap_)
        it->second.push_back(sample);
}

const std::vector<BranchNetSample> *
BranchNetSampleStore::find(uint64_t pc) const
{
    auto it = samples_.find(pc);
    return it == samples_.end() ? nullptr : &it->second;
}

BranchNetTrainer::BranchNetTrainer(uint64_t budgetBytes,
                                   unsigned maxModels,
                                   unsigned epochs, double lr)
    : budget_(budgetBytes), maxModels_(maxModels), epochs_(epochs),
      lr_(lr)
{
}

std::vector<BranchNetDeployment>
BranchNetTrainer::train(const BranchProfile &profile,
                        const BranchNetSampleStore &store,
                        BranchNetTrainingStats *stats) const
{
    auto start = std::chrono::steady_clock::now();
    BranchNetTrainingStats local;

    uint64_t perModel = BranchNetGeometry::modelBytes();
    unsigned slots = budget_ == 0
        ? maxModels_
        : static_cast<unsigned>(budget_ / perModel);

    std::vector<BranchNetDeployment> deployed;
    for (const BranchProfileEntry *entry : profile.hardBranches()) {
        if (deployed.size() >= slots)
            break;
        const auto *samples = store.find(entry->pc);
        if (!samples || samples->size() < 64)
            continue;
        ++local.branchesConsidered;

        BranchNetDeployment d;
        d.pc = entry->pc;
        d.model = BranchNetModel(mix64(entry->pc));
        d.trainAccuracy = d.model.train(*samples, epochs_, lr_);
        local.sgdSteps +=
            static_cast<uint64_t>(samples->size()) * epochs_;

        // Deploy only when the CNN beats the profiled predictor's
        // accuracy on this branch.
        if (d.trainAccuracy > entry->baselineAccuracy())
            deployed.push_back(std::move(d));
    }

    local.modelsDeployed = deployed.size();
    local.metadataBytes = deployed.size() * perModel;
    local.trainSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (stats)
        *stats = local;
    return deployed;
}

} // namespace whisper
