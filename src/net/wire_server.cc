#include "net/wire_server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/fault_injection.hh"
#include "util/logging.hh"

namespace whisper
{

namespace
{

uint64_t
steadyMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

struct WireServer::Connection
{
    int fd = -1;
    FrameParser parser;
    std::vector<unsigned char> out; //!< unsent outbound bytes
    size_t outPos = 0;              //!< sent prefix of `out`
    /** Unsent byte counts of the queued frames, oldest first. The
     * front entry is the frame currently being delivered; the send
     * cap applies only to the bytes queued behind it. */
    std::deque<size_t> outFrames;
    bool wantWrite = false;      //!< EPOLLOUT currently armed
    bool doomed = false;         //!< close once `out` drains
    uint64_t lastActivityMs = 0; //!< last byte received or sent

    size_t pendingOut() const { return out.size() - outPos; }

    /** Bytes queued behind the frame currently being delivered —
     * what the slow-reader cap is measured against. */
    size_t
    backlogBehindCurrentFrame() const
    {
        return outFrames.empty() ? 0
                                 : pendingOut() - outFrames.front();
    }

    /** Account @p n freshly sent bytes against the frame queue. */
    void
    drainFrames(size_t n)
    {
        while (n > 0 && !outFrames.empty()) {
            size_t step = std::min(outFrames.front(), n);
            outFrames.front() -= step;
            n -= step;
            if (outFrames.front() == 0)
                outFrames.pop_front();
        }
    }
};

WireServer::WireServer(const WireServerConfig &cfg, ChunkSink sink,
                       BundleProvider bundles)
    : cfg_(cfg), sink_(std::move(sink)), bundles_(std::move(bundles))
{
}

WireServer::~WireServer() { stop(); }

bool
WireServer::openListener(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    int one = 1;
    // REUSEADDR so a restarted listener (fault injection, kill -9 +
    // respawn) can rebind the same port while old sockets linger.
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(boundPort_ ? boundPort_ : cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton(" + cfg_.bindAddress + ")");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind");
    if (::listen(listenFd_, 128) != 0)
        return fail("listen");
    if (!setNonBlocking(listenFd_))
        return fail("fcntl(listener)");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    boundPort_ = ntohs(addr.sin_port);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) != 0)
        return fail("epoll_ctl(listener)");
    return true;
}

void
WireServer::closeListener()
{
    if (listenFd_ < 0)
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
    ::close(listenFd_);
    listenFd_ = -1;
}

void
WireServer::restartListener()
{
    stats_.listenerRestarts.fetch_add(1);
    if (cfg_.verbose)
        whisper_warn("wire-server: fault-injected listener restart "
                     "(port ",
                     boundPort_, ")");
    closeListener();
    while (!connections_.empty())
        closeConnection(connections_.begin()->first);
    std::string error;
    // boundPort_ is already pinned, so the reopen reuses the port the
    // clients know. Failure here leaves the server connection-less
    // until stop(); loopback rebinding with SO_REUSEADDR does not
    // fail in practice.
    if (!openListener(&error))
        whisper_warn("wire-server: listener reopen failed: ", error);
}

bool
WireServer::start(std::string *error)
{
    if (running_.load())
        return true;
    stopRequested_.store(false);

    epollFd_ = ::epoll_create1(0);
    if (epollFd_ < 0) {
        if (error)
            *error = std::string("epoll_create1: ") +
                     std::strerror(errno);
        return false;
    }
    wakeupFd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wakeupFd_ < 0) {
        if (error)
            *error =
                std::string("eventfd: ") + std::strerror(errno);
        ::close(epollFd_);
        epollFd_ = -1;
        return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakeupFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeupFd_, &ev);

    boundPort_ = 0; // resolve from cfg_.port on this open
    if (!openListener(error)) {
        ::close(wakeupFd_);
        ::close(epollFd_);
        wakeupFd_ = epollFd_ = -1;
        return false;
    }

    running_.store(true);
    thread_ = std::thread([this] { eventLoop(); });
    return true;
}

void
WireServer::stop()
{
    if (!running_.load() && !thread_.joinable())
        return;
    stopRequested_.store(true);
    if (wakeupFd_ >= 0) {
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeupFd_, &one, sizeof(one));
    }
    if (thread_.joinable())
        thread_.join();
    // The wakeup/epoll fds are closed here, after the join — never
    // on the loop thread — so this write can't race their close.
    if (wakeupFd_ >= 0) {
        ::close(wakeupFd_);
        wakeupFd_ = -1;
    }
    if (epollFd_ >= 0) {
        ::close(epollFd_);
        epollFd_ = -1;
    }
    running_.store(false);
}

void
WireServer::eventLoop()
{
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];

    while (!stopRequested_.load()) {
        // Wake at least every 250 ms for the slow-loris sweep.
        int n = ::epoll_wait(epollFd_, events, kMaxEvents, 250);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n && !stopRequested_.load(); ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeupFd_) {
                uint64_t drain = 0;
                [[maybe_unused]] ssize_t r =
                    ::read(wakeupFd_, &drain, sizeof(drain));
                continue;
            }
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            auto it = connections_.find(fd);
            if (it == connections_.end())
                continue; // closed earlier in this batch
            Connection &conn = *it->second;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConnection(fd);
                continue;
            }
            if (events[i].events & EPOLLIN)
                readReady(conn);
            // readReady may have closed the connection.
            auto again = connections_.find(fd);
            if (again != connections_.end() &&
                (events[i].events & EPOLLOUT))
                writeReady(*again->second);
        }
        sweepStalledConnections();
    }

    // Teardown of the sockets happens on the loop thread so no
    // connection fd is touched concurrently; the wakeup/epoll fds
    // are left for stop() to close after the join, because stop()
    // may still be writing the wakeup eventfd while we exit.
    closeListener();
    while (!connections_.empty())
        closeConnection(connections_.begin()->first);
    running_.store(false);
}

void
WireServer::acceptReady()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or transient — nothing more to accept
        if (connections_.size() >= cfg_.maxConnections ||
            !setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->lastActivityMs = steadyMs();
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        connections_.emplace(fd, std::move(conn));
        stats_.connectionsAccepted.fetch_add(1);
    }
}

void
WireServer::readReady(Connection &conn)
{
    // Anything below that sends a reply can close — and thereby
    // destroy — `conn` (send error, slow-reader cap, fault-injected
    // listener restart). Liveness is always re-checked through this
    // captured fd, never through the reference.
    const int fd = conn.fd;

    unsigned char buf[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.lastActivityMs = steadyMs();
            conn.parser.feed(buf, static_cast<size_t>(n));
            if (static_cast<size_t>(n) < sizeof(buf))
                break;
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        closeConnection(fd); // EOF or hard error
        return;
    }

    for (;;) {
        WireFrame frame;
        FrameParser::Result r = conn.parser.next(frame);
        if (r == FrameParser::Result::NeedMore)
            break;
        if (r == FrameParser::Result::BadCrc) {
            stats_.badCrcFrames.fetch_add(1);
            if (!sendError(conn, WireError::BadCrc,
                           "payload crc mismatch"))
                return; // the reply closed the connection
            continue; // framing is intact; keep the connection
        }
        if (r != FrameParser::Result::Frame) {
            // BadMagic / TooLarge: the byte stream is broken.
            stats_.badStreamCloses.fetch_add(1);
            closeConnection(fd);
            return;
        }
        stats_.framesReceived.fetch_add(1);
        handleFrame(conn, frame);
        if (connections_.find(fd) == connections_.end())
            return; // handleFrame closed it
    }
}

void
WireServer::handleFrame(Connection &conn, const WireFrame &frame)
{
    switch (frame.op) {
    case WireOp::Hello: {
        HelloMsg hello;
        if (!decodeHello(frame.payload, hello)) {
            sendError(conn, WireError::BadFrame, "bad HELLO");
            return;
        }
        if (hello.version != kWireProtocolVersion) {
            if (sendError(conn, WireError::BadVersion,
                          "unsupported protocol version"))
                conn.doomed = true; // close once the error drains
            return;
        }
        HelloMsg ok;
        ok.client = "whisperd";
        sendFrame(conn, WireOp::HelloOk, encodeHelloOk(ok));
        return;
    }
    case WireOp::IngestChunk:
        handleIngest(conn, frame);
        return;
    case WireOp::PullBundle:
        handlePull(conn, frame);
        return;
    default:
        sendError(conn, WireError::BadFrame,
                  "unexpected opcode " +
                      std::to_string(static_cast<uint32_t>(
                          frame.op)));
        return;
    }
}

void
WireServer::handleIngest(Connection &conn, const WireFrame &frame)
{
    IngestChunkMsg msg;
    if (!decodeIngestChunk(frame.payload, msg)) {
        sendError(conn, WireError::BadFrame, "bad INGEST_CHUNK");
        return;
    }

    std::string streamKey = msg.app;
    streamKey.push_back('\0');
    streamKey += msg.stream;

    // Idempotency: anything below the next expected sequence was
    // already ingested — a retransmission after a lost ack. Anything
    // at or above it is new (gaps can only mean this server restarted
    // or rotated the stream out of its bounded table; the chunk
    // itself was never ingested, so accepting it is the safe
    // direction). The lookup is read-only: state is recorded only
    // once the sink accepts, so rejected apps leave no trace.
    const uint64_t *nextSeq = findNextSeq(streamKey);
    if (nextSeq && msg.seq < *nextSeq) {
        stats_.duplicateChunks.fetch_add(1);
        ChunkAckMsg ack;
        ack.seq = msg.seq;
        ack.status = ChunkAckMsg::kDuplicate;
        sendFrame(conn, WireOp::ChunkAck, encodeChunkAck(ack));
        return;
    }

    TraceChunk chunk;
    chunk.sequence = arrivals_;
    chunk.app = msg.app;
    chunk.inputId = msg.inputId;
    chunk.sourceFile = "wire:" + msg.stream;
    chunk.records = std::move(msg.records);
    size_t recordCount = chunk.records.size();

    ChunkSinkResult result = sink_(std::move(chunk));
    switch (result) {
    case ChunkSinkResult::Accepted: {
        ++arrivals_;
        storeNextSeq(streamKey, msg.seq + 1);
        stats_.chunksAccepted.fetch_add(1);
        stats_.recordsAccepted.fetch_add(recordCount);
        ChunkAckMsg ack;
        ack.seq = msg.seq;
        ack.status = ChunkAckMsg::kAccepted;
        sendFrame(conn, WireOp::ChunkAck, encodeChunkAck(ack));
        if (FaultInjector::instance().shouldRestartListener())
            restartListener();
        return;
    }
    case ChunkSinkResult::Backpressure: {
        stats_.retryAfterSent.fetch_add(1);
        RetryAfterMsg retry;
        retry.seq = msg.seq;
        retry.waitMs = cfg_.retryAfterMs;
        sendFrame(conn, WireOp::RetryAfter,
                  encodeRetryAfter(retry));
        return;
    }
    case ChunkSinkResult::UnknownApp:
        stats_.unknownAppChunks.fetch_add(1);
        sendError(conn, WireError::UnknownApp,
                  "unknown app '" + msg.app + "'");
        return;
    }
}

void
WireServer::handlePull(Connection &conn, const WireFrame &frame)
{
    PullBundleMsg msg;
    if (!decodePullBundle(frame.payload, msg)) {
        sendError(conn, WireError::BadFrame, "bad PULL_BUNDLE");
        return;
    }
    std::optional<HintStore::Snapshot> snap = bundles_(msg.app);
    if (!snap) {
        sendError(conn, WireError::UnknownApp,
                  "unknown app '" + msg.app + "'");
        return;
    }
    uint64_t epoch = *snap ? (*snap)->epoch : 0;
    if (epoch == msg.cachedEpoch) {
        // Unchanged epoch = one compare; no bundle re-encode.
        stats_.bundlesUnchanged.fetch_add(1);
        sendFrame(conn, WireOp::BundleUnchanged,
                  encodeBundleUnchanged(epoch));
        return;
    }
    VersionedHintBundle empty;
    const VersionedHintBundle &bundle = *snap ? **snap : empty;
    stats_.bundlesSent.fetch_add(1);
    sendFrame(conn, WireOp::Bundle, encodeVersionedBundle(bundle));
}

const uint64_t *
WireServer::findNextSeq(const std::string &streamKey) const
{
    auto it = nextSeqCur_.find(streamKey);
    if (it != nextSeqCur_.end())
        return &it->second;
    it = nextSeqPrev_.find(streamKey);
    if (it != nextSeqPrev_.end())
        return &it->second;
    return nullptr;
}

void
WireServer::storeNextSeq(const std::string &streamKey, uint64_t next)
{
    auto it = nextSeqCur_.find(streamKey);
    if (it != nextSeqCur_.end()) {
        it->second = next;
        return;
    }
    // Two-generation rotation: each generation holds at most half
    // the bound, so live total never exceeds maxTrackedStreams and
    // an active stream survives at least one full rotation before
    // it can be forgotten.
    size_t half = std::max<size_t>(1, cfg_.maxTrackedStreams / 2);
    if (nextSeqCur_.size() >= half) {
        nextSeqPrev_ = std::move(nextSeqCur_);
        nextSeqCur_.clear();
    }
    nextSeqCur_[streamKey] = next;
    nextSeqPrev_.erase(streamKey); // the current generation shadows it
    stats_.streamsTracked.store(nextSeqCur_.size() +
                                nextSeqPrev_.size());
}

bool
WireServer::sendError(Connection &conn, WireError code,
                      const std::string &message)
{
    stats_.errorsSent.fetch_add(1);
    ErrorMsg msg;
    msg.code = code;
    msg.message = message;
    return sendFrame(conn, WireOp::Error, encodeError(msg));
}

bool
WireServer::sendFrame(Connection &conn, WireOp op,
                      const std::vector<unsigned char> &payload)
{
    std::vector<unsigned char> frame = encodeFrame(op, payload);
    const int fd = conn.fd;

    // Fast path: nothing queued, try a direct send.
    size_t sent = 0;
    if (conn.pendingOut() == 0) {
        ssize_t n =
            ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
        if (n >= 0)
            sent = static_cast<size_t>(n);
        else if (errno != EAGAIN && errno != EWOULDBLOCK) {
            closeConnection(fd);
            return false;
        }
    }
    if (sent == frame.size())
        return true;

    // Slow-reader cap, measured against the bytes queued behind the
    // frame currently being delivered: the in-flight frame itself is
    // exempt, so one bundle larger than the cap (legal up to
    // kMaxPayload) still drains over multiple EPOLLOUT rounds
    // instead of tripping the close on its first send.
    if (conn.backlogBehindCurrentFrame() > cfg_.maxSendBuffer) {
        stats_.slowReaderCloses.fetch_add(1);
        closeConnection(fd);
        return false;
    }

    // Compact the drained prefix before appending.
    if (conn.outPos > 0) {
        conn.out.erase(conn.out.begin(),
                       conn.out.begin() +
                           static_cast<ptrdiff_t>(conn.outPos));
        conn.outPos = 0;
    }
    conn.out.insert(conn.out.end(), frame.begin() + sent,
                    frame.end());
    conn.outFrames.push_back(frame.size() - sent);
    updateEpollOut(conn);
    return true;
}

void
WireServer::writeReady(Connection &conn)
{
    while (conn.pendingOut() > 0) {
        ssize_t n = ::send(conn.fd, conn.out.data() + conn.outPos,
                           conn.pendingOut(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.outPos += static_cast<size_t>(n);
            conn.drainFrames(static_cast<size_t>(n));
            // Draining counts as liveness: a reader slowly working
            // through a large bundle is progressing, not stalled.
            conn.lastActivityMs = steadyMs();
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        closeConnection(conn.fd);
        return;
    }
    if (conn.pendingOut() == 0) {
        conn.out.clear();
        conn.outPos = 0;
        conn.outFrames.clear();
        if (conn.doomed) {
            closeConnection(conn.fd);
            return;
        }
        updateEpollOut(conn);
    }
}

void
WireServer::updateEpollOut(Connection &conn)
{
    bool want = conn.pendingOut() > 0;
    if (want == conn.wantWrite)
        return;
    conn.wantWrite = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
WireServer::sweepStalledConnections()
{
    if (cfg_.idleTimeoutMs == 0)
        return;
    uint64_t now = steadyMs();
    std::vector<int> stalledWriters;
    std::vector<int> stalledReaders;
    for (auto &[fd, conn] : connections_) {
        // Only connections holding a partial frame hostage or
        // sitting on undrained output are reaped — an idle but
        // frame-aligned connection with nothing pending is a
        // healthy keep-alive client between pulls.
        if (now - conn->lastActivityMs <= cfg_.idleTimeoutMs)
            continue;
        if (conn->parser.buffered() > 0)
            stalledWriters.push_back(fd);
        else if (conn->pendingOut() > 0)
            stalledReaders.push_back(fd);
    }
    for (int fd : stalledWriters) {
        stats_.slowLorisCloses.fetch_add(1);
        closeConnection(fd);
    }
    for (int fd : stalledReaders) {
        stats_.slowReaderCloses.fetch_add(1);
        closeConnection(fd);
    }
}

void
WireServer::closeConnection(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end())
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connections_.erase(it);
    stats_.connectionsClosed.fetch_add(1);
}

WireServerStats
WireServer::stats() const
{
    WireServerStats out;
    out.connectionsAccepted = stats_.connectionsAccepted.load();
    out.connectionsClosed = stats_.connectionsClosed.load();
    out.framesReceived = stats_.framesReceived.load();
    out.chunksAccepted = stats_.chunksAccepted.load();
    out.recordsAccepted = stats_.recordsAccepted.load();
    out.duplicateChunks = stats_.duplicateChunks.load();
    out.retryAfterSent = stats_.retryAfterSent.load();
    out.badCrcFrames = stats_.badCrcFrames.load();
    out.badStreamCloses = stats_.badStreamCloses.load();
    out.slowLorisCloses = stats_.slowLorisCloses.load();
    out.slowReaderCloses = stats_.slowReaderCloses.load();
    out.bundlesSent = stats_.bundlesSent.load();
    out.bundlesUnchanged = stats_.bundlesUnchanged.load();
    out.errorsSent = stats_.errorsSent.load();
    out.unknownAppChunks = stats_.unknownAppChunks.load();
    out.listenerRestarts = stats_.listenerRestarts.load();
    out.streamsTracked = stats_.streamsTracked.load();
    return out;
}

} // namespace whisper
