/**
 * @file
 * The whisperd wire protocol: length-prefixed, CRC32-framed binary
 * messages over TCP.
 *
 * Frame grammar (all integers little-endian, matching the .whrt
 * on-disk byte order):
 *
 *   frame   := magic:u32 opcode:u32 length:u32 crc:u32 payload
 *   magic   := 0x5746524D ("WFRM")
 *   length  := payload bytes (<= kMaxPayload, hostile lengths are a
 *              protocol error, never an allocation)
 *   crc     := CRC32 of the payload bytes — the same IEEE CRC32 the
 *              .whrt v2 trace frames and the hint-store journal use
 *
 * Message payloads (str := len:u32 bytes, capped at kMaxString):
 *
 *   HELLO            ver:u32 client:str
 *   HELLO_OK         ver:u32 server:str
 *   INGEST_CHUNK     app:str stream:str inputId:u32 seq:u64
 *                    count:u32 records[count]   (raw BranchRecord
 *                    array, exactly the .whrt v2 frame payload)
 *   CHUNK_ACK        seq:u64 status:u32         (0 = accepted,
 *                    1 = duplicate — the idempotency reply)
 *   RETRY_AFTER      seq:u64 waitMs:u32         (backpressure: the
 *                    tenant queue is full; retransmit after waitMs)
 *   PULL_BUNDLE      app:str cachedEpoch:u64
 *   BUNDLE           <encodeVersionedBundle payload>
 *   BUNDLE_UNCHANGED epoch:u64                  (cache hit: the
 *                    deployed epoch equals cachedEpoch; one compare)
 *   ERROR            code:u32 message:str
 *
 * Failure model: a frame whose CRC fails is dropped by the receiver
 * and answered with ERROR(BadCrc) — the sender retransmits (ingest
 * is idempotent per (app, stream, seq), so retransmitting an already
 * accepted chunk yields a duplicate-ack, never double ingestion).
 * A frame whose magic is wrong means the byte stream itself is
 * broken (torn mid-frame write from a killed peer): the connection
 * is closed and the client reconnects and resumes from its lowest
 * unacknowledged sequence number.
 */

#ifndef WHISPER_NET_WIRE_PROTOCOL_HH
#define WHISPER_NET_WIRE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/whisper_io.hh"
#include "trace/branch_record.hh"

namespace whisper
{

/** Frame opcodes. */
enum class WireOp : uint32_t
{
    Hello = 1,
    HelloOk = 2,
    IngestChunk = 3,
    ChunkAck = 4,
    RetryAfter = 5,
    PullBundle = 6,
    Bundle = 7,
    BundleUnchanged = 8,
    Error = 9,
};

/** ERROR frame codes. */
enum class WireError : uint32_t
{
    BadFrame = 1,     //!< malformed payload (permanent for the frame)
    BadCrc = 2,       //!< CRC mismatch (transient: retransmit)
    UnknownApp = 3,   //!< no such tenant (permanent)
    ShuttingDown = 4, //!< server is draining (reconnect later)
    BadVersion = 5,   //!< protocol version mismatch (permanent)
};

struct WireFrame
{
    static constexpr uint32_t kMagic = 0x5746524D; // "WFRM"
    static constexpr uint32_t kMaxPayload = 1u << 26;
    static constexpr uint32_t kMaxString = 4096;
    static constexpr size_t kHeaderBytes = 16;

    WireOp op = WireOp::Error;
    std::vector<unsigned char> payload;
};

constexpr uint32_t kWireProtocolVersion = 1;

/** Serialize one frame (header + CRC32 + payload). */
std::vector<unsigned char>
encodeFrame(WireOp op, const std::vector<unsigned char> &payload);

/**
 * Incremental frame decoder: feed() raw bytes as they arrive, then
 * drain next() until NeedMore. BadCrc consumes the damaged frame
 * (the connection can continue); BadMagic/TooLarge mean the stream
 * itself is unusable and the connection must be dropped.
 */
class FrameParser
{
  public:
    enum class Result
    {
        NeedMore, //!< no complete frame buffered yet
        Frame,    //!< one valid frame delivered
        BadCrc,   //!< framed correctly but payload CRC failed
        BadMagic, //!< stream desynchronized; close the connection
        TooLarge, //!< hostile length field; close the connection
    };

    void feed(const void *data, size_t n);
    Result next(WireFrame &out);

    /** Bytes buffered but not yet consumed (a nonzero value with no
     * complete frame = a partial frame in flight; the server's
     * slow-loris guard keys off this). */
    size_t buffered() const { return buffer_.size() - pos_; }

  private:
    std::vector<unsigned char> buffer_;
    size_t pos_ = 0;
};

// ---- payload writers/readers -------------------------------------

/** Bounds-checked little-endian payload writer. */
class WireWriter
{
  public:
    void u32(uint32_t v);
    void u64(uint64_t v);
    void str(const std::string &s);
    void bytes(const void *data, size_t n);
    std::vector<unsigned char> take() { return std::move(buf_); }

  private:
    std::vector<unsigned char> buf_;
};

/** Bounds-checked payload reader; any overrun poisons the reader. */
class WireReader
{
  public:
    WireReader(const unsigned char *data, size_t size)
        : data_(data), size_(size)
    {
    }
    explicit WireReader(const std::vector<unsigned char> &payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    uint32_t u32();
    uint64_t u64();
    std::string str();
    bool bytes(void *out, size_t n);

    bool ok() const { return ok_; }
    /** ok() and every byte consumed. */
    bool done() const { return ok_ && pos_ == size_; }
    size_t remaining() const { return size_ - pos_; }

  private:
    const unsigned char *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

// ---- typed messages ----------------------------------------------

struct HelloMsg
{
    uint32_t version = kWireProtocolVersion;
    std::string client;
};

struct IngestChunkMsg
{
    std::string app;
    std::string stream; //!< sequence-number namespace (client id)
    uint32_t inputId = 0;
    uint64_t seq = 0;   //!< per-(app, stream) chunk sequence
    std::vector<BranchRecord> records;
};

struct ChunkAckMsg
{
    static constexpr uint32_t kAccepted = 0;
    static constexpr uint32_t kDuplicate = 1;
    uint64_t seq = 0;
    uint32_t status = kAccepted;
};

struct RetryAfterMsg
{
    uint64_t seq = 0;
    uint32_t waitMs = 0;
};

struct PullBundleMsg
{
    std::string app;
    uint64_t cachedEpoch = 0;
};

struct ErrorMsg
{
    WireError code = WireError::BadFrame;
    std::string message;
};

std::vector<unsigned char> encodeHello(const HelloMsg &m);
std::vector<unsigned char> encodeHelloOk(const HelloMsg &m);
std::vector<unsigned char> encodeIngestChunk(const IngestChunkMsg &m);
std::vector<unsigned char> encodeChunkAck(const ChunkAckMsg &m);
std::vector<unsigned char> encodeRetryAfter(const RetryAfterMsg &m);
std::vector<unsigned char> encodePullBundle(const PullBundleMsg &m);
std::vector<unsigned char> encodeBundleUnchanged(uint64_t epoch);
std::vector<unsigned char> encodeError(const ErrorMsg &m);

bool decodeHello(const std::vector<unsigned char> &p, HelloMsg &m);
bool decodeIngestChunk(const std::vector<unsigned char> &p,
                       IngestChunkMsg &m);
bool decodeChunkAck(const std::vector<unsigned char> &p,
                    ChunkAckMsg &m);
bool decodeRetryAfter(const std::vector<unsigned char> &p,
                      RetryAfterMsg &m);
bool decodePullBundle(const std::vector<unsigned char> &p,
                      PullBundleMsg &m);
bool decodeBundleUnchanged(const std::vector<unsigned char> &p,
                           uint64_t &epoch);
bool decodeError(const std::vector<unsigned char> &p, ErrorMsg &m);

// BUNDLE payloads reuse the journal's record encoding directly:
// encodeVersionedBundle / decodeVersionedBundle from whisper_io.

} // namespace whisper

#endif // WHISPER_NET_WIRE_PROTOCOL_HH
