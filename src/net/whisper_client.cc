#include "net/whisper_client.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/fault_injection.hh"

namespace whisper
{

namespace
{

uint64_t
steadyMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** SplitMix64 step for deterministic backoff jitter. */
uint64_t
nextRand(uint64_t &state)
{
    uint64_t x = (state += 0x9E3779B97F4A7C15ULL);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** A nonce that differs across process incarnations: the server
 * remembers next-expected sequences per stream, so a restarted agent
 * replaying seq 0 under its predecessor's stream identity would draw
 * silent duplicate-acks for every chunk. */
uint64_t
incarnationNonce()
{
    std::random_device rd;
    uint64_t state = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    state ^= static_cast<uint64_t>(::getpid()) << 48;
    state ^= steadyMs();
    uint64_t nonce = nextRand(state);
    return nonce ? nonce : 1;
}

} // namespace

WhisperClient::WhisperClient(WhisperClientConfig cfg)
    : cfg_(std::move(cfg)), jitterState_(cfg_.jitterSeed * 2 + 1)
{
    uint64_t nonce = cfg_.incarnation ? cfg_.incarnation
                                      : incarnationNonce();
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(nonce));
    wireStream_ = cfg_.stream + "#" + hex;
}

WhisperClient::~WhisperClient() { disconnect(); }

void
WhisperClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    parser_ = FrameParser(); // a torn stream dies with its socket
}

bool
WhisperClient::ensureConnected()
{
    if (fd_ >= 0)
        return true;

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        lastError_ = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) !=
        1) {
        lastError_ = "bad host '" + cfg_.host + "'";
        disconnect();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        lastError_ =
            std::string("connect: ") + std::strerror(errno);
        disconnect();
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = cfg_.recvTimeoutMs / 1000;
    tv.tv_usec =
        static_cast<long>(cfg_.recvTimeoutMs % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    stats_.reconnects += 1;
    return true;
}

bool
WhisperClient::sendAll(const unsigned char *data, size_t n)
{
    size_t sent = 0;
    while (sent < n) {
        ssize_t w =
            ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(w);
    }
    return true;
}

bool
WhisperClient::sendFrameFaulted(
    const std::vector<unsigned char> &frame, unsigned attempt)
{
    FaultInjector &fi = FaultInjector::instance();
    switch (fi.wireSendPlan(attempt)) {
    case FaultInjector::WireSendPlan::Normal:
        return sendAll(frame.data(), frame.size());
    case FaultInjector::WireSendPlan::CorruptPayload: {
        // Flip one payload byte after the CRC was computed; the
        // receiver must detect and reject the frame.
        std::vector<unsigned char> bad = frame;
        if (bad.size() > WireFrame::kHeaderBytes)
            bad[WireFrame::kHeaderBytes] ^= 0x20;
        return sendAll(bad.data(), bad.size());
    }
    case FaultInjector::WireSendPlan::TearAndDrop:
        // Half a frame, then a hard close: the server sees a torn
        // stream (stalled partial frame) on this connection.
        sendAll(frame.data(), frame.size() / 2);
        disconnect();
        return false;
    case FaultInjector::WireSendPlan::KillAfterSend:
        // Deliver the whole frame but never read the ack: the
        // retransmission must draw a duplicate-ack.
        sendAll(frame.data(), frame.size());
        disconnect();
        return false;
    case FaultInjector::WireSendPlan::StallMidFrame: {
        // Slow-loris writer: header, a long pause, then the rest.
        size_t head =
            std::min<size_t>(WireFrame::kHeaderBytes, frame.size());
        if (!sendAll(frame.data(), head))
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fi.wireStallMs()));
        return sendAll(frame.data() + head, frame.size() - head);
    }
    }
    return false;
}

WhisperClient::RecvOutcome
WhisperClient::recvUntil(WireOp op, WireOp op2, WireFrame &out,
                         uint32_t &waitMs)
{
    uint64_t deadline = steadyMs() + cfg_.recvTimeoutMs;
    for (;;) {
        // Drain parsed frames first.
        for (;;) {
            WireFrame frame;
            FrameParser::Result r = parser_.next(frame);
            if (r == FrameParser::Result::NeedMore)
                break;
            if (r == FrameParser::Result::BadCrc) {
                // A damaged reply; the request outcome is unknown,
                // so treat as transient and retransmit.
                disconnect();
                return RecvOutcome::Transient;
            }
            if (r != FrameParser::Result::Frame) {
                disconnect();
                return RecvOutcome::Transient;
            }
            if (frame.op == op || frame.op == op2) {
                out = std::move(frame);
                return RecvOutcome::Got;
            }
            if (frame.op == WireOp::RetryAfter) {
                RetryAfterMsg retry;
                if (decodeRetryAfter(frame.payload, retry)) {
                    waitMs = retry.waitMs;
                    return RecvOutcome::RetryAfter;
                }
                disconnect();
                return RecvOutcome::Transient;
            }
            if (frame.op == WireOp::Error) {
                ErrorMsg err;
                if (!decodeError(frame.payload, err)) {
                    disconnect();
                    return RecvOutcome::Transient;
                }
                if (err.code == WireError::BadCrc) {
                    // Our frame arrived damaged; retransmit.
                    stats_.crcRejects += 1;
                    return RecvOutcome::Transient;
                }
                if (err.code == WireError::ShuttingDown) {
                    disconnect();
                    return RecvOutcome::Transient;
                }
                lastError_ = err.message.empty()
                                 ? "server error"
                                 : err.message;
                return RecvOutcome::Permanent;
            }
            // Unsolicited frame (e.g. stale HELLO_OK) — skip it.
        }

        if (steadyMs() >= deadline) {
            stats_.timeouts += 1;
            disconnect();
            return RecvOutcome::Transient;
        }
        unsigned char buf[64 * 1024];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            parser_.feed(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR)) {
            // SO_RCVTIMEO tick; loop to check the deadline.
            continue;
        }
        disconnect(); // EOF or hard error
        return RecvOutcome::Transient;
    }
}

void
WhisperClient::backoff(unsigned attempt, uint32_t serverWaitMs)
{
    uint64_t wait;
    if (serverWaitMs > 0) {
        wait = serverWaitMs; // server knows its queue; trust it
    } else {
        uint64_t base = cfg_.initialBackoffMs;
        for (unsigned i = 1; i < attempt && base < cfg_.maxBackoffMs;
             ++i)
            base *= 2;
        if (base > cfg_.maxBackoffMs)
            base = cfg_.maxBackoffMs;
        // Deterministic jitter desynchronizes agent herds without
        // making failing runs unreproducible.
        wait = base / 2 + nextRand(jitterState_) % (base / 2 + 1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
}

bool
WhisperClient::ingestChunk(const std::string &app, uint32_t inputId,
                           const std::vector<BranchRecord> &records)
{
    AppState &state = apps_[app];
    IngestChunkMsg msg;
    msg.app = app;
    msg.stream = wireStream_;
    msg.inputId = inputId;
    msg.seq = state.nextSeq;
    msg.records = records;
    std::vector<unsigned char> frame =
        encodeFrame(WireOp::IngestChunk, encodeIngestChunk(msg));

    for (unsigned attempt = 1; attempt <= cfg_.maxAttempts;
         ++attempt) {
        if (attempt > 1)
            stats_.retries += 1;
        if (!ensureConnected()) {
            backoff(attempt, 0);
            continue;
        }
        if (!sendFrameFaulted(frame, attempt)) {
            backoff(attempt, 0);
            continue;
        }
        WireFrame reply;
        uint32_t waitMs = 0;
        switch (recvUntil(WireOp::ChunkAck, WireOp::ChunkAck, reply,
                          waitMs)) {
        case RecvOutcome::Got: {
            ChunkAckMsg ack;
            if (!decodeChunkAck(reply.payload, ack) ||
                ack.seq != msg.seq) {
                disconnect();
                backoff(attempt, 0);
                continue;
            }
            if (ack.status == ChunkAckMsg::kDuplicate)
                stats_.duplicateAcks += 1;
            stats_.chunksAcked += 1;
            state.nextSeq = msg.seq + 1;
            return true;
        }
        case RecvOutcome::RetryAfter:
            stats_.retryAfters += 1;
            backoff(attempt, waitMs);
            continue;
        case RecvOutcome::Transient:
            backoff(attempt, 0);
            continue;
        case RecvOutcome::Permanent:
            return false;
        }
    }
    lastError_ = "chunk " + std::to_string(msg.seq) + " for '" +
                 app + "': retries exhausted";
    return false;
}

std::optional<VersionedHintBundle>
WhisperClient::pullBundle(const std::string &app)
{
    AppState &state = apps_[app];
    PullBundleMsg msg;
    msg.app = app;
    // A cold cache must never collide with a real epoch (0 = nothing
    // deployed is itself cacheable), so it sends an impossible one.
    msg.cachedEpoch =
        state.haveCached ? state.cachedEpoch : ~uint64_t{0};
    std::vector<unsigned char> frame =
        encodeFrame(WireOp::PullBundle, encodePullBundle(msg));

    for (unsigned attempt = 1; attempt <= cfg_.maxAttempts;
         ++attempt) {
        if (!ensureConnected() ||
            !sendAll(frame.data(), frame.size())) {
            backoff(attempt, 0);
            continue;
        }
        stats_.bundlePulls += 1;
        WireFrame reply;
        uint32_t waitMs = 0;
        switch (recvUntil(WireOp::Bundle, WireOp::BundleUnchanged,
                          reply, waitMs)) {
        case RecvOutcome::Got: {
            if (reply.op == WireOp::BundleUnchanged) {
                uint64_t epoch = 0;
                if (state.haveCached &&
                    decodeBundleUnchanged(reply.payload, epoch) &&
                    epoch == state.cachedEpoch) {
                    stats_.bundleHits += 1;
                    return state.cached;
                }
                // Unchanged against an epoch we do not hold —
                // protocol confusion; reconnect and re-pull.
                disconnect();
                backoff(attempt, 0);
                continue;
            }
            VersionedHintBundle bundle;
            if (!decodeVersionedBundle(bundle, reply.payload.data(),
                                       reply.payload.size())) {
                disconnect();
                backoff(attempt, 0);
                continue;
            }
            state.cachedEpoch = bundle.epoch;
            state.cached = bundle;
            state.haveCached = true;
            return bundle;
        }
        case RecvOutcome::RetryAfter:
            backoff(attempt, waitMs);
            continue;
        case RecvOutcome::Permanent:
            return std::nullopt;
        case RecvOutcome::Transient:
            backoff(attempt, 0);
            continue;
        }
    }
    lastError_ = "pull for '" + app + "': retries exhausted";
    return std::nullopt;
}

uint64_t
WhisperClient::nextSeq(const std::string &app) const
{
    auto it = apps_.find(app);
    return it == apps_.end() ? 0 : it->second.nextSeq;
}

} // namespace whisper
