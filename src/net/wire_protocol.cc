#include "net/wire_protocol.hh"

#include <cstring>

#include "util/crc32.hh"

namespace whisper
{

namespace
{

void
putU32(std::vector<unsigned char> &buf, uint32_t v)
{
    buf.push_back(static_cast<unsigned char>(v));
    buf.push_back(static_cast<unsigned char>(v >> 8));
    buf.push_back(static_cast<unsigned char>(v >> 16));
    buf.push_back(static_cast<unsigned char>(v >> 24));
}

uint32_t
getU32(const unsigned char *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

} // namespace

std::vector<unsigned char>
encodeFrame(WireOp op, const std::vector<unsigned char> &payload)
{
    std::vector<unsigned char> out;
    out.reserve(WireFrame::kHeaderBytes + payload.size());
    putU32(out, WireFrame::kMagic);
    putU32(out, static_cast<uint32_t>(op));
    putU32(out, static_cast<uint32_t>(payload.size()));
    putU32(out, crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void
FrameParser::feed(const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    buffer_.insert(buffer_.end(), p, p + n);
}

FrameParser::Result
FrameParser::next(WireFrame &out)
{
    // Reclaim consumed prefix once it dominates the buffer.
    if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
    if (buffered() < WireFrame::kHeaderBytes)
        return Result::NeedMore;

    const unsigned char *hdr = buffer_.data() + pos_;
    if (getU32(hdr) != WireFrame::kMagic)
        return Result::BadMagic;
    uint32_t op = getU32(hdr + 4);
    uint32_t length = getU32(hdr + 8);
    uint32_t crc = getU32(hdr + 12);
    if (length > WireFrame::kMaxPayload)
        return Result::TooLarge;
    if (buffered() < WireFrame::kHeaderBytes + length)
        return Result::NeedMore;

    const unsigned char *payload = hdr + WireFrame::kHeaderBytes;
    bool crcOk = crc32(payload, length) == crc;
    if (crcOk) {
        out.op = static_cast<WireOp>(op);
        out.payload.assign(payload, payload + length);
    }
    pos_ += WireFrame::kHeaderBytes + length;
    return crcOk ? Result::Frame : Result::BadCrc;
}

// ---- WireWriter / WireReader -------------------------------------

void
WireWriter::u32(uint32_t v)
{
    putU32(buf_, v);
}

void
WireWriter::u64(uint64_t v)
{
    putU32(buf_, static_cast<uint32_t>(v));
    putU32(buf_, static_cast<uint32_t>(v >> 32));
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

void
WireWriter::bytes(const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    buf_.insert(buf_.end(), p, p + n);
}

uint32_t
WireReader::u32()
{
    if (!ok_ || size_ - pos_ < 4) {
        ok_ = false;
        return 0;
    }
    uint32_t v = getU32(data_ + pos_);
    pos_ += 4;
    return v;
}

uint64_t
WireReader::u64()
{
    uint64_t lo = u32();
    uint64_t hi = u32();
    return lo | hi << 32;
}

std::string
WireReader::str()
{
    uint32_t len = u32();
    if (!ok_ || len > WireFrame::kMaxString ||
        size_ - pos_ < len) {
        ok_ = false;
        return {};
    }
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

bool
WireReader::bytes(void *out, size_t n)
{
    if (!ok_ || size_ - pos_ < n) {
        ok_ = false;
        return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
}

// ---- typed messages ----------------------------------------------

std::vector<unsigned char>
encodeHello(const HelloMsg &m)
{
    WireWriter w;
    w.u32(m.version);
    w.str(m.client);
    return w.take();
}

std::vector<unsigned char>
encodeHelloOk(const HelloMsg &m)
{
    return encodeHello(m);
}

bool
decodeHello(const std::vector<unsigned char> &p, HelloMsg &m)
{
    WireReader r(p);
    m.version = r.u32();
    m.client = r.str();
    return r.done();
}

std::vector<unsigned char>
encodeIngestChunk(const IngestChunkMsg &m)
{
    WireWriter w;
    w.str(m.app);
    w.str(m.stream);
    w.u32(m.inputId);
    w.u64(m.seq);
    w.u32(static_cast<uint32_t>(m.records.size()));
    w.bytes(m.records.data(),
            m.records.size() * sizeof(BranchRecord));
    return w.take();
}

bool
decodeIngestChunk(const std::vector<unsigned char> &p,
                  IngestChunkMsg &m)
{
    WireReader r(p);
    m.app = r.str();
    m.stream = r.str();
    m.inputId = r.u32();
    m.seq = r.u64();
    uint32_t count = r.u32();
    if (!r.ok() ||
        static_cast<uint64_t>(count) * sizeof(BranchRecord) !=
            r.remaining()) {
        return false;
    }
    m.records.resize(count);
    return r.bytes(m.records.data(), count * sizeof(BranchRecord)) &&
           r.done();
}

std::vector<unsigned char>
encodeChunkAck(const ChunkAckMsg &m)
{
    WireWriter w;
    w.u64(m.seq);
    w.u32(m.status);
    return w.take();
}

bool
decodeChunkAck(const std::vector<unsigned char> &p, ChunkAckMsg &m)
{
    WireReader r(p);
    m.seq = r.u64();
    m.status = r.u32();
    return r.done();
}

std::vector<unsigned char>
encodeRetryAfter(const RetryAfterMsg &m)
{
    WireWriter w;
    w.u64(m.seq);
    w.u32(m.waitMs);
    return w.take();
}

bool
decodeRetryAfter(const std::vector<unsigned char> &p,
                 RetryAfterMsg &m)
{
    WireReader r(p);
    m.seq = r.u64();
    m.waitMs = r.u32();
    return r.done();
}

std::vector<unsigned char>
encodePullBundle(const PullBundleMsg &m)
{
    WireWriter w;
    w.str(m.app);
    w.u64(m.cachedEpoch);
    return w.take();
}

bool
decodePullBundle(const std::vector<unsigned char> &p,
                 PullBundleMsg &m)
{
    WireReader r(p);
    m.app = r.str();
    m.cachedEpoch = r.u64();
    return r.done();
}

std::vector<unsigned char>
encodeBundleUnchanged(uint64_t epoch)
{
    WireWriter w;
    w.u64(epoch);
    return w.take();
}

bool
decodeBundleUnchanged(const std::vector<unsigned char> &p,
                      uint64_t &epoch)
{
    WireReader r(p);
    epoch = r.u64();
    return r.done();
}

std::vector<unsigned char>
encodeError(const ErrorMsg &m)
{
    WireWriter w;
    w.u32(static_cast<uint32_t>(m.code));
    w.str(m.message);
    return w.take();
}

bool
decodeError(const std::vector<unsigned char> &p, ErrorMsg &m)
{
    WireReader r(p);
    m.code = static_cast<WireError>(r.u32());
    m.message = r.str();
    return r.done();
}

} // namespace whisper
