/**
 * @file
 * WhisperClient: the agent-side library for talking to a whisperd
 * wire server without losing chunks.
 *
 * The reliability contract (what whisper_loadgen asserts under
 * chaos):
 *
 *  - ingestChunk() returning true means the server acknowledged the
 *    chunk — it is in the tenant pipeline (or was already, if the
 *    ack was a duplicate-ack for a retransmission). An acknowledged
 *    chunk is never lost.
 *  - Any failure before the ack (connect refused, send error, torn
 *    connection, CRC reject, backpressure, timeout) is retried:
 *    reconnect if needed, retransmit the same (app, stream, seq).
 *    Because ingest is idempotent per (app, stream, seq), blind
 *    retransmission is always safe.
 *  - The on-wire stream identity is the configured stream name plus
 *    a per-incarnation nonce. A restarted agent that reuses its
 *    stream name therefore starts a fresh sequence space instead of
 *    colliding with the server's memory of the previous incarnation
 *    (whose seqs it would replay from 0, drawing duplicate-acks that
 *    silently drop every chunk). Pin cfg.incarnation to share a
 *    sequence space across client objects, e.g. in tests modeling a
 *    reconnect of the *same* incarnation.
 *  - Retries use capped exponential backoff with deterministic
 *    jitter (seeded per stream) so hundreds of agents hammered by
 *    the same listener restart do not reconnect in lockstep.
 *    RETRY_AFTER overrides the backoff with the server's hint.
 *  - pullBundle() caches by epoch: an unchanged deployment costs a
 *    24-byte round trip, not a bundle decode.
 *
 * The client is deliberately synchronous (stop-and-wait per chunk):
 * concurrency comes from running many agents, as in the load
 * harness, not from pipelining inside one connection.
 */

#ifndef WHISPER_NET_WHISPER_CLIENT_HH
#define WHISPER_NET_WHISPER_CLIENT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/whisper_io.hh"
#include "net/wire_protocol.hh"
#include "trace/branch_record.hh"

namespace whisper
{

struct WhisperClientConfig
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string stream = "client"; //!< sequence-number namespace
    /** Incarnation nonce folded into the wire stream identity; 0
     * (the default) derives a fresh one per client object so a
     * restarted agent never collides with its predecessor's
     * sequence space. */
    uint64_t incarnation = 0;
    /** Per-operation receive deadline. */
    uint32_t recvTimeoutMs = 2'000;
    /** Retry schedule: backoff doubles from initial to cap, with
     * deterministic jitter in [0, backoff/2). */
    uint32_t initialBackoffMs = 5;
    uint32_t maxBackoffMs = 250;
    /** Attempts per chunk before ingestChunk() gives up. Reconnects
     * count as attempts; the default absorbs a full listener restart
     * plus injected wire faults. */
    unsigned maxAttempts = 50;
    uint64_t jitterSeed = 1;
};

/** Client-side counters for the load harness. */
struct WhisperClientStats
{
    uint64_t chunksAcked = 0;
    uint64_t duplicateAcks = 0;
    uint64_t retries = 0;        //!< retransmissions (any cause)
    uint64_t reconnects = 0;
    uint64_t retryAfters = 0;    //!< backpressure frames honored
    uint64_t crcRejects = 0;     //!< server said BadCrc; retransmitted
    uint64_t timeouts = 0;
    uint64_t bundlePulls = 0;
    uint64_t bundleHits = 0;     //!< epoch-cache hits (unchanged)
};

class WhisperClient
{
  public:
    explicit WhisperClient(WhisperClientConfig cfg);
    ~WhisperClient();

    WhisperClient(const WhisperClient &) = delete;
    WhisperClient &operator=(const WhisperClient &) = delete;

    /**
     * Reliably ingest one chunk under the next sequence number for
     * @p app on this client's stream. Blocks through reconnects and
     * retransmissions; @return true once the server acknowledges.
     * False only after cfg.maxAttempts consecutive failures or a
     * permanent error (unknown app, protocol version mismatch) —
     * lastError() says which.
     */
    bool ingestChunk(const std::string &app, uint32_t inputId,
                     const std::vector<BranchRecord> &records);

    /**
     * Pull @p app's deployed bundle, reusing the epoch cache: when
     * the server's epoch equals the cached one the call is a
     * BUNDLE_UNCHANGED round trip and the cached copy is returned.
     * @return nullopt on permanent error or retry exhaustion.
     */
    std::optional<VersionedHintBundle>
    pullBundle(const std::string &app);

    /** Sequence number the next ingestChunk() for @p app will use. */
    uint64_t nextSeq(const std::string &app) const;

    /** The stream identity sent on the wire: cfg.stream plus the
     * incarnation nonce. */
    const std::string &wireStream() const { return wireStream_; }

    const WhisperClientStats &stats() const { return stats_; }
    const std::string &lastError() const { return lastError_; }

    /** Drop the connection (next call reconnects). Test hook. */
    void disconnect();

  private:
    bool ensureConnected();
    bool sendFrameFaulted(const std::vector<unsigned char> &frame,
                          unsigned attempt);
    bool sendAll(const unsigned char *data, size_t n);
    /** Receive frames until one with @p op or @p op2 (or ERROR /
     * RETRY_AFTER) arrives or the deadline passes. */
    enum class RecvOutcome
    {
        Got,        //!< `out` holds the awaited frame
        RetryAfter, //!< server asked to back off (waitMs filled)
        Transient,  //!< timeout / disconnect / crc — retry
        Permanent,  //!< unrecoverable ERROR (lastError_ filled)
    };
    RecvOutcome recvUntil(WireOp op, WireOp op2, WireFrame &out,
                          uint32_t &waitMs);
    void backoff(unsigned attempt, uint32_t serverWaitMs);

    WhisperClientConfig cfg_;
    std::string wireStream_; //!< cfg.stream + "#" + incarnation
    int fd_ = -1;
    FrameParser parser_;
    WhisperClientStats stats_;
    std::string lastError_;
    uint64_t jitterState_;

    struct AppState
    {
        uint64_t nextSeq = 0;
        uint64_t cachedEpoch = 0;
        bool haveCached = false;
        VersionedHintBundle cached;
    };
    std::map<std::string, AppState> apps_;
};

} // namespace whisper

#endif // WHISPER_NET_WHISPER_CLIENT_HH
