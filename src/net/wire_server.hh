/**
 * @file
 * whisperd's TCP front end: an epoll event loop speaking the
 * CRC-framed wire protocol, with backpressure instead of buffering.
 *
 * Design rules, in order:
 *
 *  1. The event loop never blocks on the service. Chunks are handed
 *     to the sink through a non-blocking offer; a full tenant queue
 *     turns into an explicit RETRY_AFTER frame to the client — the
 *     server process never accumulates unbounded ingest state on
 *     behalf of a slow trainer.
 *  2. Ingest is idempotent. Every chunk carries an (app, stream,
 *     seq) identity; the server remembers the next expected sequence
 *     per stream and answers retransmissions of already accepted
 *     chunks with a duplicate-ack instead of ingesting them twice.
 *     An acknowledged chunk is therefore never double-counted, and
 *     an unacknowledged one is always safe to retransmit. The
 *     per-stream state is recorded only when the sink accepts a
 *     chunk (rejected apps leave no trace) and is bounded by
 *     maxTrackedStreams via two-generation rotation: the oldest
 *     half is dropped when the bound is hit, which at worst turns a
 *     very stale retransmission into a re-ingest — the same safe
 *     direction as a server restart losing the table entirely.
 *  3. Hint distribution is cheap when nothing changed. PULL_BUNDLE
 *     carries the client's cached epoch; when it matches the
 *     deployed epoch the reply is a 24-byte BUNDLE_UNCHANGED (one
 *     compare server-side) instead of a re-encoded bundle.
 *  4. Byzantine peers cost one connection, not the server. Hostile
 *     lengths and bad magic close the connection; CRC failures drop
 *     the frame and tell the sender; a writer that stalls mid-frame
 *     longer than the idle timeout is reaped (slow-loris guard); a
 *     reader that stops draining its socket is closed once bytes
 *     queued *behind* the frame currently being delivered exceed
 *     the cap (the in-flight frame itself is exempt, so a single
 *     large bundle — up to kMaxPayload — is always deliverable), or
 *     once it makes no read progress for the idle timeout while
 *     output is pending.
 *
 * The deterministic fault harness reaches into the loop through
 * FaultInjector (`restart-listener`): tearing down the listener and
 * every connection mid-load exercises client reconnect/retransmit.
 */

#ifndef WHISPER_NET_WIRE_SERVER_HH
#define WHISPER_NET_WIRE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/wire_protocol.hh"
#include "service/hint_store.hh"
#include "service/trace_stream.hh"

namespace whisper
{

/** Non-blocking verdict of the ingest sink for one chunk. */
enum class ChunkSinkResult
{
    Accepted,     //!< queued for the tenant's absorber
    UnknownApp,   //!< no such tenant (permanent error to the client)
    Backpressure, //!< tenant queue full (client should retry later)
};

struct WireServerConfig
{
    std::string bindAddress = "127.0.0.1";
    uint16_t port = 0;          //!< 0 = ephemeral (see boundPort())
    uint32_t retryAfterMs = 25; //!< backpressure hint to clients
    /** A connection with a partial frame older than this (or that
     * never completed HELLO) is reaped — the slow-loris guard. */
    uint32_t idleTimeoutMs = 10'000;
    size_t maxConnections = 1024;
    /** Per-connection outbound cap on bytes queued behind the frame
     * currently being delivered; a reader that stops draining its
     * socket is closed past this. The in-flight frame is exempt so
     * a bundle larger than the cap stays deliverable. */
    size_t maxSendBuffer = 8u << 20;
    /** Upper bound on retained (app, stream) idempotency entries;
     * the oldest half rotates out past this, so a hostile client
     * inventing stream names cannot grow server memory without
     * bound. */
    size_t maxTrackedStreams = 8192;
    bool verbose = false;
};

/** Monotonic event-loop counters (readable from any thread). */
struct WireServerStats
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsClosed = 0;
    uint64_t framesReceived = 0;
    uint64_t chunksAccepted = 0;
    uint64_t recordsAccepted = 0;
    uint64_t duplicateChunks = 0;
    uint64_t retryAfterSent = 0;
    uint64_t badCrcFrames = 0;
    uint64_t badStreamCloses = 0; //!< bad magic / hostile length
    uint64_t slowLorisCloses = 0;
    uint64_t slowReaderCloses = 0;
    uint64_t bundlesSent = 0;
    uint64_t bundlesUnchanged = 0;
    uint64_t errorsSent = 0;
    uint64_t unknownAppChunks = 0;
    uint64_t listenerRestarts = 0;
    uint64_t streamsTracked = 0; //!< live idempotency entries (gauge)
};

/** The TCP front end. One instance per whisperd process. */
class WireServer
{
  public:
    using ChunkSink = std::function<ChunkSinkResult(TraceChunk)>;
    /** nullopt = unknown app; a null snapshot = nothing deployed. */
    using BundleProvider =
        std::function<std::optional<HintStore::Snapshot>(
            const std::string &app)>;

    WireServer(const WireServerConfig &cfg, ChunkSink sink,
               BundleProvider bundles);
    ~WireServer();

    WireServer(const WireServer &) = delete;
    WireServer &operator=(const WireServer &) = delete;

    /** Bind + listen + spawn the event thread. @return false (with
     * @p error filled) when the socket could not be set up. */
    bool start(std::string *error = nullptr);

    /** Stop accepting, close every connection, join the loop.
     * Idempotent. The sink is never called after stop() returns. */
    void stop();

    bool running() const { return running_.load(); }
    /** Actual bound port (after start(); useful with port = 0). */
    uint16_t boundPort() const { return boundPort_; }

    WireServerStats stats() const;

  private:
    struct Connection;

    void eventLoop();
    bool openListener(std::string *error);
    void closeListener();
    void restartListener();
    void acceptReady();
    void readReady(Connection &conn);
    void writeReady(Connection &conn);
    void handleFrame(Connection &conn, const WireFrame &frame);
    void handleIngest(Connection &conn, const WireFrame &frame);
    void handlePull(Connection &conn, const WireFrame &frame);
    /** @return false when the send closed (destroyed) @p conn — the
     * caller must not touch the connection afterwards. */
    bool sendFrame(Connection &conn, WireOp op,
                   const std::vector<unsigned char> &payload);
    /** @return false when the send closed (destroyed) @p conn. */
    bool sendError(Connection &conn, WireError code,
                   const std::string &message);
    /** Next expected sequence for @p streamKey, or nullptr if the
     * stream is untracked (either generation). */
    const uint64_t *findNextSeq(const std::string &streamKey) const;
    /** Record @p next for @p streamKey in the current generation,
     * rotating the generations at the maxTrackedStreams bound. */
    void storeNextSeq(const std::string &streamKey, uint64_t next);
    void closeConnection(int fd);
    void sweepStalledConnections();
    void updateEpollOut(Connection &conn);

    WireServerConfig cfg_;
    ChunkSink sink_;
    BundleProvider bundles_;

    int epollFd_ = -1;
    int listenFd_ = -1;
    int wakeupFd_ = -1; //!< stop()/start() handshake (eventfd)
    uint16_t boundPort_ = 0;

    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};

    std::map<int, std::unique_ptr<Connection>> connections_;
    /** Next expected sequence per (app, stream) — the idempotency /
     * resume state, split into two generations so it stays bounded
     * (see findNextSeq/storeNextSeq). Only the event thread touches
     * them. */
    std::map<std::string, uint64_t> nextSeqCur_;
    std::map<std::string, uint64_t> nextSeqPrev_;
    uint64_t arrivals_ = 0; //!< global chunk arrival counter

    // Counters are atomics so stats() is callable mid-run.
    struct AtomicStats
    {
        std::atomic<uint64_t> connectionsAccepted{0};
        std::atomic<uint64_t> connectionsClosed{0};
        std::atomic<uint64_t> framesReceived{0};
        std::atomic<uint64_t> chunksAccepted{0};
        std::atomic<uint64_t> recordsAccepted{0};
        std::atomic<uint64_t> duplicateChunks{0};
        std::atomic<uint64_t> retryAfterSent{0};
        std::atomic<uint64_t> badCrcFrames{0};
        std::atomic<uint64_t> badStreamCloses{0};
        std::atomic<uint64_t> slowLorisCloses{0};
        std::atomic<uint64_t> slowReaderCloses{0};
        std::atomic<uint64_t> bundlesSent{0};
        std::atomic<uint64_t> bundlesUnchanged{0};
        std::atomic<uint64_t> errorsSent{0};
        std::atomic<uint64_t> unknownAppChunks{0};
        std::atomic<uint64_t> listenerRestarts{0};
        std::atomic<uint64_t> streamsTracked{0};
    } stats_;
};

} // namespace whisper

#endif // WHISPER_NET_WIRE_SERVER_HH
