#include "bp/simple_predictors.hh"

#include "util/bits.hh"

namespace whisper
{

BimodalPredictor::BimodalPredictor(unsigned log2Entries)
    : table_(1ULL << log2Entries, SatCounter(2, 1))
{
}

size_t
BimodalPredictor::indexFor(uint64_t pc) const
{
    return pcIndexBits(pc) & (table_.size() - 1);
}

bool
BimodalPredictor::predict(uint64_t pc, bool)
{
    return table_[indexFor(pc)].predictTaken();
}

void
BimodalPredictor::update(uint64_t pc, bool taken, bool, bool)
{
    table_[indexFor(pc)].update(taken);
}

void
BimodalPredictor::reset()
{
    for (auto &c : table_)
        c.set(1);
}

void
BimodalPredictor::predictMany(const BranchRecord *records, size_t n,
                              uint8_t *outMispredicted)
{
    for (size_t i = 0; i < n; ++i) {
        const BranchRecord &rec = records[i];
        uint8_t miss = 0;
        if (rec.isConditional()) {
            SatCounter &ctr = table_[indexFor(rec.pc)];
            bool p = ctr.predictTaken();
            ctr.update(rec.taken);
            miss = p != rec.taken;
        }
        outMispredicted[i] = miss;
    }
}

GsharePredictor::GsharePredictor(unsigned log2Entries,
                                 unsigned historyLen)
    : historyLen_(historyLen),
      table_(1ULL << log2Entries, SatCounter(2, 1))
{
}

size_t
GsharePredictor::indexFor(uint64_t pc) const
{
    uint64_t idx = pcIndexBits(pc) ^ foldXor(history_ & maskBits(historyLen_),
                                       ceilLog2(table_.size()));
    return idx & (table_.size() - 1);
}

bool
GsharePredictor::predict(uint64_t pc, bool)
{
    return table_[indexFor(pc)].predictTaken();
}

void
GsharePredictor::update(uint64_t pc, bool taken, bool, bool)
{
    table_[indexFor(pc)].update(taken);
    history_ = (history_ << 1) | static_cast<uint64_t>(taken);
}

void
GsharePredictor::reset()
{
    history_ = 0;
    for (auto &c : table_)
        c.set(1);
}

void
GsharePredictor::predictMany(const BranchRecord *records, size_t n,
                             uint8_t *outMispredicted)
{
    for (size_t i = 0; i < n; ++i) {
        const BranchRecord &rec = records[i];
        uint8_t miss = 0;
        if (rec.isConditional()) {
            SatCounter &ctr = table_[indexFor(rec.pc)];
            bool p = ctr.predictTaken();
            ctr.update(rec.taken);
            history_ = (history_ << 1) | static_cast<uint64_t>(rec.taken);
            miss = p != rec.taken;
        }
        outMispredicted[i] = miss;
    }
}

} // namespace whisper
