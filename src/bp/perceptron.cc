#include "bp/perceptron.hh"

#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

PerceptronPredictor::PerceptronPredictor()
    : PerceptronPredictor(Config{})
{
}

PerceptronPredictor::PerceptronPredictor(const Config &cfg)
    : cfg_(cfg),
      weightMin_(-(1 << (cfg.weightBits - 1))),
      weightMax_((1 << (cfg.weightBits - 1)) - 1),
      weights_(static_cast<size_t>(cfg.numTables)
                   << cfg.log2Entries,
               0),
      bias_(1ULL << cfg.log2Entries, 0)
{
    whisper_assert(cfg.numTables >= 1 && cfg.segmentBits >= 1 &&
                   cfg.segmentBits <= 64);
    unsigned totalHist = cfg.numTables * cfg.segmentBits;
    history_.assign((totalHist + 63) / 64, 0);
    threshold_ = cfg.threshold > 0
        ? cfg.threshold
        : static_cast<int>(1.93 * totalHist + 14) / 8;
}

size_t
PerceptronPredictor::tableIndex(unsigned t, uint64_t pc) const
{
    // Extract segment t of the packed history: at most two word
    // reads instead of the old bit-by-bit gather (same bits, same
    // order — bit b of the segment is history bit lo + b).
    unsigned lo = t * cfg_.segmentBits;
    unsigned word = lo >> 6;
    unsigned off = lo & 63;
    uint64_t seg = history_[word] >> off;
    if (off + cfg_.segmentBits > 64)
        seg |= history_[word + 1] << (64 - off);
    seg &= maskBits(cfg_.segmentBits);
    uint64_t idx = pcIndexBits(pc) ^ mix64(seg + t * 0x9e37ULL);
    return idx & ((1ULL << cfg_.log2Entries) - 1);
}

int
PerceptronPredictor::computeSum(uint64_t pc) const
{
    int sum = bias_[pcIndexBits(pc) & ((1ULL << cfg_.log2Entries) - 1)];
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        size_t slot = (static_cast<size_t>(t) << cfg_.log2Entries) +
                      tableIndex(t, pc);
        sum += weights_[slot];
    }
    return sum;
}

bool
PerceptronPredictor::predict(uint64_t pc, bool)
{
    lastSum_ = computeSum(pc);
    return lastSum_ >= 0;
}

void
PerceptronPredictor::update(uint64_t pc, bool taken, bool predicted,
                            bool)
{
    int sum = computeSum(pc);
    bool needTrain = (predicted != taken) ||
                     std::abs(sum) <= threshold_;
    if (needTrain) {
        auto adjust = [&](int16_t &w) {
            int v = w + (taken ? 1 : -1);
            if (v < weightMin_)
                v = weightMin_;
            if (v > weightMax_)
                v = weightMax_;
            w = static_cast<int16_t>(v);
        };
        adjust(bias_[pcIndexBits(pc) & ((1ULL << cfg_.log2Entries) - 1)]);
        for (unsigned t = 0; t < cfg_.numTables; ++t) {
            size_t slot = (static_cast<size_t>(t) << cfg_.log2Entries) +
                          tableIndex(t, pc);
            adjust(weights_[slot]);
        }
    }

    // Shift the packed history left by one, inserting the outcome.
    uint64_t carry = taken ? 1 : 0;
    for (auto &word : history_) {
        uint64_t newCarry = word >> 63;
        word = (word << 1) | carry;
        carry = newCarry;
    }
}

void
PerceptronPredictor::reset()
{
    std::fill(weights_.begin(), weights_.end(), 0);
    std::fill(bias_.begin(), bias_.end(), 0);
    std::fill(history_.begin(), history_.end(), 0);
}

void
PerceptronPredictor::predictMany(const BranchRecord *records, size_t n,
                                 uint8_t *outMispredicted)
{
    for (size_t i = 0; i < n; ++i) {
        const BranchRecord &rec = records[i];
        uint8_t miss = 0;
        if (rec.isConditional()) {
            bool p = PerceptronPredictor::predict(rec.pc, rec.taken);
            PerceptronPredictor::update(rec.pc, rec.taken, p);
            miss = p != rec.taken;
        }
        outMispredicted[i] = miss;
    }
}

uint64_t
PerceptronPredictor::storageBits() const
{
    uint64_t entries = (1ULL << cfg_.log2Entries);
    return (cfg_.numTables + 1) * entries * cfg_.weightBits;
}

} // namespace whisper
