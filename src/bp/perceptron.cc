#include "bp/perceptron.hh"

#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

PerceptronPredictor::PerceptronPredictor()
    : PerceptronPredictor(Config{})
{
}

PerceptronPredictor::PerceptronPredictor(const Config &cfg)
    : cfg_(cfg),
      weightMin_(-(1 << (cfg.weightBits - 1))),
      weightMax_((1 << (cfg.weightBits - 1)) - 1),
      weights_(cfg.numTables,
               std::vector<int16_t>(1ULL << cfg.log2Entries, 0)),
      bias_(1ULL << cfg.log2Entries, 0)
{
    whisper_assert(cfg.numTables >= 1 && cfg.segmentBits >= 1);
    unsigned totalHist = cfg.numTables * cfg.segmentBits;
    history_.assign((totalHist + 63) / 64, 0);
    threshold_ = cfg.threshold > 0
        ? cfg.threshold
        : static_cast<int>(1.93 * totalHist + 14) / 8;
}

size_t
PerceptronPredictor::tableIndex(unsigned t, uint64_t pc) const
{
    // Extract segment t of the packed history.
    unsigned lo = t * cfg_.segmentBits;
    uint64_t seg = 0;
    for (unsigned b = 0; b < cfg_.segmentBits; ++b) {
        unsigned bitPos = lo + b;
        uint64_t bit = (history_[bitPos / 64] >> (bitPos % 64)) & 1;
        seg |= bit << b;
    }
    uint64_t idx = pcIndexBits(pc) ^ mix64(seg + t * 0x9e37ULL);
    return idx & ((1ULL << cfg_.log2Entries) - 1);
}

int
PerceptronPredictor::computeSum(uint64_t pc) const
{
    int sum = bias_[pcIndexBits(pc) & ((1ULL << cfg_.log2Entries) - 1)];
    for (unsigned t = 0; t < cfg_.numTables; ++t)
        sum += weights_[t][tableIndex(t, pc)];
    return sum;
}

bool
PerceptronPredictor::predict(uint64_t pc, bool)
{
    lastSum_ = computeSum(pc);
    return lastSum_ >= 0;
}

void
PerceptronPredictor::update(uint64_t pc, bool taken, bool predicted,
                            bool)
{
    int sum = computeSum(pc);
    bool needTrain = (predicted != taken) ||
                     std::abs(sum) <= threshold_;
    if (needTrain) {
        auto adjust = [&](int16_t &w) {
            int v = w + (taken ? 1 : -1);
            if (v < weightMin_)
                v = weightMin_;
            if (v > weightMax_)
                v = weightMax_;
            w = static_cast<int16_t>(v);
        };
        adjust(bias_[pcIndexBits(pc) & ((1ULL << cfg_.log2Entries) - 1)]);
        for (unsigned t = 0; t < cfg_.numTables; ++t)
            adjust(weights_[t][tableIndex(t, pc)]);
    }

    // Shift the packed history left by one, inserting the outcome.
    uint64_t carry = taken ? 1 : 0;
    for (auto &word : history_) {
        uint64_t newCarry = word >> 63;
        word = (word << 1) | carry;
        carry = newCarry;
    }
}

void
PerceptronPredictor::reset()
{
    for (auto &t : weights_)
        std::fill(t.begin(), t.end(), 0);
    std::fill(bias_.begin(), bias_.end(), 0);
    std::fill(history_.begin(), history_.end(), 0);
}

uint64_t
PerceptronPredictor::storageBits() const
{
    uint64_t entries = (1ULL << cfg_.log2Entries);
    return (cfg_.numTables + 1) * entries * cfg_.weightBits;
}

} // namespace whisper
