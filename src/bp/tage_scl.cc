#include "bp/tage_scl.hh"

#include <algorithm>
#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace whisper
{

TageSclConfig
TageSclConfig::forBudgetKB(unsigned kb)
{
    whisper_assert(kb >= 1, "budget must be >= 1KB");
    TageSclConfig cfg;
    // The reference point is the 64KB championship configuration.
    int delta = static_cast<int>(floorLog2(kb)) -
                static_cast<int>(floorLog2(64));
    auto scaled = [&](unsigned base) {
        int v = static_cast<int>(base) + delta;
        return static_cast<unsigned>(std::max(v, 4));
    };
    cfg.logBimodal = scaled(16);
    cfg.logTagged = scaled(11);
    cfg.logSc = scaled(11);
    cfg.logLoop = std::min(scaled(7), 11u);
    // Very large budgets can also track longer correlations.
    if (delta >= 5)
        cfg.maxHist = 3000;
    return cfg;
}

TageScl::TageScl(const TageSclConfig &cfg)
    : cfg_(cfg),
      bimodal_(1ULL << cfg.logBimodal, 0),
      history_(4096),
      scBias_(1ULL << cfg.logSc, 0),
      loop_((1ULL << cfg.logLoop) * 4)
{
    whisper_assert(cfg.numTables >= 2 &&
                   cfg.numTables <= kMaxTables);
    whisper_assert(cfg.maxHist > cfg.minHist);
    whisper_assert(cfg.maxHist < history_.capacity());

    // Geometric history-length series, a la OGEHL/TAGE.
    double ratio = std::pow(
        static_cast<double>(cfg.maxHist) / cfg.minHist,
        1.0 / (cfg.numTables - 1));
    histLens_.resize(cfg.numTables);
    double len = cfg.minHist;
    for (unsigned i = 0; i < cfg.numTables; ++i) {
        histLens_[i] = std::max<unsigned>(
            static_cast<unsigned>(len + 0.5),
            i == 0 ? cfg.minHist : histLens_[i - 1] + 1);
        len *= ratio;
    }

    // Short-history tables carry shorter tags (championship style).
    tagBits_.resize(cfg.numTables);
    for (unsigned i = 0; i < cfg.numTables; ++i)
        tagBits_[i] = 8 + std::min(3u, i / 4);

    size_t taggedTotal = static_cast<size_t>(cfg.numTables)
                         << cfg.logTagged;
    tagKey_.assign(taggedTotal, kFreeEntry);
    tagCtr_.assign(taggedTotal, 0);
    tagUseful_.assign(taggedTotal, 0);

    // Folded history views: one for the index, two for the tag.
    for (unsigned i = 0; i < cfg.numTables; ++i) {
        idxView_.push_back(
            history_.addFoldedView(histLens_[i], cfg.logTagged));
        tag1View_.push_back(
            history_.addFoldedView(histLens_[i], tagBits_[i]));
        tag2View_.push_back(
            history_.addFoldedView(histLens_[i], tagBits_[i] - 1));
    }

    // Statistical corrector: bias + GEHL components on short
    // histories.
    scHistLens_ = {4, 10, 16, 27, 44};
    whisper_assert(scHistLens_.size() <= kMaxScTables);
    scTables_.assign(scHistLens_.size(), {});
    for (size_t t = 0; t < scHistLens_.size(); ++t) {
        scTables_[t].assign(1ULL << cfg.logSc, 0);
        scView_.push_back(
            history_.addFoldedView(scHistLens_[t], cfg.logSc));
    }
}

std::string
TageScl::name() const
{
    uint64_t kb = storageBits() / 8 / 1024;
    return "tage-sc-l-" + std::to_string(kb) + "kb";
}

uint64_t
TageScl::storageBits() const
{
    uint64_t bits = bimodal_.size() * 2;
    for (unsigned i = 0; i < cfg_.numTables; ++i) {
        bits += (1ULL << cfg_.logTagged) *
                (tagBits_[i] + cfg_.ctrBits + cfg_.usefulBits);
    }
    if (cfg_.useSc) {
        bits += scBias_.size() * cfg_.scCtrBits;
        for (const auto &t : scTables_)
            bits += t.size() * cfg_.scCtrBits;
    }
    if (cfg_.useLoop)
        bits += loop_.size() * (16 + 10 + 10 + 3 + 4 + 1 + 1);
    return bits;
}

uint32_t
TageScl::nextRandom()
{
    // 16-bit LFSR; deterministic allocation tie-breaking.
    lfsr_ = (lfsr_ >> 1) ^ (-(lfsr_ & 1u) & 0xB400u);
    return lfsr_;
}

uint32_t
TageScl::taggedIndex(unsigned t, uint64_t pc) const
{
    uint64_t idx = pcIndexBits(pc) ^ (pc >> (cfg_.logTagged - (t % 4))) ^
                   history_.foldedValue(idxView_[t]);
    return idx & maskBits(cfg_.logTagged);
}

uint16_t
TageScl::taggedTag(unsigned t, uint64_t pc) const
{
    uint64_t tag = pcIndexBits(pc) ^ history_.foldedValue(tag1View_[t]) ^
                   (history_.foldedValue(tag2View_[t]) << 1);
    return static_cast<uint16_t>(tag & maskBits(tagBits_[t]));
}

void
TageScl::computeTagePrediction(uint64_t pc)
{
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        ctx_.indices[t] = taggedIndex(t, pc);
        ctx_.tags[t] = taggedTag(t, pc);
    }

    // Longest-history match scan: one compare per table against the
    // contiguous key array (the kFreeEntry sentinel makes the
    // validity check implicit in the tag compare).
    ctx_.providerTable = -1;
    ctx_.altTable = -1;
    for (int t = cfg_.numTables - 1; t >= 0; --t) {
        if (tagKey_[taggedSlot(t, ctx_.indices[t])] == ctx_.tags[t]) {
            if (ctx_.providerTable < 0) {
                ctx_.providerTable = t;
            } else {
                ctx_.altTable = t;
                break;
            }
        }
    }

    bool basePred = bimodal_[pcIndexBits(pc) & maskBits(cfg_.logBimodal)] >= 2;
    ctx_.altPred = basePred;
    if (ctx_.altTable >= 0) {
        ctx_.altPred =
            tagCtr_[taggedSlot(ctx_.altTable,
                               ctx_.indices[ctx_.altTable])] >= 0;
    }

    if (ctx_.providerTable >= 0) {
        size_t slot = taggedSlot(ctx_.providerTable,
                                 ctx_.indices[ctx_.providerTable]);
        int8_t ctr = tagCtr_[slot];
        ctx_.providerPred = ctr >= 0;
        // Newly allocated: weak counter and no proven usefulness.
        ctx_.newlyAllocated =
            tagUseful_[slot] == 0 && (ctr == 0 || ctr == -1);
        if (ctx_.newlyAllocated && useAltOnNa_ >= 0)
            ctx_.tagePred = ctx_.altPred;
        else
            ctx_.tagePred = ctx_.providerPred;
    } else {
        ctx_.providerPred = basePred;
        ctx_.newlyAllocated = false;
        ctx_.tagePred = basePred;
    }
}

int
TageScl::scIndex(unsigned t, uint64_t pc, bool tagePred) const
{
    uint64_t idx = pcIndexBits(pc) ^ history_.foldedValue(scView_[t]) ^
                   (static_cast<uint64_t>(tagePred) << (cfg_.logSc - 1));
    return static_cast<int>(idx & maskBits(cfg_.logSc));
}

void
TageScl::computeScPrediction(uint64_t pc)
{
    int sum = 2 * scBias_[pcIndexBits(pc) & maskBits(cfg_.logSc)] + 1;
    sum += ctx_.tagePred ? 8 : -8;
    for (size_t t = 0; t < scTables_.size(); ++t) {
        ctx_.scIndices[t] = scIndex(t, pc, ctx_.tagePred);
        sum += 2 * scTables_[t][ctx_.scIndices[t]] + 1;
    }
    ctx_.scSum = sum;
    ctx_.scPred = sum >= 0;
    // The corrector only overrides when it disagrees confidently.
    ctx_.scUsed = (ctx_.scPred != ctx_.tagePred) &&
                  std::abs(sum) >= scThreshold_;
}

TageScl::LoopEntry *
TageScl::findLoopEntry(uint64_t pc, bool allocate)
{
    uint32_t set = pcIndexBits(pc) & maskBits(cfg_.logLoop);
    uint16_t tag = static_cast<uint16_t>((pc >> (1 + cfg_.logLoop)) &
                                         maskBits(14));
    LoopEntry *victim = nullptr;
    for (uint32_t w = 0; w < loopWays_; ++w) {
        LoopEntry &e = loop_[set * loopWays_ + w];
        if (e.valid && e.tag == tag)
            return &e;
        if (!e.valid || e.age == 0)
            victim = &e;
    }
    if (!allocate)
        return nullptr;
    if (!victim) {
        for (uint32_t w = 0; w < loopWays_; ++w) {
            LoopEntry &e = loop_[set * loopWays_ + w];
            if (e.age > 0)
                --e.age;
        }
        return nullptr;
    }
    *victim = LoopEntry{};
    victim->tag = tag;
    victim->valid = true;
    victim->age = 7;
    return victim;
}

void
TageScl::computeLoopPrediction(uint64_t pc)
{
    ctx_.loopValid = false;
    ctx_.loopUsed = false;
    LoopEntry *e = findLoopEntry(pc, false);
    if (!e || e->confidence < 7 || e->pastIter == 0)
        return;
    ctx_.loopValid = true;
    // Predict the loop exit on the final iteration.
    ctx_.loopPred = (e->currentIter + 1 == e->pastIter) ? !e->dir
                                                        : e->dir;
    ctx_.loopUsed = true;
}

void
TageScl::updateLoop(uint64_t pc, bool taken)
{
    LoopEntry *e = findLoopEntry(pc, true);
    if (!e)
        return;

    // A confident loop prediction that turned out wrong must lose
    // its confidence immediately, or the entry keeps mispredicting.
    if (ctx_.loopUsed && ctx_.loopPred != taken) {
        e->confidence = 0;
        e->pastIter = 0;
        e->currentIter = 0;
        e->dir = taken;
        return;
    }

    if (e->pastIter == 0 && e->currentIter == 0) {
        // Fresh (or retraining) entry: start counting a run.
        e->dir = taken;
        e->currentIter = 1;
        return;
    }

    if (taken == e->dir) {
        if (e->currentIter >= 1023) {
            // Too long to be a countable loop; drop the entry.
            e->valid = false;
            return;
        }
        ++e->currentIter;
        if (e->pastIter != 0 && e->currentIter > e->pastIter) {
            // The expected exit never came: trip count changed.
            e->pastIter = 0;
            e->confidence = 0;
            e->currentIter = 1;
        }
        return;
    }

    // Opposite direction observed.
    if (e->currentIter == 0) {
        // Two exits in a row: 'dir' was learned from the exit
        // direction; flip the notion of the body direction.
        e->dir = taken;
        e->currentIter = 1;
        e->pastIter = 0;
        e->confidence = 0;
        return;
    }

    // One full run of length currentIter finished.
    if (e->pastIter == 0) {
        e->pastIter = e->currentIter;
        e->confidence = 1;
    } else if (e->pastIter == e->currentIter) {
        if (e->confidence < 7)
            ++e->confidence;
        if (e->age < 7)
            ++e->age;
    } else {
        // Iteration count changed; retrain.
        e->pastIter = e->currentIter;
        e->confidence = 0;
    }
    e->currentIter = 0;
}

bool
TageScl::predict(uint64_t pc, bool)
{
    ctx_ = PredictContext{};
    ctx_.pc = pc;
    computeTagePrediction(pc);

    bool pred = ctx_.tagePred;
    ctx_.provider = ctx_.providerTable >= 0 ? Provider::Tagged
                                            : Provider::Bimodal;

    if (cfg_.useSc) {
        computeScPrediction(pc);
        if (ctx_.scUsed) {
            pred = ctx_.scPred;
            ctx_.provider = Provider::Sc;
        }
    }

    if (cfg_.useLoop) {
        computeLoopPrediction(pc);
        if (ctx_.loopUsed) {
            pred = ctx_.loopPred;
            ctx_.provider = Provider::Loop;
        }
    }

    ctx_.finalPred = pred;
    return pred;
}

void
TageScl::allocateEntries(uint64_t pc, bool taken)
{
    (void)pc;
    int start = ctx_.providerTable + 1;
    if (start >= static_cast<int>(cfg_.numTables))
        return;

    // Skip a random number of tables so allocations spread out.
    if (nextRandom() % 4 == 0 &&
        start + 1 < static_cast<int>(cfg_.numTables)) {
        ++start;
    }

    unsigned allocated = 0, blocked = 0;
    for (unsigned t = start; t < cfg_.numTables && allocated < 2; ++t) {
        size_t slot = taggedSlot(t, ctx_.indices[t]);
        if (tagUseful_[slot] == 0) {
            tagKey_[slot] = ctx_.tags[t];
            tagCtr_[slot] = taken ? 0 : -1;
            ++allocated;
            ++t; // leave a gap between allocations
        } else {
            ++blocked;
        }
    }

    // CBP-5 TICK throttle: persistent allocation pressure (more
    // blocked slots than successes) eventually decays all useful
    // bits at once, instead of letting hopeless branches churn
    // protected entries one by one.
    tick_ += static_cast<int>(blocked) - static_cast<int>(allocated);
    if (tick_ < 0)
        tick_ = 0;
    if (tick_ >= cfg_.tickMax) {
        tick_ = 0;
        decayUseful();
    }
}

void
TageScl::updateSc(bool taken)
{
    bool scWasCorrect = ctx_.scPred == taken;
    bool tageWasCorrect = ctx_.tagePred == taken;

    // Dynamic threshold adaptation on disagreements.
    if (ctx_.scPred != ctx_.tagePred) {
        if (scWasCorrect && !tageWasCorrect)
            --scThresholdCtr_;
        else if (!scWasCorrect && tageWasCorrect)
            ++scThresholdCtr_;
        if (scThresholdCtr_ >= 8) {
            scThresholdCtr_ = 0;
            if (scThreshold_ < 127)
                ++scThreshold_;
        } else if (scThresholdCtr_ <= -8) {
            scThresholdCtr_ = 0;
            if (scThreshold_ > 4)
                --scThreshold_;
        }
    }

    // Train when uncertain or wrong.
    if (std::abs(ctx_.scSum) < scThreshold_ + 4 ||
        ctx_.finalPred != taken) {
        int lim = (1 << (cfg_.scCtrBits - 1)) - 1;
        auto adjust = [&](int8_t &w) {
            int v = w + (taken ? 1 : -1);
            v = std::clamp(v, -lim - 1, lim);
            w = static_cast<int8_t>(v);
        };
        adjust(scBias_[pcIndexBits(ctx_.pc) & maskBits(cfg_.logSc)]);
        for (size_t t = 0; t < scTables_.size(); ++t)
            adjust(scTables_[t][ctx_.scIndices[t]]);
    }
}

void
TageScl::update(uint64_t pc, bool taken, bool predicted, bool allocate)
{
    whisper_assert(pc == ctx_.pc, "update() without matching predict()");
    (void)predicted;
    ++updates_;

    if (cfg_.useLoop)
        updateLoop(pc, taken);
    if (cfg_.useSc)
        updateSc(taken);

    // use-alt-on-newly-allocated policy counter.
    if (ctx_.providerTable >= 0 && ctx_.newlyAllocated &&
        ctx_.providerPred != ctx_.altPred) {
        if (ctx_.altPred == taken) {
            if (useAltOnNa_ < 7)
                ++useAltOnNa_;
        } else {
            if (useAltOnNa_ > -8)
                --useAltOnNa_;
        }
    }

    // Update the provider (or bimodal).
    if (ctx_.providerTable >= 0) {
        size_t slot = taggedSlot(ctx_.providerTable,
                                 ctx_.indices[ctx_.providerTable]);
        int lim = (1 << (cfg_.ctrBits - 1)) - 1;
        int v = tagCtr_[slot] + (taken ? 1 : -1);
        tagCtr_[slot] = static_cast<int8_t>(std::clamp(v, -lim - 1, lim));

        // Usefulness: provider correct where the alternative failed.
        if (ctx_.providerPred != ctx_.altPred) {
            if (ctx_.providerPred == taken) {
                if (tagUseful_[slot] < maskBits(cfg_.usefulBits))
                    ++tagUseful_[slot];
            } else if (tagUseful_[slot] > 0) {
                --tagUseful_[slot];
            }
        }
        // Weak, useless provider entries also train the base table so
        // the bimodal stays warm for when the entry is evicted.
        if (tagUseful_[slot] == 0) {
            auto &b = bimodal_[pcIndexBits(pc) & maskBits(cfg_.logBimodal)];
            int bv = b + (taken ? 1 : -1);
            b = static_cast<int8_t>(std::clamp(bv, 0, 3));
        }
    } else {
        auto &b = bimodal_[pcIndexBits(pc) & maskBits(cfg_.logBimodal)];
        int bv = b + (taken ? 1 : -1);
        b = static_cast<int8_t>(std::clamp(bv, 0, 3));
    }

    // Allocate on a wrong TAGE prediction.
    if (allocate && ctx_.tagePred != taken)
        allocateEntries(pc, taken);

    history_.push(taken);
}

void
TageScl::decayUseful()
{
    for (auto &u : tagUseful_)
        u >>= 1;
}

void
TageScl::predictMany(const BranchRecord *records, size_t n,
                     uint8_t *outMispredicted)
{
    // Identical to the base-class record loop, but with the
    // predict/update calls devirtualized (onRecord is a no-op for
    // TAGE-SC-L) so the whole per-record path inlines.
    for (size_t i = 0; i < n; ++i) {
        const BranchRecord &rec = records[i];
        uint8_t miss = 0;
        if (rec.isConditional()) {
            bool p = TageScl::predict(rec.pc, rec.taken);
            TageScl::update(rec.pc, rec.taken, p);
            miss = p != rec.taken;
        }
        outMispredicted[i] = miss;
    }
}

void
TageScl::reset()
{
    std::fill(tagKey_.begin(), tagKey_.end(), kFreeEntry);
    std::fill(tagCtr_.begin(), tagCtr_.end(), 0);
    std::fill(tagUseful_.begin(), tagUseful_.end(), 0);
    std::fill(bimodal_.begin(), bimodal_.end(), 0);
    for (auto &t : scTables_)
        std::fill(t.begin(), t.end(), 0);
    std::fill(scBias_.begin(), scBias_.end(), 0);
    std::fill(loop_.begin(), loop_.end(), LoopEntry{});
    history_.reset();
    useAltOnNa_ = 0;
    scThreshold_ = 6;
    scThresholdCtr_ = 0;
    updates_ = 0;
    tick_ = 0;
    lfsr_ = 0xACE1u;
    ctx_ = PredictContext{};
}

unsigned
TageScl::lastProviderHistLen() const
{
    if (ctx_.providerTable < 0)
        return 0;
    return histLens_[ctx_.providerTable];
}

} // namespace whisper
