/**
 * @file
 * Hashed perceptron predictor (Jimenez & Lin style) — included as a
 * classic online baseline alongside TAGE-SC-L.
 */

#ifndef WHISPER_BP_PERCEPTRON_HH
#define WHISPER_BP_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "bp/branch_predictor.hh"

namespace whisper
{

/**
 * Hashed perceptron over segmented global history.
 *
 * The history is cut into segments; each segment, xored with the PC,
 * indexes its own weight table. The prediction is the sign of the
 * weight sum plus bias; training is on misprediction or when the sum
 * magnitude is below the threshold (standard perceptron rule).
 */
class PerceptronPredictor : public BranchPredictor
{
  public:
    struct Config
    {
        unsigned numTables = 16;      //!< history-segment tables
        unsigned log2Entries = 12;    //!< entries per table
        unsigned segmentBits = 8;     //!< history bits per segment
        unsigned weightBits = 8;      //!< signed weight width
        int threshold = 0;            //!< 0 = derive from history len
    };

    PerceptronPredictor();
    explicit PerceptronPredictor(const Config &cfg);

    bool predict(uint64_t pc, bool) override;
    void update(uint64_t pc, bool taken, bool predicted,
                bool allocate = true) override;
    void predictMany(const BranchRecord *records, size_t n,
                     uint8_t *outMispredicted) override;
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<PerceptronPredictor>(*this);
    }
    std::string name() const override { return "perceptron"; }
    void reset() override;
    uint64_t storageBits() const override;

  private:
    size_t tableIndex(unsigned t, uint64_t pc) const;
    int computeSum(uint64_t pc) const;

    Config cfg_;
    int threshold_;
    int weightMin_;
    int weightMax_;
    /** Weight store as one contiguous array, table t at offset
     * t << log2Entries (all tables are the same power-of-two size);
     * replaces the vector-of-vectors double indirection. */
    std::vector<int16_t> weights_;
    std::vector<int16_t> bias_;
    std::vector<uint64_t> history_; //!< packed history words
    int lastSum_ = 0;
};

} // namespace whisper

#endif // WHISPER_BP_PERCEPTRON_HH
