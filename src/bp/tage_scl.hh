/**
 * @file
 * TAGE-SC-L direction predictor (Seznec, CBP-5), size-scalable.
 *
 * The structure follows the championship predictor: a bimodal base
 * table, 12 partially-tagged tables indexed with geometrically
 * increasing global-history lengths, a use-alt-on-newly-allocated
 * policy, periodic usefulness decay, a GEHL-style statistical
 * corrector, and a loop predictor. Storage scales from 8KB to
 * multi-MB via Config::forBudgetKB so the paper's predictor-size
 * sweep (Fig. 21) and the MTAGE-SC "unlimited" reference (Fig. 12)
 * use the same code.
 */

#ifndef WHISPER_BP_TAGE_SCL_HH
#define WHISPER_BP_TAGE_SCL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "bp/branch_predictor.hh"
#include "trace/global_history.hh"

namespace whisper
{

/** TAGE-SC-L configuration knobs. */
struct TageSclConfig
{
    unsigned numTables = 12;       //!< tagged components
    unsigned minHist = 6;          //!< shortest tagged history
    unsigned maxHist = 1600;       //!< longest tagged history
    unsigned logBimodal = 16;      //!< log2 bimodal entries
    unsigned logTagged = 10;       //!< log2 entries per tagged table
    unsigned ctrBits = 3;          //!< tagged counter width
    unsigned usefulBits = 2;       //!< usefulness width
    unsigned logSc = 12;           //!< log2 entries per SC table
    unsigned scCtrBits = 6;        //!< SC counter width
    unsigned logLoop = 6;          //!< log2 loop-predictor sets
    bool useSc = true;             //!< enable statistical corrector
    bool useLoop = true;           //!< enable loop predictor
    /** Allocation-throttle saturation (CBP-5 TICK): when failed
     * allocations outweigh successes by this much, all usefulness
     * counters decay, opening room without constant churn. */
    int tickMax = 1024;

    /**
     * Scale the reference 64KB configuration to @p kb (power of two,
     * 8..8192). Larger budgets also stretch the maximum history.
     */
    static TageSclConfig forBudgetKB(unsigned kb);
};

/** TAGE-SC-L predictor. */
class TageScl : public BranchPredictor
{
  public:
    explicit TageScl(const TageSclConfig &cfg = TageSclConfig{});

    /** Hard limits of the fixed-size per-prediction context (the
     * context used to be heap-backed vectors, reallocated on every
     * predict(); the arrays keep the hot path allocation-free). */
    static constexpr unsigned kMaxTables = 16;
    static constexpr unsigned kMaxScTables = 8;

    bool predict(uint64_t pc, bool) override;
    void update(uint64_t pc, bool taken, bool predicted,
                bool allocate = true) override;
    void predictMany(const BranchRecord *records, size_t n,
                     uint8_t *outMispredicted) override;
    /** Deep copy: every table, folded-history view, LFSR and tick
     * state is value-copied, so clone-then-run is bit-identical. */
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<TageScl>(*this);
    }
    std::string name() const override;
    void reset() override;
    uint64_t storageBits() const override;

    const TageSclConfig &config() const { return cfg_; }

    /** Component attribution of the last prediction (for analysis). */
    enum class Provider { Bimodal, Tagged, Sc, Loop };
    Provider lastProvider() const { return ctx_.provider; }

    /** History length of the providing tagged table (0 if bimodal). */
    unsigned lastProviderHistLen() const;

  private:
    struct LoopEntry
    {
        uint16_t tag = 0;
        uint16_t pastIter = 0;
        uint16_t currentIter = 0;
        uint8_t confidence = 0;
        uint8_t age = 0;
        bool dir = false;      //!< direction of the body iterations
        bool valid = false;
    };

    /** Per-prediction context carried from predict() to update(). */
    struct PredictContext
    {
        uint64_t pc = 0;
        int providerTable = -1;     //!< -1 = bimodal
        int altTable = -1;
        bool providerPred = false;
        bool altPred = false;
        bool tagePred = false;      //!< after use-alt policy
        bool newlyAllocated = false;
        bool finalPred = false;
        Provider provider = Provider::Bimodal;
        // SC state
        int scSum = 0;
        bool scPred = false;
        bool scUsed = false;
        // Loop state
        bool loopPred = false;
        bool loopValid = false;
        bool loopUsed = false;
        std::array<uint32_t, kMaxTables> indices{};
        std::array<uint32_t, kMaxTables> tags{};
        std::array<uint32_t, kMaxScTables> scIndices{};
    };

    // --- tagged path ---
    uint32_t taggedIndex(unsigned table, uint64_t pc) const;
    uint16_t taggedTag(unsigned table, uint64_t pc) const;
    void computeTagePrediction(uint64_t pc);
    void allocateEntries(uint64_t pc, bool taken);

    // --- statistical corrector ---
    int scIndex(unsigned table, uint64_t pc, bool tagePred) const;
    void computeScPrediction(uint64_t pc);
    void updateSc(bool taken);

    // --- loop predictor ---
    LoopEntry *findLoopEntry(uint64_t pc, bool allocate);
    void computeLoopPrediction(uint64_t pc);
    void updateLoop(uint64_t pc, bool taken);

    void decayUseful();
    uint32_t nextRandom();

    /** Slot of tagged entry @p idx of table @p t in the SoA arrays:
     * all tables share one contiguous allocation per field, indexed
     * with shifts and masks (every table is 2^logTagged entries). */
    size_t
    taggedSlot(unsigned t, uint32_t idx) const
    {
        return (static_cast<size_t>(t) << cfg_.logTagged) + idx;
    }

    /** tagKey_ value marking an empty (never-allocated) entry. Tags
     * are at most 16 bits wide, so the sentinel can never collide
     * with a computed tag. */
    static constexpr uint32_t kFreeEntry = ~0u;

    TageSclConfig cfg_;
    std::vector<unsigned> histLens_;
    std::vector<unsigned> tagBits_;
    // Tagged components as structure-of-arrays: the lookup loop
    // touches only tagKey_ (tag match + validity in one compare),
    // the provider update touches tagCtr_/tagUseful_. One flat
    // allocation per field replaces the per-table node vectors.
    std::vector<uint32_t> tagKey_;   //!< tag, or kFreeEntry
    std::vector<int8_t> tagCtr_;     //!< signed, taken when >= 0
    std::vector<uint8_t> tagUseful_;
    std::vector<int8_t> bimodal_;  //!< 2-bit counters stored as int

    GlobalHistory history_;
    std::vector<size_t> idxView_;   //!< folded views for indices
    std::vector<size_t> tag1View_;  //!< folded views for tags
    std::vector<size_t> tag2View_;

    // use-alt-on-newly-allocated counter (4 bits signed)
    int useAltOnNa_ = 0;

    // SC: bias table + GEHL tables over short folded histories.
    std::vector<unsigned> scHistLens_;
    std::vector<std::vector<int8_t>> scTables_;
    std::vector<int8_t> scBias_;
    std::vector<size_t> scView_;
    int scThreshold_ = 6;
    int scThresholdCtr_ = 0;

    std::vector<LoopEntry> loop_;
    uint32_t loopWays_ = 4;

    uint64_t updates_ = 0;
    int tick_ = 0;
    uint32_t lfsr_ = 0xACE1u;

    PredictContext ctx_;
};

} // namespace whisper

#endif // WHISPER_BP_TAGE_SCL_HH
