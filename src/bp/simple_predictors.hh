/**
 * @file
 * Small reference predictors: static, bimodal, gshare, and the ideal
 * direction oracle used for limit studies.
 */

#ifndef WHISPER_BP_SIMPLE_PREDICTORS_HH
#define WHISPER_BP_SIMPLE_PREDICTORS_HH

#include <cstdint>
#include <vector>

#include "bp/branch_predictor.hh"
#include "trace/global_history.hh"
#include "util/sat_counter.hh"

namespace whisper
{

/** Always predicts one fixed direction. */
class StaticPredictor : public BranchPredictor
{
  public:
    explicit StaticPredictor(bool taken = true) : taken_(taken) {}

    bool predict(uint64_t, bool) override { return taken_; }
    void update(uint64_t, bool, bool, bool) override {}
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<StaticPredictor>(*this);
    }
    std::string name() const override { return "static"; }
    void reset() override {}

  private:
    bool taken_;
};

/**
 * The ideal direction predictor of the paper's limit study (SII-B):
 * always returns the resolved direction.
 */
class IdealPredictor : public BranchPredictor
{
  public:
    bool predict(uint64_t, bool oracleTaken) override
    {
        return oracleTaken;
    }
    void update(uint64_t, bool, bool, bool) override {}
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<IdealPredictor>(*this);
    }
    std::string name() const override { return "ideal"; }
    void reset() override {}
};

/** Classic per-PC 2-bit counter table. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param log2Entries table size = 2^log2Entries counters. */
    explicit BimodalPredictor(unsigned log2Entries = 14);

    bool predict(uint64_t pc, bool) override;
    void update(uint64_t pc, bool taken, bool predicted,
                bool allocate = true) override;
    void predictMany(const BranchRecord *records, size_t n,
                     uint8_t *outMispredicted) override;
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<BimodalPredictor>(*this);
    }
    std::string name() const override { return "bimodal"; }
    void reset() override;
    uint64_t storageBits() const override { return table_.size() * 2; }

  private:
    size_t indexFor(uint64_t pc) const;

    std::vector<SatCounter> table_;
};

/** Gshare: PC xor folded global history indexes 2-bit counters. */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param log2Entries table size = 2^log2Entries counters
     * @param historyLen global-history bits folded into the index
     */
    explicit GsharePredictor(unsigned log2Entries = 16,
                             unsigned historyLen = 16);

    bool predict(uint64_t pc, bool) override;
    void update(uint64_t pc, bool taken, bool predicted,
                bool allocate = true) override;
    void predictMany(const BranchRecord *records, size_t n,
                     uint8_t *outMispredicted) override;
    std::unique_ptr<BranchPredictor>
    clone() const override
    {
        return std::make_unique<GsharePredictor>(*this);
    }
    std::string name() const override { return "gshare"; }
    void reset() override;
    uint64_t storageBits() const override { return table_.size() * 2; }

  private:
    size_t indexFor(uint64_t pc) const;

    unsigned historyLen_;
    uint64_t history_ = 0;
    std::vector<SatCounter> table_;
};

} // namespace whisper

#endif // WHISPER_BP_SIMPLE_PREDICTORS_HH
