/**
 * @file
 * Abstract conditional-branch direction predictor.
 */

#ifndef WHISPER_BP_BRANCH_PREDICTOR_HH
#define WHISPER_BP_BRANCH_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "trace/branch_record.hh"

namespace whisper
{

/**
 * Interface shared by every direction predictor in the library.
 *
 * The driver loop calls predict() then update() for each dynamic
 * conditional branch, in trace order. predict() receives the resolved
 * direction as @p oracleTaken purely so that the ideal (limit-study)
 * predictor can be driven through the same interface; every real
 * predictor must ignore it.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the direction of the conditional branch at @p pc.
     *
     * @param pc branch instruction address
     * @param oracleTaken resolved direction (for IdealPredictor only)
     * @return predicted direction
     */
    virtual bool predict(uint64_t pc, bool oracleTaken) = 0;

    /**
     * Train on the resolved branch and advance internal history.
     *
     * @param pc branch address
     * @param taken resolved direction
     * @param predicted the direction predict() returned
     * @param allocate false to suppress new-entry allocation (used by
     *        Whisper for hinted branches so the underlying predictor's
     *        capacity is reserved for unhinted branches)
     */
    virtual void update(uint64_t pc, bool taken, bool predicted,
                        bool allocate = true) = 0;

    /**
     * Observe a retired control-transfer record of any kind. The
     * driver calls this for every trace record after predict/update;
     * Whisper's hybrid uses it to model brhint execution in
     * predecessor blocks. Default: no-op.
     */
    virtual void onRecord(const BranchRecord &rec) { (void)rec; }

    /**
     * Batched evaluation of @p n consecutive trace records: exactly
     * the per-record predict/update/onRecord loop, in trace order,
     * folded into a single virtual call. The batch does NOT reorder
     * or parallelize work — outcomes still feed the history before
     * the next prediction — it exists so hot predictors can override
     * it with a devirtualized, inlinable inner loop (the per-record
     * triple virtual dispatch is what it removes). Implementations
     * MUST be observably identical to this default; the
     * serial-vs-sharded differential harness pins that.
     *
     * @param outMispredicted one byte per record: 1 iff the record
     *        is a conditional whose prediction missed, else 0.
     */
    virtual void
    predictMany(const BranchRecord *records, size_t n,
                uint8_t *outMispredicted)
    {
        for (size_t i = 0; i < n; ++i) {
            const BranchRecord &rec = records[i];
            uint8_t miss = 0;
            if (rec.isConditional()) {
                bool p = predict(rec.pc, rec.taken);
                update(rec.pc, rec.taken, p);
                miss = p != rec.taken;
            }
            onRecord(rec);
            outMispredicted[i] = miss;
        }
    }

    /**
     * Deep-copy this predictor, including all learned tables,
     * history registers, and in-flight prediction context, so the
     * copy's future predict/update sequence is bit-identical to the
     * original's. The sharded trace runner clones one prototype per
     * evaluation window; clones share only immutable data (e.g. the
     * truth-table cache) and are safe to drive from separate threads.
     */
    virtual std::unique_ptr<BranchPredictor> clone() const = 0;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;

    /** Drop all learned state and history. */
    virtual void reset() = 0;

    /** Nominal hardware storage budget in bits (0 if not meaningful). */
    virtual uint64_t storageBits() const { return 0; }
};

} // namespace whisper

#endif // WHISPER_BP_BRANCH_PREDICTOR_HH
