/**
 * @file
 * Unit tests for Whisper's core runtime pieces: brhint encoding,
 * hint buffer, hint injection, trainer and hybrid predictor.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bp/simple_predictors.hh"
#include "core/brhint.hh"
#include "core/hint_buffer.hh"
#include "core/hint_injection.hh"
#include "core/profile.hh"
#include "core/static_profile.hh"
#include "core/whisper_predictor.hh"
#include "core/whisper_trainer.hh"
#include "trace/branch_trace.hh"
#include "util/rng.hh"

using namespace whisper;

TEST(BrHint, EncodeDecodeRoundTrip)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        BrHint h;
        h.historyIdx = static_cast<uint8_t>(rng.nextBelow(16));
        h.formula = static_cast<uint16_t>(rng.nextBelow(1u << 15));
        h.bias = static_cast<HintBias>(rng.nextBelow(3));
        h.pcPointer = static_cast<uint16_t>(rng.nextBelow(1u << 12));
        uint64_t bits = h.encode();
        EXPECT_LT(bits, 1ULL << BrHint::kEncodedBits);
        EXPECT_EQ(BrHint::decode(bits), h);
    }
}

TEST(BrHint, FieldWidthsMatchFig11)
{
    // 4 + 15 + 2 + 12 = 33 bits total.
    EXPECT_EQ(BrHint::kEncodedBits, 33u);
    BrHint h;
    h.historyIdx = 0xF;
    h.formula = 0x7FFF;
    h.bias = HintBias::NeverTaken;
    h.pcPointer = 0xFFF;
    EXPECT_EQ(h.encode() >> 33, 0u);
}

TEST(BrHint, PcPointerOffset)
{
    EXPECT_EQ(BrHint::pcPointerFor(0x400020),
              BrHint::pcPointerFor(0x400020 + (1ULL << 13)));
    EXPECT_NE(BrHint::pcPointerFor(0x400020),
              BrHint::pcPointerFor(0x400040));
}

TEST(HintBuffer, InsertLookup)
{
    HintBuffer buf(4);
    BrHint h;
    h.formula = 42;
    buf.insert(0x100, h);
    const BrHint *found = buf.lookup(0x100);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->formula, 42u);
    EXPECT_EQ(buf.lookup(0x200), nullptr);
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_EQ(buf.misses(), 1u);
}

TEST(HintBuffer, LruEviction)
{
    HintBuffer buf(2);
    BrHint h;
    buf.insert(0x1, h);
    buf.insert(0x2, h);
    buf.lookup(0x1);      // 0x1 becomes MRU
    buf.insert(0x3, h);   // evicts 0x2
    EXPECT_NE(buf.lookup(0x1), nullptr);
    EXPECT_EQ(buf.lookup(0x2), nullptr);
    EXPECT_NE(buf.lookup(0x3), nullptr);
    EXPECT_EQ(buf.evictions(), 1u);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(HintBuffer, ReinsertRefreshes)
{
    HintBuffer buf(2);
    BrHint h1, h2;
    h1.formula = 1;
    h2.formula = 2;
    buf.insert(0x1, h1);
    buf.insert(0x1, h2);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.lookup(0x1)->formula, 2u);
}

namespace
{

/** Synthetic trace: block A (pc 0xA00) always precedes branch B. */
BranchTrace
makePredecessorTrace()
{
    BranchTrace trace("t", 0);
    Rng rng(77);
    for (int i = 0; i < 2000; ++i) {
        BranchRecord a;
        a.pc = 0xA00;
        a.kind = BranchKind::Call;
        a.taken = true;
        a.target = 0xB00;
        trace.append(a);

        BranchRecord filler;
        filler.pc = 0xC00 + 16 * (i % 3);
        filler.kind = BranchKind::Conditional;
        filler.taken = rng.nextBool(0.5);
        trace.append(filler);

        BranchRecord b;
        b.pc = 0xB40;
        b.kind = BranchKind::Conditional;
        b.taken = true;
        trace.append(b);
    }
    return trace;
}

} // namespace

TEST(HintInjection, FindsHighCoveragePredecessor)
{
    BranchTrace trace = makePredecessorTrace();
    TraceSource src(trace);

    TrainedHint hint;
    hint.pc = 0xB40;
    HintInjector injector;
    auto placements = injector.place(src, {hint});
    ASSERT_EQ(placements.size(), 1u);
    EXPECT_EQ(placements[0].branchPc, 0xB40u);
    EXPECT_GE(placements[0].coverage, 0.99);
    // 0xA00 and the branch itself both fully cover; either is a
    // valid timely predecessor.
    EXPECT_GT(placements[0].precision, 0.5);
}

TEST(HintInjection, FallbackToSelf)
{
    // A branch that never appears in the trace gets a self
    // placement.
    BranchTrace trace = makePredecessorTrace();
    TraceSource src(trace);
    TrainedHint hint;
    hint.pc = 0xDEAD;
    HintInjector injector;
    auto placements = injector.place(src, {hint});
    ASSERT_EQ(placements.size(), 1u);
    EXPECT_EQ(placements[0].predecessorPc, 0xDEADu);
}

TEST(HintInjection, OverheadAccounting)
{
    std::vector<HintPlacement> placements(3);
    placements[0].predecessorExecutions = 100;
    placements[1].predecessorExecutions = 50;
    placements[2].predecessorExecutions = 50;
    auto o = HintInjector::overhead(placements, 1000, 10000);
    EXPECT_EQ(o.staticHints, 3u);
    EXPECT_EQ(o.dynamicHints, 200u);
    EXPECT_DOUBLE_EQ(o.staticIncreasePct, 0.3);
    EXPECT_DOUBLE_EQ(o.dynamicIncreasePct, 2.0);
}

namespace
{

/** Build a profile with one planted hard branch. */
BranchProfile
makePlantedProfile(uint16_t plantedFormula, unsigned lengthIdx,
                   uint64_t branchPc, const WhisperConfig &cfg)
{
    BranchProfile profile(cfg);
    profile.markHard(branchPc);
    BranchProfileEntry &e = profile.entry(branchPc);
    BoolFormula f(plantedFormula, 8);
    Rng rng(5);
    for (int s = 0; s < 4000; ++s) {
        uint8_t hashed = static_cast<uint8_t>(rng.nextBelow(256));
        bool taken = f.evaluate(hashed);
        ++e.executions;
        if (taken)
            ++e.takenCount;
        e.byLength[lengthIdx].record(hashed, taken);
        // Other lengths see uncorrelated hashes.
        for (size_t l = 0; l < e.byLength.size(); ++l) {
            if (l != lengthIdx) {
                e.byLength[l].record(
                    static_cast<uint8_t>(rng.nextBelow(256)), taken);
            }
        }
        e.raw4.record(rng.nextBelow(16), taken);
        e.raw8.record(rng.nextBelow(256), taken);
    }
    // The profiled dynamic predictor was poor on this branch.
    e.baselineMispredicts = 1200;
    return profile;
}

} // namespace

TEST(WhisperTrainer, RecoversLengthAndBeatsBaseline)
{
    WhisperConfig cfg;
    cfg.formulaFraction = 1.0; // exhaustive for determinism
    TruthTableCache cache(8);
    WhisperTrainer trainer(cfg, cache);

    const unsigned plantedIdx = 9;
    BranchProfile profile =
        makePlantedProfile(0x1B3A, plantedIdx, 0x7F0, cfg);

    TrainingStats stats;
    auto hints = trainer.train(profile, &stats);
    ASSERT_EQ(hints.size(), 1u);
    EXPECT_EQ(hints[0].pc, 0x7F0u);
    EXPECT_EQ(hints[0].hint.historyIdx, plantedIdx);
    EXPECT_EQ(hints[0].hint.bias, HintBias::Formula);
    EXPECT_EQ(hints[0].expectedMispredicts, 0u);
    EXPECT_EQ(stats.hintsEmitted, 1u);
    EXPECT_GT(stats.formulasScored, 0u);
}

TEST(WhisperTrainer, NoHintWhenBaselineAlreadyGood)
{
    WhisperConfig cfg;
    cfg.formulaFraction = 0.01;
    TruthTableCache cache(8);
    WhisperTrainer trainer(cfg, cache);

    BranchProfile profile = makePlantedProfile(0x1B3A, 9, 0x7F0, cfg);
    // Pretend the dynamic predictor almost never missed.
    profile.entries().begin()->second.baselineMispredicts = 4;

    auto hints = trainer.train(profile);
    EXPECT_TRUE(hints.empty());
}

TEST(WhisperTrainer, BiasHintForSkewedBranch)
{
    WhisperConfig cfg;
    cfg.formulaFraction = 0.001;
    TruthTableCache cache(8);
    WhisperTrainer trainer(cfg, cache);

    BranchProfile profile(cfg);
    profile.markHard(0x900);
    BranchProfileEntry &e = profile.entry(0x900);
    Rng rng(9);
    for (int s = 0; s < 2000; ++s) {
        // 98% taken regardless of history.
        bool taken = rng.nextBool(0.98);
        uint8_t h = static_cast<uint8_t>(rng.nextBelow(256));
        ++e.executions;
        if (taken)
            ++e.takenCount;
        for (size_t l = 0; l < e.byLength.size(); ++l)
            e.byLength[l].record(h, taken);
        e.raw4.record(h & 15, taken);
        e.raw8.record(h, taken);
    }
    e.baselineMispredicts = 500; // dynamic predictor struggled
    auto hints = trainer.train(profile);
    ASSERT_EQ(hints.size(), 1u);
    EXPECT_EQ(hints[0].hint.bias, HintBias::AlwaysTaken);
}

TEST(WhisperPredictor, UsesHintWhenBuffered)
{
    WhisperConfig cfg;
    TruthTableCache cache(8);

    // Hint: always-taken for branch 0xB40, injected at block 0xA00.
    TrainedHint hint;
    hint.pc = 0xB40;
    hint.hint.bias = HintBias::AlwaysTaken;
    hint.hint.pcPointer = BrHint::pcPointerFor(0xB40);
    HintPlacement pl;
    pl.branchPc = 0xB40;
    pl.predecessorPc = 0xA00;

    WhisperPredictor wp(std::make_unique<StaticPredictor>(false), cfg,
                        cache, {hint}, {pl});

    // Before the brhint executes, the base predictor (never-taken)
    // answers.
    EXPECT_FALSE(wp.predict(0xB40, true));
    wp.update(0xB40, true, false);

    // Execute the predecessor: hint enters the buffer.
    BranchRecord trigger;
    trigger.pc = 0xA00;
    trigger.kind = BranchKind::Call;
    wp.onRecord(trigger);
    EXPECT_EQ(wp.dynamicHintInstructions(), 1u);

    EXPECT_TRUE(wp.predict(0xB40, true));
    wp.update(0xB40, true, true);
    EXPECT_EQ(wp.hintPredictions(), 1u);
    EXPECT_EQ(wp.hintCorrect(), 1u);
}

TEST(WhisperPredictor, FormulaHintTracksHashedHistory)
{
    WhisperConfig cfg;
    TruthTableCache cache(8);

    // Formula hint at the shortest length (8): fold(8,8) == raw
    // last-8 history, so we can predict its output exactly.
    TrainedHint hint;
    hint.pc = 0xB40;
    hint.hint.bias = HintBias::Formula;
    hint.hint.historyIdx = 0;
    hint.hint.formula = 0x2A51;
    HintPlacement pl;
    pl.branchPc = 0xB40;
    pl.predecessorPc = 0xB40; // self-placed

    WhisperPredictor wp(std::make_unique<StaticPredictor>(false), cfg,
                        cache, {hint}, {pl});

    // Warm the buffer via a first execution.
    wp.predict(0xB40, true);
    wp.update(0xB40, true, false);
    BranchRecord self;
    self.pc = 0xB40;
    self.kind = BranchKind::Conditional;
    wp.onRecord(self);

    // Now drive 200 branches; Whisper's prediction for 0xB40 must
    // equal the formula applied to the last 8 outcomes.
    GlobalHistory shadow(64);
    Rng rng(17);
    BoolFormula f(0x2A51, 8);
    for (int i = 0; i < 200; ++i) {
        bool taken = rng.nextBool(0.5);
        bool pred = wp.predict(0xB40, taken);
        EXPECT_EQ(pred, f.evaluate(static_cast<uint8_t>(
                            shadow.lastBits(8))))
            << i;
        wp.update(0xB40, taken, pred);
        shadow.push(taken);
        wp.onRecord(self);
    }
    EXPECT_GT(wp.hintPredictions(), 190u);
}

TEST(WhisperPredictor, StatsAndReset)
{
    WhisperConfig cfg;
    TruthTableCache cache(8);
    TrainedHint hint;
    hint.pc = 0x10;
    hint.hint.bias = HintBias::AlwaysTaken;
    HintPlacement pl;
    pl.branchPc = 0x10;
    pl.predecessorPc = 0x10;
    WhisperPredictor wp(std::make_unique<StaticPredictor>(true), cfg,
                        cache, {hint}, {pl});
    EXPECT_EQ(wp.staticHintInstructions(), 1u);

    wp.predict(0x10, true);
    wp.update(0x10, true, true);
    BranchRecord rec;
    rec.pc = 0x10;
    wp.onRecord(rec);
    wp.predict(0x10, true);
    wp.update(0x10, true, true);
    EXPECT_EQ(wp.hintPredictions(), 1u);

    wp.reset();
    EXPECT_EQ(wp.hintPredictions(), 0u);
    EXPECT_EQ(wp.dynamicHintInstructions(), 0u);
    EXPECT_EQ(wp.hintBuffer().size(), 0u);
}

TEST(BranchProfileMerge, SumsCounts)
{
    WhisperConfig cfg;
    BranchProfile a(cfg), b(cfg);
    a.markHard(0x10);
    b.markHard(0x10);
    a.entry(0x10).executions = 10;
    a.entry(0x10).takenCount = 6;
    a.entry(0x10).baselineMispredicts = 3;
    a.entry(0x10).byLength[0].record(5, true);
    b.entry(0x10).executions = 20;
    b.entry(0x10).takenCount = 4;
    b.entry(0x10).baselineMispredicts = 7;
    b.entry(0x10).byLength[0].record(5, false);
    b.entry(0x20).executions = 2;

    a.mergeFrom(b);
    EXPECT_EQ(a.entry(0x10).executions, 30u);
    EXPECT_EQ(a.entry(0x10).takenCount, 10u);
    EXPECT_EQ(a.entry(0x10).baselineMispredicts, 10u);
    EXPECT_EQ(a.entry(0x10).byLength[0].taken[5], 1u);
    EXPECT_EQ(a.entry(0x10).byLength[0].notTaken[5], 1u);
    EXPECT_EQ(a.entry(0x20).executions, 2u);
    EXPECT_EQ(a.numBranches(), 2u);
}

TEST(StaticProfilePredictor, MajorityDirections)
{
    WhisperConfig cfg;
    BranchProfile profile(cfg);
    auto &a = profile.entry(0x10);
    a.executions = 100;
    a.takenCount = 90;
    auto &b = profile.entry(0x20);
    b.executions = 100;
    b.takenCount = 10;

    StaticProfilePredictor pred(profile);
    EXPECT_EQ(pred.coveredBranches(), 2u);
    EXPECT_TRUE(pred.predict(0x10, false));
    EXPECT_FALSE(pred.predict(0x20, true));
    // Unseen branch: fallback direction.
    EXPECT_TRUE(pred.predict(0x999, false));
    StaticProfilePredictor nt(profile, false);
    EXPECT_FALSE(nt.predict(0x999, true));
}

TEST(StaticProfilePredictor, AccuracyEqualsProfileBias)
{
    // On a stationary stream, static prediction converges to the
    // per-branch majority rate.
    WhisperConfig cfg;
    BranchProfile profile(cfg);
    auto &e = profile.entry(0x40);
    e.executions = 1000;
    e.takenCount = 800;
    StaticProfilePredictor pred(profile);

    Rng rng(77);
    int correct = 0;
    for (int i = 0; i < 20000; ++i) {
        bool taken = rng.nextBool(0.8);
        bool p = pred.predict(0x40, taken);
        pred.update(0x40, taken, p);
        correct += p == taken;
    }
    EXPECT_NEAR(correct / 20000.0, 0.8, 0.02);
}
