/**
 * @file
 * Wire-protocol and server tests (`ctest -R net.`): frame codec
 * round-trips, incremental parsing under adversarial framing (split
 * feeds, bad magic, hostile lengths, corrupt CRCs), and the loopback
 * server/client contract — ack/duplicate idempotency, RETRY_AFTER
 * backpressure, retransmission under injected wire faults, epoch-
 * cached bundle pulls, slow-loris reaping, listener restart, and
 * prompt shutdown.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/whisper_client.hh"
#include "net/wire_protocol.hh"
#include "net/wire_server.hh"
#include "service/fault_injection.hh"
#include "util/crc32.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

/** Clears any installed fault spec around each test — the injector
 * is a process-wide singleton shared by client and server. */
class NetTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

std::vector<BranchRecord>
someRecords(uint64_t count, uint32_t inputId = 0)
{
    AppWorkload workload(appByName("kafka"), inputId, count);
    std::vector<BranchRecord> records;
    records.reserve(count);
    BranchRecord rec;
    while (workload.next(rec))
        records.push_back(rec);
    return records;
}

VersionedHintBundle
makeBundle(uint64_t epoch, size_t hints)
{
    VersionedHintBundle v;
    v.epoch = epoch;
    v.validationAccuracy = 0.9;
    for (size_t i = 0; i < hints; ++i) {
        TrainedHint h;
        h.pc = 0x400000 + 16 * (epoch * 100 + i);
        h.hint.pcPointer = BrHint::pcPointerFor(h.pc);
        h.hint.formula =
            static_cast<uint16_t>((i + epoch) % (1u << 14));
        h.historyLength = 64;
        v.bundle.hints.push_back(h);
    }
    return v;
}

/** A deterministic in-memory sink standing in for the tenant
 * router: scriptable verdicts, thread-safe capture. */
struct ScriptedSink
{
    std::mutex mutex;
    std::vector<TraceChunk> accepted;
    /** Upcoming verdicts; empty = Accepted forever. */
    std::vector<ChunkSinkResult> script;

    WireServer::ChunkSink
    fn()
    {
        return [this](TraceChunk chunk) {
            std::lock_guard<std::mutex> lock(mutex);
            ChunkSinkResult verdict = ChunkSinkResult::Accepted;
            if (!script.empty()) {
                verdict = script.front();
                script.erase(script.begin());
            }
            if (verdict == ChunkSinkResult::Accepted)
                accepted.push_back(std::move(chunk));
            return verdict;
        };
    }

    size_t
    acceptedCount()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return accepted.size();
    }
};

/** Bundle provider for a single known app with a mutable epoch. */
struct OneAppBundles
{
    std::string app;
    std::mutex mutex;
    HintStore::Snapshot snap;

    void
    deploy(uint64_t epoch, size_t hints)
    {
        auto bundle = std::make_shared<VersionedHintBundle>(
            makeBundle(epoch, hints));
        std::lock_guard<std::mutex> lock(mutex);
        snap = std::move(bundle);
    }

    WireServer::BundleProvider
    fn()
    {
        return [this](const std::string &name)
                   -> std::optional<HintStore::Snapshot> {
            if (name != app)
                return std::nullopt;
            std::lock_guard<std::mutex> lock(mutex);
            return snap;
        };
    }
};

WhisperClientConfig
clientConfig(uint16_t port, const std::string &stream = "t")
{
    WhisperClientConfig cfg;
    cfg.port = port;
    cfg.stream = stream;
    cfg.recvTimeoutMs = 2'000;
    cfg.initialBackoffMs = 1;
    cfg.maxBackoffMs = 20;
    return cfg;
}

/** Raw TCP connection for byte-level protocol tests. */
class RawConn
{
  public:
    explicit RawConn(uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    bool
    sendBytes(const std::vector<unsigned char> &bytes)
    {
        size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read until one frame parses (or the peer closes / 3s pass).
     * @return false on EOF/timeout. */
    bool
    recvFrame(WireFrame &out)
    {
        timeval tv{3, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        for (;;) {
            if (parser_.next(out) == FrameParser::Result::Frame)
                return true;
            unsigned char buf[4096];
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return false;
            parser_.feed(buf, static_cast<size_t>(n));
        }
    }

    /** True once the peer has closed the connection (polls up to
     * @p waitMs while discarding any pending replies). */
    bool
    peerClosed(int waitMs)
    {
        timeval tv{0, 100'000};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(waitMs);
        unsigned char buf[256];
        while (std::chrono::steady_clock::now() < deadline) {
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n == 0)
                return true;
            if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
                return true;
        }
        return false;
    }

  private:
    int fd_ = -1;
    FrameParser parser_;
};

struct ServerHarness
{
    ScriptedSink sink;
    OneAppBundles bundles;
    std::unique_ptr<WireServer> server;

    explicit ServerHarness(const std::string &app = "kafka",
                           WireServerConfig cfg = {})
    {
        bundles.app = app;
        server = std::make_unique<WireServer>(cfg, sink.fn(),
                                              bundles.fn());
        std::string error;
        EXPECT_TRUE(server->start(&error)) << error;
    }
    ~ServerHarness()
    {
        if (server)
            server->stop();
    }
    uint16_t port() const { return server->boundPort(); }
};

} // namespace

// ---- frame codec -------------------------------------------------

TEST(WireCodec, FrameRoundTripsThroughParser)
{
    IngestChunkMsg msg;
    msg.app = "kafka";
    msg.stream = "agent7";
    msg.inputId = 3;
    msg.seq = 42;
    msg.records = someRecords(100);

    std::vector<unsigned char> wire =
        encodeFrame(WireOp::IngestChunk, encodeIngestChunk(msg));

    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    WireFrame frame;
    ASSERT_EQ(parser.next(frame), FrameParser::Result::Frame);
    EXPECT_EQ(frame.op, WireOp::IngestChunk);

    IngestChunkMsg back;
    ASSERT_TRUE(decodeIngestChunk(frame.payload, back));
    EXPECT_EQ(back.app, msg.app);
    EXPECT_EQ(back.stream, msg.stream);
    EXPECT_EQ(back.inputId, msg.inputId);
    EXPECT_EQ(back.seq, msg.seq);
    ASSERT_EQ(back.records.size(), msg.records.size());
    EXPECT_EQ(0, std::memcmp(back.records.data(),
                             msg.records.data(),
                             msg.records.size() *
                                 sizeof(BranchRecord)));
    EXPECT_EQ(parser.next(frame), FrameParser::Result::NeedMore);
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireCodec, AllControlMessagesRoundTrip)
{
    ChunkAckMsg ack{};
    ack.seq = 9;
    ack.status = ChunkAckMsg::kDuplicate;
    ChunkAckMsg ack2;
    ASSERT_TRUE(decodeChunkAck(encodeChunkAck(ack), ack2));
    EXPECT_EQ(ack2.seq, 9u);
    EXPECT_EQ(ack2.status, ChunkAckMsg::kDuplicate);

    RetryAfterMsg retry{};
    retry.seq = 5;
    retry.waitMs = 75;
    RetryAfterMsg retry2;
    ASSERT_TRUE(decodeRetryAfter(encodeRetryAfter(retry), retry2));
    EXPECT_EQ(retry2.seq, 5u);
    EXPECT_EQ(retry2.waitMs, 75u);

    PullBundleMsg pull;
    pull.app = "nginx";
    pull.cachedEpoch = 12;
    PullBundleMsg pull2;
    ASSERT_TRUE(decodePullBundle(encodePullBundle(pull), pull2));
    EXPECT_EQ(pull2.app, "nginx");
    EXPECT_EQ(pull2.cachedEpoch, 12u);

    uint64_t epoch = 0;
    ASSERT_TRUE(decodeBundleUnchanged(encodeBundleUnchanged(33),
                                      epoch));
    EXPECT_EQ(epoch, 33u);

    ErrorMsg err;
    err.code = WireError::ShuttingDown;
    err.message = "draining";
    ErrorMsg err2;
    ASSERT_TRUE(decodeError(encodeError(err), err2));
    EXPECT_EQ(err2.code, WireError::ShuttingDown);
    EXPECT_EQ(err2.message, "draining");

    HelloMsg hello;
    hello.client = "loadgen";
    HelloMsg hello2;
    ASSERT_TRUE(decodeHello(encodeHello(hello), hello2));
    EXPECT_EQ(hello2.version, kWireProtocolVersion);
    EXPECT_EQ(hello2.client, "loadgen");
}

TEST(WireCodec, ParserReassemblesBytewiseFeeds)
{
    // Three frames delivered one byte at a time — worst-case
    // fragmentation — must come out identical and in order.
    std::vector<unsigned char> wire;
    for (uint64_t seq = 0; seq < 3; ++seq) {
        ChunkAckMsg ack{};
        ack.seq = seq;
        auto f = encodeFrame(WireOp::ChunkAck, encodeChunkAck(ack));
        wire.insert(wire.end(), f.begin(), f.end());
    }
    FrameParser parser;
    uint64_t expect = 0;
    for (unsigned char byte : wire) {
        parser.feed(&byte, 1);
        WireFrame frame;
        while (parser.next(frame) == FrameParser::Result::Frame) {
            ChunkAckMsg ack;
            ASSERT_TRUE(decodeChunkAck(frame.payload, ack));
            EXPECT_EQ(ack.seq, expect++);
        }
    }
    EXPECT_EQ(expect, 3u);
}

TEST(WireCodec, BadMagicIsUnrecoverable)
{
    auto wire = encodeFrame(WireOp::ChunkAck,
                            encodeChunkAck(ChunkAckMsg{}));
    wire[0] ^= 0xFF;
    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    WireFrame frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Result::BadMagic);
}

TEST(WireCodec, HostileLengthNeverAllocates)
{
    // A 4 GiB length field must be rejected from the 16 header
    // bytes alone, not honored with an allocation.
    std::vector<unsigned char> header(WireFrame::kHeaderBytes, 0);
    uint32_t magic = WireFrame::kMagic;
    uint32_t op = static_cast<uint32_t>(WireOp::IngestChunk);
    uint32_t length = 0xFFFFFFFFu;
    std::memcpy(header.data(), &magic, 4);
    std::memcpy(header.data() + 4, &op, 4);
    std::memcpy(header.data() + 8, &length, 4);
    FrameParser parser;
    parser.feed(header.data(), header.size());
    WireFrame frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Result::TooLarge);
}

TEST(WireCodec, CorruptCrcConsumesOnlyThatFrame)
{
    ChunkAckMsg ack{};
    ack.seq = 1;
    auto bad = encodeFrame(WireOp::ChunkAck, encodeChunkAck(ack));
    bad.back() ^= 0x01; // flip one payload bit after the CRC was set
    ack.seq = 2;
    auto good = encodeFrame(WireOp::ChunkAck, encodeChunkAck(ack));

    FrameParser parser;
    parser.feed(bad.data(), bad.size());
    parser.feed(good.data(), good.size());
    WireFrame frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Result::BadCrc);
    ASSERT_EQ(parser.next(frame), FrameParser::Result::Frame);
    ChunkAckMsg out;
    ASSERT_TRUE(decodeChunkAck(frame.payload, out));
    EXPECT_EQ(out.seq, 2u); // the good frame survived its neighbor
}

TEST(WireCodec, ReaderOverrunPoisonsNotCrashes)
{
    // A string length pointing past the payload end must fail the
    // decode, not read out of bounds.
    WireWriter w;
    w.u32(4096); // claims 4096 bytes follow; none do
    auto payload = w.take();
    WireReader r(payload);
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());

    IngestChunkMsg msg;
    EXPECT_FALSE(decodeIngestChunk(payload, msg));
}

TEST(WireCodec, IngestRecordCountMustMatchPayload)
{
    IngestChunkMsg msg;
    msg.app = "kafka";
    msg.stream = "s";
    msg.records = someRecords(8);
    auto payload = encodeIngestChunk(msg);
    payload.pop_back(); // count now disagrees with the byte count
    IngestChunkMsg out;
    EXPECT_FALSE(decodeIngestChunk(payload, out));
}

// ---- loopback server/client --------------------------------------

TEST_F(NetTest, LoopbackIngestAcksInOrder)
{
    ServerHarness h;
    WhisperClient client(clientConfig(h.port()));

    for (uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(client.nextSeq("kafka"), i);
        ASSERT_TRUE(
            client.ingestChunk("kafka", i, someRecords(64, i)));
    }
    EXPECT_EQ(client.stats().chunksAcked, 4u);
    EXPECT_EQ(client.stats().retries, 0u);
    EXPECT_EQ(h.sink.acceptedCount(), 4u);
    {
        std::lock_guard<std::mutex> lock(h.sink.mutex);
        for (size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(h.sink.accepted[i].app, "kafka");
            EXPECT_EQ(h.sink.accepted[i].inputId, i);
            EXPECT_EQ(h.sink.accepted[i].records.size(), 64u);
        }
    }
    WireServerStats stats = h.server->stats();
    EXPECT_EQ(stats.chunksAccepted, 4u);
    EXPECT_EQ(stats.recordsAccepted, 256u);
    EXPECT_EQ(stats.duplicateChunks, 0u);
}

TEST_F(NetTest, RetransmitOfAckedChunkIsDuplicateNotDoubleIngest)
{
    ServerHarness h;
    auto records = someRecords(32);

    // Two clients sharing one stream identity (name AND pinned
    // incarnation): the second replays the same (app, stream, seq)
    // the first already got acked — exactly what a reconnecting
    // client does when the ack was lost in flight. The server must
    // ack it (the client needs closure) but not ingest it twice.
    auto cfg = clientConfig(h.port(), "shared");
    cfg.incarnation = 42;
    WhisperClient first(cfg);
    ASSERT_TRUE(first.ingestChunk("kafka", 0, records));

    WhisperClient second(cfg);
    EXPECT_EQ(second.wireStream(), first.wireStream());
    ASSERT_TRUE(second.ingestChunk("kafka", 0, records));

    EXPECT_EQ(second.stats().duplicateAcks, 1u);
    EXPECT_EQ(h.sink.acceptedCount(), 1u);
    WireServerStats stats = h.server->stats();
    EXPECT_EQ(stats.chunksAccepted, 1u);
    EXPECT_EQ(stats.duplicateChunks, 1u);
}

TEST_F(NetTest, RestartedClientWithReusedStreamNameIsNotDropped)
{
    ServerHarness h;
    auto records = someRecords(32);

    // Two clients reusing the stream *name* without pinning an
    // incarnation model an agent that restarted: the second one's
    // seq restarts at 0, but its fresh incarnation nonce gives it a
    // fresh sequence space, so its chunks are really ingested — not
    // silently absorbed as duplicate-acks of the dead predecessor.
    WhisperClient before(clientConfig(h.port(), "agent0"));
    ASSERT_TRUE(before.ingestChunk("kafka", 0, records));
    ASSERT_TRUE(before.ingestChunk("kafka", 1, records));

    WhisperClient after(clientConfig(h.port(), "agent0"));
    EXPECT_NE(after.wireStream(), before.wireStream());
    ASSERT_TRUE(after.ingestChunk("kafka", 0, records));

    EXPECT_EQ(after.stats().duplicateAcks, 0u);
    EXPECT_EQ(h.sink.acceptedCount(), 3u);
    WireServerStats stats = h.server->stats();
    EXPECT_EQ(stats.chunksAccepted, 3u);
    EXPECT_EQ(stats.duplicateChunks, 0u);
}

TEST_F(NetTest, BackpressureBecomesRetryAfterNotLoss)
{
    WireServerConfig cfg;
    cfg.retryAfterMs = 10;
    ServerHarness h("kafka", cfg);
    {
        std::lock_guard<std::mutex> lock(h.sink.mutex);
        h.sink.script = {ChunkSinkResult::Backpressure,
                         ChunkSinkResult::Backpressure,
                         ChunkSinkResult::Accepted};
    }
    WhisperClient client(clientConfig(h.port()));
    ASSERT_TRUE(client.ingestChunk("kafka", 0, someRecords(16)));

    EXPECT_EQ(client.stats().retryAfters, 2u);
    EXPECT_GE(client.stats().retries, 2u);
    EXPECT_EQ(h.sink.acceptedCount(), 1u);
    WireServerStats stats = h.server->stats();
    EXPECT_EQ(stats.retryAfterSent, 2u);
    EXPECT_EQ(stats.chunksAccepted, 1u);
}

TEST_F(NetTest, UnknownAppFailsFastAndPermanently)
{
    ServerHarness h;
    {
        std::lock_guard<std::mutex> lock(h.sink.mutex);
        h.sink.script = {ChunkSinkResult::UnknownApp};
    }
    auto cfg = clientConfig(h.port());
    cfg.maxAttempts = 10;
    WhisperClient client(cfg);
    EXPECT_FALSE(client.ingestChunk("nosuch", 0, someRecords(16)));
    // Permanent error: one attempt, no retry storm.
    EXPECT_EQ(client.stats().retries, 0u);
    EXPECT_NE(client.lastError().find("unknown"),
              std::string::npos)
        << client.lastError();
}

TEST_F(NetTest, RejectedIngestLeavesNoStreamState)
{
    ServerHarness h;
    {
        std::lock_guard<std::mutex> lock(h.sink.mutex);
        h.sink.script = {ChunkSinkResult::UnknownApp};
    }
    auto cfg = clientConfig(h.port());
    cfg.maxAttempts = 3;
    WhisperClient client(cfg);
    EXPECT_FALSE(client.ingestChunk("nosuch", 0, someRecords(8)));

    // The hostile-cost model: an ingest the sink rejected must not
    // have grown the per-stream idempotency table.
    EXPECT_EQ(h.server->stats().streamsTracked, 0u);

    ASSERT_TRUE(client.ingestChunk("kafka", 0, someRecords(8)));
    EXPECT_EQ(h.server->stats().streamsTracked, 1u);
}

TEST_F(NetTest, StreamIdempotencyStateIsBounded)
{
    WireServerConfig cfg;
    cfg.maxTrackedStreams = 8;
    ServerHarness h("kafka", cfg);

    // One hostile peer inventing a fresh stream name per chunk: the
    // chunks are all legal (the sink accepts them), but the table
    // must rotate instead of growing one entry per invented name.
    RawConn conn(h.port());
    ASSERT_TRUE(conn.connected());
    auto records = someRecords(4);
    for (int i = 0; i < 64; ++i) {
        IngestChunkMsg msg;
        msg.app = "kafka";
        msg.stream = "invented" + std::to_string(i);
        msg.seq = 0;
        msg.records = records;
        ASSERT_TRUE(conn.sendBytes(encodeFrame(
            WireOp::IngestChunk, encodeIngestChunk(msg))));
        WireFrame ack;
        ASSERT_TRUE(conn.recvFrame(ack)) << "chunk " << i;
        ASSERT_EQ(ack.op, WireOp::ChunkAck);
    }
    WireServerStats stats = h.server->stats();
    EXPECT_EQ(stats.chunksAccepted, 64u);
    EXPECT_LE(stats.streamsTracked, 8u);
    EXPECT_GE(stats.streamsTracked, 1u);
}

TEST_F(NetTest, BundleLargerThanSendBufferCapIsDeliverable)
{
    // A deployed bundle whose frame dwarfs maxSendBuffer must drain
    // over multiple EPOLLOUT rounds — the in-flight frame is exempt
    // from the slow-reader cap, so a client that (legitimately)
    // reads slower than the server writes still gets its bundle
    // instead of a permanent reconnect/re-pull loop.
    WireServerConfig cfg;
    cfg.maxSendBuffer = 64 * 1024;
    ServerHarness h("kafka", cfg);
    h.bundles.deploy(3, 300'000); // several MiB encoded

    RawConn conn(h.port());
    ASSERT_TRUE(conn.connected());
    PullBundleMsg pull;
    pull.app = "kafka";
    pull.cachedEpoch = ~uint64_t{0};
    ASSERT_TRUE(conn.sendBytes(
        encodeFrame(WireOp::PullBundle, encodePullBundle(pull))));
    // Give the server time to hit the partial-send path before we
    // start draining, so the frame really does sit in the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    WireFrame frame;
    ASSERT_TRUE(conn.recvFrame(frame));
    ASSERT_EQ(frame.op, WireOp::Bundle);
    VersionedHintBundle bundle;
    ASSERT_TRUE(decodeVersionedBundle(bundle, frame.payload.data(),
                                      frame.payload.size()));
    EXPECT_EQ(bundle.epoch, 3u);
    EXPECT_EQ(bundle.bundle.hints.size(), 300'000u);
    EXPECT_GT(frame.payload.size(), cfg.maxSendBuffer);
    EXPECT_EQ(h.server->stats().slowReaderCloses, 0u);
}

TEST_F(NetTest, CorruptFramesAreRetransmittedToSuccess)
{
    std::string error;
    ASSERT_TRUE(FaultInjector::instance().configure(
        "wire-corrupt=2", &error))
        << error;

    ServerHarness h;
    WhisperClient client(clientConfig(h.port()));
    for (uint32_t i = 0; i < 4; ++i)
        ASSERT_TRUE(
            client.ingestChunk("kafka", 0, someRecords(32)));

    // Every other first transmission was corrupted in flight; the
    // server rejected each with ERROR(BadCrc) and the clean
    // retransmission got through. No chunk lost, none doubled.
    EXPECT_GE(client.stats().crcRejects, 1u);
    EXPECT_GE(client.stats().retries, 1u);
    EXPECT_EQ(h.sink.acceptedCount(), 4u);
    WireServerStats stats = h.server->stats();
    EXPECT_GE(stats.badCrcFrames, 1u);
    EXPECT_EQ(stats.chunksAccepted, 4u);
    EXPECT_EQ(stats.duplicateChunks, 0u);
}

TEST_F(NetTest, TornFramesForceReconnectAndResume)
{
    std::string error;
    ASSERT_TRUE(FaultInjector::instance().configure("wire-tear=3",
                                                    &error))
        << error;

    ServerHarness h;
    WhisperClient client(clientConfig(h.port()));
    for (uint32_t i = 0; i < 6; ++i)
        ASSERT_TRUE(
            client.ingestChunk("kafka", 0, someRecords(32)));

    // Torn mid-frame writes desynchronized the stream; the server
    // closed those connections and the client reconnected and
    // retransmitted. All six chunks landed exactly once.
    EXPECT_GE(client.stats().reconnects, 2u);
    EXPECT_EQ(h.sink.acceptedCount(), 6u);
    EXPECT_EQ(h.server->stats().chunksAccepted, 6u);
}

TEST_F(NetTest, MidFrameKillsNeverLoseAckedChunks)
{
    std::string error;
    ASSERT_TRUE(FaultInjector::instance().configure("wire-kill=4",
                                                    &error))
        << error;

    ServerHarness h;
    WhisperClient client(clientConfig(h.port()));
    for (uint32_t i = 0; i < 8; ++i)
        ASSERT_TRUE(
            client.ingestChunk("kafka", 0, someRecords(32)));

    // A kill lands after the frame is sent but before the ack is
    // read, so the server may have ingested the chunk: the
    // retransmission on the fresh connection must come back as a
    // duplicate-ack, not a second ingestion.
    EXPECT_EQ(h.sink.acceptedCount(), 8u);
    EXPECT_EQ(h.server->stats().chunksAccepted, 8u);
    EXPECT_GE(client.stats().duplicateAcks, 1u);
}

TEST_F(NetTest, ListenerRestartMidLoadIsAbsorbed)
{
    std::string error;
    ASSERT_TRUE(FaultInjector::instance().configure(
        "restart-listener=3", &error))
        << error;

    ServerHarness h;
    WhisperClient client(clientConfig(h.port()));
    for (uint32_t i = 0; i < 6; ++i)
        ASSERT_TRUE(
            client.ingestChunk("kafka", 0, someRecords(32)));

    WireServerStats stats = h.server->stats();
    EXPECT_EQ(stats.listenerRestarts, 1u);
    EXPECT_EQ(h.sink.acceptedCount(), 6u);
    // The restart severed the connection; the client reconnected to
    // the same port (the listener rebinds it) and resumed.
    EXPECT_GE(client.stats().reconnects, 2u);
}

TEST_F(NetTest, PullBundleUsesEpochCache)
{
    ServerHarness h;
    h.bundles.deploy(7, 3);
    WhisperClient client(clientConfig(h.port()));

    auto first = client.pullBundle("kafka");
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->epoch, 7u);
    EXPECT_EQ(first->bundle.hints.size(), 3u);

    auto second = client.pullBundle("kafka");
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->epoch, 7u);
    EXPECT_EQ(client.stats().bundleHits, 1u);

    h.bundles.deploy(8, 5);
    auto third = client.pullBundle("kafka");
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->epoch, 8u);
    EXPECT_EQ(third->bundle.hints.size(), 5u);
    EXPECT_EQ(client.stats().bundleHits, 1u);

    WireServerStats stats = h.server->stats();
    EXPECT_EQ(stats.bundlesSent, 2u);
    EXPECT_EQ(stats.bundlesUnchanged, 1u);
}

TEST_F(NetTest, PullBeforeAnyDeploymentYieldsEmptyBundle)
{
    ServerHarness h;
    WhisperClient client(clientConfig(h.port()));
    auto bundle = client.pullBundle("kafka");
    ASSERT_TRUE(bundle.has_value());
    EXPECT_EQ(bundle->epoch, 0u);
    EXPECT_TRUE(bundle->bundle.hints.empty());
}

TEST_F(NetTest, PullUnknownAppFails)
{
    ServerHarness h;
    auto cfg = clientConfig(h.port());
    cfg.maxAttempts = 5;
    WhisperClient client(cfg);
    EXPECT_FALSE(client.pullBundle("nosuch").has_value());
    EXPECT_EQ(client.stats().retries, 0u); // permanent, no storm
}

TEST_F(NetTest, BadVersionHelloIsRejected)
{
    ServerHarness h;
    RawConn conn(h.port());
    ASSERT_TRUE(conn.connected());
    HelloMsg hello;
    hello.version = kWireProtocolVersion + 1;
    ASSERT_TRUE(conn.sendBytes(
        encodeFrame(WireOp::Hello, encodeHello(hello))));
    WireFrame frame;
    ASSERT_TRUE(conn.recvFrame(frame));
    ASSERT_EQ(frame.op, WireOp::Error);
    ErrorMsg err;
    ASSERT_TRUE(decodeError(frame.payload, err));
    EXPECT_EQ(err.code, WireError::BadVersion);
}

TEST_F(NetTest, SlowLorisWriterIsReaped)
{
    WireServerConfig cfg;
    cfg.idleTimeoutMs = 200;
    ServerHarness h("kafka", cfg);

    // Hold half a frame hostage and go quiet. The sweep must close
    // us; a healthy frame-aligned keep-alive peer must survive.
    RawConn staller(h.port());
    ASSERT_TRUE(staller.connected());
    auto wire = encodeFrame(WireOp::ChunkAck,
                            encodeChunkAck(ChunkAckMsg{}));
    wire.resize(wire.size() / 2);
    ASSERT_TRUE(staller.sendBytes(wire));

    WhisperClient healthy(clientConfig(h.port()));
    ASSERT_TRUE(healthy.ingestChunk("kafka", 0, someRecords(16)));

    EXPECT_TRUE(staller.peerClosed(3'000));
    EXPECT_GE(h.server->stats().slowLorisCloses, 1u);

    // The aligned connection is still usable after the sweep.
    ASSERT_TRUE(healthy.ingestChunk("kafka", 0, someRecords(16)));
    EXPECT_EQ(healthy.stats().reconnects, 1u);
}

TEST_F(NetTest, StopIsPromptAndIdempotent)
{
    auto h = std::make_unique<ServerHarness>();
    uint16_t port = h->port();
    WhisperClient client(clientConfig(port));
    ASSERT_TRUE(client.ingestChunk("kafka", 0, someRecords(16)));

    auto t0 = std::chrono::steady_clock::now();
    h->server->stop();
    h->server->stop(); // idempotent
    double stopMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_LT(stopMs, 2'000.0);
    EXPECT_FALSE(h->server->running());

    // With the server gone the client fails after its attempt
    // budget instead of hanging.
    auto cfg = clientConfig(port);
    cfg.maxAttempts = 3;
    cfg.recvTimeoutMs = 200;
    WhisperClient orphan(cfg);
    EXPECT_FALSE(orphan.ingestChunk("kafka", 0, someRecords(16)));
}

TEST_F(NetTest, EphemeralPortsAreIndependent)
{
    ServerHarness a, b;
    EXPECT_NE(a.port(), 0);
    EXPECT_NE(b.port(), 0);
    EXPECT_NE(a.port(), b.port());

    WhisperClient ca(clientConfig(a.port()));
    WhisperClient cb(clientConfig(b.port()));
    ASSERT_TRUE(ca.ingestChunk("kafka", 0, someRecords(16)));
    ASSERT_TRUE(cb.ingestChunk("kafka", 0, someRecords(16)));
    EXPECT_EQ(a.sink.acceptedCount(), 1u);
    EXPECT_EQ(b.sink.acceptedCount(), 1u);
}

TEST_F(NetTest, ManyAgentsConcurrently)
{
    ServerHarness h;
    constexpr unsigned kAgents = 16;
    constexpr unsigned kChunks = 4;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> fleet;
    for (unsigned a = 0; a < kAgents; ++a) {
        fleet.emplace_back([&, a] {
            auto cfg =
                clientConfig(h.port(), "a" + std::to_string(a));
            cfg.jitterSeed = a + 1;
            WhisperClient client(cfg);
            for (unsigned c = 0; c < kChunks; ++c)
                if (!client.ingestChunk("kafka", a % 4,
                                        someRecords(32)))
                    failures.fetch_add(1);
        });
    }
    for (auto &t : fleet)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(h.sink.acceptedCount(), kAgents * kChunks);
    EXPECT_EQ(h.server->stats().chunksAccepted, kAgents * kChunks);
}
