/**
 * @file
 * Unit tests for the micro-architecture substrate: caches, BTB, and
 * the decoupled-frontend pipeline model.
 */

#include <gtest/gtest.h>

#include "bp/simple_predictors.hh"
#include "trace/branch_trace.hh"
#include "uarch/btb.hh"
#include "uarch/cache.hh"
#include "uarch/pipeline.hh"
#include "uarch/ras.hh"
#include "util/rng.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

TEST(Cache, HitAfterFill)
{
    Cache c(4096, 4);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1010)); // same 64B line
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 2 sets, 64B lines => 256B cache. Lines mapping to set
    // 0: multiples of 128.
    Cache c(256, 2);
    ASSERT_EQ(c.numSets(), 2u);
    c.access(0);     // set 0
    c.access(128);   // set 0
    c.access(0);     // refresh 0 -> 128 is LRU
    c.access(256);   // set 0, evicts 128
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(128));
    EXPECT_TRUE(c.contains(256));
}

TEST(Cache, CapacitySweepMonotone)
{
    // A working set of 1024 lines: a bigger cache must miss less.
    auto run = [](uint64_t bytes) {
        Cache c(bytes, 8);
        Rng rng(5);
        for (int i = 0; i < 50000; ++i)
            c.access((rng.nextBelow(1024)) * 64);
        return c.misses();
    };
    uint64_t small = run(16 * 1024);
    uint64_t medium = run(32 * 1024);
    uint64_t large = run(128 * 1024);
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
}

TEST(Cache, PrefetchAvoidsDemandMiss)
{
    InstructionHierarchy h;
    h.prefetch(0x4000);
    EXPECT_EQ(h.fetch(0x4000), 0u);
    // Unprefetched cold line pays the full memory latency.
    EXPECT_GT(h.fetch(0x123400), 0u);
}

TEST(Cache, HierarchyLatencies)
{
    InstructionHierarchy::Config cfg;
    InstructionHierarchy h(cfg);
    // Cold: memory latency.
    EXPECT_EQ(h.fetch(0x8000), cfg.memLatency);
    // Now resident everywhere: L1 hit.
    EXPECT_EQ(h.fetch(0x8000), 0u);
}

TEST(Btb, LookupAfterUpdate)
{
    Btb btb(1024, 4);
    uint64_t target = 0;
    EXPECT_FALSE(btb.lookup(0x1234, target));
    btb.update(0x1234, 0x5678);
    EXPECT_TRUE(btb.lookup(0x1234, target));
    EXPECT_EQ(target, 0x5678u);
}

TEST(Btb, CapacityEviction)
{
    Btb small(64, 4);
    for (uint64_t i = 0; i < 1024; ++i)
        small.update(0x1000 + i * 16, i);
    uint64_t target = 0;
    unsigned resident = 0;
    for (uint64_t i = 0; i < 1024; ++i)
        if (small.lookup(0x1000 + i * 16, target))
            ++resident;
    EXPECT_LE(resident, 64u);
    EXPECT_GT(resident, 0u);
}

TEST(Btb, RetargetUpdates)
{
    Btb btb(256, 4);
    btb.update(0x10, 0x100);
    btb.update(0x10, 0x200);
    uint64_t target = 0;
    ASSERT_TRUE(btb.lookup(0x10, target));
    EXPECT_EQ(target, 0x200u);
}

namespace
{

/** A tight loop trace: perfectly predictable, tiny footprint. */
BranchTrace
loopTrace(int iterations)
{
    BranchTrace t("loop", 0);
    for (int i = 0; i < iterations; ++i) {
        BranchRecord rec;
        rec.pc = 0x1000;
        rec.target = 0x0F80;
        rec.kind = BranchKind::Conditional;
        rec.taken = true;
        rec.instGap = 5;
        t.append(rec);
    }
    return t;
}

/** Random-direction trace over a large code footprint. */
BranchTrace
hostileTrace(int n)
{
    BranchTrace t("hostile", 0);
    Rng rng(9);
    for (int i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = 0x400000 + rng.nextBelow(1 << 20) * 64;
        rec.target = 0x400000 + rng.nextBelow(1 << 20) * 64;
        rec.kind = BranchKind::Conditional;
        rec.taken = rng.nextBool(0.5);
        rec.instGap = 5;
        t.append(rec);
    }
    return t;
}

} // namespace

TEST(Pipeline, IdealLoopNearsFetchWidth)
{
    BranchTrace trace = loopTrace(20000);
    TraceSource src(trace);
    IdealPredictor ideal;
    PipelineModel model;
    PipelineStats stats = model.run(src, ideal);
    EXPECT_EQ(stats.mispredicts, 0u);
    // Warm loop with no stalls: IPC should reach the width-plus-
    // backend-CPI ceiling.
    double ceiling =
        1.0 / (1.0 / model.config().fetchWidth +
               model.config().backendCpi);
    EXPECT_GT(stats.ipc(), 0.95 * ceiling);
    EXPECT_EQ(stats.instructions, 20000u * 6);
}

TEST(Pipeline, MispredictionsCostCycles)
{
    BranchTrace trace = hostileTrace(20000);
    {
        TraceSource src(trace);
        IdealPredictor ideal;
        PipelineModel model;
        auto good = model.run(src, ideal);

        TraceSource src2(trace);
        StaticPredictor poor(true);
        auto bad = PipelineModel().run(src2, poor);

        EXPECT_GT(bad.mispredicts, 8000u);
        EXPECT_GT(bad.squashCycles, 0.0);
        EXPECT_LT(bad.ipc(), good.ipc());
    }
}

TEST(Pipeline, FrontendStallsTrackFootprintAndAccuracy)
{
    // With random directions the frontend cannot run ahead, so the
    // huge footprint's I-cache misses surface as frontend stalls;
    // an ideal predictor hides most of them via FDIP.
    BranchTrace trace = hostileTrace(30000);
    TraceSource src(trace);
    StaticPredictor poor(true);
    auto bad = PipelineModel().run(src, poor);
    EXPECT_GT(bad.frontendStallCycles, 0.0);

    TraceSource src2(trace);
    IdealPredictor ideal;
    auto good = PipelineModel().run(src2, ideal);
    EXPECT_LT(good.frontendStallCycles, bad.frontendStallCycles);
}

TEST(Pipeline, BtbMissesCharged)
{
    BranchTrace trace = hostileTrace(20000);
    TraceSource src(trace);
    IdealPredictor ideal;
    auto stats = PipelineModel().run(src, ideal);
    // 2^20 distinct branch PCs >> 8192-entry BTB.
    EXPECT_GT(stats.btbMisses, 1000u);
    EXPECT_GT(stats.btbStallCycles, 0.0);
}

TEST(Pipeline, StatsArithmetic)
{
    PipelineStats s;
    s.instructions = 1000;
    s.baseCycles = 200;
    s.squashCycles = 50;
    s.frontendStallCycles = 30;
    s.btbStallCycles = 20;
    s.mispredicts = 7;
    EXPECT_DOUBLE_EQ(s.cycles(), 300.0);
    EXPECT_NEAR(s.ipc(), 1000.0 / 300.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.mpki(), 7.0);
}

TEST(ReturnAddressStack, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.depth(), 3u);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.depth(), 0u);
}

TEST(ReturnAddressStack, UnderflowPredictsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    ras.push(0x10);
    EXPECT_EQ(ras.pop(), 0x10u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(ReturnAddressStack, OverflowWrapsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3); // overwrites 0x1
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    // The overwritten entry is gone; depth is exhausted.
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(ReturnAddressStack, ResetClears)
{
    ReturnAddressStack ras(4);
    ras.push(0xAA);
    ras.reset();
    EXPECT_EQ(ras.depth(), 0u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(IndirectBtb, LearnsStableTarget)
{
    IndirectBtb ibtb(1024);
    // With a stable path context, a fixed target is predicted
    // correctly after one observation.
    ibtb.update(0x5000, 0x9000);
    // Context advanced by the update; retrain once in new context.
    uint64_t second = ibtb.predict(0x5000);
    ibtb.update(0x5000, 0x9000);
    (void)second;
    int correct = 0;
    for (int i = 0; i < 16; ++i) {
        if (ibtb.predict(0x5000) == 0x9000)
            ++correct;
        ibtb.update(0x5000, 0x9000);
    }
    EXPECT_GE(correct, 14);
}

TEST(IndirectBtb, ResetForgets)
{
    IndirectBtb ibtb(256);
    ibtb.update(0x40, 0x999);
    ibtb.reset();
    EXPECT_EQ(ibtb.predict(0x40), 0u);
}

TEST(Pipeline, RasCoversWorkloadReturns)
{
    // The synthetic apps emit matched call/return pairs; the RAS
    // must predict nearly all returns (no deep recursion).
    AppWorkload wl(appByName("kafka"), 0, 60000);
    IdealPredictor ideal;
    PipelineModel model;
    PipelineStats stats = model.run(wl, ideal);
    EXPECT_GT(stats.branches, 0u);
    EXPECT_LT(static_cast<double>(stats.rasMisses),
              0.02 * stats.branches);
}

TEST(Pipeline, IndirectDispatchExercisesIbtb)
{
    // Request-entry dispatch sites jump to many handler targets:
    // the IBTB must see traffic, mispredict sometimes, but stay
    // well below chance thanks to path history.
    AppWorkload wl(appByName("mysql"), 0, 120000);
    uint64_t indirects = 0;
    BranchRecord rec;
    while (wl.next(rec))
        if (rec.kind == BranchKind::Indirect)
            ++indirects;
    ASSERT_GT(indirects, 100u);

    wl.rewind();
    IdealPredictor ideal;
    PipelineStats stats = PipelineModel().run(wl, ideal);
    EXPECT_GT(stats.indirectMisses, 0u);
    EXPECT_LT(stats.indirectMisses, indirects);
}
