#!/bin/sh
# Drift scenario demo: a kafka stream whose request mix and branch
# formulas rotate mid-stream (whisper_trace_gen --drift) feeds the
# whisperd adaptive loop. Asserts the continuous-PGO contracts on a
# drifting workload:
#   1. whisperd trains across epochs and deploys validated bundles;
#   2. the online bundle matches or beats both plain TAGE-SC-L and a
#      static bundle trained on the pre-drift prefix;
#   3. per whisper_eval --per-epoch, the drift visibly dents the
#      baseline at the phase boundary, and the static prefix-trained
#      bundle goes stale: its accuracy edge over TAGE collapses on
#      the post-drift epochs (the gap the online loop exists to
#      close).
set -e

BIN_DIR="$1"
WORK_DIR="${TMPDIR:-/tmp}/whisperd_drift_$$"
mkdir -p "$WORK_DIR/chunks"
trap 'rm -rf "$WORK_DIR"' EXIT

DRIFT="phase:period=225000,phases=2,intensity=0.7,seed=11"

# One drifting stream serves as both the chunk arrival and the
# held-out evaluation trace (epochs 0-2 phase 0, epochs 3-5 the
# rotated phase at 75k records per epoch).
"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 \
    --records 450000 --drift "$DRIFT" \
    --out "$WORK_DIR/chunks/000_kafka_drift.whrt" > /dev/null
cp "$WORK_DIR/chunks/000_kafka_drift.whrt" "$WORK_DIR/eval.whrt"

# Static reference: one-shot training on pre-drift (phase 0) data
# only — the bundle a collect-once pipeline would still be running.
"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 \
    --records 150000 --out "$WORK_DIR/pre.whrt" > /dev/null
"$BIN_DIR/whisper_train" --trace "$WORK_DIR/pre.whrt" \
    --out "$WORK_DIR/static.hints" > /dev/null

"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --out "$WORK_DIR/online.vhints" \
    --journal "$WORK_DIR/hints.journal" \
    --chunk-records 45000 --epoch-chunks 2 \
    --workers 4 --shards 2 --max-hard 256 \
    --eval-trace "$WORK_DIR/eval.whrt" \
    --compare-hints "$WORK_DIR/static.hints" \
    > "$WORK_DIR/whisperd.txt" 2>&1
cat "$WORK_DIR/whisperd.txt"

# Contract 1: adaptation actually happened.
EPOCHS=$(sed -n 's/^whisperd: epochs=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd.txt")
[ "$EPOCHS" -ge 2 ]
ACCEPTED=$(sed -n 's/.*accepted=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd.txt")
[ "$ACCEPTED" -ge 1 ]
grep -q "deployed bundle (epoch" "$WORK_DIR/whisperd.txt"

# Contract 2: online beats (or ties) both references on the full
# drifting trace.
grep -q "online wins or ties" "$WORK_DIR/whisperd.txt"
TAGE_MPKI=$(sed -n 's/.*tage accuracy=.*mpki=\([0-9.]*\)/\1/p' \
    "$WORK_DIR/whisperd.txt")
ONLINE_MPKI=$(sed -n \
    's/.*online-whisper accuracy=.*mpki=\([0-9.]*\)/\1/p' \
    "$WORK_DIR/whisperd.txt")
awk -v tage="$TAGE_MPKI" -v online="$ONLINE_MPKI" \
    'BEGIN { exit !(online <= tage + 0.001) }'

# Contract 3: the machine-readable per-epoch dump shows the drift
# and the staleness of the static bundle.
"$BIN_DIR/whisper_eval" --trace "$WORK_DIR/eval.whrt" \
    --hints "$WORK_DIR/static.hints" \
    --per-epoch --epoch-records 75000 > "$WORK_DIR/per_epoch.txt"
grep "per-epoch" "$WORK_DIR/per_epoch.txt"

# Accuracy of predictor-prefix $1 in epoch $2.
acc() {
    sed -n "s/^per-epoch predictor=$1[^ ]* epoch=$2 \
.*accuracy=\([0-9.]*\).*/\1/p" "$WORK_DIR/per_epoch.txt"
}
[ "$(grep -c '^per-epoch-summary' "$WORK_DIR/per_epoch.txt")" -eq 2 ]

# The phase boundary (epoch 3) visibly dents the warmed-up baseline
# relative to the last pre-drift epoch...
awk -v pre="$(acc tage 2)" -v post="$(acc tage 3)" \
    'BEGIN { exit !(post <= pre - 0.01) }'
# ...and the static prefix-trained bundle goes stale: its accuracy
# edge over TAGE in the last pre-drift epoch shrinks by the end of
# the drifted segment.
awk -v tpre="$(acc tage 2)" -v wpre="$(acc whisper 2)" \
    -v tpost="$(acc tage 5)" -v wpost="$(acc whisper 5)" \
    'BEGIN { exit !((wpre - tpre) >= (wpost - tpost) + 0.001) }'

echo "whisperd drift demo OK (epochs=$EPOCHS accepted=$ACCEPTED" \
    "online mpki $ONLINE_MPKI vs tage $TAGE_MPKI)"
