#!/bin/sh
# whisper_trace_stats coverage: (1) golden-output diff — the stats
# report for a fixed generated trace must match the committed golden
# file byte for byte (catches silent format or generator drift);
# (2) CLI CBP round-trip — .whrt -> .cbp -> .whrt must reproduce the
# original file exactly; (3) the foreign .cbp feeds whisper_eval
# end to end.
set -e

BIN_DIR="$1"
GOLDEN_DIR="$2"
WORK_DIR="${TMPDIR:-/tmp}/trace_stats_golden_$$"
mkdir -p "$WORK_DIR"
trap 'rm -rf "$WORK_DIR"' EXIT

"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 --records 50000 \
    --out "$WORK_DIR/kafka.whrt" > /dev/null

# Golden diff: report layout and generator output are both pinned.
"$BIN_DIR/whisper_trace_stats" "$WORK_DIR/kafka.whrt" --top 5 \
    > "$WORK_DIR/stats.txt"
diff -u "$GOLDEN_DIR/trace_stats_kafka_i0_50k.txt" \
    "$WORK_DIR/stats.txt"

# CBP round-trip through the CLI converter modes.
"$BIN_DIR/whisper_trace_stats" --export-cbp \
    "$WORK_DIR/kafka.whrt" "$WORK_DIR/kafka.cbp" > /dev/null
"$BIN_DIR/whisper_trace_stats" --convert-cbp \
    "$WORK_DIR/kafka.cbp" "$WORK_DIR/kafka_rt.whrt" > /dev/null
cmp "$WORK_DIR/kafka.whrt" "$WORK_DIR/kafka_rt.whrt"

# The text trace is a first-class stats input...
"$BIN_DIR/whisper_trace_stats" "$WORK_DIR/kafka.cbp" \
    > "$WORK_DIR/stats_cbp.txt"
grep -q "trace: app=kafka input=0 records=50000" \
    "$WORK_DIR/stats_cbp.txt"

# ...and a first-class evaluation input: a foreign CBP-style trace
# runs through whisper_eval without touching the native format.
"$BIN_DIR/whisper_eval" --trace "$WORK_DIR/kafka.cbp" \
    > "$WORK_DIR/eval.txt"
grep -q "evaluation: kafka input #0" "$WORK_DIR/eval.txt"
grep -q "tage-sc-l" "$WORK_DIR/eval.txt"

echo "trace_stats golden OK"
