/**
 * @file
 * Unit + property tests for the synthetic application models.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/global_history.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

TEST(Catalog, TwelveDataCenterApps)
{
    const auto &apps = dataCenterApps();
    ASSERT_EQ(apps.size(), 12u);
    std::set<std::string> names;
    for (const auto &a : apps)
        names.insert(a.name);
    EXPECT_EQ(names.size(), 12u);
    EXPECT_TRUE(names.count("mysql"));
    EXPECT_TRUE(names.count("finagle-chirper"));
    EXPECT_TRUE(names.count("wordpress"));
}

TEST(Catalog, TenSpecApps)
{
    EXPECT_EQ(specApps().size(), 10u);
}

TEST(Catalog, LookupByName)
{
    EXPECT_EQ(appByName("clang").name, "clang");
    EXPECT_EQ(appByName("xz").name, "xz");
}

TEST(AppWorkload, Deterministic)
{
    const AppConfig &app = appByName("kafka");
    AppWorkload a(app, 0, 5000), b(app, 0, 5000);
    BranchRecord ra, rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.taken, rb.taken);
        ASSERT_EQ(ra.instGap, rb.instGap);
    }
    EXPECT_FALSE(b.next(rb));
}

TEST(AppWorkload, RewindReplaysIdentically)
{
    const AppConfig &app = appByName("tomcat");
    AppWorkload wl(app, 2, 3000);
    std::vector<BranchRecord> first;
    BranchRecord rec;
    while (wl.next(rec))
        first.push_back(rec);
    wl.rewind();
    size_t i = 0;
    while (wl.next(rec)) {
        ASSERT_LT(i, first.size());
        ASSERT_EQ(rec.pc, first[i].pc);
        ASSERT_EQ(rec.taken, first[i].taken);
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(AppWorkload, InputsDiffer)
{
    const AppConfig &app = appByName("drupal");
    AppWorkload a(app, 0, 5000), b(app, 1, 5000);
    BranchRecord ra, rb;
    int differing = 0;
    while (a.next(ra) && b.next(rb)) {
        if (ra.pc != rb.pc || ra.taken != rb.taken)
            ++differing;
    }
    EXPECT_GT(differing, 100);
}

TEST(AppWorkload, SameStaticStructureAcrossInputs)
{
    // Inputs change behaviour, not code: sites must be identical.
    const AppConfig &app = appByName("python");
    AppWorkload a(app, 0, 10), b(app, 3, 10);
    ASSERT_EQ(a.sites().size(), b.sites().size());
    for (size_t i = 0; i < a.sites().size(); ++i) {
        EXPECT_EQ(a.sites()[i].pc, b.sites()[i].pc);
        EXPECT_EQ(a.sites()[i].kind, b.sites()[i].kind);
    }
}

TEST(AppWorkload, UniqueSitePcs)
{
    const AppConfig &app = appByName("mysql");
    AppWorkload wl(app, 0, 10);
    std::set<uint64_t> pcs;
    for (const auto &s : wl.sites())
        pcs.insert(s.pc);
    EXPECT_EQ(pcs.size(), wl.sites().size());
}

TEST(AppWorkload, RecordsOnlyKnownPcs)
{
    const AppConfig &app = appByName("cassandra");
    AppWorkload wl(app, 1, 20000);
    std::set<uint64_t> sitePcs;
    for (const auto &s : wl.sites())
        sitePcs.insert(s.pc);
    BranchRecord rec;
    while (wl.next(rec)) {
        if (rec.isConditional()) {
            ASSERT_TRUE(sitePcs.count(rec.pc)) << std::hex << rec.pc;
        }
    }
}

TEST(AppWorkload, EmitsCallsAndReturns)
{
    const AppConfig &app = appByName("kafka");
    AppWorkload wl(app, 0, 20000);
    uint64_t calls = 0, indirects = 0, returns = 0, conds = 0;
    BranchRecord rec;
    while (wl.next(rec)) {
        switch (rec.kind) {
          case BranchKind::Call:
            ++calls;
            break;
          case BranchKind::Indirect:
            ++indirects;
            break;
          case BranchKind::Return:
            ++returns;
            break;
          case BranchKind::Conditional:
            ++conds;
            break;
          default:
            break;
        }
    }
    EXPECT_GT(calls, 500u);
    EXPECT_GT(indirects, 50u); // request-entry dispatch sites
    EXPECT_GT(conds, 10000u);
    // Region entries (calls + indirect dispatches) and returns
    // bracket regions (the tail may be cut).
    EXPECT_NEAR(static_cast<double>(calls + indirects),
                static_cast<double>(returns), 2.0);
}

TEST(AppWorkload, BiasedBranchesAreBiased)
{
    // Property: every hot Biased site's empirical taken-rate must
    // be within noise of its parameter.
    const AppConfig &app = appByName("finagle-http");
    AppWorkload wl(app, 0, 300000);
    std::map<uint64_t, const BranchSite *> byPc;
    for (const auto &s : wl.sites())
        byPc[s.pc] = &s;
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> counts;
    BranchRecord rec;
    while (wl.next(rec)) {
        if (!rec.isConditional())
            continue;
        auto &c = counts[rec.pc];
        c.first += rec.taken;
        ++c.second;
    }
    for (const auto &[pc, c] : counts) {
        const BranchSite *s = byPc[pc];
        if (s->kind != BehaviorKind::Biased || c.second < 500)
            continue;
        double rate = static_cast<double>(c.first) / c.second;
        EXPECT_NEAR(rate, s->param, 0.03) << std::hex << pc;
    }
}

TEST(AppWorkload, HashedHistoryBranchesFollowTheirFormula)
{
    // Property: reconstruct each HashedHistory outcome from the
    // formula and an independently maintained folded history; the
    // mismatch rate must be about the site's noise.
    const AppConfig &app = appByName("mysql");
    AppWorkload wl(app, 0, 200000);
    std::map<uint64_t, const BranchSite *> byPc;
    for (const auto &s : wl.sites())
        byPc[s.pc] = &s;

    GlobalHistory shadow(4096);
    for (unsigned len : wl.lengths())
        shadow.addFoldedView(len, 8);

    uint64_t match = 0, total = 0;
    BranchRecord rec;
    while (wl.next(rec)) {
        if (!rec.isConditional())
            continue;
        const BranchSite *s = byPc[rec.pc];
        if (s->kind == BehaviorKind::HashedHistory) {
            uint8_t hashed = static_cast<uint8_t>(
                shadow.foldedValue(s->lengthIdx));
            bool expected = s->formula.evaluate(hashed);
            ++total;
            if (expected == rec.taken)
                ++match;
        }
        shadow.push(rec.taken);
    }
    ASSERT_GT(total, 1000u);
    double matchRate = static_cast<double>(match) / total;
    // Average noise is well below 10%.
    EXPECT_GT(matchRate, 0.88);
}

TEST(AppWorkload, LoopBranchesRunTheirPeriod)
{
    const AppConfig &app = appByName("finagle-http");
    AppWorkload wl(app, 0, 100000);
    std::map<uint64_t, const BranchSite *> byPc;
    for (const auto &s : wl.sites())
        byPc[s.pc] = &s;

    // Count consecutive taken runs per loop branch.
    std::map<uint64_t, unsigned> run;
    BranchRecord rec;
    bool ok = true;
    while (wl.next(rec)) {
        if (!rec.isConditional())
            continue;
        const BranchSite *s = byPc[rec.pc];
        if (s->kind != BehaviorKind::Loop)
            continue;
        if (rec.taken) {
            ++run[rec.pc];
        } else {
            unsigned len = run[rec.pc] + 1;
            if (len != std::min(s->loopPeriod, 64u))
                ok = false;
            run[rec.pc] = 0;
        }
    }
    EXPECT_TRUE(ok);
}

TEST(AppWorkload, StaticFootprintScalesWithRegions)
{
    AppConfig small = appByName("finagle-http");
    AppConfig large = appByName("mysql");
    AppWorkload a(small, 0, 10), b(large, 0, 10);
    EXPECT_LT(a.staticBranches(), b.staticBranches());
    EXPECT_LT(a.staticInstructions(), b.staticInstructions());
    EXPECT_GT(b.staticBranches(), 5000u);
}

TEST(AppWorkload, InstructionGapsInBand)
{
    const AppConfig &app = appByName("drupal");
    AppWorkload wl(app, 0, 20000);
    BranchRecord rec;
    double sum = 0;
    uint64_t n = 0;
    while (wl.next(rec)) {
        EXPECT_GE(rec.instGap, 1u);
        EXPECT_LE(rec.instGap, 2 * app.avgInstGap);
        sum += rec.instGap;
        ++n;
    }
    EXPECT_NEAR(sum / n, app.avgInstGap, 1.0);
}
