/**
 * @file
 * Unit tests for the ROMBF prior-work baseline.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "bp/simple_predictors.hh"
#include "core/formula_trainer.hh"
#include "rombf/rombf_formula.hh"
#include "rombf/rombf_predictor.hh"
#include "rombf/rombf_trainer.hh"
#include "util/rng.hh"

using namespace whisper;

TEST(RombfCount, RecurrenceValues)
{
    // T(n) = 2 * sum T(k)T(n-k): 1, 2, 8, 40, 224, 1344, 8448, 54912.
    EXPECT_EQ(rombfCount(1), 1u);
    EXPECT_EQ(rombfCount(2), 2u);
    EXPECT_EQ(rombfCount(3), 8u);
    EXPECT_EQ(rombfCount(4), 40u);
    EXPECT_EQ(rombfCount(8), 54912u);
}

TEST(RombfEnumeration, CountAndDedup)
{
    auto raw = enumerateRombf(4, /*dedupe=*/false);
    EXPECT_EQ(raw.enumerated, 40u);
    EXPECT_GE(raw.tables.size(), 30u); // includes structural dupes

    auto deduped = enumerateRombf(4, /*dedupe=*/true);
    EXPECT_LT(deduped.tables.size(), raw.tables.size());
    std::set<TruthTable> unique(deduped.tables.begin(),
                                deduped.tables.end());
    EXPECT_EQ(unique.size(), deduped.tables.size());
}

TEST(RombfEnumeration, AllTablesAreMonotone)
{
    // Property: every ROMBF is a monotone Boolean function — flipping
    // any input 0->1 never flips the output 1->0.
    auto e = enumerateRombf(4, true);
    for (const auto &tt : e.tables) {
        for (unsigned v = 0; v < 16; ++v) {
            bool fv = (tt[0] >> v) & 1;
            for (unsigned b = 0; b < 4; ++b) {
                if (v & (1u << b))
                    continue;
                unsigned w = v | (1u << b);
                bool fw = (tt[0] >> w) & 1;
                ASSERT_TRUE(!fv || fw) << "not monotone at " << v;
            }
        }
    }
}

TEST(RombfEnumeration, ContainsChainAndTree)
{
    // Both the balanced tree AND((b0&b1),(b2&b3)) and the chain
    // ((b0&b1)&b2)&b3 reduce to all-AND; OR similarly. Check the
    // canonical AND/OR of all four variables are present.
    auto e = enumerateRombf(4, true);
    TruthTable allAnd{}, allOr{};
    for (unsigned v = 0; v < 16; ++v) {
        if (v == 15)
            allAnd[0] |= 1ULL << v;
        if (v != 0)
            allOr[0] |= 1ULL << v;
    }
    bool sawAnd = false, sawOr = false;
    for (const auto &tt : e.tables) {
        sawAnd |= tt == allAnd;
        sawOr |= tt == allOr;
    }
    EXPECT_TRUE(sawAnd);
    EXPECT_TRUE(sawOr);
}

namespace
{

BranchProfile
plantedRombfProfile(const WhisperConfig &cfg)
{
    BranchProfile profile(cfg);
    profile.markHard(0x500);
    BranchProfileEntry &e = profile.entry(0x500);
    Rng rng(13);
    for (int s = 0; s < 3000; ++s) {
        unsigned h8 = static_cast<unsigned>(rng.nextBelow(256));
        // Planted read-once monotone function of the last 8 bits:
        // (b0&b1&b2&b3) | (b4&b5&b6&b7) — every variable used once.
        bool taken = ((h8 & 0x0F) == 0x0F) || ((h8 & 0xF0) == 0xF0);
        ++e.executions;
        if (taken)
            ++e.takenCount;
        e.raw8.record(h8, taken);
        e.raw4.record(h8 & 15, taken);
        for (auto &table : e.byLength)
            table.record(static_cast<unsigned>(rng.nextBelow(256)),
                         taken);
    }
    e.baselineMispredicts = 900;
    return profile;
}

} // namespace

TEST(RombfTrainer, RecoversMonotoneFunction)
{
    WhisperConfig cfg;
    BranchProfile profile = plantedRombfProfile(cfg);
    RombfTrainer trainer(8);
    RombfTrainingStats stats;
    auto hints = trainer.train(profile, &stats);
    ASSERT_EQ(hints.size(), 1u);
    EXPECT_GE(hints[0].tableIdx, 0);
    EXPECT_EQ(hints[0].expectedMispredicts, 0u);
    EXPECT_GT(stats.formulasScored, 0u);
}

TEST(RombfTrainer, FourBitCannotSeeUpperBits)
{
    // The planted function also depends on bits 4-7; the 4-bit
    // variant sees only the last 4 outcomes, so its best formula is
    // lossy.
    WhisperConfig cfg;
    BranchProfile profile = plantedRombfProfile(cfg);
    RombfTrainer t4(4), t8(8);
    auto h4 = t4.train(profile);
    auto h8 = t8.train(profile);
    ASSERT_EQ(h8.size(), 1u);
    uint64_t m4 = h4.empty() ? profile.entry(0x500).biasMispredicts()
                             : h4[0].expectedMispredicts;
    EXPECT_GT(m4, h8[0].expectedMispredicts);
}

TEST(RombfTrainer, SkipsWellPredictedBranches)
{
    WhisperConfig cfg;
    BranchProfile profile = plantedRombfProfile(cfg);
    profile.entry(0x500).baselineMispredicts = 2;
    RombfTrainer trainer(8);
    EXPECT_TRUE(trainer.train(profile).empty());
}

TEST(RombfPredictor, PredictsViaAnnotation)
{
    WhisperConfig cfg;
    BranchProfile profile = plantedRombfProfile(cfg);
    RombfTrainer trainer(8);
    auto hints = trainer.train(profile);
    ASSERT_EQ(hints.size(), 1u);

    RombfPredictor pred(std::make_unique<StaticPredictor>(false),
                        trainer, hints);

    // Drive history so the last 8 outcomes are all taken: planted
    // function fires.
    Rng rng(3);
    for (int i = 0; i < 8; ++i) {
        bool pd = pred.predict(0x999, true);
        pred.update(0x999, true, pd);
    }
    EXPECT_TRUE(pred.predict(0x500, true));
    pred.update(0x500, true, true);
    EXPECT_EQ(pred.hintPredictions(), 1u);

    // Un-annotated branches fall through to the base predictor.
    EXPECT_FALSE(pred.predict(0x777, true));
    pred.update(0x777, true, false);
}

TEST(RombfPredictor, BiasAnnotation)
{
    WhisperConfig cfg;
    BranchProfile profile(cfg);
    profile.markHard(0x10);
    auto &e = profile.entry(0x10);
    e.executions = 1000;
    e.takenCount = 995;
    e.baselineMispredicts = 400;
    RombfTrainer trainer(8);
    auto hints = trainer.train(profile);
    ASSERT_EQ(hints.size(), 1u);
    EXPECT_LT(hints[0].tableIdx, 0);
    EXPECT_TRUE(hints[0].biasTaken);

    RombfPredictor pred(std::make_unique<StaticPredictor>(false),
                        trainer, hints);
    EXPECT_TRUE(pred.predict(0x10, false));
    pred.update(0x10, false, true);
}
