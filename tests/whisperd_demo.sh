#!/bin/sh
# End-to-end demo of the whisperd continuous-optimization service:
# stream kafka input-0 chunks followed by input-1 chunks (workload
# drift), train across several epochs with validated deployment, and
# check that the final online bundle is no worse than a static
# single-shot whisper_train bundle on the drifted input.
set -e

BIN_DIR="$1"
WORK_DIR="${TMPDIR:-/tmp}/whisperd_demo_$$"
mkdir -p "$WORK_DIR/chunks"
trap 'rm -rf "$WORK_DIR"' EXIT

# Drift stream: names encode arrival order (input 0, then input 1).
"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 \
    --records 200000 --out "$WORK_DIR/chunks/000_kafka_i0.whrt"
"$BIN_DIR/whisper_trace_gen" --app kafka --input 1 \
    --records 200000 --out "$WORK_DIR/chunks/001_kafka_i1.whrt"
# Held-out evaluation trace from the drifted input.
"$BIN_DIR/whisper_trace_gen" --app kafka --input 1 \
    --records 150000 --out "$WORK_DIR/eval_i1.whrt"

# Static reference: one-shot training on the pre-drift input only.
"$BIN_DIR/whisper_train" \
    --trace "$WORK_DIR/chunks/000_kafka_i0.whrt" \
    --out "$WORK_DIR/static.hints" > /dev/null

"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --out "$WORK_DIR/online.vhints" \
    --chunk-records 40000 --epoch-chunks 3 \
    --workers 4 --shards 2 --max-hard 256 \
    --eval-trace "$WORK_DIR/eval_i1.whrt" \
    --compare-hints "$WORK_DIR/static.hints" \
    > "$WORK_DIR/whisperd.txt"
cat "$WORK_DIR/whisperd.txt"

# At least two training epochs ran...
EPOCHS=$(sed -n 's/^whisperd: epochs=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd.txt")
[ "$EPOCHS" -ge 2 ]
# ...at least one candidate was accepted and atomically deployed...
ACCEPTED=$(sed -n 's/.*accepted=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd.txt")
[ "$ACCEPTED" -ge 1 ]
grep -q "deployed bundle (epoch" "$WORK_DIR/whisperd.txt"
# ...the service metrics block rendered...
grep -q "whisperd service metrics" "$WORK_DIR/whisperd.txt"
# ...and the online bundle matches or beats the static one on the
# drifted input (the continuous-PGO payoff).
grep -q "online wins or ties" "$WORK_DIR/whisperd.txt"

echo "whisperd demo OK"
