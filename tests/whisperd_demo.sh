#!/bin/sh
# End-to-end demo of the whisperd continuous-optimization service:
# stream kafka input-0 chunks followed by input-1 chunks (workload
# drift), train across several epochs with validated deployment, and
# check that the final online bundle is no worse than a static
# single-shot whisper_train bundle on the drifted input.
#
# The deployment history is written through the crash-safe hint-store
# journal. In the default mode a second whisperd is killed (-9)
# mid-run, the journal tail is torn, and a restarted daemon must
# resume from the last durable epoch. With
#   whisperd_demo.sh BIN_DIR --fault-spec SPEC
# the main run instead executes under the deterministic
# fault-injection harness and must still complete with a deployed
# bundle whose MPKI is no worse than the TAGE-SC-L baseline.
set -e

BIN_DIR="$1"
FAULT_SPEC=""
if [ "$2" = "--fault-spec" ]; then
    FAULT_SPEC="$3"
fi
WORK_DIR="${TMPDIR:-/tmp}/whisperd_demo_$$"
JOURNAL="$WORK_DIR/hints.journal"
mkdir -p "$WORK_DIR/chunks"
trap 'rm -rf "$WORK_DIR"' EXIT

# Drift stream: names encode arrival order (input 0, then input 1).
"$BIN_DIR/whisper_trace_gen" --app kafka --input 0 \
    --records 200000 --out "$WORK_DIR/chunks/000_kafka_i0.whrt"
"$BIN_DIR/whisper_trace_gen" --app kafka --input 1 \
    --records 200000 --out "$WORK_DIR/chunks/001_kafka_i1.whrt"
# Held-out evaluation trace from the drifted input.
"$BIN_DIR/whisper_trace_gen" --app kafka --input 1 \
    --records 150000 --out "$WORK_DIR/eval_i1.whrt"

# Static reference: one-shot training on the pre-drift input only.
"$BIN_DIR/whisper_train" \
    --trace "$WORK_DIR/chunks/000_kafka_i0.whrt" \
    --out "$WORK_DIR/static.hints" > /dev/null

if [ -n "$FAULT_SPEC" ]; then
    # Fault mode: run the whole pipeline under injected faults. It
    # must degrade gracefully, not crash, and still beat the
    # baseline predictor on the held-out trace.
    "$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
        --out "$WORK_DIR/online.vhints" \
        --journal "$JOURNAL" \
        --fault-spec "$FAULT_SPEC" --deadline-ms 200 \
        --chunk-records 40000 --epoch-chunks 3 \
        --workers 4 --shards 2 --max-hard 256 \
        --eval-trace "$WORK_DIR/eval_i1.whrt" \
        > "$WORK_DIR/whisperd.txt" 2>&1
    cat "$WORK_DIR/whisperd.txt"

    grep -q "fault injection armed" "$WORK_DIR/whisperd.txt"
    grep -q "deployed bundle (epoch" "$WORK_DIR/whisperd.txt"
    # The armed faults must actually have fired: the fault metric
    # line has to report at least one nonzero counter.
    FAULT_SUM=$(sed -n 's/^whisperd: faults //p' \
        "$WORK_DIR/whisperd.txt" |
        tr ' ' '\n' | sed -n 's/.*=\([0-9]*\)$/\1/p' |
        awk '{s += $1} END {print s}')
    [ "$FAULT_SUM" -ge 1 ]
    # Graceful degradation: the deployed bundle's MPKI may not be
    # worse than plain TAGE-SC-L on the held-out trace.
    TAGE_MPKI=$(sed -n 's/.*tage accuracy=.*mpki=\([0-9.]*\)/\1/p' \
        "$WORK_DIR/whisperd.txt")
    ONLINE_MPKI=$(sed -n \
        's/.*online-whisper accuracy=.*mpki=\([0-9.]*\)/\1/p' \
        "$WORK_DIR/whisperd.txt")
    awk -v tage="$TAGE_MPKI" -v online="$ONLINE_MPKI" \
        'BEGIN { exit !(online <= tage + 0.001) }'

    echo "whisperd fault demo OK (faults fired: $FAULT_SUM," \
        "online mpki $ONLINE_MPKI <= tage mpki $TAGE_MPKI)"
    exit 0
fi

"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --out "$WORK_DIR/online.vhints" \
    --journal "$JOURNAL" \
    --chunk-records 40000 --epoch-chunks 3 \
    --workers 4 --shards 2 --max-hard 256 \
    --eval-trace "$WORK_DIR/eval_i1.whrt" \
    --compare-hints "$WORK_DIR/static.hints" \
    > "$WORK_DIR/whisperd.txt" 2>&1
cat "$WORK_DIR/whisperd.txt"

# A fresh journal starts empty: resume from epoch 0.
grep -q "resumed from journal at epoch 0" "$WORK_DIR/whisperd.txt"
# At least two training epochs ran...
EPOCHS=$(sed -n 's/^whisperd: epochs=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd.txt")
[ "$EPOCHS" -ge 2 ]
# ...at least one candidate was accepted and atomically deployed...
ACCEPTED=$(sed -n 's/.*accepted=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd.txt")
[ "$ACCEPTED" -ge 1 ]
grep -q "deployed bundle (epoch" "$WORK_DIR/whisperd.txt"
# ...the service metrics block rendered...
grep -q "whisperd service metrics" "$WORK_DIR/whisperd.txt"
# ...and the online bundle matches or beats the static one on the
# drifted input (the continuous-PGO payoff).
grep -q "online wins or ties" "$WORK_DIR/whisperd.txt"

# Training-knob phase: with the default --train-prune=on
# --warm-start=on the summary must expose the warm/cold training
# stats and per-branch train-time...
grep -q "whisperd: training warm-hits=" "$WORK_DIR/whisperd.txt"
BR_MS=$(sed -n 's/.*branch-train-ms=\([0-9.]*\).*/\1/p' \
    "$WORK_DIR/whisperd.txt" | head -n 1)
awk -v ms="$BR_MS" 'BEGIN { exit !(ms > 0) }'
# ...and turning both knobs off must produce a purely cold run:
# zero warm hits, every considered branch a cold search.
"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --out "$WORK_DIR/online_cold.vhints" \
    --train-prune=off --warm-start=off \
    --chunk-records 40000 --epoch-chunks 3 \
    --workers 4 --shards 2 --max-hard 256 \
    > "$WORK_DIR/whisperd_cold.txt" 2>&1
cat "$WORK_DIR/whisperd_cold.txt"
grep -q "whisperd: training warm-hits=0 " "$WORK_DIR/whisperd_cold.txt"
COLD_SEARCHES=$(sed -n \
    's/.*training warm-hits=0 cold-searches=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd_cold.txt")
[ "$COLD_SEARCHES" -ge 1 ]
COLD_BR_MS=$(sed -n 's/.*branch-train-ms=\([0-9.]*\).*/\1/p' \
    "$WORK_DIR/whisperd_cold.txt" | head -n 1)
awk -v ms="$COLD_BR_MS" 'BEGIN { exit !(ms > 0) }'

# Crash-recovery phase: rerun on the same journal, kill -9 the
# daemon mid-run, tear the journal tail, and check the restarted
# daemon resumes from the last durable epoch instead of epoch 0.
"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --out "$WORK_DIR/online2.vhints" \
    --journal "$JOURNAL" \
    --chunk-records 40000 --epoch-chunks 3 \
    --workers 4 --shards 2 --max-hard 256 \
    > "$WORK_DIR/whisperd_bg.txt" 2>&1 &
BG_PID=$!
i=0
while [ "$i" -lt 300 ]; do
    if grep -q "ACCEPTED (deployed epoch" "$WORK_DIR/whisperd_bg.txt"
    then
        break
    fi
    kill -0 "$BG_PID" 2> /dev/null || break
    sleep 0.2
    i=$((i + 1))
done
kill -9 "$BG_PID" 2> /dev/null || true
wait "$BG_PID" 2> /dev/null || true

# Generations durable so far: phase-1 deployments plus whatever the
# killed daemon managed to append. With at least two, tear the last
# record so replay must discard it and fall back one epoch.
BG_ACCEPTED=$(grep -c "ACCEPTED (deployed epoch" \
    "$WORK_DIR/whisperd_bg.txt" || true)
TOTAL_GENERATIONS=$((ACCEPTED + BG_ACCEPTED))
if [ "$TOTAL_GENERATIONS" -ge 2 ]; then
    truncate -s -3 "$JOURNAL"
fi

"$BIN_DIR/whisperd" --chunks "$WORK_DIR/chunks" \
    --out "$WORK_DIR/online3.vhints" \
    --journal "$JOURNAL" \
    --chunk-records 40000 --epoch-chunks 3 \
    --workers 4 --shards 2 --max-hard 256 \
    > "$WORK_DIR/whisperd_restart.txt" 2>&1
cat "$WORK_DIR/whisperd_restart.txt"

RESUMED=$(sed -n \
    's/^whisperd: resumed from journal at epoch \([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd_restart.txt" | head -n 1)
[ "$RESUMED" -ge 1 ]
FINAL_EPOCH=$(sed -n 's/.*deployed-epoch=\([0-9]*\).*/\1/p' \
    "$WORK_DIR/whisperd_restart.txt")
[ "$FINAL_EPOCH" -ge "$RESUMED" ]

echo "whisperd demo OK (crash recovery resumed at epoch $RESUMED," \
    "final deployed epoch $FINAL_EPOCH)"
