/**
 * @file
 * Training-quality harness for the sparse-correlation screen and
 * warm-started retraining (ctest prefix: train., also run under
 * TSan by CI's train-smoke leg).
 *
 * The contract under test: pruning and warm-starting are *search
 * accelerations* — they may skip provably-weaker candidates but must
 * not cost accuracy beyond a hair (differential bound vs the full
 * scan), must never drop a perfectly correlated history position,
 * must stay deterministic, and must degrade to the cold search the
 * moment a seed stops fitting the fresh profile.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/correlation_screen.hh"
#include "service/training_pool.hh"
#include "sim/experiment.hh"
#include "util/rng.hh"

using namespace whisper;

namespace
{

/** Reduced-scale experiment shared by the app-level tests. */
ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.trainRecords = 400'000;
    cfg.profile.maxHardBranches = 128;
    return cfg;
}

/**
 * Expected post-training mispredict rate over the profile's hard
 * branches: covered branches improve from the baseline to the
 * hint's expected count, uncovered ones keep the baseline.
 */
double
expectedHardRate(const BranchProfile &profile,
                 const TrainingStats &stats)
{
    uint64_t execs = 0, baseline = 0;
    for (const BranchProfileEntry *e : profile.hardBranches()) {
        execs += e->executions;
        baseline += e->baselineMispredicts;
    }
    if (execs == 0)
        return 0.0;
    uint64_t improved =
        stats.coveredMispredicts - stats.expectedRemaining;
    return static_cast<double>(baseline - improved) /
           static_cast<double>(execs);
}

/** Synthetic hard-branch entry with one empty table per length. */
BranchProfileEntry
syntheticEntry(size_t numLengths)
{
    BranchProfileEntry e;
    e.pc = 0x4000;
    e.hard = true;
    e.byLength.assign(numLengths, HashedSampleTable(8));
    return e;
}

} // namespace

// ---------------------------------------------------------------
// Differential: pruned search vs the paper's full scan.
// ---------------------------------------------------------------

TEST(Prune, WithinBoundOfFullSearchOnApps)
{
    // ISSUE bound: screening may cost at most +0.005 expected
    // mispredict rate vs the exhaustive length x formula scan,
    // while actually shrinking the search.
    ExperimentConfig cfg = smallConfig();
    for (const char *name : {"mysql", "cassandra", "finagle-http"}) {
        BranchProfile profile =
            profileApp(appByName(name), 0, cfg);

        WhisperTrainer full(cfg.whisper, globalTruthTables());
        TrainingStats fullStats;
        full.train(profile, &fullStats);

        WhisperTrainer pruned(cfg.whisper, globalTruthTables());
        pruned.setScreen(ScreenConfig{});
        TrainingStats prunedStats;
        pruned.train(profile, &prunedStats);

        double fullRate = expectedHardRate(profile, fullStats);
        double prunedRate = expectedHardRate(profile, prunedStats);
        EXPECT_LE(prunedRate, fullRate + 0.005) << name;
        // The screen must actually prune (otherwise it is a no-op
        // with extra steps).
        EXPECT_LT(prunedStats.formulasScored,
                  fullStats.formulasScored) << name;
        EXPECT_GT(prunedStats.hintsEmitted, 0u) << name;
    }
}

// ---------------------------------------------------------------
// Warm-started retraining on a stationary workload.
// ---------------------------------------------------------------

TEST(Warm, SecondEpochNoWorseThanColdOnStationaryTrace)
{
    // Epoch 1 on input 0 produces the seeds; epoch 2 retrains the
    // same app's input 1 warm vs cold. Stationary traffic: the warm
    // epoch must match cold-epoch accuracy (within the differential
    // bound) while scoring far fewer formulas.
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("mysql");
    BranchProfile epoch1 = profileApp(app, 0, cfg);
    BranchProfile epoch2 = profileApp(app, 1, cfg);

    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    trainer.setScreen(ScreenConfig{});
    std::vector<TrainedHint> seeds = trainer.train(epoch1);
    ASSERT_FALSE(seeds.empty());

    TrainingStats cold, warm;
    trainer.train(epoch2, nullptr, &cold);
    trainer.train(epoch2, &seeds, &warm);

    EXPECT_LE(expectedHardRate(epoch2, warm),
              expectedHardRate(epoch2, cold) + 0.005);
    // The warm path must engage and pay off: deterministic speed
    // proxy is the scored-formula count, not wall time. (The full-
    // scale speedup claim lives in bench_train; at this reduced
    // scale we require a >20% cut.)
    EXPECT_GT(warm.warmHits, 0u);
    EXPECT_LT(warm.formulasScored, cold.formulasScored * 4 / 5);
    // Accounting invariant: every considered branch either hit warm
    // or ran the cold search.
    EXPECT_EQ(warm.warmHits + warm.coldSearches,
              warm.branchesConsidered);
    EXPECT_EQ(cold.warmHits, 0u);
    EXPECT_EQ(cold.coldSearches, cold.branchesConsidered);
}

TEST(Warm, DeterministicUnderFixedSeeds)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("cassandra");
    BranchProfile epoch1 = profileApp(app, 0, cfg);
    BranchProfile epoch2 = profileApp(app, 1, cfg);

    auto run = [&](TrainingStats &stats) {
        WhisperTrainer trainer(cfg.whisper, globalTruthTables());
        trainer.setScreen(ScreenConfig{});
        std::vector<TrainedHint> seeds = trainer.train(epoch1);
        return trainer.train(epoch2, &seeds, &stats);
    };
    TrainingStats s1, s2;
    std::vector<TrainedHint> a = run(s1);
    std::vector<TrainedHint> b = run(s2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(s1.formulasScored, s2.formulasScored);
    EXPECT_EQ(s1.warmHits, s2.warmHits);
    EXPECT_EQ(s1.coldSearches, s2.coldSearches);
}

TEST(Warm, PoolIsBitIdenticalToSerialForAnyWorkerCount)
{
    ExperimentConfig cfg = smallConfig();
    const AppConfig &app = appByName("finagle-http");
    BranchProfile epoch1 = profileApp(app, 0, cfg);
    BranchProfile epoch2 = profileApp(app, 1, cfg);

    WhisperTrainer trainer(cfg.whisper, globalTruthTables());
    trainer.setScreen(ScreenConfig{});
    std::vector<TrainedHint> seeds = trainer.train(epoch1);

    TrainingStats serialStats;
    std::vector<TrainedHint> serial =
        trainer.train(epoch2, &seeds, &serialStats);

    for (unsigned workers : {1u, 4u}) {
        TrainingPool pool(workers);
        TrainingStats poolStats;
        std::vector<TrainedHint> hints =
            pool.train(trainer, epoch2, &seeds, &poolStats);
        EXPECT_EQ(hints, serial) << workers << " workers";
        EXPECT_EQ(poolStats.formulasScored,
                  serialStats.formulasScored) << workers;
        EXPECT_EQ(poolStats.warmHits, serialStats.warmHits)
            << workers;
        EXPECT_EQ(poolStats.coldSearches, serialStats.coldSearches)
            << workers;
        EXPECT_EQ(poolStats.warmHits + poolStats.coldSearches,
                  poolStats.branchesConsidered) << workers;
    }
}

// ---------------------------------------------------------------
// Warm mechanics on synthetic branches.
// ---------------------------------------------------------------

TEST(Warm, StationarySeedShortCircuitsTheSearch)
{
    // A branch whose outcomes follow a planted formula: the cold
    // search finds it; reseeding the same branch must hit warm,
    // score only the tiny neighborhood, and be at least as good.
    const std::vector<unsigned> lengths = {8, 16};
    BranchProfileEntry entry = syntheticEntry(lengths.size());
    BoolFormula planted(0x2A51, 8);
    for (unsigned k = 0; k < 256; ++k) {
        bool taken = planted.evaluate(static_cast<uint8_t>(k));
        entry.byLength[0].record(static_cast<uint8_t>(k), taken);
        for (int rep = 0; rep < 9; ++rep)
            entry.byLength[0].record(static_cast<uint8_t>(k), taken);
        entry.executions += 10;
        entry.takenCount += taken ? 10 : 0;
    }
    entry.baselineMispredicts = 600;

    WhisperConfig wcfg;
    WhisperTrainer trainer(wcfg, globalTruthTables());
    trainer.setCandidateFraction(1.0); // planted formula findable

    TrainedHint coldHint;
    BranchTrainOutcome coldOut;
    ASSERT_TRUE(trainer.trainBranchSeeded(entry, lengths, nullptr,
                                          coldHint, &coldOut));
    EXPECT_FALSE(coldOut.warmHit);
    ASSERT_EQ(coldHint.hint.bias, HintBias::Formula);
    EXPECT_EQ(coldHint.expectedMispredicts, 0u);

    TrainedHint warmHint;
    BranchTrainOutcome warmOut;
    ASSERT_TRUE(trainer.trainBranchSeeded(
        entry, lengths, &coldHint, warmHint, &warmOut));
    EXPECT_TRUE(warmOut.warmHit);
    EXPECT_LE(warmHint.expectedMispredicts,
              coldHint.expectedMispredicts);
    // Neighborhood: 17 encodings per populated length vs the full
    // 32768-encoding scan the cold path paid.
    EXPECT_LE(warmOut.scored, 17u * lengths.size());
    EXPECT_LT(warmOut.scored, coldOut.scored / 100);
}

TEST(Warm, StaleSeedFallsThroughToColdSearch)
{
    // Fresh tables carry no signal (both outcomes equally likely at
    // every key): neither the warm seed nor the cold search can
    // clear the emission gates, and the outcome must record a cold
    // search, not a warm hit — a decorrelated branch never inherits
    // its stale formula.
    const std::vector<unsigned> lengths = {8, 16};
    BranchProfileEntry entry = syntheticEntry(lengths.size());
    for (unsigned k = 0; k < 256; ++k) {
        for (int rep = 0; rep < 4; ++rep) {
            entry.byLength[0].record(static_cast<uint8_t>(k), true);
            entry.byLength[0].record(static_cast<uint8_t>(k), false);
        }
        entry.executions += 8;
        entry.takenCount += 4;
    }
    entry.baselineMispredicts = 100; // unbeatable on balanced data

    WhisperConfig wcfg;
    WhisperTrainer trainer(wcfg, globalTruthTables());
    TrainedHint stale;
    stale.pc = entry.pc;
    stale.hint.bias = HintBias::Formula;
    stale.hint.formula = 0x2A51;
    stale.expectedMispredicts = 10;  // trained quality it will
    stale.profiledMispredicts = 600; // not retain on fresh tables

    TrainedHint out;
    BranchTrainOutcome outcome;
    EXPECT_FALSE(trainer.trainBranchSeeded(entry, lengths, &stale,
                                           out, &outcome));
    EXPECT_FALSE(outcome.warmHit);
    // The warm neighborhood was scored, then the cold search ran.
    EXPECT_GT(outcome.scored, 17u * lengths.size());
}

TEST(Warm, DegradedSeedStillPassingGatesRetrainsCold)
{
    // The branch drifted: a quarter of the keys went coin-flip, so
    // the planted formula now mispredicts 25% of executions — still
    // comfortably inside the emission gates (25% < 85% of bias),
    // but far off the near-zero quality the seed was deployed with.
    // The retention check must send it to the cold search instead
    // of warm-hitting at degraded quality.
    const std::vector<unsigned> lengths = {8, 16};
    BranchProfileEntry entry = syntheticEntry(lengths.size());
    BoolFormula planted(0x2A51, 8);
    for (unsigned k = 0; k < 256; ++k) {
        bool correlated = (k % 4) != 0;
        for (int rep = 0; rep < 10; ++rep) {
            bool taken = correlated
                ? planted.evaluate(static_cast<uint8_t>(k))
                : (rep % 2 == 0);
            entry.byLength[0].record(static_cast<uint8_t>(k), taken);
            entry.takenCount += taken ? 1 : 0;
        }
        entry.executions += 10;
    }
    entry.baselineMispredicts = 600;

    WhisperConfig wcfg;
    WhisperTrainer trainer(wcfg, globalTruthTables());
    trainer.setCandidateFraction(1.0); // planted formula findable
    TrainedHint seed;
    seed.pc = entry.pc;
    seed.hint.bias = HintBias::Formula;
    seed.hint.formula = 0x2A51;
    seed.expectedMispredicts = 0;    // deployed as a perfect formula
    seed.profiledMispredicts = 600;

    TrainedHint out;
    BranchTrainOutcome outcome;
    ASSERT_TRUE(trainer.trainBranchSeeded(entry, lengths, &seed,
                                          out, &outcome));
    EXPECT_FALSE(outcome.warmHit);
    EXPECT_GT(outcome.scored, 17u * lengths.size());
    // The cold result can be no worse than the drifted seed's
    // floor: the 64 coin-flip keys cost any formula 5 each.
    EXPECT_LE(out.expectedMispredicts, 64u * 5u);
}

// ---------------------------------------------------------------
// Property: screening never drops a perfectly correlated position.
// ---------------------------------------------------------------

TEST(ScreenProperty, PerfectlyCorrelatedPositionAlwaysSurvives)
{
    // Randomized: one length's table is decided entirely by one key
    // bit; every other length gets deterministic-per-key noise whose
    // oracle headroom *ties* the perfect length's gain, so survival
    // must come from the perfect-correlation guarantee, not from
    // gain ranking — even under a budget far smaller than the
    // series.
    const std::vector<unsigned> lengths = {8, 11, 15, 22, 31, 44};
    for (uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(1000 + seed);
        unsigned perfectIdx =
            static_cast<unsigned>(rng.nextBelow(lengths.size()));
        unsigned perfectBit = static_cast<unsigned>(rng.nextBelow(8));

        BranchProfileEntry entry = syntheticEntry(lengths.size());
        for (unsigned idx = 0; idx < lengths.size(); ++idx) {
            for (unsigned k = 0; k < 256; ++k) {
                bool taken = idx == perfectIdx
                    ? ((k >> perfectBit) & 1) != 0
                    : rng.nextBool(0.5);
                for (int rep = 0; rep < 4; ++rep)
                    entry.byLength[idx].record(
                        static_cast<uint8_t>(k), taken);
            }
        }
        entry.executions = 1024;
        entry.takenCount = 512;

        ScreenConfig cfg;
        cfg.maxLengths = 2;
        BranchScreen scr =
            CorrelationScreen(cfg).screenBranch(entry, lengths);

        bool lengthKept = false;
        for (unsigned idx : scr.lengthIdx)
            lengthKept = lengthKept || idx == perfectIdx;
        EXPECT_TRUE(lengthKept)
            << "seed " << seed << ": perfect length " << perfectIdx
            << " pruned";
        EXPECT_TRUE(scr.inputMask & (1u << perfectBit))
            << "seed " << seed << ": perfect bit " << perfectBit
            << " masked";
    }
}

TEST(ScreenProperty, DisabledScreenIsAPassthrough)
{
    const std::vector<unsigned> lengths = {8, 16, 32};
    BranchProfileEntry entry = syntheticEntry(lengths.size());
    ScreenConfig off;
    off.enabled = false;
    BranchScreen scr =
        CorrelationScreen(off).screenBranch(entry, lengths);
    EXPECT_EQ(scr.lengthIdx, (std::vector<unsigned>{0, 1, 2}));
    EXPECT_EQ(scr.inputMask, 0xFF);
}

// ---------------------------------------------------------------
// The support mask the candidate filter relies on.
// ---------------------------------------------------------------

TEST(SupportMask, MatchesBruteForce)
{
    const TruthTableCache &cache = globalTruthTables();
    Rng rng(77);
    for (int trial = 0; trial < 100; ++trial) {
        uint16_t enc = static_cast<uint16_t>(rng.nextBelow(32768));
        BoolFormula f(enc, 8);
        uint8_t expect = 0;
        for (unsigned bit = 0; bit < 8; ++bit) {
            for (unsigned v = 0; v < 256; ++v) {
                if (v & (1u << bit))
                    continue;
                if (f.evaluate(static_cast<uint8_t>(v)) !=
                    f.evaluate(static_cast<uint8_t>(v | (1u << bit)))) {
                    expect |= static_cast<uint8_t>(1u << bit);
                    break;
                }
            }
        }
        EXPECT_EQ(cache.supportMask(enc), expect) << "enc " << enc;
    }
}
