/**
 * @file
 * Tests for the whisperd service subsystem: bounded queue, streaming
 * trace ingest, merge-exact chunk profiling, the parallel training
 * pool's determinism, and the versioned hint store.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/bounded_queue.hh"
#include "service/chunk_profiler.hh"
#include "service/hint_store.hh"
#include "service/trace_stream.hh"
#include "service/training_pool.hh"
#include "service/whisperd.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "trace/branch_trace.hh"
#include "workloads/app_workload.hh"

using namespace whisper;

namespace
{

std::vector<BranchRecord>
kafkaRecords(uint32_t inputId, uint64_t count)
{
    AppWorkload workload(appByName("kafka"), inputId, count);
    std::vector<BranchRecord> records;
    records.reserve(count);
    BranchRecord rec;
    while (workload.next(rec))
        records.push_back(rec);
    return records;
}

std::vector<BranchRecord>
slice(const std::vector<BranchRecord> &records, size_t from, size_t to)
{
    return {records.begin() + from, records.begin() + to};
}

} // namespace

// --------------------------------------------------------------------
// BoundedQueue
// --------------------------------------------------------------------

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.push(i));
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.tryPop(v));
}

TEST(BoundedQueue, CloseDrainsRemainingItems)
{
    BoundedQueue<int> q(4);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    q.close();
    EXPECT_FALSE(q.push(3));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, BlockingHandoffAcrossThreads)
{
    // Capacity 1 forces the producer to block on every push, so this
    // exercises the full backpressure path.
    BoundedQueue<int> q(1);
    constexpr int kItems = 2000;
    std::thread producer([&] {
        for (int i = 0; i < kItems; ++i)
            ASSERT_TRUE(q.push(i));
        q.close();
    });
    long long sum = 0;
    int count = 0, v = 0;
    while (q.pop(v)) {
        sum += v;
        ++count;
    }
    producer.join();
    EXPECT_EQ(count, kItems);
    EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(BoundedQueue, CloseWhileProducersBlocked)
{
    // Producers blocked on a full queue must wake and fail cleanly
    // when the queue closes — a wedged producer would hang whisperd's
    // shutdown forever.
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(0)); // fill the queue
    constexpr int kProducers = 4;
    std::atomic<int> rejected{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
            if (!q.push(1))
                ++rejected;
        });
    }
    // Give the producers time to block on the full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    q.close();
    for (auto &t : producers)
        t.join(); // must not deadlock
    EXPECT_EQ(rejected.load(), kProducers);
    int v = -1;
    EXPECT_TRUE(q.pop(v)); // pre-close item still drains
    EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, CloseWhileConsumersBlocked)
{
    BoundedQueue<int> q(4);
    constexpr int kConsumers = 4;
    std::atomic<int> emptyPops{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            int v = 0;
            if (!q.pop(v))
                ++emptyPops;
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    q.close();
    for (auto &t : consumers)
        t.join(); // must not deadlock
    EXPECT_EQ(emptyPops.load(), kConsumers);
}

TEST(BoundedQueue, ShutdownStressManyProducersConsumers)
{
    // Hammer push/pop/close from many threads; run under
    // ThreadSanitizer in CI. Every item pushed before close must be
    // popped exactly once, and nothing may deadlock.
    BoundedQueue<int> q(2);
    constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
    std::atomic<long long> pushedSum{0}, poppedSum{0};
    std::atomic<int> pushed{0}, popped{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int v = p * kPerProducer + i;
                if (!q.push(v))
                    return; // closed under us: fine
                pushedSum += v;
                ++pushed;
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            int v = 0;
            while (q.pop(v)) {
                poppedSum += v;
                ++popped;
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    q.close();
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(popped.load(), pushed.load());
    EXPECT_EQ(poppedSum.load(), pushedSum.load());
}

TEST(BoundedQueue, TryPushForDeadlineSemantics)
{
    BoundedQueue<int> q(1);
    // Room available: succeeds immediately regardless of timeout.
    EXPECT_TRUE(q.tryPushFor(1, std::chrono::milliseconds(0)));
    // Full: a short deadline expires and reports failure without
    // dropping or duplicating anything.
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.tryPushFor(2, std::chrono::milliseconds(50)));
    auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(waited, std::chrono::milliseconds(45));
    // Room reappears: a concurrently waiting timed push completes
    // well before its deadline.
    std::thread consumer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        int v = 0;
        ASSERT_TRUE(q.pop(v));
    });
    EXPECT_TRUE(q.tryPushFor(3, std::chrono::seconds(10)));
    consumer.join();
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 3);
}

TEST(BoundedQueue, CloseWakesBlockedTimedPushPromptly)
{
    // The shutdown race this API exists for: a producer parked in a
    // long timed push must observe close() immediately, not wait out
    // its deadline. Generous threshold (2s vs the 30s deadline) to
    // absorb scheduler noise on loaded CI machines.
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(0)); // fill
    std::atomic<bool> pushed{false};
    std::chrono::steady_clock::duration blockedFor{};
    std::thread producer([&] {
        auto t0 = std::chrono::steady_clock::now();
        pushed = q.tryPushFor(1, std::chrono::seconds(30));
        blockedFor = std::chrono::steady_clock::now() - t0;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    q.close();
    producer.join();
    EXPECT_FALSE(pushed.load());
    EXPECT_LT(blockedFor, std::chrono::seconds(2));
    // Pre-close items still drain after the aborted push.
    int v = -1;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 0);
    EXPECT_FALSE(q.pop(v));
}

// --------------------------------------------------------------------
// TraceStreamReader / ChunkIngestor
// --------------------------------------------------------------------

TEST(TraceStream, ChunkedReadMatchesFullLoad)
{
    BranchTrace trace("kafka", 0);
    for (const BranchRecord &rec : kafkaRecords(0, 30'000))
        trace.append(rec);
    std::string path = "/tmp/whisper_test_stream.whrt";
    ASSERT_TRUE(trace.save(path));

    TraceStreamReader reader(path);
    ASSERT_TRUE(reader.valid());
    EXPECT_EQ(reader.app(), "kafka");
    EXPECT_EQ(reader.inputId(), 0u);
    EXPECT_EQ(reader.recordsTotal(), trace.size());

    std::vector<BranchRecord> streamed, chunk;
    while (reader.readChunk(chunk, 7'001) > 0)
        streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    std::remove(path.c_str());

    ASSERT_EQ(streamed.size(), trace.size());
    for (size_t i = 0; i < streamed.size(); ++i) {
        ASSERT_EQ(streamed[i].pc, trace[i].pc);
        ASSERT_EQ(streamed[i].taken, trace[i].taken);
        ASSERT_EQ(streamed[i].kind, trace[i].kind);
    }
}

TEST(TraceStream, RejectsBadMagic)
{
    std::string path = "/tmp/whisper_test_badmagic.whrt";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint32_t notMagic = 0xdeadbeef;
    std::fwrite(&notMagic, sizeof notMagic, 1, f);
    std::fclose(f);
    TraceStreamReader reader(path);
    EXPECT_FALSE(reader.valid());
    std::remove(path.c_str());
}

TEST(TraceStream, IngestorDeliversEverythingInOrder)
{
    namespace fs = std::filesystem;
    fs::path dir = "/tmp/whisper_test_ingest_dir";
    fs::remove_all(dir);
    fs::create_directories(dir);

    // Two files; name order must drive delivery order.
    std::vector<BranchRecord> all = kafkaRecords(0, 24'000);
    BranchTrace t0("kafka", 0), t1("kafka", 1);
    for (size_t i = 0; i < 12'000; ++i)
        t0.append(all[i]);
    for (size_t i = 12'000; i < all.size(); ++i)
        t1.append(all[i]);
    ASSERT_TRUE(t0.save((dir / "000_kafka.whrt").string()));
    ASSERT_TRUE(t1.save((dir / "001_kafka.whrt").string()));

    BoundedQueue<TraceChunk> queue(2);
    std::atomic<uint64_t> sequence{0};
    ChunkIngestor ingestor(
        ChunkIngestor::listTraceFiles(dir.string()), 5'000, queue,
        sequence);
    ingestor.start();
    std::thread closer([&] {
        ingestor.join();
        queue.close();
    });

    std::vector<BranchRecord> delivered;
    uint64_t expectSeq = 0;
    TraceChunk chunk;
    while (queue.pop(chunk)) {
        EXPECT_EQ(chunk.sequence, expectSeq++);
        EXPECT_EQ(chunk.app, "kafka");
        delivered.insert(delivered.end(), chunk.records.begin(),
                         chunk.records.end());
    }
    closer.join();
    fs::remove_all(dir);

    EXPECT_EQ(ingestor.filesIngested(), 2u);
    EXPECT_TRUE(ingestor.errors().empty());
    ASSERT_EQ(delivered.size(), all.size());
    for (size_t i = 0; i < delivered.size(); ++i)
        ASSERT_EQ(delivered[i].pc, all[i].pc);
}

// --------------------------------------------------------------------
// ChunkProfiler / Profile::merge
// --------------------------------------------------------------------

TEST(ChunkProfiler, MergedChunkProfilesEqualConcatenatedProfile)
{
    // The service's core invariant: profiling a stream chunk by chunk
    // and merging must give exactly the profile of the whole stream.
    std::vector<BranchRecord> records = kafkaRecords(0, 60'000);
    WhisperConfig cfg;
    ChunkProfiler::Options opt;
    opt.maxHardBranches = 128;

    ChunkProfiler chunked(cfg, makeTage(64), opt);
    BranchProfile merged(cfg);
    for (size_t at = 0; at < records.size(); at += 17'000) {
        size_t end = std::min(records.size(), at + 17'000);
        BranchProfile part =
            chunked.profileChunk(slice(records, at, end));
        merged = BranchProfile::merge(merged, part);
    }

    ChunkProfiler whole(cfg, makeTage(64), opt);
    BranchProfile reference = whole.profileChunk(records);

    EXPECT_TRUE(merged == reference);
    EXPECT_EQ(merged.numBranches(), reference.numBranches());
}

TEST(ChunkProfiler, MergeEqualityHoldsUnderStatsWarmup)
{
    // The warm-up skip is a function of lifetime stream position, so
    // chunking must still not change the profile.
    std::vector<BranchRecord> records = kafkaRecords(0, 40'000);
    WhisperConfig cfg;
    ChunkProfiler::Options opt;
    opt.maxHardBranches = 64;
    opt.statsWarmupRecords = 12'500; // lands mid-chunk

    ChunkProfiler chunked(cfg, makeTage(64), opt);
    BranchProfile merged(cfg);
    for (size_t at = 0; at < records.size(); at += 10'000) {
        size_t end = std::min(records.size(), at + 10'000);
        merged = BranchProfile::merge(
            merged, chunked.profileChunk(slice(records, at, end)));
    }

    ChunkProfiler whole(cfg, makeTage(64), opt);
    BranchProfile reference = whole.profileChunk(records);
    EXPECT_TRUE(merged == reference);

    // Warm-up records contribute to no statistic.
    ChunkProfiler noWarmup(cfg, makeTage(64));
    BranchProfile unskipped = noWarmup.profileChunk(records);
    EXPECT_LT(reference.totalConditionals,
              unskipped.totalConditionals);
}

TEST(ChunkProfiler, MergeIsAssociativeAndCommutative)
{
    std::vector<BranchRecord> records = kafkaRecords(0, 45'000);
    WhisperConfig cfg;
    ChunkProfiler::Options opt;
    opt.maxHardBranches = 128;
    ChunkProfiler profiler(cfg, makeTage(64), opt);

    BranchProfile p1 = profiler.profileChunk(slice(records, 0, 15'000));
    BranchProfile p2 =
        profiler.profileChunk(slice(records, 15'000, 30'000));
    BranchProfile p3 =
        profiler.profileChunk(slice(records, 30'000, 45'000));

    BranchProfile leftFirst =
        BranchProfile::merge(BranchProfile::merge(p1, p2), p3);
    BranchProfile rightFirst =
        BranchProfile::merge(p1, BranchProfile::merge(p2, p3));
    EXPECT_TRUE(leftFirst == rightFirst);

    EXPECT_TRUE(BranchProfile::merge(p1, p2) ==
                BranchProfile::merge(p2, p1));
}

TEST(ShardedProfiler, DeterministicAcrossRuns)
{
    std::vector<BranchRecord> records = kafkaRecords(0, 40'000);
    WhisperConfig cfg;
    ChunkProfiler::Options opt;
    opt.maxHardBranches = 64;
    BaselineFactory baseline = [] { return makeTage(64); };

    auto runOnce = [&] {
        ShardedProfiler shards(cfg, 2, baseline, opt);
        for (size_t at = 0, seq = 0; at < records.size();
             at += 10'000, ++seq) {
            TraceChunk chunk;
            chunk.sequence = seq;
            chunk.records =
                slice(records, at,
                      std::min(records.size(), at + 10'000));
            shards.submit(std::move(chunk));
        }
        shards.drain();
        EXPECT_EQ(shards.recordsProfiled(), records.size());
        return shards.aggregate();
    };

    BranchProfile a = runOnce();
    BranchProfile b = runOnce();
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.numBranches(), 0u);
}

// --------------------------------------------------------------------
// TrainingPool
// --------------------------------------------------------------------

TEST(TrainingPool, BitIdenticalAcrossWorkerCounts)
{
    ExperimentConfig ecfg;
    ecfg.trainRecords = 80'000;
    ecfg.profile.maxHardBranches = 64;
    BranchProfile profile = profileApp(appByName("kafka"), 0, ecfg);
    WhisperTrainer trainer(ecfg.whisper, globalTruthTables());

    TrainingStats serialStats;
    std::vector<TrainedHint> serial =
        trainer.train(profile, &serialStats);

    for (unsigned workers : {1u, 4u}) {
        TrainingStats poolStats;
        std::vector<TrainedHint> pooled = TrainingPool(workers).train(
            trainer, profile, &poolStats);
        ASSERT_EQ(pooled.size(), serial.size())
            << "workers=" << workers;
        for (size_t i = 0; i < serial.size(); ++i)
            ASSERT_TRUE(pooled[i] == serial[i])
                << "workers=" << workers << " hint " << i;
        EXPECT_EQ(poolStats.branchesConsidered,
                  serialStats.branchesConsidered);
        EXPECT_EQ(poolStats.formulasScored,
                  serialStats.formulasScored);
    }
}

// --------------------------------------------------------------------
// HintStore
// --------------------------------------------------------------------

TEST(HintStore, AcceptsImprovingRejectsRegressing)
{
    HintStore store;
    EXPECT_EQ(store.current(), nullptr);
    EXPECT_EQ(store.epoch(), 0u);

    HintBundle first;
    first.hints.resize(3);
    EXPECT_TRUE(store.propose(first, 0.95, 0.93));
    EXPECT_EQ(store.epoch(), 1u);
    EXPECT_EQ(store.current()->validationAccuracy, 0.95);

    // A regressing candidate must be rejected and leave the deployed
    // generation untouched.
    HintBundle worse;
    worse.hints.resize(9);
    EXPECT_FALSE(store.propose(worse, 0.94, 0.95));
    EXPECT_EQ(store.epoch(), 1u);
    EXPECT_EQ(store.current()->bundle.hints.size(), 3u);

    // Ties are rejected too (strict improvement required)...
    EXPECT_FALSE(store.propose(worse, 0.95, 0.95));
    // ...and the margin raises the bar further.
    EXPECT_FALSE(store.propose(worse, 0.9549, 0.95, 0.005));
    EXPECT_TRUE(store.propose(worse, 0.9551, 0.95, 0.005));
    EXPECT_EQ(store.epoch(), 2u);

    EXPECT_EQ(store.accepted(), 2u);
    EXPECT_EQ(store.rejected(), 3u);
    EXPECT_EQ(store.generations(), 2u);
}

TEST(HintStore, RollbackRepublishesUnderFreshEpoch)
{
    HintStore store;
    EXPECT_FALSE(store.rollback()); // nothing deployed yet

    HintBundle gen1, gen2;
    gen1.hints.resize(1);
    gen2.hints.resize(2);
    ASSERT_TRUE(store.propose(gen1, 0.90, 0.80));
    ASSERT_TRUE(store.propose(gen2, 0.92, 0.90));
    ASSERT_EQ(store.epoch(), 2u);

    ASSERT_TRUE(store.rollback());
    EXPECT_EQ(store.epoch(), 3u); // epochs never reuse numbers
    EXPECT_EQ(store.current()->bundle.hints.size(), 1u);
    EXPECT_EQ(store.rollbacks(), 1u);
}

TEST(HintStore, RollbackOnEmptyOrSingleGenerationIsCleanError)
{
    // Rolling back past epoch 0 must be a clean refusal, never an
    // out-of-bounds history access.
    HintStore empty;
    EXPECT_FALSE(empty.rollback());
    EXPECT_EQ(empty.rollbacks(), 0u);
    EXPECT_EQ(empty.epoch(), 0u);

    // With exactly one generation there is no earlier payload either
    // (epoch 0 is "no hints", not a generation).
    HintStore store;
    HintBundle only;
    only.hints.resize(5);
    ASSERT_TRUE(store.propose(only, 0.9, 0.5));
    EXPECT_FALSE(store.rollback());
    EXPECT_EQ(store.rollbacks(), 0u);
    EXPECT_EQ(store.epoch(), 1u);
    EXPECT_EQ(store.current()->bundle.hints.size(), 5u);
    // Repeated attempts stay clean and change nothing.
    EXPECT_FALSE(store.rollback());
    EXPECT_EQ(store.generations(), 1u);
}

TEST(HintStore, ReadersSurviveConcurrentSwaps)
{
    HintStore store;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            HintStore::Snapshot snap = store.current();
            if (snap) {
                // The pinned snapshot stays coherent even if the
                // writer swaps generations underneath us.
                ASSERT_EQ(snap->bundle.hints.size(),
                          static_cast<size_t>(snap->epoch));
                ++reads;
            }
        }
    });
    double accuracy = 0.5;
    for (uint64_t gen = 1; gen <= 200; ++gen) {
        HintBundle bundle;
        bundle.hints.resize(gen);
        double next = accuracy + 0.001;
        ASSERT_TRUE(store.propose(std::move(bundle), next, accuracy));
        accuracy = next;
    }
    stop = true;
    reader.join();
    EXPECT_EQ(store.epoch(), 200u);
    EXPECT_EQ(store.accepted(), 200u);
}

// --------------------------------------------------------------------
// Adaptive runner + consultant
// --------------------------------------------------------------------

TEST(AdaptiveRunner, EpochTotalsAddUpAndSwapsAreCounted)
{
    std::vector<BranchRecord> records = kafkaRecords(0, 30'000);
    ChunkSource source(records);

    HintStore store;
    WhisperConfig cfg;
    HintStoreConsultant consultant(store, cfg, globalTruthTables(),
                                   [] { return makeTage(64); });

    // Deploy an (empty) bundle before epoch 2 so exactly one swap
    // happens mid-run: tage -> whisper-with-empty-bundle.
    std::unique_ptr<BranchPredictor> tage = makeTage(64);
    AdaptiveRunStats stats = runPredictorAdaptive(
        source, *tage, 10'000, [&](uint64_t nextEpoch) {
            if (nextEpoch == 2) {
                HintBundle empty;
                EXPECT_TRUE(store.propose(empty, 1.0, 0.0));
            }
            return consultant.refresh(nextEpoch);
        });

    EXPECT_EQ(stats.perEpoch.size(), 3u);
    EXPECT_EQ(stats.predictorSwaps, 1u);
    EXPECT_EQ(consultant.deployedEpoch(), 1u);

    uint64_t conditionals = 0, mispredicts = 0;
    for (const PredictorRunStats &epoch : stats.perEpoch) {
        conditionals += epoch.conditionals;
        mispredicts += epoch.mispredicts;
    }
    EXPECT_EQ(conditionals, stats.total.conditionals);
    EXPECT_EQ(mispredicts, stats.total.mispredicts);
}

// --------------------------------------------------------------------
// Whisperd end to end (in-process, synthetic queue)
// --------------------------------------------------------------------

TEST(Whisperd, TrainsDeploysAndReportsFromQueue)
{
    WhisperdConfig cfg;
    cfg.chunkRecords = 15'000;
    cfg.epochChunks = 2;
    cfg.trainWorkers = 2;
    cfg.profileShards = 2;
    cfg.tageBudgetKB = 64;
    cfg.profilePolicy.maxHardBranches = 64;
    cfg.verbose = false;

    Whisperd daemon(cfg, globalTruthTables());

    BoundedQueue<TraceChunk> queue(4);
    std::vector<BranchRecord> records = kafkaRecords(0, 90'000);
    std::thread producer([&] {
        uint64_t seq = 0;
        for (size_t at = 0; at < records.size();
             at += cfg.chunkRecords) {
            TraceChunk chunk;
            chunk.sequence = seq++;
            chunk.app = "kafka";
            chunk.records = slice(
                records, at,
                std::min(records.size(), at + cfg.chunkRecords));
            queue.push(std::move(chunk));
        }
        queue.close();
    });
    daemon.runFromQueue(queue);
    producer.join();

    EXPECT_GE(daemon.epochsRun(), 2u);
    EXPECT_GE(daemon.store().accepted() + daemon.store().rejected(),
              2u);
    // Something must have been deployable on a stable stream.
    ASSERT_NE(daemon.store().current(), nullptr);
    EXPECT_GT(daemon.store().current()->bundle.hints.size(), 0u);
    EXPECT_EQ(daemon.metrics().chunksIngested, 6u);
    EXPECT_EQ(daemon.metrics().recordsIngested, records.size());
}
